"""The paper's running example: phase analysis of 181.mcf.

Reproduces the Figure 2 / 9 / 10 story on the synthetic 181.mcf model:
the region mix drifts (146f0-14770 fades, 142c8-14318 grows) and turns
periodic late in the run; the centroid detector sees global phase changes
and an unstable tail, while every region's local Pearson-r stays ~1.

Run: ``python examples/mcf_phase_analysis.py [scale]``
"""

import sys

from repro import MonitorThresholds, RegionMonitor, get_benchmark, \
    simulate_sampling
from repro.analysis.charts import RegionChart, phase_line
from repro.analysis.metrics import ground_truth_region_matrix, run_gpd
from repro.analysis.tables import format_table

SAMPLING_PERIOD = 450_000
BUFFER_SIZE = 2032


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    model = get_benchmark("181.mcf", scale=scale)
    stream = simulate_sampling(model.regions, model.workload,
                               SAMPLING_PERIOD, seed=7)
    print(f"181.mcf @ {SAMPLING_PERIOD // 1000}k cycles/interrupt, "
          f"{stream.n_intervals(BUFFER_SIZE)} intervals (scale {scale})\n")

    # --- the region chart (paper Figure 2 / 9) -------------------------
    names, matrix = ground_truth_region_matrix(stream, BUFFER_SIZE)
    labeled = tuple(model.monitored_name(n) if n in model.regions else n
                    for n in names)
    gpd = run_gpd(stream, BUFFER_SIZE)
    chart = RegionChart(labeled, matrix, phase_line(gpd))
    print("Region chart (sample density per region over time; "
          "^ = GPD-unstable):")
    print(chart.render_ascii(width=72, top_k=5))
    print(f"\nGPD: {len(gpd.events)} phase changes, stable "
          f"{100 * gpd.stable_time_fraction():.0f}% of intervals")

    # --- local phase detection (paper Figure 10) -----------------------
    monitor = RegionMonitor(model.binary,
                            MonitorThresholds(buffer_size=BUFFER_SIZE))
    monitor.process_stream(stream)
    rows = []
    for workload_name in ("mcf_r1", "mcf_r2", "mcf_r3"):
        region = monitor.region_by_name(model.monitored_name(workload_name))
        detector = monitor.detector(region.rid)
        r_values = [o.r_value for o in detector.observations
                    if o.had_samples][2:]
        rows.append([region.name,
                     min(r_values) if r_values else 0.0,
                     sum(r_values) / len(r_values) if r_values else 0.0,
                     detector.phase_change_count(),
                     100.0 * detector.stable_time_fraction()])
    print()
    print(format_table(
        ["region", "min r", "mean r", "local changes", "stable%"], rows,
        title="Per-region local phase detection (paper Figure 10):"))
    print("\nTakeaway: the paper's headline — mcf looks phase-unstable "
          "globally but every\nregion is locally stable, so LPD keeps its "
          "optimizations deployed.")


if __name__ == "__main__":
    main()
