"""RTO policy comparison: GPD-driven vs LPD-driven optimization.

The Figure 17 experiment as a script: run both runtime-optimizer policies
over identical PMU streams of one benchmark across sampling periods, and
show the self-monitoring feedback loop undoing a harmful optimization.

Run: ``python examples/optimizer_comparison.py [benchmark]``
"""

import sys

from repro import RegionSpec, RtoConfig, RTOSystem, get_benchmark
from repro.analysis.tables import format_table
from repro.optimizer import compare_policies

PERIODS = (100_000, 800_000, 1_500_000)


def policy_sweep(name: str, scale: float) -> None:
    model = get_benchmark(name, scale=scale)
    rows = []
    for period in PERIODS:
        orig, lpd, speedup = compare_policies(
            model.binary, model.regions, model.workload, period, seed=7)
        rows.append([
            f"{period // 1000}k",
            100.0 * orig.stable_fraction,
            orig.n_deployments, orig.n_unpatches,
            100.0 * lpd.stable_fraction,
            lpd.n_deployments, lpd.n_unpatches,
            100.0 * speedup,
        ])
    print(format_table(
        ["period", "orig stable%", "orig deploys", "orig unpatch",
         "lpd stable%", "lpd deploys", "lpd unpatch", "LPD speedup%"],
        rows, title=f"{name}: RTO_LPD vs RTO_ORIG (paper Figure 17)"))


def self_monitoring_demo() -> None:
    """A speculative prefetch that *hurts*: only self-monitoring saves us."""
    model = get_benchmark("172.mgrid", scale=0.3)
    regions = dict(model.regions)
    victim = next(name for name, spec in regions.items() if spec.is_loop)
    spec = regions[victim]
    regions[victim] = RegionSpec(
        victim, spec.start, spec.end,
        profiles={"main": spec.profile().copy()},
        dpi=0.10, opt_potential=-0.15)  # the prefetch pollutes the cache

    naive = RTOSystem(model.binary, regions, model.workload, 100_000,
                      RtoConfig(policy="lpd"), seed=7).run()
    guarded = RTOSystem(model.binary, regions, model.workload, 100_000,
                        RtoConfig(policy="lpd", self_monitoring=True),
                        seed=7).run()
    print("\nSelf-monitoring (paper section 3 / future work):")
    print(f"  without feedback: {naive.total_cycles:,.0f} cycles "
          f"(harmful optimization left deployed)")
    print(f"  with feedback:    {guarded.total_cycles:,.0f} cycles "
          f"({guarded.n_undone} optimization(s) undone)")
    gain = naive.total_cycles / guarded.total_cycles - 1.0
    print(f"  feedback recovered {100 * gain:.2f}% of runtime")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "181.mcf"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    policy_sweep(name, scale)
    self_monitoring_demo()


if __name__ == "__main__":
    main()
