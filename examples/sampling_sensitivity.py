"""Sampling-period sensitivity: GPD vs LPD on one benchmark.

The paper's central comparison (Figures 3/4 vs. 13/14): sweep the
sampling period and watch the centroid-based global detector flap at fine
periods while per-region local detection barely moves.

Run: ``python examples/sampling_sensitivity.py [benchmark] [scale]``
e.g. ``python examples/sampling_sensitivity.py 187.facerec 0.5``
"""

import sys

from repro import MonitorThresholds, RegionMonitor, get_benchmark, \
    simulate_sampling
from repro.analysis.metrics import lpd_region_breakdown, run_gpd
from repro.analysis.tables import format_table

PERIODS = (45_000, 150_000, 450_000, 900_000)
BUFFER_SIZE = 2032


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "187.facerec"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    model = get_benchmark(name, scale=scale)
    print(f"{name} (scale {scale}): {model.description}\n")

    gpd_rows = []
    lpd_rows = []
    for period in PERIODS:
        stream = simulate_sampling(model.regions, model.workload, period,
                                   seed=7)
        detector = run_gpd(stream, BUFFER_SIZE)
        gpd_rows.append([f"{period // 1000}k",
                         stream.n_intervals(BUFFER_SIZE),
                         len(detector.events),
                         100.0 * detector.stable_time_fraction()])

        monitor = RegionMonitor(model.binary,
                                MonitorThresholds(buffer_size=BUFFER_SIZE))
        monitor.process_stream(stream)
        breakdown = lpd_region_breakdown(monitor)[:4]
        total_changes = sum(row["phase_changes"] for row in breakdown)
        mean_stable = (sum(row["stable_pct"] for row in breakdown)
                       / len(breakdown)) if breakdown else 0.0
        lpd_rows.append([f"{period // 1000}k", len(breakdown),
                         total_changes, mean_stable])

    print(format_table(
        ["period", "intervals", "phase changes", "stable%"], gpd_rows,
        title="Global (centroid) phase detection:"))
    print()
    print(format_table(
        ["period", "top regions", "local changes (sum)", "mean stable%"],
        lpd_rows,
        title="Local phase detection (top regions by samples):"))
    print("\nTakeaway: GPD's phase-change count swings with the sampling "
          "period; LPD's\nper-region counts barely move — the paper's "
          "robustness claim.")


if __name__ == "__main__":
    main()
