"""Quickstart: build a tiny program, sample it, detect phases both ways.

Demonstrates the core loop of the library on a hand-built two-loop
program whose working set shifts halfway through:

1. lay out a synthetic binary with the :class:`BinaryBuilder` DSL;
2. describe each region's behavior (hot instructions, DPI);
3. script the workload (steady phase -> working-set shift);
4. sample it with the PMU simulator;
5. run the centroid-based Global Phase Detector and the region monitor
   with per-region Local Phase Detection, and compare what they saw.

Run: ``python examples/quickstart.py``
"""

from repro import (GlobalPhaseDetector, MonitorThresholds, RegionMonitor,
                   RegionSpec, simulate_sampling)
from repro.analysis.tables import format_table
from repro.program import (BinaryBuilder, Steady, WorkloadScript, loop,
                           mixture, straight)
from repro.program.behavior import bottleneck_profile

SAMPLING_PERIOD = 20_000
BUFFER_SIZE = 512


def build_program():
    """A binary with two hot loops and a little cold glue code."""
    builder = BinaryBuilder(base=0x10000)
    builder.procedure("init", [straight(24)], at=0x10000)
    builder.procedure("kernel_a", [loop("loop_a", body=28)], at=0x20000)
    builder.procedure("kernel_b", [loop("loop_b", body=44)], at=0x80000)
    binary = builder.build()

    regions = {
        # loop_a stalls on one cache-missing load (slot 9).
        "loop_a": RegionSpec(
            "loop_a", *binary.loop_span("loop_a"),
            profiles={"main": bottleneck_profile(32, {9: 250.0})},
            dpi=0.08, opt_potential=0.25),
        # loop_b has two milder bottlenecks.
        "loop_b": RegionSpec(
            "loop_b", *binary.loop_span("loop_b"),
            profiles={"main": bottleneck_profile(48, {15: 90.0, 33: 60.0})},
            dpi=0.03, opt_potential=0.10),
        "init_code": RegionSpec(
            "init_code", binary.procedure("init").start,
            binary.procedure("init").end, is_loop=False),
    }

    workload = WorkloadScript([
        Steady(60_000_000, mixture(("loop_a", 0.75), ("loop_b", 0.15),
                                   ("init_code", 0.10))),
        # The working set shifts: loop_b takes over.
        Steady(60_000_000, mixture(("loop_a", 0.15), ("loop_b", 0.75),
                                   ("init_code", 0.10))),
    ])
    return binary, regions, workload


def main() -> None:
    binary, regions, workload = build_program()
    stream = simulate_sampling(regions, workload, SAMPLING_PERIOD, seed=1)
    print(f"simulated {stream.n_samples} samples over "
          f"{workload.total_cycles:,} cycles "
          f"({stream.n_intervals(BUFFER_SIZE)} buffer intervals)\n")

    # --- global phase detection (the baseline) -------------------------
    gpd = GlobalPhaseDetector()
    for value in stream.centroids(BUFFER_SIZE):
        gpd.observe_centroid(float(value))
    print("Global (centroid) phase detector:")
    for event in gpd.events:
        print(f"  interval {event.interval_index:>3}: {event.kind.value} "
              f"({event.detail})")
    print(f"  stable {100 * gpd.stable_time_fraction():.0f}% of intervals\n")

    # --- region monitoring with local phase detection ------------------
    monitor = RegionMonitor(binary,
                            MonitorThresholds(buffer_size=BUFFER_SIZE))
    monitor.process_stream(stream)
    rows = []
    for region in monitor.all_regions():
        detector = monitor.detector(region.rid)
        rows.append([region.name, region.kind.value,
                     detector.phase_change_count(),
                     100.0 * detector.stable_time_fraction(),
                     detector.last_r])
    print(format_table(
        ["region", "kind", "local changes", "stable%", "final r"], rows,
        title="Region monitor (local phase detection):"))
    print(f"\nmedian UCR: {100 * monitor.ucr.median():.1f}%  "
          f"formation triggers: {monitor.ucr.n_triggers}")
    print("\nTakeaway: the global detector sees the working-set shift as a "
          "phase change;\nthe per-region detectors stay stable because "
          "each loop's own behavior never changed.")


if __name__ == "__main__":
    main()
