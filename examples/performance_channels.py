"""Performance-metric phase detection: CPI and DPI channels.

The paper's prototype GPD watches more than the PC centroid: "other
metrics of performance, such as CPI and DPI (Data Cache Misses per
Instruction), are used to determine if the program performance
characteristics have changed."  This example builds a workload whose
*working set never moves* — the same loop executes throughout — but whose
performance character degrades mid-run (its data outgrows the cache: CPI
and DPI jump).  The centroid channel is blind to it; the composite
detector catches it.

Run: ``python examples/performance_channels.py``
"""

from repro import CompositeGlobalDetector, RegionSpec, simulate_sampling
from repro.analysis.tables import format_table
from repro.program import BinaryBuilder, Steady, WorkloadScript, loop, \
    mixture
from repro.program.behavior import bottleneck_profile

BUFFER = 1024
PERIOD = 10_000


def build_workload():
    builder = BinaryBuilder(base=0x10000)
    builder.procedure("kernel", [loop("hot", body=44)], at=0x20000)
    binary = builder.build()
    span = binary.loop_span("hot")
    profile = bottleneck_profile(48, {15: 200.0})
    # Same loop, same hot instruction — but once the data set outgrows the
    # cache, every iteration stalls: CPI 1.1 -> 3.2, DPI 30 -> 120 MPKI.
    in_cache = RegionSpec("hot_fast", *span, profiles={"main": profile},
                          cpi=1.1, dpi=0.030)
    thrashing = RegionSpec("hot_slow", span[0], span[1],
                           profiles={"main": profile}, cpi=3.2, dpi=0.120)
    # Two workload regions sharing one address span model the two
    # performance regimes of the same code.
    regions = {"hot_fast": in_cache, "hot_slow": thrashing}
    workload = WorkloadScript([
        Steady(250_000_000, mixture(("hot_fast", 1.0))),
        Steady(250_000_000, mixture(("hot_slow", 1.0))),
    ])
    return regions, workload


def main() -> None:
    regions, workload = build_workload()
    stream = simulate_sampling(regions, workload, PERIOD, seed=11)
    n = stream.n_intervals(BUFFER)
    print(f"{n} intervals; working set constant, cache behavior degrades "
          f"at the midpoint\n")

    rows = []
    for label, channels in (("centroid only", ("centroid",)),
                            ("cpi only", ("cpi",)),
                            ("dpi only", ("dpi",)),
                            ("composite (all)", CompositeGlobalDetector.CHANNELS)):
        detector = CompositeGlobalDetector(channels=channels,
                                           performance_smoothing=0.15)
        detector.process_stream(stream, BUFFER)
        rows.append([label, detector.phase_change_count(),
                     100.0 * detector.stable_time_fraction()])
    print(format_table(["detector", "phase changes", "stable%"], rows,
                       title="Who sees the performance phase change?"))

    cpis = stream.interval_cpi(BUFFER)
    dpis = stream.interval_dpi(BUFFER)
    print(f"\nCPI:  first third {cpis[: n // 3].mean():.2f}  ->  "
          f"last third {cpis[-n // 3:].mean():.2f}")
    print(f"MPKI: first third {dpis[: n // 3].mean():.1f}  ->  "
          f"last third {dpis[-n // 3:].mean():.1f}")
    print("\nTakeaway: the centroid channel alone misses pure "
          "performance-characteristic\nchanges; the CPI/DPI channels are "
          "what let the optimizer re-evaluate its\nstrategy (e.g. inject "
          "prefetches) when behavior, not code, changes.")


if __name__ == "__main__":
    main()
