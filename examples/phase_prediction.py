"""Phase classification and next-phase prediction.

The paper's footnote 1 imagines optimizations for "the next incoming
phase" (e.g. instruction-cache prefetching before a working-set switch
lands).  That requires knowing which recurring phase comes next.  This
example classifies 187.facerec's intervals into recurring phases (leader
clustering over region-share signatures) and runs a Markov predictor
over the phase sequence — periodic programs turn out to be almost
perfectly predictable.

Run: ``python examples/phase_prediction.py [benchmark] [scale]``
"""

import sys

import numpy as np

from repro import get_benchmark, simulate_sampling
from repro.analysis.metrics import ground_truth_region_matrix
from repro.analysis.prediction import MarkovPhasePredictor, PhaseClassifier
from repro.analysis.tables import format_table

BUFFER = 2032
PERIOD = 45_000


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "187.facerec"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    model = get_benchmark(name, scale=scale)
    stream = simulate_sampling(model.regions, model.workload, PERIOD,
                               seed=7)
    names, matrix = ground_truth_region_matrix(stream, BUFFER)

    classifier = PhaseClassifier()
    phase_ids = classifier.classify_matrix(matrix)
    print(f"{name}: {len(phase_ids)} intervals -> "
          f"{classifier.n_phases} recurring phases\n")

    rows = []
    for phase_id in range(classifier.n_phases):
        signature = classifier.phase_signature(phase_id)
        dominant = names[int(np.argmax(signature))]
        occupancy = 100.0 * phase_ids.count(phase_id) / len(phase_ids)
        rows.append([phase_id, dominant,
                     100.0 * float(signature.max()), occupancy])
    print(format_table(
        ["phase", "dominant region", "dominant share%", "occupancy%"],
        rows, title="Discovered phases:"))

    strip = "".join(str(min(p, 9)) for p in phase_ids[:72])
    print(f"\nphase sequence (first 72 intervals): {strip}")

    rows = []
    for order in (1, 2, 3):
        report = MarkovPhasePredictor(order=order).observe_sequence(
            phase_ids)
        rows.append([order, report.predictions,
                     100.0 * report.accuracy])
    print()
    print(format_table(["Markov order", "predictions", "accuracy%"], rows,
                       title="Next-phase prediction:"))
    print("\nTakeaway: periodic working sets make the phase sequence "
          "highly predictable —\nexactly the information a next-phase "
          "prefetcher (paper footnote 1) needs.")


if __name__ == "__main__":
    main()
