"""Define your own benchmark model from scratch and analyze it.

Shows the full modeling workflow the synthetic SPEC suite uses, applied
to a made-up "database" workload: a scan loop, a join loop whose
bottleneck shifts when the working set outgrows the cache (a genuine
*local* phase change), hash-table code called from a loop (UCR fodder),
and periodic checkpointing.

Run: ``python examples/custom_benchmark.py``
"""

import numpy as np

from repro import MonitorThresholds, RegionMonitor, RegionSpec, \
    simulate_sampling
from repro.analysis.metrics import lpd_region_breakdown, run_gpd
from repro.analysis.tables import format_table
from repro.program import (BinaryBuilder, Periodic, Steady, WorkloadScript,
                           call, loop, mixture, straight)
from repro.program.behavior import bottleneck_profile, shifted_profile

BUFFER = 1024
PERIOD = 30_000


def build_database_benchmark():
    builder = BinaryBuilder(base=0x10000)
    builder.procedure("hash_probe", [straight(64)], at=0x14000)
    builder.procedure("scan", [loop("scan_loop", body=36)], at=0x30000)
    builder.procedure("join",
                      [loop("join_loop",
                            body=[straight(20), call("hash_probe"),
                                  straight(8)])],
                      at=0x60000)
    builder.procedure("checkpoint", [loop("ckpt_loop", body=24)],
                      at=0xA0000)
    binary = builder.build()

    join_slots = (binary.loop_span("join_loop")[1]
                  - binary.loop_span("join_loop")[0]) // 4
    join_in_cache = bottleneck_profile(join_slots, {6: 180.0})
    join_thrashing = shifted_profile(join_in_cache, 11)

    regions = {
        "scan_loop": RegionSpec(
            "scan_loop", *binary.loop_span("scan_loop"),
            profiles={"main": bottleneck_profile(40, {12: 220.0})},
            dpi=0.06, opt_potential=0.20),
        "join_loop": RegionSpec(
            "join_loop", *binary.loop_span("join_loop"),
            profiles={"main": join_in_cache, "thrashing": join_thrashing},
            dpi=0.09, opt_potential=0.25),
        "ckpt_loop": RegionSpec(
            "ckpt_loop", *binary.loop_span("ckpt_loop"),
            profiles={"main": bottleneck_profile(28, {20: 120.0})},
            dpi=0.02, opt_potential=0.05),
        "hash_probe_code": RegionSpec(
            "hash_probe_code", binary.procedure("hash_probe").start,
            binary.procedure("hash_probe").end, is_loop=False,
            profiles={"main": bottleneck_profile(64, {30: 200.0})}),
    }

    steady = mixture(("scan_loop", 0.35), ("join_loop", 0.35, "main"),
                     ("hash_probe_code", 0.20), ("ckpt_loop", 0.10))
    thrash = mixture(("scan_loop", 0.35), ("join_loop", 0.35, "thrashing"),
                     ("hash_probe_code", 0.20), ("ckpt_loop", 0.10))
    workload = WorkloadScript([
        Steady(400_000_000, steady),
        # The join's working set outgrows the cache: its bottleneck load
        # moves — a real local phase change the LPD must catch.
        Steady(400_000_000, thrash),
        # Periodic checkpoint storms afterwards.
        Periodic(400_000_000, (thrash, mixture(("ckpt_loop", 0.85),
                                               ("scan_loop", 0.15))),
                 switch_period=80_000_000),
    ])
    return binary, regions, workload


def main() -> None:
    binary, regions, workload = build_database_benchmark()
    stream = simulate_sampling(regions, workload, PERIOD, seed=3)
    print(f"custom 'database' benchmark: {stream.n_samples} samples, "
          f"{stream.n_intervals(BUFFER)} intervals\n")

    gpd = run_gpd(stream, BUFFER)
    print(f"GPD: {len(gpd.events)} phase changes, "
          f"{100 * gpd.stable_time_fraction():.0f}% stable\n")

    monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=BUFFER))
    monitor.process_stream(stream)
    rows = [[row["region"], row["samples"], row["phase_changes"],
             row["stable_pct"]] for row in lpd_region_breakdown(monitor)]
    print(format_table(["region", "samples", "local changes", "stable%"],
                       rows, title="Region monitor:"))
    print(f"\nmedian UCR {100 * monitor.ucr.median():.0f}% "
          f"(hash_probe is called from a loop, so loop-only formation "
          f"cannot monitor it)")

    interproc = RegionMonitor(binary, MonitorThresholds(buffer_size=BUFFER),
                              interprocedural=True)
    interproc.process_stream(stream)
    print(f"with inter-procedural formation: median UCR "
          f"{100 * interproc.ucr.median():.0f}%")

    join = monitor.region_by_name(
        f"{regions['join_loop'].start:x}-{regions['join_loop'].end:x}")
    r_trace = [o.r_value for o in monitor.detector(join.rid).observations
               if o.had_samples][2:]  # skip the warmup zeros
    drop = int(np.argmin(r_trace)) + 2
    print(f"\njoin loop r-trace dips to {min(r_trace):.2f} around interval "
          f"{drop}: the cache-thrash transition was caught locally.")


if __name__ == "__main__":
    main()
