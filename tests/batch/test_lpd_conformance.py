"""Differential conformance: BatchLpdBank vs the scalar LPD oracle.

Random detector populations (mixed histogram widths, missing intervals,
starved intervals, flat histograms, resets) advance through both paths
in lockstep; every observable — states, r-values, events, observations,
stable-set bytes and the full telemetry stream — must match exactly.
This suite is the gate that lets the batch backend share cache entries
with the scalar path (`repro.experiments.base._BACKEND_CLASS`).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.lpd import BatchLpdBank
from repro.core.histogram import RegionHistogram
from repro.core.lpd import LocalPhaseDetector
from repro.core.thresholds import LpdThresholds
from repro.telemetry.bus import EventBus
from repro.telemetry.sinks import InMemorySink

WIDTHS = (1, 2, 3, 5, 17, 40)

seeds = st.integers(min_value=0, max_value=10_000)


def random_histogram(rng, width):
    """One interval's input: None / zero / starved / flat / busy."""
    mode = rng.integers(0, 6)
    if mode == 0:
        return None
    if mode == 1:
        return np.zeros(width)  # all-zero: held like None
    if mode == 2:
        # tiny counts: may fall below min_interval_samples (starved)
        return rng.integers(0, 3, size=width).astype(np.int64)
    base = rng.integers(0, 50, size=width).astype(np.int64)
    if mode == 3:
        return RegionHistogram.from_counts(0, base)
    if mode == 4:
        return np.full(width, 7, dtype=np.int64)  # flat (degenerate r)
    return base + rng.integers(0, 5, size=width)


def paired_population(n_detectors, thresholds=None):
    """(scalar detectors, bank views, scalar sink, batch sink)."""
    bus_s, bus_b = EventBus(), EventBus()
    sink_s, sink_b = InMemorySink(), InMemorySink()
    bus_s.attach(sink_s)
    bus_b.attach(sink_b)
    bank = BatchLpdBank()
    scalars, views = [], []
    for i in range(n_detectors):
        width = WIDTHS[i % len(WIDTHS)]
        th = thresholds or LpdThresholds()
        scalars.append(LocalPhaseDetector(n_instructions=width,
                                          thresholds=th, telemetry=bus_s,
                                          region_id=i))
        views.append(bank.add_detector(n_instructions=width, thresholds=th,
                                       telemetry=bus_b, region_id=i))
    return bank, scalars, views, sink_s, sink_b


def assert_rows_identical(scalar, view):
    assert scalar.state == view.state
    assert scalar.in_stable_phase == view.in_stable_phase
    assert scalar.active_intervals == view.active_intervals
    assert scalar.stable_intervals == view.stable_intervals
    assert scalar.effective_threshold == view.effective_threshold
    if scalar.last_r == scalar.last_r:  # not NaN
        assert scalar.last_r == view.last_r
    else:
        assert view.last_r != view.last_r
    scalar_set, view_set = scalar.stable_set(), view.stable_set()
    if scalar_set is None:
        assert view_set is None
    else:
        assert view_set is not None
        assert scalar_set.tobytes() == view_set.tobytes()
    assert scalar.events == view.events
    assert len(scalar.observations) == len(view.observations)
    for a, b in zip(scalar.observations, view.observations):
        assert a.interval_index == b.interval_index
        assert a.had_samples == b.had_samples
        assert a.state == b.state
        assert a.event == b.event
        assert a.r_value == b.r_value \
            or (a.r_value != a.r_value and b.r_value != b.r_value)


class TestBankConformance:
    @given(seeds,
           st.integers(min_value=1, max_value=24),
           st.integers(min_value=1, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_random_populations_bit_identical(self, seed, n_detectors,
                                              n_intervals):
        rng = np.random.default_rng(seed)
        bank, scalars, views, sink_s, sink_b = \
            paired_population(n_detectors)
        for interval in range(n_intervals):
            histograms = [random_histogram(rng, s.n_instructions)
                          for s in scalars]
            scalar_events = [scalars[i].observe(histograms[i], interval)
                             for i in range(n_detectors)]
            batch_events = bank.observe_many(
                [(views[i], histograms[i], interval)
                 for i in range(n_detectors)])
            assert scalar_events == batch_events
        for scalar, view in zip(scalars, views):
            assert_rows_identical(scalar, view)
        assert sink_s.events == sink_b.events

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_reset_path(self, seed):
        rng = np.random.default_rng(seed)
        bank, scalars, views, sink_s, sink_b = paired_population(3)
        for interval in range(50):
            if interval == 25:
                scalars[0].reset()
                views[0].reset()
            histograms = [rng.integers(0, 40, size=s.n_instructions)
                          for s in scalars]
            scalar_events = [scalars[i].observe(histograms[i], interval)
                             for i in range(3)]
            batch_events = bank.observe_many(
                [(views[i], histograms[i], interval) for i in range(3)])
            assert scalar_events == batch_events
        for scalar, view in zip(scalars, views):
            assert_rows_identical(scalar, view)
        assert sink_s.events == sink_b.events

    def test_single_item_observe_delegates(self):
        rng = np.random.default_rng(3)
        bank, scalars, views, _, _ = paired_population(1)
        for interval in range(30):
            histogram = rng.integers(0, 30, size=1)
            assert scalars[0].observe(histogram, interval) \
                == views[0].observe(histogram, interval)
        assert_rows_identical(scalars[0], views[0])

    def test_observe_rows_bit_identical_to_scalar(self):
        # The dense fleet fast path must honor every hold the scalar
        # has: zero rows, starved rows, priming, stepping.
        rng = np.random.default_rng(5)
        width = 17
        bus_s, bus_b = EventBus(), EventBus()
        sink_s, sink_b = InMemorySink(), InMemorySink()
        bus_s.attach(sink_s)
        bus_b.attach(sink_b)
        bank = BatchLpdBank()
        scalars = [LocalPhaseDetector(n_instructions=width,
                                      telemetry=bus_s, region_id=i)
                   for i in range(12)]
        views = [bank.add_detector(n_instructions=width, telemetry=bus_b,
                                   region_id=i) for i in range(12)]
        for interval in range(40):
            block = rng.integers(0, 40, size=(12, width)).astype(float)
            block[interval % 12] = 0.0           # zero-sum hold
            block[(interval + 1) % 12] = 0.1     # starved hold
            scalar_events = [scalars[i].observe(block[i], interval)
                             for i in range(12)]
            batch_events = bank.observe_rows(views, block, interval)
            assert scalar_events == batch_events
        for scalar, view in zip(scalars, views):
            assert_rows_identical(scalar, view)
        assert sink_s.events == sink_b.events

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_observe_rows_matches_observe_many(self, seed):
        rng = np.random.default_rng(seed)
        width = 9
        bank_a, bank_b = BatchLpdBank(), BatchLpdBank()
        views_a = [bank_a.add_detector(width) for _ in range(6)]
        views_b = [bank_b.add_detector(width) for _ in range(6)]
        for interval in range(25):
            block = rng.integers(0, 30, size=(6, width)).astype(float)
            events_a = bank_a.observe_many(
                [(views_a[i], block[i], interval) for i in range(6)])
            events_b = bank_b.observe_rows(views_b, block, interval)
            assert events_a == events_b
        for a, b in zip(views_a, views_b):
            assert a.state == b.state
            assert a.last_r == b.last_r
            assert a.stable_intervals == b.stable_intervals
            assert a.stable_set().tobytes() == b.stable_set().tobytes()

    def test_observe_rows_validation(self):
        import pytest

        bank = BatchLpdBank()
        views = [bank.add_detector(4) for _ in range(2)]
        with pytest.raises(ValueError, match="slots"):
            bank.observe_rows(views, np.ones((2, 5)), 0)
        with pytest.raises(ValueError, match="rows"):
            bank.observe_rows(views, np.ones((3, 4)), 0)
        assert bank.observe_rows([], np.empty((0, 0)), 0) == []

    def test_custom_measure_routes_through_scalar_path(self):
        from repro.core.similarity import CosineSimilarity

        rng = np.random.default_rng(11)
        bank = BatchLpdBank()
        scalar = LocalPhaseDetector(n_instructions=8,
                                    measure=CosineSimilarity())
        view = bank.add_detector(n_instructions=8,
                                 measure=CosineSimilarity())
        for interval in range(40):
            histogram = rng.integers(0, 30, size=8)
            assert scalar.observe(histogram, interval) \
                == bank.observe_many([(view, histogram, interval)])[0]
        assert_rows_identical(scalar, view)
