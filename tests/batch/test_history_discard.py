"""``discard_observation_history``: bounded state, unchanged behavior.

The banks' step logs exist only to lazily materialize per-row
observation histories; the serving layer discards them before every
shard snapshot (otherwise snapshot size and cost grow linearly with
worker uptime).  These tests pin the contract: a discard never changes
future stepping or the event feeds, already-materialized observations
survive, and only pre-discard *unmaterialized* history is forfeited.
"""

import numpy as np

from tests.conftest import model_stream

from repro.batch import BatchGpdBank, BatchLpdBank
from repro.batch.session import BatchSession

WIDTH = 16
N_ROWS = 4
BUFFER = 504
INTERVALS = 12
CUT = 5  # discard point, mid-run


def _lpd_blocks():
    rng = np.random.default_rng(3)
    return [rng.integers(1, 50, size=(N_ROWS, WIDTH)).astype(np.float64)
            for _ in range(INTERVALS)]


def _gpd_buffers():
    rng = np.random.default_rng(4)
    return [rng.integers(0x4000_0000, 0x4100_0000, size=(N_ROWS, BUFFER))
            for _ in range(INTERVALS)]


def _lpd_run(discard_at=None, materialize_first=False):
    bank = BatchLpdBank()
    views = bank.add_detectors(WIDTH, N_ROWS)
    group = bank.make_group(views)
    for interval, block in enumerate(_lpd_blocks()):
        if interval == discard_at:
            if materialize_first:
                bank.materialize_observations()
            bank.discard_observation_history()
        bank.observe_grouped(group, block, interval)
    return bank, views


def _gpd_run(discard_at=None, materialize_first=False):
    bank = BatchGpdBank()
    views = bank.add_detectors(N_ROWS)
    group = bank.make_group(views)
    for interval, buffers in enumerate(_gpd_buffers()):
        if interval == discard_at:
            if materialize_first:
                bank.materialize_observations()
            bank.discard_observation_history()
        bank.observe_block(group, buffers)
    return bank, views


class TestSteppingIsUnchanged:
    def test_lpd_events_and_states_match_an_undiscarded_twin(self):
        _, plain = _lpd_run()
        _, discarded = _lpd_run(discard_at=CUT)
        for a, b in zip(plain, discarded):
            assert a.events == b.events
            assert a.state == b.state

    def test_gpd_events_and_states_match_an_undiscarded_twin(self):
        _, plain = _gpd_run()
        _, discarded = _gpd_run(discard_at=CUT)
        for a, b in zip(plain, discarded):
            assert a.events == b.events
            assert a.state == b.state
            assert a.intervals_seen == b.intervals_seen


class TestObservationContract:
    def test_unmaterialized_history_before_the_discard_is_forfeited(self):
        _, views = _gpd_run(discard_at=CUT)
        for view in views:
            observations = view.observations
            assert len(observations) == INTERVALS - CUT
            assert observations[0].interval_index == CUT

    def test_materialized_history_survives_the_discard(self):
        _, views = _gpd_run(discard_at=CUT, materialize_first=True)
        for view in views:
            assert len(view.observations) == INTERVALS
            assert [o.interval_index for o in view.observations] == \
                list(range(INTERVALS))

    def test_lpd_observation_contract(self):
        _, forfeited = _lpd_run(discard_at=CUT)
        _, kept = _lpd_run(discard_at=CUT, materialize_first=True)
        assert all(len(v.observations) == INTERVALS - CUT
                   for v in forfeited)
        assert all(len(v.observations) == INTERVALS for v in kept)

    def test_discard_is_idempotent_and_safe_when_empty(self):
        bank = BatchLpdBank()
        bank.discard_observation_history()
        bank.discard_observation_history()
        assert bank._log == []


def test_session_discard_clears_both_banks():
    model, stream = model_stream("181.mcf")
    session = BatchSession(binary=model.binary, run_gpd=True)
    lane = session.add_lane(name="only")
    lane.feed_many(stream.pcs[:3 * session.buffer_size].astype(np.int64))
    session.process_ready()
    assert session.gpd_bank._log
    session.discard_observation_history()
    assert session.lpd_bank._log == []
    assert session.gpd_bank._log == []
