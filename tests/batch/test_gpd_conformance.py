"""Differential conformance: BatchGpdBank vs the scalar GPD oracle.

Random centroid tracks (tight clusters, wild jumps, NaN gaps), random
buffer sizes (starvation path) and real benchmark streams of unequal
length (the ragged population) advance through both paths; every
observable — states, bands, drift ratios, events, observations, cost
charges and the full telemetry stream — must match exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import run_gpd
from repro.batch.gpd import BatchGpdBank
from repro.batch.run import run_gpd_batch
from repro.core.gpd import GlobalPhaseDetector
from repro.core.thresholds import GpdThresholds
from repro.costs import CostLedger
from repro.errors import ConfigError
from repro.telemetry.bus import EventBus
from repro.telemetry.sinks import InMemorySink
from tests.conftest import model_stream

seeds = st.integers(min_value=0, max_value=10_000)


def random_centroid(rng):
    """NaN gap / wild jump / tight cluster, weighted toward clusters."""
    mode = rng.integers(0, 8)
    if mode == 0:
        return float("nan")
    if mode < 3:
        return float(rng.uniform(0.0, 1e6))
    return 5e5 + float(rng.normal(0.0, 300.0))


def assert_detectors_identical(scalar, view):
    assert scalar.state == view.state
    assert scalar.in_stable_phase == view.in_stable_phase
    assert scalar.intervals_seen == view.intervals_seen
    assert scalar.events == view.events
    assert scalar.stable_interval_count() == view.stable_interval_count()
    assert scalar.stable_time_fraction() == view.stable_time_fraction()
    assert len(scalar.observations) == len(view.observations)
    for a, b in zip(scalar.observations, view.observations):
        assert a.interval_index == b.interval_index
        assert a.centroid_value == b.centroid_value \
            or (a.centroid_value != a.centroid_value
                and b.centroid_value != b.centroid_value)
        assert (a.band is None) == (b.band is None)
        if a.band is not None:
            assert a.band.expectation == b.band.expectation
            assert a.band.sd == b.band.sd
        assert a.drift_ratio == b.drift_ratio
        assert a.state == b.state
        assert a.event == b.event


class TestBankConformance:
    @given(seeds,
           st.integers(min_value=1, max_value=16),
           st.integers(min_value=1, max_value=80))
    @settings(max_examples=15, deadline=None)
    def test_random_centroid_tracks_bit_identical(self, seed, n_detectors,
                                                  n_intervals):
        rng = np.random.default_rng(seed)
        bus_s, bus_b = EventBus(), EventBus()
        sink_s, sink_b = InMemorySink(), InMemorySink()
        bus_s.attach(sink_s)
        bus_b.attach(sink_b)
        thresholds = GpdThresholds()
        bank = BatchGpdBank(dwell_intervals=thresholds.dwell_intervals,
                            history_length=thresholds.history_length)
        scalars = [GlobalPhaseDetector(thresholds, telemetry=bus_s)
                   for _ in range(n_detectors)]
        views = [bank.add_detector(thresholds, telemetry=bus_b)
                 for _ in range(n_detectors)]
        for _ in range(n_intervals):
            values = [random_centroid(rng) for _ in range(n_detectors)]
            scalar_events = [scalars[i].observe_centroid(values[i])
                             for i in range(n_detectors)]
            batch_events = bank.observe_centroids(
                views, np.asarray(values, dtype=np.float64))
            assert scalar_events == batch_events
        for scalar, view in zip(scalars, views):
            assert_detectors_identical(scalar, view)
        assert sink_s.events == sink_b.events

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_buffer_path_with_starvation(self, seed):
        rng = np.random.default_rng(seed)
        thresholds = GpdThresholds()
        bank = BatchGpdBank(dwell_intervals=thresholds.dwell_intervals,
                            history_length=thresholds.history_length)
        scalars = [GlobalPhaseDetector(thresholds) for _ in range(4)]
        views = [bank.add_detector(thresholds) for _ in range(4)]
        for _ in range(40):
            buffers = [rng.integers(0, 1 << 20,
                                    size=int(rng.integers(0, 600)))
                       for _ in range(4)]
            scalar_events = [scalars[i].observe_buffer(buffers[i])
                             for i in range(4)]
            batch_events = bank.observe_buffers(
                list(zip(views, buffers)))
            assert scalar_events == batch_events
        for scalar, view in zip(scalars, views):
            assert_detectors_identical(scalar, view)

    def test_single_detector_delegates(self):
        rng = np.random.default_rng(5)
        thresholds = GpdThresholds()
        bank = BatchGpdBank()
        scalar = GlobalPhaseDetector(thresholds)
        view = bank.add_detector(thresholds)
        for _ in range(60):
            value = random_centroid(rng)
            assert scalar.observe_centroid(value) \
                == view.observe_centroid(value)
        assert_detectors_identical(scalar, view)

    def test_mismatched_machine_config_rejected(self):
        bank = BatchGpdBank(dwell_intervals=2, history_length=8)
        with pytest.raises(ConfigError, match="dwell"):
            bank.add_detector(GpdThresholds(dwell_intervals=5))


class TestRunGpdBatch:
    def test_ragged_real_streams_match_scalar(self):
        # three real streams of different lengths: the longest keeps
        # stepping after the others end
        names = ["181.mcf", "164.gzip", "178.galgel"]
        streams = [model_stream(name, 0.05, 45_000, seed=9 + i)[1]
                   for i, name in enumerate(names)]
        buffer_size = 1016
        batch_ledgers = [CostLedger() for _ in streams]
        views = run_gpd_batch(streams, buffer_size, ledgers=batch_ledgers)
        for stream, view, ledger in zip(streams, views, batch_ledgers):
            scalar_ledger = CostLedger()
            scalar = run_gpd(stream, buffer_size, ledger=scalar_ledger)
            assert_detectors_identical(scalar, view)
            assert scalar_ledger.total_ops == ledger.total_ops

    def test_empty_population(self):
        assert run_gpd_batch([], 1016) == []
