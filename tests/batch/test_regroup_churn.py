"""Churn conformance: the regrouper's cached plans under live mutation.

Hypothesis interleaves detector resets, manual quarantines/releases and
watchdog-driven quarantines (via faulted lanes) between interval rounds
of a :class:`~repro.batch.session.BatchSession`, with every mutation
applied identically to per-lane scalar twins.  Two properties must
survive any interleaving:

* every lane stays bit-identical to its scalar
  :class:`~repro.monitor.online.OnlineSession` twin — events, states,
  stable sets, telemetry;
* the fleet ends re-coalesced: plan rebuilds re-compact the stable-set
  stores, so churn may not leave the session degraded to ragged gathers
  (``FleetRegrouper.coalesced``).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import BatchSession
from repro.errors import RegionError
from repro.faults.inject import inject
from repro.monitor.online import OnlineSession
from repro.monitor.watchdog import WatchdogConfig
from tests.batch.test_session_conformance import (THRESHOLDS,
                                                  assert_lane_matches_scalar,
                                                  lane_streams, traced_bus)
from tests.conftest import drop_plan

N_LANES = 3
CHUNK = THRESHOLDS.buffer_size  # one interval per lane per round
ACTIONS = ("none", "reset", "quarantine", "release")


def _churn(data, monitors):
    """Draw one mutation and apply it to every monitor identically.

    All monitors are twins of the same lane (scalar + batch), so the
    rid chosen from the first is valid — and must behave identically —
    in all of them.
    """
    action = data.draw(st.sampled_from(ACTIONS), label="action")
    if action == "none":
        return
    pick = data.draw(st.integers(min_value=0, max_value=31), label="pick")
    if action == "release":
        pool = [r.rid for r in monitors[0].quarantined_regions()]
    else:
        pool = [r.rid for r in monitors[0].live_regions()]
    if not pool:
        return
    rid = pool[pick % len(pool)]
    outcomes = []
    for monitor in monitors:
        try:
            if action == "reset":
                monitor.reset_detector(rid)
            elif action == "quarantine":
                monitor.quarantine(rid)
            else:
                monitor.release(rid)
            outcomes.append(True)
        except RegionError:
            # e.g. releasing a region whose span was re-formed while it
            # sat in quarantine — legal, but it must fail identically
            # in every twin
            outcomes.append(False)
    assert len(set(outcomes)) == 1, outcomes


class TestChurnedFleet:
    @given(st.data())
    @settings(max_examples=5, deadline=None)
    def test_lanes_match_scalar_twins_and_recoalesce(self, data):
        model, streams = lane_streams(N_LANES)
        plans = [None, drop_plan(0.25, 4.0), None]
        watchdog = WatchdogConfig()
        feeds = [inject(stream, plan, seed=7).pcs if plan else stream.pcs
                 for stream, plan in zip(streams, plans)]
        n_rounds = min(12, min(pcs.size for pcs in feeds) // CHUNK)

        scalar_sessions, scalar_sinks = [], []
        for _ in range(N_LANES):
            bus, sink = traced_bus()
            scalar_sessions.append(
                OnlineSession(binary=model.binary,
                              monitor_thresholds=THRESHOLDS,
                              watchdog=watchdog, telemetry=bus))
            scalar_sinks.append(sink)

        batch = BatchSession(binary=model.binary,
                             monitor_thresholds=THRESHOLDS,
                             watchdog=watchdog)
        lane_sinks = []
        for _ in range(N_LANES):
            bus, sink = traced_bus()
            batch.add_lane(telemetry=bus)
            lane_sinks.append(sink)

        for round_index in range(n_rounds):
            lo, hi = round_index * CHUNK, (round_index + 1) * CHUNK
            padded = np.stack([pcs[lo:hi] for pcs in feeds])
            for scalar, pcs in zip(scalar_sessions, feeds):
                scalar.feed_many(pcs[lo:hi])
            batch.feed(padded)
            # mutate between rounds: the cached plan must either survive
            # (resets) or rebuild (membership changes), never diverge
            lane = data.draw(
                st.integers(min_value=0, max_value=N_LANES - 1),
                label="lane")
            _churn(data, [scalar_sessions[lane].monitor,
                          batch.lanes[lane].monitor])

        for i in range(N_LANES):
            assert_lane_matches_scalar(scalar_sessions[i], batch.lanes[i],
                                       scalar_sinks[i], lane_sinks[i])
        # churn must not leave the fleet on the ragged slow path: the
        # last plan was rebuilt with compaction, so it runs on slices
        assert batch._regrouper.coalesced
        # plans are cached: far fewer rebuilds than rounds stepped
        assert batch._regrouper.rebuilds <= n_rounds
