"""Unit tests for the per-shard ring buffers behind zero-copy ingestion.

The invariant everything else leans on: capacity is a multiple of the
interval size and reads advance a whole interval at a time, so a popped
interval never wraps and :meth:`ShardRing.take_round` can hand out
direct views of ring storage.
"""

import numpy as np
import pytest

from repro.batch import ShardRing


def filled_ring(n_lanes=3, size=4, capacity_intervals=4):
    ring = ShardRing(n_lanes, size, capacity_intervals)
    for lane in range(n_lanes):
        ring.push(lane, np.arange(size) + 100 * lane)
    return ring


class TestValidation:
    def test_interval_size_must_be_positive(self):
        with pytest.raises(ValueError, match="interval size"):
            ShardRing(1, 0)

    def test_capacity_must_hold_an_interval(self):
        with pytest.raises(ValueError, match="at least one interval"):
            ShardRing(1, 4, capacity_intervals=0)

    def test_underfull_interval_pop_raises(self):
        ring = ShardRing(1, 4)
        ring.push(0, np.arange(3))
        with pytest.raises(ValueError,
                           match="holds 3 samples; an interval needs 4"):
            ring.take_interval(0)

    def test_underfull_round_pop_names_the_short_lane(self):
        ring = ShardRing(2, 4)
        ring.push(0, np.arange(4))
        ring.push(1, np.arange(2))
        with pytest.raises(ValueError, match="lane 1 holds 2 samples"):
            ring.take_round(np.array([0, 1]))


class TestQueueing:
    def test_fill_and_ready_accounting(self):
        ring = ShardRing(2, 4)
        assert ring.push(0, np.arange(6)) == 1
        assert ring.fill(0) == 6
        assert ring.pending_intervals(0) == 1
        assert ring.fill(1) == 0
        assert list(ring.ready_lanes()) == [0]

    def test_add_lane_starts_empty(self):
        ring = filled_ring(n_lanes=1)
        lane = ring.add_lane()
        assert lane == 1
        assert ring.n_lanes == 2
        assert ring.fill(lane) == 0
        # the existing lane's queue is untouched
        assert ring.take_interval(0).tolist() == [0, 1, 2, 3]

    def test_popped_interval_is_a_view_and_never_wraps(self):
        ring = filled_ring(n_lanes=1)
        view = ring.take_interval(0)
        assert view.base is ring.data
        assert view.strides == (ring.data.strides[1],)

    def test_wrapping_write_splits_and_pops_read_back_in_order(self):
        ring = ShardRing(1, 4, capacity_intervals=2)  # capacity 8
        ring.push(0, np.arange(8))
        ring.take_interval(0)  # read column advances to 4
        ring.push(0, np.arange(10, 14))  # write wraps: cols 4..7 then 0..3
        assert ring.take_interval(0).tolist() == [4, 5, 6, 7]
        assert ring.take_interval(0).tolist() == [10, 11, 12, 13]

    def test_grow_relinearizes_unread_samples(self):
        ring = ShardRing(2, 4, capacity_intervals=1)  # capacity 4
        ring.push(0, np.arange(4))
        ring.take_interval(0)
        ring.push(0, np.arange(20, 24))  # wrapped: read column 0 again
        ring.push(1, np.arange(30, 34))
        ring.push(0, np.arange(24, 32))  # outgrows: doubles, re-linearizes
        assert ring.capacity == 16
        assert (ring._read == 0).all()
        assert ring.take_interval(0).tolist() == [20, 21, 22, 23]
        assert ring.take_interval(0).tolist() == [24, 25, 26, 27]
        assert ring.take_interval(1).tolist() == [30, 31, 32, 33]


class TestTakeRound:
    def test_empty_round(self):
        ring = filled_ring()
        block = ring.take_round(np.array([], dtype=np.int64))
        assert block.shape == (0, 4)

    def test_contiguous_aligned_round_is_a_direct_view(self):
        ring = filled_ring(n_lanes=3)
        block = ring.take_round(np.arange(3))
        assert block.base is ring.data
        assert block.tolist() == [[0, 1, 2, 3],
                                  [100, 101, 102, 103],
                                  [200, 201, 202, 203]]
        assert ring.fill(0) == 0

    def test_scattered_aligned_round_gathers_once(self):
        ring = filled_ring(n_lanes=3)
        block = ring.take_round(np.array([0, 2]))
        assert block.base is not ring.data
        assert block.tolist() == [[0, 1, 2, 3], [200, 201, 202, 203]]
        assert ring.fill(1) == 4  # untouched lane keeps its queue

    def test_ragged_read_positions_fall_back_to_per_lane_pops(self):
        ring = ShardRing(2, 4, capacity_intervals=4)
        ring.push(0, np.arange(8))
        ring.push(1, np.arange(50, 54))
        ring.take_interval(0)  # lane 0's read column is now ahead
        block = ring.take_round(np.array([0, 1]))
        assert block.tolist() == [[4, 5, 6, 7], [50, 51, 52, 53]]

    def test_round_matches_per_lane_interval_pops(self):
        rng = np.random.default_rng(3)
        a, b = ShardRing(4, 6), ShardRing(4, 6)
        for lane in range(4):
            samples = rng.integers(0, 1000, size=18)
            a.push(lane, samples)
            b.push(lane, samples)
        for _ in range(3):
            lanes = a.ready_lanes()
            block = a.take_round(lanes)
            singles = [b.take_interval(int(lane)) for lane in lanes]
            assert block.tolist() == [s.tolist() for s in singles]
