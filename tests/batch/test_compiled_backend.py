"""Backend selection for the compiled kernels, and its guarantees.

The selector in :mod:`repro.batch.compiled` must (a) always produce a
working backend, (b) honour ``REPRO_NO_JIT``, and (c) refuse a JIT
backend that is not bit-identical to the NumPy reference — the probe is
the load-bearing piece, so it is exercised directly with a deliberately
wrong twin as well as with the honest one.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.batch import compiled
from repro.batch.compiled import numpy_backend


class TestSelection:
    def test_backend_and_reason_are_coherent(self):
        name = compiled.kernel_backend()
        reason = compiled.selection_reason()
        assert name in ("numpy", "numba")
        if name == "numba":
            assert "bit-identical" in reason
        else:
            assert any(key in reason for key in
                       (compiled.ENV_FLAG, "not installed", "probe"))

    def test_bound_kernels_come_from_the_selected_backend(self):
        assert compiled.pearson_core.__module__.endswith(
            f"{compiled.kernel_backend()}_backend")

    def test_env_flag_forces_the_fallback(self):
        # a subprocess, because selection is pinned at import time
        code = (
            "from repro.batch import compiled;"
            "assert compiled.kernel_backend() == 'numpy',"
            " compiled.kernel_backend();"
            "assert compiled.ENV_FLAG in compiled.selection_reason(),"
            " compiled.selection_reason()")
        result = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": "src", "REPRO_NO_JIT": "1"},
            capture_output=True, text=True)
        assert result.returncode == 0, result.stderr


class TestProbe:
    def test_reference_backend_passes_its_own_probe(self):
        assert compiled._probe_matches(numpy_backend, numpy_backend)

    def test_one_ulp_pearson_drift_is_rejected(self):
        # the smallest possible float deviation — anything np.allclose
        # would wave through — must still fail the bitwise probe
        class OffByOneUlp:
            def __getattr__(self, name):
                return getattr(numpy_backend, name)

            @staticmethod
            def pearson_core(stable, current):
                r, defined = numpy_backend.pearson_core(stable, current)
                r = np.where(defined, np.nextafter(r, np.inf), r)
                return r, defined

        assert not compiled._probe_matches(OffByOneUlp(), numpy_backend)

    def test_wrong_integer_kernel_is_rejected(self):
        class WrongTables:
            def __getattr__(self, name):
                return getattr(numpy_backend, name)

            @staticmethod
            def gpd_classify(ratio, thin, banded, th1, th2, th3, th4,
                             no_band_input):
                out = numpy_backend.gpd_classify(
                    ratio, thin, banded, th1, th2, th3, th4, no_band_input)
                out[0] += 1
                return out

        assert not compiled._probe_matches(WrongTables(), numpy_backend)

    def test_crashing_candidate_falls_back_instead_of_raising(
            self, monkeypatch):
        # a JIT module whose every kernel explodes (a miscompiled or
        # ABI-broken extension) must yield the reference, not an error
        import types

        def _boom(*args, **kwargs):
            raise RuntimeError("miscompiled")

        fake = types.ModuleType("repro.batch.compiled.numba_backend")
        fake.__getattr__ = lambda name: _boom
        monkeypatch.setitem(
            sys.modules, "repro.batch.compiled.numba_backend", fake)
        monkeypatch.setattr(compiled, "numba_backend", fake, raising=False)
        monkeypatch.delenv(compiled.ENV_FLAG, raising=False)
        backend, reason = compiled._select()
        assert backend is numpy_backend
        assert reason.startswith("probe failed")


class TestCachedKernel:
    def test_pearson_cached_matches_pearson_core(self):
        rng = np.random.default_rng(11)
        for n in (2, 8, 64, 504):
            x = np.floor(rng.uniform(0.0, 50.0, size=(5, n)))
            y = np.floor(rng.uniform(0.0, 50.0, size=(5, n)))
            x[0, :] = 7.0  # one degenerate row
            r_ref, defined_ref = compiled.pearson_core(x, y)
            r, defined, sum_y, sum_y2 = compiled.pearson_cached(
                x, y, x.sum(axis=1), (x * x).sum(axis=1))
            assert r.tobytes() == r_ref.tobytes()
            assert defined.tobytes() == defined_ref.tobytes()
            assert sum_y.tobytes() == y.sum(axis=1).tobytes()
            assert sum_y2.tobytes() == (y * y).sum(axis=1).tobytes()


class TestNumbaParity:
    """Direct parity checks, skipped where numba is absent."""

    def test_numba_backend_passes_the_probe(self):
        pytest.importorskip("numba")
        from repro.batch.compiled import numba_backend
        assert compiled._probe_matches(numba_backend, numpy_backend)
