"""The experiment layer's backend dispatch and cache equivalence classes.

``backend="batch"`` must produce the same results as the scalar path
*and* share its cache entries — the conformance suite next door proves
the bit-equality that justifies mapping both backends to one key class.
An unknown backend must fail loudly before any cache traffic.
"""

import pytest

from repro.batch.lpd import BatchLpdBank
from repro.batch.run import batch_monitor, process_stream_batch
from repro.core import MonitorThresholds
from repro.errors import ConfigError
from repro.experiments.base import (benchmark_for, gpd_run, monitored_run,
                                    stream_for)
from repro.experiments.cache import GLOBAL_CACHE, cache_disabled
from repro.experiments.config import ExperimentConfig
from repro.monitor import RegionMonitor

# an unusual configuration so these keys collide with no other test's
CONFIG = ExperimentConfig(scale=0.04, seed=23)
PERIOD = 30_000


class TestBackendDispatch:
    def test_unknown_backend_rejected(self):
        model = benchmark_for("181.mcf", CONFIG)
        with pytest.raises(ConfigError, match="unknown backend"):
            gpd_run(model, PERIOD, CONFIG, backend="simd")
        with pytest.raises(ConfigError, match="unknown backend"):
            monitored_run(model, PERIOD, CONFIG, backend="simd")

    def test_gpd_backends_share_one_cache_entry(self):
        model = benchmark_for("181.mcf", CONFIG)
        scalar = gpd_run(model, PERIOD, CONFIG, backend="scalar")
        batch = gpd_run(model, PERIOD, CONFIG, backend="batch")
        # bit-identical backends map to the same key: the batch request
        # must return the cached scalar artifact itself
        assert batch is scalar

    def test_monitor_backends_share_one_cache_entry(self):
        model = benchmark_for("181.mcf", CONFIG)
        scalar = monitored_run(model, PERIOD, CONFIG, backend="scalar")
        batch = monitored_run(model, PERIOD, CONFIG, backend="batch")
        assert batch is scalar

    def test_gpd_batch_compute_matches_scalar(self):
        model = benchmark_for("181.mcf", CONFIG)
        with cache_disabled():
            scalar = gpd_run(model, PERIOD, CONFIG, backend="scalar")
            batch = gpd_run(model, PERIOD, CONFIG, backend="batch")
        assert batch is not scalar
        assert batch.state == scalar.state
        assert batch.events == scalar.events
        assert batch.stable_interval_count() == scalar.stable_interval_count()
        assert batch.intervals_seen == scalar.intervals_seen

    def test_monitor_batch_compute_matches_scalar(self):
        model = benchmark_for("181.mcf", CONFIG)
        with cache_disabled():
            scalar = monitored_run(model, PERIOD, CONFIG, backend="scalar")
            batch = monitored_run(model, PERIOD, CONFIG, backend="batch")
        assert batch is not scalar
        assert batch.phase_change_counts() == scalar.phase_change_counts()
        assert batch.stable_time_fractions() == scalar.stable_time_fractions()
        assert len(batch.reports) == len(scalar.reports)
        for a, b in zip(scalar.reports, batch.reports):
            assert a.events == b.events
            assert a.region_samples == b.region_samples
            assert a.ucr_fraction == b.ucr_fraction

    def test_cache_stats_reflect_shared_entries(self):
        config = ExperimentConfig(scale=0.04, seed=29)
        model = benchmark_for("164.gzip", config)
        before = GLOBAL_CACHE.stats()
        gpd_run(model, PERIOD, config, backend="batch")
        gpd_run(model, PERIOD, config, backend="scalar")
        after = GLOBAL_CACHE.stats()
        # first call misses (stream + detector), second hits the entry
        # the batch backend populated
        assert after.hits >= before.hits + 1


class TestProcessStreamBatch:
    def test_multi_stream_monitors_match_scalar(self):
        config = ExperimentConfig(scale=0.05, seed=7)
        model = benchmark_for("176.gcc", config)
        thresholds = MonitorThresholds(buffer_size=config.buffer_size)
        streams = [stream_for(model, period, config)
                   for period in (30_000, 60_000)]

        bank = BatchLpdBank()
        pairs = [(batch_monitor(model.binary, bank, thresholds), stream)
                 for stream in streams]
        reports = process_stream_batch(pairs, bank)

        for (monitor, stream), batch_reports in zip(pairs, reports):
            scalar = RegionMonitor(model.binary, thresholds)
            scalar_reports = scalar.process_stream(stream)
            assert len(scalar_reports) == len(batch_reports)
            for a, b in zip(scalar_reports, batch_reports):
                assert a.events == b.events
                assert a.region_samples == b.region_samples
                assert a.ucr_fraction == b.ucr_fraction
            assert scalar.phase_change_counts() \
                == monitor.phase_change_counts()
            assert scalar.stable_time_fractions() \
                == monitor.stable_time_fractions()
