"""Bit-equality of the row-wise kernels against their scalar twins.

The batch backend's whole contract is "same bits, fewer Python calls";
these tests pin the leaf kernels directly (the end-to-end pipelines are
covered by the conformance modules next door).  Every comparison is exact
(``==`` / ``tobytes``), never approximate — ``pytest.approx`` here would
hide exactly the drift the contract forbids.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.kernels import (batched_band_stats, batched_centroid,
                                 batched_pearson)
from repro.batch.tables import compile_machine
from repro.core.centroid import CentroidHistory, centroid
from repro.core.correlation import pearson_r
from repro.core.states import (MachineSpec, TransitionRule,
                               gpd_machine_spec, lpd_machine_spec)
from repro.errors import ConfigError

finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


class TestBatchedPearson:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_bitwise(self, seed, width, rows):
        rng = np.random.default_rng(seed)
        stable = rng.integers(0, 50, size=(rows, width)).astype(np.float64)
        current = rng.integers(0, 50, size=(rows, width)).astype(np.float64)
        # force some degenerate rows (flat on one or both sides)
        if rows >= 2:
            stable[0] = 3.0
            current[-1] = 0.0
        batched = batched_pearson(stable, current)
        for i in range(rows):
            scalar = pearson_r(stable[i], current[i])
            assert batched[i] == scalar, (i, stable[i], current[i])

    def test_both_flat_resolves_to_one(self):
        stable = np.full((3, 5), 2.0)
        current = np.full((3, 5), 7.0)
        assert batched_pearson(stable, current).tolist() == [1.0, 1.0, 1.0]

    def test_one_flat_resolves_to_zero(self):
        stable = np.full((1, 5), 2.0)
        current = np.arange(5, dtype=np.float64).reshape(1, 5)
        assert batched_pearson(stable, current).tolist() == [0.0]
        assert pearson_r(stable[0], current[0]) == 0.0

    def test_width_one_uses_degenerate_path(self):
        stable = np.array([[4.0], [1.0]])
        current = np.array([[4.0], [2.0]])
        batched = batched_pearson(stable, current)
        for i in range(2):
            assert batched[i] == pearson_r(stable[i], current[i])

    def test_near_flat_tolerance_matches_allclose(self):
        # values inside np.allclose tolerance of flat must resolve the
        # same way the scalar's allclose check does
        base = 1.0e6
        stable = np.array([[base, base * (1 + 1e-6), base]])
        current = np.array([[base, base, base]])
        assert batched_pearson(stable, current)[0] \
            == pearson_r(stable[0], current[0])

    def test_nonfinite_rows_fall_back_to_scalar(self):
        stable = np.array([[1.0, np.inf, 2.0], [1.0, 2.0, 3.0]])
        current = np.array([[1.0, 1.0, 1.0], [3.0, 2.0, 1.0]])
        batched = batched_pearson(stable, current)
        for i in range(2):
            assert batched[i] == pearson_r(stable[i], current[i])


class TestBatchedCentroid:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=600),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_matches_scalar_bitwise(self, seed, width, rows):
        rng = np.random.default_rng(seed)
        pcs = rng.integers(0, 2**40, size=(rows, width))
        batched = batched_centroid(pcs)
        for i in range(rows):
            assert batched[i] == centroid(pcs[i])


class TestBatchedBandStats:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=2, max_value=8),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_matches_centroid_history_band(self, seed, fill, rows):
        rng = np.random.default_rng(seed)
        values = rng.uniform(1.0, 1e9, size=(rows, fill))
        expectation, sd = batched_band_stats(values)
        for i in range(rows):
            history = CentroidHistory(length=fill)
            history.extend(values[i])
            band = history.band()
            assert expectation[i] == band.expectation
            assert sd[i] == band.sd


class TestCompiledMachine:
    @pytest.mark.parametrize("spec", [lpd_machine_spec(),
                                      gpd_machine_spec(2),
                                      gpd_machine_spec(5)],
                             ids=["lpd", "gpd-dwell2", "gpd-dwell5"])
    def test_tables_replicate_spec(self, spec):
        machine = compile_machine(spec)
        table = spec.table()
        for state in spec.states:
            for input_class in spec.inputs:
                rule = table[(state, input_class)]
                row = machine.state_index[state]
                col = machine.input_index[input_class]
                nxt = machine.next_state[row, col]
                assert spec.states[nxt] == rule.next_state
                assert machine.phase_change[row, col] == rule.phase_change
                assert machine.updates_stable_set[row, col] \
                    == rule.updates_stable_set
            assert machine.stable[machine.state_index[state]] \
                == spec.is_stable(state)
            assert machine.phase_states[machine.state_index[state]] \
                == spec.phase_state(state)
        assert spec.states[machine.initial] == spec.initial

    def test_tables_are_frozen(self):
        machine = compile_machine(lpd_machine_spec())
        with pytest.raises(ValueError):
            machine.next_state[0, 0] = 0

    def test_incomplete_spec_rejected(self):
        spec = MachineSpec(
            name="holey",
            states=("a", "b"),
            inputs=("x", "y"),
            initial="a",
            stable_states=frozenset(("b",)),
            rules=(TransitionRule(state="a", input="x", next_state="b"),),
        )
        with pytest.raises(ConfigError, match="no rule"):
            compile_machine(spec)
