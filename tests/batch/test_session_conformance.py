"""Differential conformance: BatchSession lanes vs scalar OnlineSession.

Each lane of a BatchSession must be indistinguishable from a standalone
OnlineSession fed the same samples — reports, region/detector state,
watchdog verdicts, GPD trajectory and the complete per-lane telemetry
stream — regardless of how many other lanes advance beside it, which
fault plans degrade them, or how raggedly the padded feed arrives.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import BatchSession
from repro.core.thresholds import MonitorThresholds
from repro.errors import SamplingError
from repro.faults.inject import inject
from repro.monitor.online import OnlineSession
from repro.monitor.watchdog import WatchdogConfig
from repro.telemetry.bus import EventBus
from repro.telemetry.sinks import InMemorySink
from tests.conftest import drop_plan, model_stream

THRESHOLDS = MonitorThresholds(buffer_size=504)


def traced_bus():
    bus, sink = EventBus(), InMemorySink()
    bus.attach(sink)
    return bus, sink


def lane_streams(n_lanes, name="181.mcf", period=25_000):
    model, _ = model_stream(name, 0.05, period)
    from repro.sampling import simulate_sampling
    streams = [simulate_sampling(model.regions, model.workload, period,
                                 seed=11 + i) for i in range(n_lanes)]
    return model, streams


def assert_lane_matches_scalar(scalar, lane, scalar_sink, lane_sink):
    assert scalar.stats.intervals == lane.stats.intervals
    assert scalar.stats.samples == lane.stats.samples
    assert scalar.stats.global_events == lane.stats.global_events
    assert scalar.stats.local_events == lane.stats.local_events
    assert len(scalar.reports) == len(lane.reports)
    for a, b in zip(scalar.reports, lane.reports):
        assert a.interval_index == b.interval_index
        assert a.ucr_fraction == b.ucr_fraction
        assert a.events == b.events
        assert a.region_samples == b.region_samples
        assert a.pruned == b.pruned
    assert scalar.watchdog_events == lane.watchdog_events
    if scalar.monitor is not None:
        scalar_monitor, lane_monitor = scalar.monitor, lane.monitor
        rids = {region.rid for region in scalar_monitor.all_regions()}
        assert rids == {region.rid for region in lane_monitor.all_regions()}
        for rid in rids:
            a, b = scalar_monitor.detector(rid), lane_monitor.detector(rid)
            assert a.state == b.state
            assert a.active_intervals == b.active_intervals
            assert a.stable_intervals == b.stable_intervals
            assert a.events == b.events
            a_set, b_set = a.stable_set(), b.stable_set()
            assert (a_set is None) == (b_set is None)
            if a_set is not None:
                assert a_set.tobytes() == b_set.tobytes()
        assert scalar_monitor.phase_change_counts() \
            == lane_monitor.phase_change_counts()
        assert scalar_monitor.stable_time_fractions() \
            == lane_monitor.stable_time_fractions()
    if scalar.gpd is not None:
        assert scalar.gpd.state == lane.gpd.state
        assert scalar.gpd.events == lane.gpd.events
        assert scalar.gpd.stable_interval_count() \
            == lane.gpd.stable_interval_count()
    assert scalar_sink.events == lane_sink.events
    assert scalar.summary() == lane.summary()


class TestMultiLaneFleet:
    def test_faulted_watchdogged_fleet_matches_scalar_twins(self):
        model, streams = lane_streams(4)
        plans = [None, drop_plan(0.2, 4.0), None, drop_plan(0.1, 2.0)]
        watchdog = WatchdogConfig()

        scalar_sessions, scalar_sinks = [], []
        for stream, plan in zip(streams, plans):
            bus, sink = traced_bus()
            session = OnlineSession(binary=model.binary,
                                    monitor_thresholds=THRESHOLDS,
                                    watchdog=watchdog, telemetry=bus)
            faulted = inject(stream, plan, seed=7) if plan else stream
            session.feed_stream(faulted)
            scalar_sessions.append(session)
            scalar_sinks.append(sink)

        batch = BatchSession(binary=model.binary,
                             monitor_thresholds=THRESHOLDS,
                             watchdog=watchdog)
        lane_sinks = []
        for stream, plan in zip(streams, plans):
            bus, sink = traced_bus()
            batch.add_lane(stream=stream, plan=plan, seed=7, telemetry=bus)
            lane_sinks.append(sink)
        batch.run()

        for scalar, lane, s_sink, l_sink in zip(
                scalar_sessions, batch.lanes, scalar_sinks, lane_sinks):
            assert_lane_matches_scalar(scalar, lane, s_sink, l_sink)

    def test_gpd_only_lanes(self):
        _, streams = lane_streams(1)
        scalar_bus, scalar_sink = traced_bus()
        scalar = OnlineSession(binary=None, run_gpd=True,
                               monitor_thresholds=THRESHOLDS,
                               telemetry=scalar_bus)
        scalar.feed_stream(streams[0])

        lane_bus, lane_sink = traced_bus()
        batch = BatchSession(binary=None, run_gpd=True,
                             monitor_thresholds=THRESHOLDS)
        lane = batch.add_lane(stream=streams[0], telemetry=lane_bus)
        batch.run()
        assert_lane_matches_scalar(scalar, lane, scalar_sink, lane_sink)


class TestRaggedPaddedFeed:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None)
    def test_random_rates_match_scalar(self, seed):
        model, streams = lane_streams(3)
        rng = np.random.default_rng(seed)

        scalar_sessions, scalar_sinks = [], []
        for _ in range(3):
            bus, sink = traced_bus()
            scalar_sessions.append(
                OnlineSession(binary=model.binary,
                              monitor_thresholds=THRESHOLDS, telemetry=bus))
            scalar_sinks.append(sink)

        batch = BatchSession(binary=model.binary,
                             monitor_thresholds=THRESHOLDS)
        lane_sinks = []
        for _ in range(3):
            bus, sink = traced_bus()
            batch.add_lane(telemetry=bus)
            lane_sinks.append(sink)

        chunk = 700
        offsets = [0, 0, 0]
        for _ in range(20):
            padded = np.zeros((3, chunk), dtype=np.int64)
            lengths = []
            for i in range(3):
                take = chunk if i == 0 else int(rng.integers(0, chunk + 1))
                take = min(take, streams[i].pcs.size - offsets[i])
                padded[i, :take] = streams[i].pcs[offsets[i]:
                                                  offsets[i] + take]
                if take:
                    scalar_sessions[i].feed_many(
                        streams[i].pcs[offsets[i]:offsets[i] + take])
                offsets[i] += take
                lengths.append(take)
            batch.feed(padded, lengths)

        for i in range(3):
            assert_lane_matches_scalar(scalar_sessions[i], batch.lanes[i],
                                       scalar_sinks[i], lane_sinks[i])


class TestValidation:
    def test_needs_monitor_or_gpd(self):
        with pytest.raises(ValueError, match="binary"):
            BatchSession(binary=None, run_gpd=False)

    def test_feed_many_error_messages_match_scalar(self):
        model, _ = lane_streams(0)
        scalar = OnlineSession(binary=model.binary)
        batch = BatchSession(binary=model.binary)
        lane = batch.add_lane()
        bad_batches = [np.zeros((2, 2), dtype=np.int64),
                       np.array([], dtype=np.int64),
                       np.array([1.5, 2.5])]
        for bad in bad_batches:
            with pytest.raises(SamplingError) as scalar_error:
                scalar.feed_many(bad)
            with pytest.raises(SamplingError) as lane_error:
                lane.feed_many(bad)
            assert str(scalar_error.value) == str(lane_error.value)

    def test_feed_shape_validated(self):
        model, _ = lane_streams(0)
        batch = BatchSession(binary=model.binary)
        batch.add_lane()
        with pytest.raises(SamplingError):
            batch.feed(np.zeros(5, dtype=np.int64))
