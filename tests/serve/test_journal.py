"""Journal semantics: ordering, replay windows, truncation."""

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve.journal import ShardJournal


def test_appends_record_batches_in_order():
    journal = ShardJournal(shard_id=0)
    journal.append(0, "a", 0, np.arange(3))
    journal.append(1, "b", 0, np.arange(2))
    journal.append(3, "a", 1, np.arange(4))  # gaps are fine, regressions not
    assert len(journal) == 3
    assert journal.max_seq == 3


def test_non_increasing_sequence_is_rejected():
    journal = ShardJournal(shard_id=0)
    journal.append(5, "a", 0, np.arange(3))
    with pytest.raises(ServeError, match="must increase"):
        journal.append(5, "a", 1, np.arange(3))
    with pytest.raises(ServeError, match="must increase"):
        journal.append(4, "a", 1, np.arange(3))


def test_samples_are_copied_on_append():
    journal = ShardJournal(shard_id=0)
    samples = np.arange(4, dtype=np.int64)
    entry = journal.append(0, "a", 0, samples)
    samples[0] = 999  # caller mutation must not rewrite history
    assert entry.samples[0] == 0


def test_entries_after_is_the_replay_suffix():
    journal = ShardJournal(shard_id=0)
    for seq in range(6):
        journal.append(seq, "a", seq, np.arange(2))
    assert [e.seq for e in journal.entries_after(2)] == [3, 4, 5]
    assert [e.seq for e in journal.entries_after(-1)] == [0, 1, 2, 3, 4, 5]
    assert journal.entries_after(5) == []


def test_truncation_drops_only_the_covered_prefix():
    journal = ShardJournal(shard_id=0)
    for seq in range(6):
        journal.append(seq, "a", seq, np.arange(2))
    assert journal.truncate_through(3) == 4
    assert [e.seq for e in journal.entries_after(-1)] == [4, 5]
    assert journal.truncate_through(3) == 0  # idempotent
    assert journal.max_seq == 5
