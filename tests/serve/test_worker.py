"""In-process ShardWorker: delivery discipline, snapshots, restore."""

import numpy as np
import pytest

from tests.conftest import model_stream

from repro.errors import SnapshotError
from repro.faults.service import ServiceFaultPlan, TornSnapshot, WorkerCrash
from repro.serve import ServeConfig, ShardWorker
from repro.serve.messages import Batch
from repro.serve.snapshot import SnapshotStore, read_snapshot

N_BATCHES = 6
BATCH_INTERVALS = 2


@pytest.fixture
def setup(tmp_path):
    model, stream = model_stream("181.mcf")
    config = ServeConfig(binary=model.binary, n_shards=1,
                         snapshot_every=2)
    streams = ("alpha", "beta")
    budget = N_BATCHES * BATCH_INTERVALS * 2032
    chunks = [np.asarray(c, dtype=np.int64) for c in
              np.array_split(stream.pcs[:budget], N_BATCHES)]
    batches = []
    for i, chunk in enumerate(chunks):
        batches.append(Batch(seq=2 * i, stream="alpha", stream_seq=i,
                             samples=chunk))
        batches.append(Batch(seq=2 * i + 1, stream="beta", stream_seq=i,
                             samples=chunk))
    return config, streams, batches


def make_worker(tmp_path, config, streams, faults=None, subdir="snaps"):
    store = SnapshotStore(tmp_path / subdir, shard_id=0,
                          keep=config.snapshot_keep)
    return ShardWorker(0, streams, config, store, faults)


class TestDeliveryDiscipline:
    def test_in_order_batches_apply_immediately(self, tmp_path, setup):
        config, streams, batches = setup
        worker = make_worker(tmp_path, config, streams)
        for message in batches:
            ack = worker.handle_batch(message)
            assert ack.seq == message.seq
            assert [a.stream_seq for a in ack.applied] == \
                [message.stream_seq]
        assert worker.seen_through == batches[-1].seq
        assert worker.stream_seqs == {"alpha": N_BATCHES,
                                      "beta": N_BATCHES}

    def test_duplicates_are_acked_but_not_reapplied(self, tmp_path, setup):
        config, streams, batches = setup
        worker = make_worker(tmp_path, config, streams)
        first = worker.handle_batch(batches[0])
        again = worker.handle_batch(batches[0])
        assert len(first.applied) == 1
        assert again.applied == ()
        assert worker.stream_seqs["alpha"] == 1

    def test_early_arrivals_are_stashed_then_drained(self, tmp_path, setup):
        config, streams, batches = setup
        worker = make_worker(tmp_path, config, streams)
        alpha = [m for m in batches if m.stream == "alpha"][:3]
        # Deliver 2, 1, 0: nothing applies until the gap at 0 fills.
        assert worker.handle_batch(alpha[2]).applied == ()
        assert worker.handle_batch(alpha[1]).applied == ()
        final = worker.handle_batch(alpha[0])
        assert [a.stream_seq for a in final.applied] == [0, 1, 2]
        assert worker.stash.get("alpha", {}) == {}

    def test_reordered_run_matches_in_order_run(self, tmp_path, setup):
        config, streams, batches = setup

        def per_stream_events(worker, deliveries):
            events = {stream: [] for stream in streams}
            for message in deliveries:
                for applied in worker.handle_batch(message).applied:
                    events[applied.stream].extend(applied.events)
            return events

        ordered = make_worker(tmp_path, config, streams, subdir="a")
        shuffled = make_worker(tmp_path, config, streams, subdir="b")
        permuted = batches[::2][::-1] + batches[1::2]
        assert per_stream_events(ordered, batches) == \
            per_stream_events(shuffled, permuted)


class TestSnapshotRestore:
    def test_restore_resumes_bit_identically(self, tmp_path, setup):
        config, streams, batches = setup
        half = len(batches) // 2
        reference = make_worker(tmp_path, config, streams, subdir="ref")
        reference_acks = [reference.handle_batch(m) for m in batches]

        crashed = make_worker(tmp_path, config, streams, subdir="crashed")
        for message in batches[:half]:
            crashed.handle_batch(message)
        crashed.take_snapshot()
        del crashed

        revived = make_worker(tmp_path, config, streams, subdir="crashed")
        assert revived.restored_seq == batches[half - 1].seq
        revived_acks = [revived.handle_batch(m) for m in batches[half:]]
        assert revived_acks == reference_acks[half:]

    def test_restore_replays_overlap_without_double_apply(self, tmp_path,
                                                          setup):
        config, streams, batches = setup
        worker = make_worker(tmp_path, config, streams)
        for message in batches[:4]:
            worker.handle_batch(message)
        worker.take_snapshot()
        for message in batches[4:]:
            worker.handle_batch(message)
        reference_seqs = dict(worker.stream_seqs)
        del worker

        revived = make_worker(tmp_path, config, streams)
        # A stale in-flight overlap: replay everything from genesis.
        replay_acks = [revived.handle_batch(m) for m in batches]
        assert all(a.applied == () for a in replay_acks[:4])
        assert revived.stream_seqs == reference_seqs

    def test_snapshot_carries_the_stash(self, tmp_path, setup):
        config, streams, batches = setup
        worker = make_worker(tmp_path, config, streams)
        alpha = [m for m in batches if m.stream == "alpha"]
        worker.handle_batch(alpha[0])
        worker.handle_batch(alpha[2])  # parked: waits for stream_seq 1
        worker.take_snapshot()
        del worker

        revived = make_worker(tmp_path, config, streams)
        ack = revived.handle_batch(alpha[1])
        assert [a.stream_seq for a in ack.applied] == [1, 2]

    def test_lane_topology_mismatch_forces_genesis(self, tmp_path, setup):
        config, streams, batches = setup
        worker = make_worker(tmp_path, config, streams)
        worker.handle_batch(batches[0])
        worker.take_snapshot()
        store = worker.store
        del worker

        regrown = ShardWorker(0, ("alpha", "beta", "gamma"), config, store)
        assert regrown.restored_seq == -1

    def test_periodic_snapshot_cadence(self, tmp_path, setup):
        config, streams, batches = setup
        worker = make_worker(tmp_path, config, streams)
        assert not worker.snapshot_due
        worker.handle_batch(batches[0])
        assert not worker.snapshot_due
        worker.handle_batch(batches[1])
        assert worker.snapshot_due  # snapshot_every=2
        worker.take_snapshot()
        assert not worker.snapshot_due

    def test_snapshot_discards_the_observation_step_logs(self, tmp_path,
                                                         setup):
        # The banks' lazy observation logs grow with every interval;
        # snapshotting must shed them or snapshot size and cost scale
        # with worker uptime instead of fleet state.
        config, streams, batches = setup
        worker = make_worker(tmp_path, config, streams)
        for message in batches[:4]:
            worker.handle_batch(message)
        assert worker.session.gpd_bank._log
        worker.take_snapshot()
        assert worker.session.gpd_bank._log == []
        assert worker.session.lpd_bank._log == []


class TestInjectedFaults:
    def test_torn_snapshot_leaves_a_detectable_wreck(self, tmp_path, setup):
        config, streams, batches = setup
        plan = ServiceFaultPlan((TornSnapshot(shard=0, at_seq=0,
                                              truncate=0.5),))
        worker = make_worker(tmp_path, config, streams, faults=plan)
        worker.handle_batch(batches[0])
        with pytest.raises(SnapshotError, match="torn"):
            worker.take_snapshot()
        torn_path = worker.store.path_for(worker.seen_through)
        assert torn_path.exists()
        with pytest.raises(SnapshotError):
            read_snapshot(torn_path)
        # Recovery falls past the wreck to genesis.
        revived = make_worker(tmp_path, config, streams)
        assert revived.restored_seq == -1

    def test_torn_spec_on_another_shard_is_inert(self, tmp_path, setup):
        config, streams, batches = setup
        plan = ServiceFaultPlan((TornSnapshot(shard=3, at_seq=0),))
        worker = make_worker(tmp_path, config, streams, faults=plan)
        worker.handle_batch(batches[0])
        worker.handle_batch(batches[1])
        written = worker.take_snapshot()
        assert written.seq == worker.seen_through

    def test_crash_spec_lookup_keys_on_sequence(self, tmp_path, setup):
        config, streams, _ = setup
        plan = ServiceFaultPlan((WorkerCrash(shard=0, at_seq=7),
                                 WorkerCrash(shard=1, at_seq=3)))
        worker = make_worker(tmp_path, config, streams, faults=plan)
        assert worker.crash_spec_for(7) is not None
        assert worker.crash_spec_for(3) is None  # other shard's fault
        assert worker.crash_spec_for(8) is None
