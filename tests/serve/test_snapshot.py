"""Snapshot codec and store: envelope integrity, retention, fallback."""

from dataclasses import dataclass

import pytest

from repro.errors import SnapshotError
from repro.serve.snapshot import (SNAPSHOT_FIELDS, SNAPSHOT_MAGIC,
                                  SNAPSHOT_VERSION, ShardSnapshot,
                                  SnapshotStore, decode_snapshot,
                                  encode_snapshot, read_snapshot,
                                  write_snapshot)


def make_snapshot(shard_id=0, applied_through=10, payload="state"):
    """A structurally complete snapshot with a lightweight session."""
    return ShardSnapshot(
        shard_id=shard_id,
        applied_through=applied_through,
        stream_seqs={"s0": 3, "s1": 1},
        stash={"s1": {2: payload}},
        event_cursors={"s0": (1, 2, 0), "s1": (0, 0, 0)},
        lane_names=("s0", "s1"),
        session={"detector": payload})


class TestCodec:
    def test_round_trip_preserves_every_field(self):
        snapshot = make_snapshot()
        restored = decode_snapshot(encode_snapshot(snapshot))
        for name in SNAPSHOT_FIELDS:
            assert getattr(restored, name) == getattr(snapshot, name)

    def test_envelope_starts_with_magic_and_version(self):
        blob = encode_snapshot(make_snapshot())
        assert blob.startswith(SNAPSHOT_MAGIC)
        assert int.from_bytes(
            blob[len(SNAPSHOT_MAGIC):len(SNAPSHOT_MAGIC) + 4],
            "little") == SNAPSHOT_VERSION

    def test_bad_magic_is_rejected(self):
        blob = encode_snapshot(make_snapshot())
        with pytest.raises(SnapshotError, match="magic"):
            decode_snapshot(b"NOTASNAP" + blob[len(SNAPSHOT_MAGIC):])

    def test_unknown_version_is_rejected(self):
        blob = bytearray(encode_snapshot(make_snapshot()))
        blob[len(SNAPSHOT_MAGIC)] ^= 0xFF
        with pytest.raises(SnapshotError, match="version"):
            decode_snapshot(bytes(blob))

    @pytest.mark.parametrize("fraction", [0.0, 0.3, 0.7, 0.999])
    def test_any_truncation_is_detected(self, fraction):
        blob = encode_snapshot(make_snapshot())
        torn = blob[:int(len(blob) * fraction)]
        with pytest.raises(SnapshotError):
            decode_snapshot(torn)

    def test_payload_corruption_fails_the_crc(self):
        blob = bytearray(encode_snapshot(make_snapshot()))
        blob[-1] ^= 0x01
        with pytest.raises(SnapshotError, match="CRC"):
            decode_snapshot(bytes(blob))

    def test_unpicklable_session_raises_snapshot_error(self):
        snapshot = make_snapshot(payload=lambda: None)  # lambdas don't pickle
        with pytest.raises(SnapshotError, match="picklable"):
            encode_snapshot(snapshot)

    def test_schema_drift_is_caught_at_encode_time(self):
        @dataclass
        class DriftedSnapshot(ShardSnapshot):
            extra: int = 0

        base = make_snapshot()
        drifted = DriftedSnapshot(
            **{name: getattr(base, name) for name in SNAPSHOT_FIELDS})
        with pytest.raises(SnapshotError, match="drifted"):
            encode_snapshot(drifted)


class TestFileFormat:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "one.snap"
        n_bytes = write_snapshot(path, make_snapshot())
        assert path.stat().st_size == n_bytes
        assert read_snapshot(path).applied_through == 10

    def test_write_leaves_no_temp_files(self, tmp_path):
        write_snapshot(tmp_path / "one.snap", make_snapshot())
        assert [p.name for p in tmp_path.iterdir()] == ["one.snap"]

    def test_torn_file_on_disk_is_rejected(self, tmp_path):
        path = tmp_path / "one.snap"
        blob = encode_snapshot(make_snapshot())
        path.write_bytes(blob[:len(blob) // 2])
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_missing_file_is_a_snapshot_error(self, tmp_path):
        with pytest.raises(SnapshotError, match="could not read"):
            read_snapshot(tmp_path / "absent.snap")


class TestStore:
    def test_retention_keeps_newest_generations(self, tmp_path):
        store = SnapshotStore(tmp_path, shard_id=0, keep=2)
        for seq in (4, 9, 13):
            store.save(make_snapshot(applied_through=seq))
        assert store.seqs() == [9, 13]

    def test_load_latest_prefers_the_newest(self, tmp_path):
        store = SnapshotStore(tmp_path, shard_id=0)
        for seq in (4, 9):
            store.save(make_snapshot(applied_through=seq))
        loaded = store.load_latest()
        assert loaded is not None
        snapshot, path = loaded
        assert snapshot.applied_through == 9
        assert path == store.path_for(9)

    def test_load_latest_skips_a_torn_newest_generation(self, tmp_path):
        store = SnapshotStore(tmp_path, shard_id=0)
        store.save(make_snapshot(applied_through=4))
        blob = encode_snapshot(make_snapshot(applied_through=9))
        store.path_for(9).write_bytes(blob[:len(blob) // 3])
        loaded = store.load_latest()
        assert loaded is not None
        assert loaded[0].applied_through == 4

    def test_load_latest_ignores_other_shards_and_genesis(self, tmp_path):
        store_a = SnapshotStore(tmp_path, shard_id=0)
        store_b = SnapshotStore(tmp_path, shard_id=1)
        store_a.save(make_snapshot(shard_id=0, applied_through=4))
        assert store_b.load_latest() is None

    def test_safe_truncation_lags_one_generation(self, tmp_path):
        store = SnapshotStore(tmp_path, shard_id=0)
        assert store.safe_truncation_seq() == -1
        store.save(make_snapshot(applied_through=4))
        assert store.safe_truncation_seq() == -1  # lone newest may be torn
        store.save(make_snapshot(applied_through=9))
        assert store.safe_truncation_seq() == 4

    def test_keep_below_one_is_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="keep"):
            SnapshotStore(tmp_path, shard_id=0, keep=0)
