"""The headline robustness proof: crashed fleet == clean single process.

A 256-stream sharded run with two injected worker crashes (one of them
before its ack escapes), a torn snapshot write, and delivery-layer chaos
must produce, for every stream, an event sequence bit-identical to one
clean in-process :class:`~repro.batch.session.BatchSession` fed the same
batches.  CI runs this module under both kernel backends
(``REPRO_NO_JIT`` matrix), so recovery is proven on Numba and NumPy
alike.
"""

import numpy as np
import pytest

from tests.conftest import model_stream

from repro.faults.service import (DuplicateDelivery, ReorderDelivery,
                                  ServiceFaultPlan, TornSnapshot,
                                  WorkerCrash)
from repro.serve import (FleetSupervisor, ServeConfig, build_shard_session,
                         extract_lane_events)

N_STREAMS = 256
N_SHARDS = 4
STREAM_POOL = 8
INTERVALS_PER_STREAM = 6  # deep enough that detectors emit real events
BATCHES_PER_STREAM = 3

CHAOS_PLAN = ServiceFaultPlan((
    WorkerCrash(shard=0, at_seq=30),
    WorkerCrash(shard=2, at_seq=45, before_ack=True),
    TornSnapshot(shard=1, at_seq=16, truncate=0.6),
    DuplicateDelivery(shard=3, at_seq=12, copies=3),
    ReorderDelivery(shard=3, at_seq=20, depth=2),
))


@pytest.fixture(scope="module")
def fixture_batches():
    model, _ = model_stream("181.mcf")
    budget = INTERVALS_PER_STREAM * 2032
    pool = [model_stream("181.mcf", seed=7 + i)[1].pcs[:budget]
            for i in range(STREAM_POOL)]
    batches = {}
    for i in range(N_STREAMS):
        chunks = [np.asarray(c, dtype=np.int64) for c in
                  np.array_split(pool[i % STREAM_POOL], BATCHES_PER_STREAM)
                  if c.size]
        batches[f"stream{i:03d}"] = chunks
    return model, batches


@pytest.fixture(scope="module")
def oracle(fixture_batches):
    """Per-stream event sequences from one clean in-process session."""
    model, batches = fixture_batches
    config = ServeConfig(binary=model.binary, n_shards=N_SHARDS)
    streams = tuple(batches)
    session = build_shard_session(config, streams)
    for lane, stream in zip(session.lanes, streams):
        for chunk in batches[stream]:
            lane.feed_many(chunk)
            session.process_ready()
    return {stream: extract_lane_events(lane)[0]
            for lane, stream in zip(session.lanes, streams)}


def run_fleet(model, batches, faults, snapshot_dir):
    # dispatch_retries is raised from the default: CI runners can be
    # heavily oversubscribed (4 workers + pytest on few cores), and a
    # governor trip here fails the differential rather than exercising
    # degradation — tests/serve/test_governor.py covers shedding.
    config = ServeConfig(binary=model.binary, n_shards=N_SHARDS,
                         snapshot_every=8, queue_capacity=128,
                         dispatch_retries=8)
    fleet = FleetSupervisor(config, list(batches), str(snapshot_dir),
                            faults=faults)
    try:
        fleet.start()
        rounds = max(len(chunks) for chunks in batches.values())
        for round_index in range(rounds):
            for stream, chunks in batches.items():
                if round_index < len(chunks):
                    assert fleet.submit(stream, chunks[round_index])
        fleet.drain(timeout=120.0)
        events = {stream: fleet.stream_events(stream) for stream in batches}
        summary = fleet.summary()
    except BaseException:
        # Reap the workers before the failure propagates: daemon
        # children left running would meet the interpreter's unbounded
        # exit-time joins and turn this failure into a silent hang.
        fleet.shutdown(graceful=False)
        raise
    exit_codes = fleet.shutdown(graceful=True)
    return events, summary, exit_codes


def test_chaotic_fleet_matches_clean_session(tmp_path, fixture_batches,
                                             oracle):
    model, batches = fixture_batches
    events, summary, exit_codes = run_fleet(model, batches, CHAOS_PLAN,
                                            tmp_path)
    # The chaos actually happened: both crashes and the torn snapshot
    # each cost one incarnation.
    assert summary["restarts"] >= 3
    # Recovery was deterministic: replayed acks never disagreed with
    # the originals, and the final workers exited cleanly.
    assert summary["divergences"] == 0
    assert summary["evicted"] == 0
    assert all(code in (0, None) for code in exit_codes.values())
    # The differential core: every stream, record for record.
    assert set(events) == set(oracle)
    mismatched = [s for s in oracle if events[s] != oracle[s]]
    assert mismatched == []
    assert any(len(oracle[s]) > 0 for s in oracle)


def test_clean_fleet_matches_clean_session(tmp_path, fixture_batches,
                                           oracle):
    model, batches = fixture_batches
    events, summary, exit_codes = run_fleet(model, batches,
                                            ServiceFaultPlan(), tmp_path)
    assert summary["restarts"] == 0
    assert summary["divergences"] == 0
    assert all(code in (0, None) for code in exit_codes.values())
    assert events == oracle
