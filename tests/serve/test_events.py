"""Event extraction: stable order, cursor composition, scalar parity."""

import numpy as np

from tests.conftest import model_stream

from repro.monitor.online import OnlineSession
from repro.serve import ServeConfig, build_shard_session
from repro.serve.events import (EventCursor, EventRecord,
                                extract_lane_events)

N_INTERVALS = 8


def _samples():
    model, stream = model_stream("181.mcf")
    return model, stream.pcs[:N_INTERVALS * 2032].astype(np.int64)


def _fresh_lane():
    model, samples = _samples()
    config = ServeConfig(binary=model.binary, n_shards=1)
    session = build_shard_session(config, ("s0",))
    return session, session.lanes[0], samples


def test_extraction_composes_across_incremental_cursors():
    session, lane, samples = _fresh_lane()
    chunks = [c for c in np.array_split(samples, 5) if c.size]
    incremental: list[EventRecord] = []
    cursor = EventCursor()
    for chunk in chunks:
        lane.feed_many(chunk)
        session.process_ready()
        delta, cursor = extract_lane_events(lane, cursor)
        incremental.extend(delta)

    session2, lane2, _ = _fresh_lane()
    lane2.feed_many(samples)
    session2.process_ready()
    full, _ = extract_lane_events(lane2)
    assert tuple(incremental) == full
    assert len(full) > 0  # the run must actually produce events


def test_extraction_is_sorted_and_typed():
    session, lane, samples = _fresh_lane()
    lane.feed_many(samples)
    session.process_ready()
    events, cursor = extract_lane_events(lane)
    assert [e.interval_index for e in events] == \
        sorted(e.interval_index for e in events)
    assert {e.detector for e in events} <= {"gpd", "lpd", "watchdog"}
    assert all(e.rid == -1 for e in events if e.detector == "gpd")
    # The cursor accounts for everything extracted so far.
    again, _ = extract_lane_events(lane, cursor)
    assert again == ()


def test_scalar_session_extraction_matches_batch_lane():
    model, samples = _samples()
    session, lane, _ = _fresh_lane()
    lane.feed_many(samples)
    session.process_ready()
    batch_events, _ = extract_lane_events(lane)

    scalar = OnlineSession(binary=model.binary)
    scalar.feed_many(samples)
    scalar_events, _ = extract_lane_events(scalar)
    assert scalar_events == batch_events
