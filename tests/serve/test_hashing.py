"""Consistent-hash stream placement: determinism and rebalance bounds."""

import pytest

from repro.errors import ServeError
from repro.serve.hashing import HashRing

STREAMS = [f"stream{i:03d}" for i in range(200)]


class TestShardFor:
    def test_placement_is_deterministic_across_instances(self):
        a = HashRing(n_shards=4)
        b = HashRing(n_shards=4)
        assert [a.shard_for(s) for s in STREAMS] == \
            [b.shard_for(s) for s in STREAMS]

    def test_placement_lands_in_range(self):
        ring = HashRing(n_shards=5)
        assert all(0 <= ring.shard_for(s) < 5 for s in STREAMS)

    def test_single_shard_takes_everything(self):
        ring = HashRing(n_shards=1)
        assert {ring.shard_for(s) for s in STREAMS} == {0}


class TestPartition:
    def test_partition_covers_every_stream_once(self):
        assignment = HashRing(n_shards=4).partition(STREAMS)
        assigned = [s for streams in assignment.values() for s in streams]
        assert sorted(assigned) == sorted(STREAMS)
        assert set(assignment) == {0, 1, 2, 3}

    def test_partition_preserves_submission_order_within_a_shard(self):
        assignment = HashRing(n_shards=4).partition(STREAMS)
        order = {s: i for i, s in enumerate(STREAMS)}
        for streams in assignment.values():
            ranks = [order[s] for s in streams]
            assert ranks == sorted(ranks)

    def test_no_shard_is_starved_at_fleet_scale(self):
        assignment = HashRing(n_shards=4).partition(STREAMS)
        sizes = [len(streams) for streams in assignment.values()]
        assert min(sizes) > 0
        # 64 vnodes per shard keeps the imbalance moderate.
        assert max(sizes) <= 3 * (len(STREAMS) // 4)

    def test_adding_a_shard_moves_a_minority_of_streams(self):
        before = HashRing(n_shards=4)
        after = HashRing(n_shards=5)
        moved = sum(1 for s in STREAMS
                    if before.shard_for(s) != after.shard_for(s))
        # Consistent hashing's point: growth relocates roughly 1/n of
        # the keys, not all of them (modulo hashing would move ~80%).
        assert moved < len(STREAMS) // 2


class TestRingEdgeCases:
    def test_single_shard_single_replica_is_a_valid_ring(self):
        # The smallest legal ring: one vnode total.  Lookups past the
        # last point must wrap to it, so every stream lands on shard 0.
        ring = HashRing(n_shards=1, replicas=1)
        assert {ring.shard_for(s) for s in STREAMS} == {0}
        assignment = ring.partition(STREAMS)
        assert assignment == {0: STREAMS}

    def test_partition_with_no_streams_still_names_every_shard(self):
        assignment = HashRing(n_shards=3).partition([])
        assert assignment == {0: [], 1: [], 2: []}

    def test_removing_a_shard_moves_only_its_streams(self):
        # Shrinking 5 -> 4 deletes exactly shard 4's vnodes; every
        # stream that was NOT on shard 4 must keep its old owner.
        # (This is the property that makes resharding a rolling
        # operation: survivors' state never migrates.)
        before = HashRing(n_shards=5)
        after = HashRing(n_shards=4)
        displaced = 0
        for stream in STREAMS:
            owner = before.shard_for(stream)
            if owner < 4:
                assert after.shard_for(stream) == owner
            else:
                displaced += 1
        # The removed shard's streams all land somewhere valid.
        assert displaced > 0
        assert all(0 <= after.shard_for(s) < 4 for s in STREAMS)

    def test_replica_count_changes_placement_but_not_validity(self):
        # Replicas are a balance/stability dial, not a correctness one.
        sparse = HashRing(n_shards=4, replicas=1)
        dense = HashRing(n_shards=4, replicas=256)
        for ring in (sparse, dense):
            assignment = ring.partition(STREAMS)
            assigned = [s for streams in assignment.values()
                        for s in streams]
            assert sorted(assigned) == sorted(STREAMS)


def test_invalid_shapes_are_rejected():
    with pytest.raises(ServeError):
        HashRing(n_shards=0)
    with pytest.raises(ServeError):
        HashRing(n_shards=2, replicas=0)
