"""Stream governor: suspension backoff, re-admission, blacklisting."""

from repro.monitor.watchdog import WatchdogAction, WatchdogConfig
from repro.serve.governor import StreamGovernor


def make_governor(retry_budget=3, backoff_intervals=4, backoff_factor=2.0):
    return StreamGovernor(WatchdogConfig(
        retry_budget=retry_budget, backoff_intervals=backoff_intervals,
        backoff_factor=backoff_factor))


def test_unknown_streams_are_allowed():
    governor = make_governor()
    assert governor.allows("s0", 0)
    assert governor.events == []


def test_trip_suspends_with_growing_backoff():
    governor = make_governor(backoff_intervals=4, backoff_factor=2.0)
    first = governor.trip("s0", 10)
    assert first.action is WatchdogAction.DEOPTIMIZE
    assert not governor.allows("s0", 11)
    assert not governor.allows("s0", 13)
    assert governor.allows("s0", 14)  # 10 + 4
    second = governor.trip("s0", 20)
    assert second.action is WatchdogAction.DEOPTIMIZE
    assert not governor.allows("s0", 27)
    assert governor.allows("s0", 28)  # 20 + 4*2


def test_readmission_emits_a_retry_event():
    governor = make_governor()
    governor.trip("s0", 0)
    assert governor.allows("s0", 100)
    actions = [e.action for e in governor.events]
    assert actions == [WatchdogAction.DEOPTIMIZE, WatchdogAction.RETRY]
    retry = governor.events[-1]
    assert "s0" in retry.detail


def test_budget_exhaustion_blacklists_for_good():
    governor = make_governor(retry_budget=2)
    governor.trip("s0", 0)
    assert governor.allows("s0", 1000)
    event = governor.trip("s0", 1001)
    assert event.action is WatchdogAction.GIVE_UP
    assert governor.is_blacklisted("s0")
    assert not governor.allows("s0", 10_000)


def test_streams_are_governed_independently():
    governor = make_governor()
    governor.trip("s0", 10)
    assert governor.allows("s1", 11)
    assert not governor.allows("s0", 11)


def test_escalation_ladder_suspend_then_blacklist():
    # The full degradation ladder for one stream: each trip doubles the
    # backoff, and the trip that exhausts the budget blacklists instead
    # of suspending — with the event sequence telling the whole story.
    governor = make_governor(retry_budget=3, backoff_intervals=4,
                             backoff_factor=2.0)
    governor.trip("s0", 0)                 # trip 1: suspended until 4
    assert not governor.allows("s0", 3)
    assert governor.allows("s0", 4)        # re-admitted (RETRY)
    governor.trip("s0", 10)                # trip 2: suspended until 18
    assert not governor.allows("s0", 17)
    assert governor.allows("s0", 18)       # re-admitted (RETRY)
    event = governor.trip("s0", 20)        # trip 3 == budget: blacklist
    assert event.action is WatchdogAction.GIVE_UP
    assert governor.is_blacklisted("s0")
    # Blacklisting is terminal: no backoff ever re-admits the stream.
    assert not governor.allows("s0", 10**9)
    assert [e.action for e in governor.events] == [
        WatchdogAction.DEOPTIMIZE, WatchdogAction.RETRY,
        WatchdogAction.DEOPTIMIZE, WatchdogAction.RETRY,
        WatchdogAction.GIVE_UP]


def test_minimal_backoff_still_suspends_one_sequence():
    # The smallest legal config (intervals=1, factor=1.0): every trip
    # suspends for exactly one dispatch sequence — never a no-op.
    governor = make_governor(retry_budget=5, backoff_intervals=1,
                             backoff_factor=1.0)
    governor.trip("s0", 7)
    assert not governor.allows("s0", 7)
    assert governor.allows("s0", 8)


def test_suspension_boundary_uses_trip_sequence_not_wall_clock():
    # suspended_until is trip seq + backoff in *shard dispatch
    # sequences*; re-admission at exactly the boundary is inclusive.
    governor = make_governor(backoff_intervals=8, backoff_factor=2.0)
    governor.trip("s0", 100)
    assert not governor.allows("s0", 107)
    assert governor.allows("s0", 108)
    retry = governor.events[-1]
    assert retry.action is WatchdogAction.RETRY
    assert retry.interval_index == 108


def test_summary_counts_each_outcome():
    governor = make_governor(retry_budget=2)
    governor.trip("s0", 0)          # suspension
    governor.allows("s0", 1000)     # re-admission
    governor.trip("s0", 1001)       # blacklist (GIVE_UP, not a suspension)
    governor.trip("s1", 5)          # suspension
    assert governor.summary() == {
        "governed_streams": 2,
        "suspensions": 2,
        "readmissions": 1,
        "blacklisted": 1,
    }
