"""End-to-end tests pinning the paper's qualitative claims.

These run the full pipeline (suite model -> PMU -> detectors/monitor ->
optimizer) at a reduced scale and assert the *shape* results the paper
reports.  They are the reproduction's regression net: if a refactor breaks
one of these, the repository no longer reproduces the paper.
"""

import pytest

from repro.analysis.metrics import run_gpd
from repro.core import MonitorThresholds
from repro.monitor import RegionMonitor
from repro.optimizer import compare_policies
from repro.program.spec2000 import get_benchmark
from tests.conftest import model_stream

SCALE = 0.25
SEED = 7


def gpd_stats(name, period, scale=SCALE):
    _, stream = model_stream(name, scale, period, seed=SEED)
    detector = run_gpd(stream, 2032)
    return len(detector.events), detector.stable_time_fraction()


def monitor_for(name, period, scale=SCALE):
    model, stream = model_stream(name, scale, period, seed=SEED)
    monitor = RegionMonitor(model.binary, MonitorThresholds())
    monitor.process_stream(stream)
    return model, monitor


class TestGpdSensitivity:
    """Paper section 2.3 / Figures 3-4."""

    @pytest.mark.parametrize("name", ["178.galgel", "187.facerec",
                                      "254.gap"])
    def test_flappers_explode_at_45k_only(self, name):
        at_45k, _ = gpd_stats(name, 45_000)
        at_900k, _ = gpd_stats(name, 900_000)
        assert at_45k >= 10
        assert at_900k <= 3

    @pytest.mark.parametrize("name", ["171.swim", "172.mgrid",
                                      "200.sixtrack"])
    def test_stable_benchmarks_quiet_everywhere(self, name):
        # Coarse periods see few intervals at the test scale, so the
        # fixed warmup/stabilization latency caps the achievable stable
        # fraction; the threshold reflects that startup transient.
        for period, min_stable in ((45_000, 0.9), (450_000, 0.6),
                                   (900_000, 0.35)):
            changes, stable = gpd_stats(name, period)
            assert changes <= 2
            assert stable > min_stable

    def test_mcf_many_changes_and_high_stability_at_45k(self):
        changes, stable = gpd_stats("181.mcf", 45_000)
        assert changes >= 5
        assert stable > 0.8

    def test_mcf_unstable_tail_at_coarse_periods(self):
        _, stable_45k = gpd_stats("181.mcf", 45_000)
        _, stable_900k = gpd_stats("181.mcf", 900_000)
        assert stable_900k < stable_45k  # the paper's inversion


class TestLpdRobustness:
    """Paper section 3.2 / Figures 10, 11, 13, 14."""

    def test_mcf_locally_stable_despite_global_changes(self):
        model, monitor = monitor_for("181.mcf", 45_000)
        for workload_name in ("mcf_r1", "mcf_r2", "mcf_r3"):
            region = monitor.region_by_name(
                model.monitored_name(workload_name))
            detector = monitor.detector(region.rid)
            assert detector.phase_change_count() <= 2
            assert detector.stable_time_fraction() > 0.9

    def test_facerec_regions_survive_set_switching(self):
        model, monitor = monitor_for("187.facerec", 45_000)
        for workload_name in model.selected_region_names:
            region = monitor.region_by_name(
                model.monitored_name(workload_name))
            assert monitor.detector(region.rid).stable_time_fraction() > 0.8

    def test_gap_stability_ordering(self):
        # 7ba2c-7ba78 more stable than 8d25c-8d314; the short-lived g3 is
        # the unstable outlier.
        model, monitor = monitor_for("254.gap", 45_000, scale=0.5)
        changes = {}
        for workload_name in ("gap_g1", "gap_g2", "gap_g3"):
            region = monitor.region_by_name(
                model.monitored_name(workload_name))
            changes[workload_name] = \
                monitor.detector(region.rid).phase_change_count()
        assert changes["gap_g1"] <= changes["gap_g2"]
        assert changes["gap_g3"] > changes["gap_g2"]
        assert changes["gap_g3"] >= 10

    def test_gap_unstable_region_does_not_poison_others(self):
        model, monitor = monitor_for("254.gap", 45_000, scale=0.5)
        region = monitor.region_by_name(model.monitored_name("gap_g1"))
        assert monitor.detector(region.rid).stable_time_fraction() > 0.9

    def test_ammp_near_threshold_aberration(self):
        model_fine, monitor_fine = monitor_for("188.ammp", 45_000)
        model_coarse, monitor_coarse = monitor_for("188.ammp", 900_000)
        fine = monitor_fine.detector(monitor_fine.region_by_name(
            model_fine.monitored_name("ammp_a1")).rid)
        coarse = monitor_coarse.detector(monitor_coarse.region_by_name(
            model_coarse.monitored_name("ammp_a1")).rid)
        assert fine.phase_change_count() >= 10
        assert coarse.phase_change_count() <= 2

    def test_adaptive_threshold_fixes_ammp(self):
        # The paper's proposed size-based threshold (section 3.2.2).
        from repro.core.thresholds import LpdThresholds

        model, stream = model_stream("188.ammp", SCALE, 45_000, seed=SEED)
        adaptive = RegionMonitor(model.binary, MonitorThresholds(
            lpd=LpdThresholds(adaptive=True)))
        adaptive.process_stream(stream)
        detector = adaptive.detector(adaptive.region_by_name(
            model.monitored_name("ammp_a1")).rid)
        assert detector.phase_change_count() <= 3


class TestUcrClaims:
    """Paper section 3.1 / Figures 6-7."""

    def test_gap_crafty_stay_above_threshold(self):
        for name in ("254.gap", "186.crafty"):
            _, monitor = monitor_for(name, 45_000, scale=0.1)
            assert monitor.ucr.median() > 0.30
            assert monitor.ucr.n_triggers >= \
                monitor.intervals_processed * 0.9

    def test_normal_benchmark_settles_after_cold_start(self):
        _, monitor = monitor_for("183.equake", 45_000, scale=0.1)
        assert monitor.ucr.history[0] == 1.0
        assert monitor.ucr.median() < 0.30
        assert monitor.ucr.n_triggers <= 3

    def test_interprocedural_extension_fixes_gap(self):
        model, stream = model_stream("254.gap", 0.1, 45_000, seed=SEED)
        monitor = RegionMonitor(model.binary, MonitorThresholds(),
                                interprocedural=True)
        monitor.process_stream(stream)
        assert monitor.ucr.history[-1] < 0.10


class TestRtoClaims:
    """Paper section 3.2.4 / Figure 17."""

    def test_mcf_gain_grows_with_period(self):
        model = get_benchmark("181.mcf", 1.0)
        _, _, fine = compare_policies(model.binary, model.regions,
                                      model.workload, 100_000, seed=SEED)
        _, _, coarse = compare_policies(model.binary, model.regions,
                                        model.workload, 1_500_000,
                                        seed=SEED)
        assert coarse > fine
        assert coarse > 0.05

    def test_gap_gain_shrinks_with_period(self):
        model = get_benchmark("254.gap", 1.0)
        _, _, fine = compare_policies(model.binary, model.regions,
                                      model.workload, 100_000, seed=SEED)
        _, _, coarse = compare_policies(model.binary, model.regions,
                                        model.workload, 1_500_000,
                                        seed=SEED)
        assert fine > coarse
        assert fine > 0.01

    def test_mgrid_indifferent(self):
        model = get_benchmark("172.mgrid", 0.5)
        for period in (100_000, 1_500_000):
            _, _, speedup = compare_policies(
                model.binary, model.regions, model.workload, period,
                seed=SEED)
            assert abs(speedup) < 0.03

    def test_lpd_never_catastrophically_worse(self):
        for name in ("181.mcf", "254.gap", "191.fma3d", "172.mgrid"):
            model = get_benchmark(name, SCALE)
            _, _, speedup = compare_policies(
                model.binary, model.regions, model.workload, 450_000,
                seed=SEED)
            assert speedup > -0.05
