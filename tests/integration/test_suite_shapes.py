"""Broader shape checks across the synthetic suite.

Complements ``test_paper_claims.py`` (which pins the figures' headline
benchmarks) with the secondary shapes: the remaining flappers, the
cost/region-count ordering, and cross-detector consistency.
"""

import pytest

from repro.analysis.metrics import run_gpd
from repro.core import MonitorThresholds
from repro.monitor import RegionMonitor
from repro.program.spec2000 import get_benchmark
from tests.conftest import model_stream

SEED = 7


def gpd_changes(name, period, scale=0.3):
    _, stream = model_stream(name, scale, period, seed=SEED)
    return len(run_gpd(stream, 2032).events)


def monitor_at(name, scale=0.2, period=45_000, **kwargs):
    model, stream = model_stream(name, scale, period, seed=SEED)
    monitor = RegionMonitor(model.binary, MonitorThresholds(), **kwargs)
    monitor.process_stream(stream)
    return model, monitor


class TestSecondaryFlappers:
    @pytest.mark.parametrize("name", ["168.wupwise", "256.bzip2",
                                      "164.gzip"])
    def test_flap_at_45k_quiet_at_900k(self, name):
        fine = gpd_changes(name, 45_000)
        coarse = gpd_changes(name, 900_000)
        assert fine >= 5
        assert coarse <= max(3, fine // 4)

    @pytest.mark.parametrize("name", ["177.mesa", "300.twolf",
                                      "183.equake", "301.apsi"])
    def test_quiet_benchmarks_stay_quiet(self, name):
        assert gpd_changes(name, 45_000) <= 6


class TestRegionCountOrdering:
    def test_many_region_programs_form_many_regions(self):
        counts = {}
        for name in ("176.gcc", "197.parser", "181.mcf"):
            _model, monitor = monitor_at(name, scale=0.05)
            counts[name] = len(monitor.all_regions())
        assert counts["176.gcc"] > counts["197.parser"] \
            > counts["181.mcf"]

    def test_cost_tracks_region_population(self):
        costs = {}
        for name in ("176.gcc", "181.mcf"):
            _model, monitor = monitor_at(name, scale=0.05)
            costs[name] = monitor.ledger.monitor_ops \
                / max(monitor.intervals_processed, 1)
        assert costs["176.gcc"] > 10 * costs["181.mcf"]


class TestCrossDetectorConsistency:
    def test_seed_invariance_of_shapes(self):
        """The qualitative shape must not depend on the PMU seed."""
        for seed in (1, 2, 3):
            _, stream = model_stream("178.galgel", 0.3, 45_000, seed=seed)
            detector = run_gpd(stream, 2032)
            assert len(detector.events) >= 10, f"seed {seed}"

    def test_gpd_flapper_is_lpd_stable(self):
        """The core thesis on a second flapper (galgel): global churn,
        local calm."""
        _model, monitor = monitor_at("178.galgel", scale=0.3)
        _, stream = model_stream("178.galgel", 0.3, 45_000, seed=SEED)
        gpd = run_gpd(stream, 2032)
        assert len(gpd.events) >= 10
        for fraction in monitor.stable_time_fractions().values():
            assert fraction > 0.9

    def test_trace_formation_never_hurts_coverage(self):
        for name in ("186.crafty", "254.gap"):
            _m, plain = monitor_at(name, scale=0.05)
            _m, traced = monitor_at(name, scale=0.05,
                                    trace_formation=True)
            assert traced.ucr.median() <= plain.ucr.median() + 1e-9


class TestWorkloadDurations:
    @pytest.mark.parametrize("name", ["181.mcf", "254.gap", "172.mgrid",
                                      "191.fma3d"])
    def test_fig17_models_long_enough_for_coarse_periods(self, name):
        # At the 1.5M period the Figure 17 experiment needs a usable
        # number of intervals even after buffer truncation.
        model = get_benchmark(name, 1.0)
        intervals = model.workload.total_cycles // (2032 * 1_500_000)
        assert intervals >= 25
