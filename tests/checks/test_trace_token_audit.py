"""The trace-token-incomplete audit rule and the runtime cache guard.

Two layers of the same defense: the static rule proves the shipped
``TraceIdentity.token()`` cannot silently omit a replay knob, and the
runtime tests prove the token actually discriminates the experiment
cache — editing a fixture's content or varying a replay parameter must
miss, while an identical replay must hit.
"""

import textwrap
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.checks.cachekeys import audit_cache_keys, audit_trace_tokens
from repro.checks.registry import ALL_RULES, RULE_FAMILIES
from repro.experiments.base import trace_gpd_run, trace_stream_for
from repro.experiments.cache import GLOBAL_CACHE, GpdKey, MonitorKey, StreamKey
from repro.experiments.config import BASE_PERIOD, DEFAULT_CONFIG
from repro.ingest import load_profile

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS = REPO_ROOT / "tests" / "fixtures" / "traces" / "realtrace"


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestShippedTree:
    def test_shipped_identity_module_is_clean(self):
        findings = [f for f in audit_cache_keys(REPO_ROOT)
                    if f.rule == "trace-token-incomplete"]
        assert findings == []

    def test_rule_is_registered_in_the_cachekeys_family(self):
        assert "trace-token-incomplete" in ALL_RULES
        assert "trace-token-incomplete" in RULE_FAMILIES["cachekeys"]

    def test_every_key_class_carries_the_trace_field(self):
        # The derived-key audit enforces StreamKey ⊆ GpdKey/MonitorKey,
        # so asserting StreamKey here transitively pins all three; the
        # direct checks make a regression message name the class.
        for cls in (StreamKey, GpdKey, MonitorKey):
            assert "trace" in cls.__dataclass_fields__, cls.__name__


class TestMutations:
    def test_fields_enumeration_is_safe_by_construction(self, tmp_path):
        path = write(tmp_path, "identity.py", """
            from dataclasses import dataclass, fields

            @dataclass(frozen=True)
            class TraceIdentity:
                name: str = ""
                checksum: str = ""

                def token(self):
                    return ("trace",) + tuple(
                        (f.name, getattr(self, f.name))
                        for f in fields(self))
        """)
        assert audit_trace_tokens(path, "identity.py") == []

    def test_missing_token_method_is_flagged(self, tmp_path):
        path = write(tmp_path, "identity.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class TraceIdentity:
                name: str = ""
                checksum: str = ""
        """)
        findings = audit_trace_tokens(path, "identity.py")
        assert len(findings) == 1
        assert findings[0].rule == "trace-token-incomplete"
        assert "defines no token()" in findings[0].message

    def test_hand_listed_token_omitting_a_knob_is_flagged(self, tmp_path):
        # The exact bug the rule exists for: a new replay knob
        # (cycles_per_ns) added to the dataclass but not the token.
        path = write(tmp_path, "identity.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class TraceIdentity:
                name: str = ""
                checksum: str = ""
                cycles_per_ns: float = 1.0

                def token(self):
                    return ("trace", self.name, self.checksum)
        """)
        findings = audit_trace_tokens(path, "identity.py")
        assert len(findings) == 1
        assert "omits field 'cycles_per_ns'" in findings[0].message

    def test_complete_hand_listed_token_is_clean(self, tmp_path):
        path = write(tmp_path, "identity.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class TraceIdentity:
                name: str = ""
                checksum: str = ""

                def token(self):
                    return ("trace", self.name, self.checksum)
        """)
        assert audit_trace_tokens(path, "identity.py") == []

    def test_non_identity_classes_are_ignored(self, tmp_path):
        path = write(tmp_path, "identity.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Observation:
                index: int = 0
        """)
        assert audit_trace_tokens(path, "identity.py") == []

    def test_unparseable_module_yields_nothing(self, tmp_path):
        path = write(tmp_path, "identity.py", "def broken(:")
        assert audit_trace_tokens(path, "identity.py") == []


@pytest.fixture()
def profile():
    return load_profile(CORPUS / "pyjsonregex.json")


@pytest.fixture(autouse=True)
def fresh_cache():
    GLOBAL_CACHE.clear()
    yield
    GLOBAL_CACHE.clear()


class TestRuntimeDiscrimination:
    """The trace token actually reaches and splits the cache keys."""

    def test_identical_replay_hits_the_cache(self, profile):
        first = trace_stream_for(profile, BASE_PERIOD, DEFAULT_CONFIG)
        second = trace_stream_for(profile, BASE_PERIOD, DEFAULT_CONFIG)
        assert second is first  # memoized object, not a re-replay

    def test_stale_fingerprint_cache_hit_is_caught(self, profile):
        # Mutation: same name, same replay knobs, *different recorded
        # content* — the scenario where a fixture file is re-recorded.
        # Before the trace field existed, the (benchmark, scale,
        # period, seed) key collided and served the stale stream.
        stale = trace_stream_for(profile, BASE_PERIOD, DEFAULT_CONFIG)
        edited = replace(profile,
                         times_ns=np.ascontiguousarray(
                             profile.times_ns + np.int64(500)))
        assert edited.checksum != profile.checksum
        misses_before = GLOBAL_CACHE.misses
        fresh = trace_stream_for(edited, BASE_PERIOD, DEFAULT_CONFIG)
        assert fresh is not stale  # new key -> fresh replay, no stale hit
        assert GLOBAL_CACHE.misses == misses_before + 1

    def test_replay_knobs_split_the_stream_key(self, profile):
        base = trace_stream_for(profile, BASE_PERIOD, DEFAULT_CONFIG)
        scaled = trace_stream_for(profile, BASE_PERIOD, DEFAULT_CONFIG,
                                  cycles_per_ns=2.0)
        repeated = trace_stream_for(profile, BASE_PERIOD, DEFAULT_CONFIG,
                                    repeat=2)
        assert scaled is not base and repeated is not base
        assert len(repeated.pcs) > len(base.pcs)

    def test_gpd_key_carries_the_trace_token(self, profile):
        run = trace_gpd_run(profile, BASE_PERIOD, DEFAULT_CONFIG)
        again = trace_gpd_run(profile, BASE_PERIOD, DEFAULT_CONFIG)
        assert again is run
        edited = replace(profile,
                         times_ns=np.ascontiguousarray(
                             profile.times_ns + np.int64(500)))
        assert trace_gpd_run(edited, BASE_PERIOD, DEFAULT_CONFIG) is not run
