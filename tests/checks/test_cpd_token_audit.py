"""The cpd-token-incomplete audit rule and the CPD determinism perimeter."""

import textwrap
from pathlib import Path

from repro.checks.cachekeys import audit_cache_keys, audit_cpd_tokens
from repro.checks.determinism import lint_source
from repro.checks.registry import ALL_RULES, RULE_FAMILIES

REPO_ROOT = Path(__file__).resolve().parents[2]


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestShippedTree:
    def test_shipped_cpd_config_is_clean(self):
        findings = [f for f in audit_cache_keys(REPO_ROOT)
                    if f.rule == "cpd-token-incomplete"]
        assert findings == []

    def test_rule_is_registered_in_the_cachekeys_family(self):
        assert "cpd-token-incomplete" in ALL_RULES
        assert "cpd-token-incomplete" in RULE_FAMILIES["cachekeys"]


class TestMutations:
    def test_fields_enumeration_is_safe_by_construction(self, tmp_path):
        path = write(tmp_path, "config.py", """
            from dataclasses import dataclass, fields

            @dataclass(frozen=True)
            class CpdThresholds:
                window: int = 32
                seed: int = 7

                def token(self):
                    return ("cpd",) + tuple(
                        (f.name, getattr(self, f.name))
                        for f in fields(self))
        """)
        assert audit_cpd_tokens(path, "config.py") == []

    def test_missing_token_method_is_flagged(self, tmp_path):
        path = write(tmp_path, "config.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class CpdThresholds:
                window: int = 32
                seed: int = 7
        """)
        findings = audit_cpd_tokens(path, "config.py")
        assert len(findings) == 1
        assert findings[0].rule == "cpd-token-incomplete"
        assert "defines no token()" in findings[0].message

    def test_hand_listed_token_omitting_a_field_is_flagged(self, tmp_path):
        path = write(tmp_path, "config.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class CpdThresholds:
                window: int = 32
                seed: int = 7

                def token(self):
                    return ("cpd", self.window)
        """)
        findings = audit_cpd_tokens(path, "config.py")
        assert len(findings) == 1
        assert "omits field 'seed'" in findings[0].message

    def test_complete_hand_listed_token_is_clean(self, tmp_path):
        path = write(tmp_path, "config.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class CpdThresholds:
                window: int = 32
                seed: int = 7

                def token(self):
                    return ("cpd", self.window, self.seed)
        """)
        assert audit_cpd_tokens(path, "config.py") == []

    def test_non_thresholds_classes_are_ignored(self, tmp_path):
        path = write(tmp_path, "config.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Observation:
                index: int = 0
        """)
        assert audit_cpd_tokens(path, "config.py") == []

    def test_unparseable_module_yields_nothing(self, tmp_path):
        path = write(tmp_path, "config.py", "def broken(:")
        assert audit_cpd_tokens(path, "config.py") == []


class TestDeterminismPerimeter:
    def test_cpd_sources_pass_the_determinism_lint(self):
        # Satellite (a): the determinism lint's DEFAULT_PATHS cover
        # src/repro/cpd, and its sources carry no unseeded RNG,
        # wall-clock reads or hash-order iteration.
        cpd_dir = REPO_ROOT / "src" / "repro" / "cpd"
        sources = sorted(cpd_dir.glob("*.py"))
        assert sources, "repro.cpd sources are missing"
        for path in sources:
            rel = path.relative_to(REPO_ROOT).as_posix()
            assert lint_source(rel, path.read_text(encoding="utf-8")) == []
