"""Kernel-twin contract audit: drift cases on synthetic backend trees."""

import textwrap
from pathlib import Path

from repro.checks.twins import COMPILED_DIR, audit_twins

REPO_ROOT = Path(__file__).resolve().parents[2]

JIT_OK = """\
    import numpy as np
    from numba import njit

    @njit(cache=True)
    def _pairwise_sum(a, lo, n):
        res = 0.0
        for i in range(n):
            res += a[lo + i]
        return res

    @njit(cache=True)
    def centroid(block):
        out = np.empty(block.shape[0], dtype=np.float64)
        for i in range(block.shape[0]):
            out[i] = _pairwise_sum(block[i], 0, block.shape[1])
        return out
    """

REF_OK = """\
    import numpy as np

    def centroid(block):
        out = np.empty(block.shape[0], dtype=np.float64)
        out[:] = np.sum(block, axis=1)
        return out
    """

INIT_OK = """\
    import numpy as np
    from . import numpy_backend as _ref

    __all__ = ["centroid"]

    def _probe_matches(jit, ref):
        x = np.ones((2, 4), dtype=np.float64)
        return jit.centroid(x).tobytes() == ref.centroid(x).tobytes()

    _backend = _ref
    centroid = _backend.centroid
    """


def make_tree(tmp_path, jit=JIT_OK, ref=REF_OK, init=INIT_OK):
    base = tmp_path / COMPILED_DIR
    base.mkdir(parents=True)
    (base / "numba_backend.py").write_text(textwrap.dedent(jit))
    (base / "numpy_backend.py").write_text(textwrap.dedent(ref))
    (base / "__init__.py").write_text(textwrap.dedent(init))
    return tmp_path


def rules_of(findings):
    return {f.rule for f in findings}


class TestTwinPresence:
    def test_conforming_tree_is_clean(self, tmp_path):
        assert audit_twins(make_tree(tmp_path)) == []

    def test_jit_only_kernel_has_no_semantics(self, tmp_path):
        jit = JIT_OK + (
            "\n"
            "    @njit(cache=True)\n"
            "    def extra(block):\n"
            "        return block\n")
        findings = audit_twins(make_tree(tmp_path, jit=jit))
        assert "twin-missing" in rules_of(findings)
        assert any("extra" in f.message for f in findings)

    def test_reference_only_kernel_is_flagged_too(self, tmp_path):
        ref = REF_OK + ("\n"
                        "    def lonely(block):\n"
                        "        return block\n")
        findings = audit_twins(make_tree(tmp_path, ref=ref))
        assert "twin-missing" in rules_of(findings)

    def test_private_helpers_need_no_twin(self, tmp_path):
        # _pairwise_sum exists only in the JIT backend and is fine.
        assert audit_twins(make_tree(tmp_path)) == []


class TestSignatures:
    def test_renamed_parameter_is_a_mismatch(self, tmp_path):
        jit = JIT_OK.replace("def centroid(block):",
                             "def centroid(rows):").replace(
            "block.shape", "rows.shape").replace("block[i]", "rows[i]")
        findings = audit_twins(make_tree(tmp_path, jit=jit))
        assert "twin-signature-mismatch" in rules_of(findings)

    def test_extra_defaulted_parameter_is_a_mismatch(self, tmp_path):
        ref = REF_OK.replace("def centroid(block):",
                             "def centroid(block, scale=1.0):")
        findings = audit_twins(make_tree(tmp_path, ref=ref))
        assert "twin-signature-mismatch" in rules_of(findings)


class TestExportsAndProbe:
    def test_unexported_kernel_is_a_gap(self, tmp_path):
        init = INIT_OK.replace("centroid = _backend.centroid", "")
        findings = audit_twins(make_tree(tmp_path, init=init))
        assert "twin-export-gap" in rules_of(findings)

    def test_kernel_missing_from_all_is_a_gap(self, tmp_path):
        init = INIT_OK.replace('__all__ = ["centroid"]',
                               '__all__ = []')
        findings = audit_twins(make_tree(tmp_path, init=init))
        assert "twin-export-gap" in rules_of(findings)

    def test_unprobed_kernel_is_a_gap(self, tmp_path):
        init = INIT_OK.replace(
            "return jit.centroid(x).tobytes() == ref.centroid(x).tobytes()",
            "return jit.centroid(x) is not None")
        findings = audit_twins(make_tree(tmp_path, init=init))
        assert "twin-probe-gap" in rules_of(findings)
        assert any("ref" in f.message for f in findings)

    def test_missing_probe_function_is_fatal(self, tmp_path):
        init = INIT_OK.replace("def _probe_matches(jit, ref):",
                               "def _other(jit, ref):")
        findings = audit_twins(make_tree(tmp_path, init=init))
        assert "twin-probe-gap" in rules_of(findings)


class TestKernelBodies:
    def test_implicit_dtype_allocation_is_flagged(self, tmp_path):
        ref = REF_OK.replace("np.empty(block.shape[0], dtype=np.float64)",
                             "np.empty(block.shape[0])")
        findings = audit_twins(make_tree(tmp_path, ref=ref))
        assert "twin-dtype-implicit" in rules_of(findings)

    def test_loop_accumulation_in_public_jit_kernel_is_flagged(
            self, tmp_path):
        jit = JIT_OK + (
            "\n"
            "    @njit(cache=True)\n"
            "    def rowsum(block):\n"
            "        total = 0.0\n"
            "        for i in range(block.shape[0]):\n"
            "            total += block[i, 0]\n"
            "        return total\n")
        ref = REF_OK + ("\n"
                        "    def rowsum(block):\n"
                        "        return float(np.sum(block[:, 0]))\n")
        init = INIT_OK.replace('__all__ = ["centroid"]',
                               '__all__ = ["centroid", "rowsum"]')
        init = init.replace(
            "centroid = _backend.centroid",
            "centroid = _backend.centroid\n"
            "    rowsum = _backend.rowsum")
        init = init.replace(
            "return jit.centroid(x).tobytes() == ref.centroid(x).tobytes()",
            "a = jit.centroid(x).tobytes() == ref.centroid(x).tobytes()\n"
            "        b = jit.rowsum(x) == ref.rowsum(x)\n"
            "        return a and b")
        findings = audit_twins(make_tree(tmp_path, jit=jit, ref=ref,
                                         init=init))
        assert rules_of(findings) == {"twin-accumulation-order"}
        assert any("rowsum" in f.message for f in findings)

    def test_pairwise_sum_replica_itself_is_exempt(self, tmp_path):
        # _pairwise_sum is full of loop accumulation — by design.
        assert audit_twins(make_tree(tmp_path)) == []


def test_shipped_compiled_package_is_conformant():
    findings = audit_twins(REPO_ROOT)
    assert findings == [], "\n".join(f.render() for f in findings)
