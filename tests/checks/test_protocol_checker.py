"""Protocol model checker: spec audits, exploration, mutation tests.

The load-bearing tests here are the mutations: corrupt exactly one
transition of the declarative spec (or one discipline of the real
worker) and the checker must report the violated safety invariant *by
name* — that is the property that makes the spec a specification
rather than documentation.
"""

from pathlib import Path

import numpy as np

from repro.checks.protocol import (INVARIANTS, PROTOCOL_PATH,
                                   audit_anchors, audit_message_surface,
                                   check_spec, cross_check_worker,
                                   drop_rule, enumerate_schedules,
                                   explore_model, mutate_rule,
                                   run_protocol_checker,
                                   serve_protocol_spec, small_scope)
from repro.serve.worker import ShardWorker

REPO_ROOT = Path(__file__).resolve().parents[2]


def rules_of(findings):
    return {f.rule for f in findings}


def violated_invariants(findings):
    """Invariant names quoted in protocol-invariant messages."""
    named = set()
    for finding in findings:
        if finding.rule != "protocol-invariant":
            continue
        for invariant in INVARIANTS:
            if f"invariant '{invariant}' violated" in finding.message:
                named.add(invariant)
    return named


class TestSpecStructure:
    def test_shipped_spec_is_well_formed(self):
        assert check_spec(serve_protocol_spec()) == []

    def test_dropping_a_delivery_rule_is_structural(self):
        spec = drop_rule(serve_protocol_spec(), "expected")
        findings = check_spec(spec)
        assert rules_of(findings) == {"protocol-spec-incomplete"}
        assert any("expected" in f.message for f in findings)
        assert all(f.path == PROTOCOL_PATH for f in findings)

    def test_surface_and_anchors_match_shipped_tree(self):
        spec = serve_protocol_spec()
        assert audit_message_surface(spec, REPO_ROOT) == []
        assert audit_anchors(spec, REPO_ROOT) == []

    def test_stale_anchor_is_reported(self):
        from dataclasses import replace
        spec = serve_protocol_spec()
        obligation = replace(spec.obligations[0],
                             anchor=spec.obligations[0].anchor.replace(
                                 "submit", "no_such_function"))
        spec = replace(spec, obligations=(obligation,)
                       + spec.obligations[1:])
        findings = audit_anchors(spec, REPO_ROOT)
        assert "protocol-anchor-missing" in rules_of(findings)


class TestScheduleSpace:
    def test_schedules_cover_dups_snapshots_and_crashes(self):
        scope = small_scope((2,))
        kinds = set()
        count = 0
        for steps in enumerate_schedules(scope):
            count += 1
            kinds.update(step.kind for step in steps)
        assert kinds == {"deliver", "dup", "snap", "crash"}
        # 2 messages: 2 perms x (1 + dup placements) x 3 cadences,
        # each with and without a crash at every position.
        assert count > 50

    def test_every_schedule_delivers_each_message_once(self):
        scope = small_scope((2, 1))
        for steps in enumerate_schedules(scope, snapshot_cadences=(0,),
                                         with_crash=False):
            delivered = [s.index for s in steps if s.kind == "deliver"]
            assert sorted(delivered) == [0, 1, 2]


class TestModelExploration:
    def test_shipped_spec_satisfies_all_invariants(self):
        assert explore_model(serve_protocol_spec(),
                             small_scope((2, 1))) == []

    def test_duplicate_reapplied_names_double_application(self):
        # Mutation: the duplicate guard applies instead of ack-empty.
        spec = mutate_rule(serve_protocol_spec(), "duplicate",
                           "apply-drain")
        findings = explore_model(spec, small_scope((2, 1)))
        named = violated_invariants(findings)
        assert "no-double-application" in named or \
            "ack-monotonicity" in named or \
            "replay-idempotence" in named
        assert findings  # and something was definitely reported

    def test_dropped_batch_names_sample_loss(self):
        # Mutation: expected deliveries are acked but never applied.
        spec = mutate_rule(serve_protocol_spec(), "expected",
                           "ack-empty")
        findings = explore_model(spec, small_scope((2, 1)))
        assert "no-sample-loss" in violated_invariants(findings)

    def test_discarded_early_arrival_names_sample_loss(self):
        # Mutation: early arrivals are dropped instead of stashed.
        spec = mutate_rule(serve_protocol_spec(), "early", "ack-empty")
        findings = explore_model(spec, small_scope((2, 1)))
        named = violated_invariants(findings)
        assert "no-sample-loss" in named or "replay-idempotence" in named

    def test_unexecutable_spec_is_flagged_not_crashed(self):
        spec = drop_rule(serve_protocol_spec(), "duplicate")
        findings = explore_model(spec, small_scope((2, 1)))
        assert "protocol-spec-incomplete" in rules_of(findings)


class DedupeSkippingWorker(ShardWorker):
    """A deliberately broken worker: the duplicate guard is gone, so a
    redelivered batch is applied again (the bug the protocol exists to
    rule out)."""

    def handle_batch(self, message):
        self._note_seq(message.seq)
        stream = message.stream
        applied = []
        expected = self.stream_seqs.get(stream, 0)
        if message.stream_seq > expected:
            self.stash.setdefault(stream, {})[message.stream_seq] = \
                np.array(message.samples, dtype=np.int64)
        else:
            applied.append(self._apply(stream, message.stream_seq,
                                       message.samples))
            parked = self.stash.get(stream)
            while parked:
                up_next = self.stream_seqs[stream]
                if up_next not in parked:
                    break
                applied.append(self._apply(stream, up_next,
                                           parked.pop(up_next)))
        from repro.serve.messages import BatchAck
        return BatchAck(shard=self.shard_id, seq=message.seq,
                        applied=tuple(applied))


class TestRealWorkerCrossCheck:
    def test_shipped_worker_matches_the_model(self):
        findings = cross_check_worker(serve_protocol_spec(),
                                      small_scope((2, 1)),
                                      snapshot_cadences=(0, 1))
        assert findings == [], "\n".join(f.message for f in findings)

    def test_dedupe_skipping_worker_is_caught_by_name(self):
        findings = cross_check_worker(
            serve_protocol_spec(), small_scope((2, 1)),
            snapshot_cadences=(0,),
            worker_factory=DedupeSkippingWorker)
        assert findings
        rules = rules_of(findings)
        named = violated_invariants(findings)
        # Either the divergence from the model or a violated invariant
        # (typically both) must be reported — with the invariant named.
        assert "protocol-impl-divergence" in rules or named
        assert named & {"no-double-application", "ack-monotonicity",
                        "replay-idempotence"}


class TestFullPass:
    def test_run_protocol_checker_is_clean_on_the_repo(self):
        findings = run_protocol_checker(REPO_ROOT)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_mutated_spec_fails_the_full_pass(self):
        spec = mutate_rule(serve_protocol_spec(), "expected",
                           "ack-empty")
        findings = run_protocol_checker(REPO_ROOT, spec=spec,
                                        cross_check=False)
        assert "no-sample-loss" in violated_invariants(findings)
