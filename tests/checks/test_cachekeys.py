"""Unit tests for the cache-key audit pass (synthetic modules)."""

import textwrap

from repro.checks.cachekeys import (RESULT_INERT_PARAMS, audit_base_helpers,
                                    audit_cache_keys, audit_fault_tokens,
                                    audit_key_classes,
                                    audit_snapshot_fields)

REPO_ROOT = __import__("pathlib").Path(__file__).resolve().parents[2]


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestBaseHelperAudit:
    KEYS = {"StreamKey", "GpdKey", "MonitorKey"}

    def test_fully_keyed_helper_is_clean(self, tmp_path):
        path = write(tmp_path, "base.py", """
            def stream_for(model, period, config, plan=None):
                faults = _fault_token(plan)
                key = StreamKey(benchmark=model.name, scale=config.scale,
                                period=period, seed=config.seed,
                                faults=faults)
                return CACHE.stream(key, lambda: simulate(config.seed))
        """)
        assert audit_base_helpers(path, "base.py", self.KEYS) == []

    def test_unkeyed_parameter_is_caught(self, tmp_path):
        path = write(tmp_path, "base.py", """
            def stream_for(model, period, config, jitter=0.0):
                key = StreamKey(benchmark=model.name, scale=config.scale,
                                period=period, seed=config.seed)
                return CACHE.stream(key, lambda: simulate(jitter))
        """)
        findings = audit_base_helpers(path, "base.py", self.KEYS)
        assert [f.rule for f in findings] == ["cache-key-field"]
        assert "jitter" in findings[0].message

    def test_unkeyed_config_read_is_caught(self, tmp_path):
        path = write(tmp_path, "base.py", """
            def gpd_run(model, period, config):
                key = GpdKey(benchmark=model.name, period=period,
                             seed=config.seed)
                return CACHE.detector(
                    key, lambda: run(model, config.buffer_size))
        """)
        findings = audit_base_helpers(path, "base.py", self.KEYS)
        assert any("buffer_size" in f.message for f in findings)

    def test_parameter_flowing_through_local_is_keyed(self, tmp_path):
        path = write(tmp_path, "base.py", """
            def stream_for(model, period, config, plan=None):
                token = derive(plan)
                wrapped = normalize(token)
                key = StreamKey(benchmark=model.name, scale=config.scale,
                                period=period, seed=config.seed,
                                faults=wrapped)
                return CACHE.stream(key, lambda: simulate(plan))
        """)
        assert audit_base_helpers(path, "base.py", self.KEYS) == []

    def test_helper_without_key_is_ignored(self, tmp_path):
        path = write(tmp_path, "base.py", """
            def benchmark_for(name, config):
                return get_benchmark(name, scale=config.scale)
        """)
        assert audit_base_helpers(path, "base.py", self.KEYS) == []

    def test_result_inert_param_is_exempt(self, tmp_path):
        # ``telemetry`` is observability plumbing: it carries events out
        # of the run and provably cannot change the artifact, so the
        # allowlist keeps it out of the key without a finding.
        path = write(tmp_path, "base.py", """
            def stream_for(model, period, config, telemetry=None):
                key = StreamKey(benchmark=model.name, scale=config.scale,
                                period=period, seed=config.seed)
                return CACHE.stream(
                    key, lambda: simulate(config.seed, telemetry))
        """)
        assert audit_base_helpers(path, "base.py", self.KEYS) == []

    def test_kernel_backend_param_is_exempt(self, tmp_path):
        # ``kernel_backend`` picks between compiled kernel
        # implementations that the import-time probe proved bitwise
        # identical (repro.batch.compiled) — result-inert by contract,
        # so keying on it would only fragment the cache.
        path = write(tmp_path, "base.py", """
            def stream_for(model, period, config, kernel_backend="numpy"):
                key = StreamKey(benchmark=model.name, scale=config.scale,
                                period=period, seed=config.seed)
                return CACHE.stream(
                    key, lambda: simulate(config.seed, kernel_backend))
        """)
        assert audit_base_helpers(path, "base.py", self.KEYS) == []

    def test_allowlist_does_not_leak_to_other_params(self, tmp_path):
        # The exemption is by exact name: an unkeyed parameter sitting
        # next to ``telemetry`` is still flagged.
        path = write(tmp_path, "base.py", """
            def stream_for(model, period, config, telemetry=None,
                           jitter=0.0):
                key = StreamKey(benchmark=model.name, scale=config.scale,
                                period=period, seed=config.seed)
                return CACHE.stream(
                    key, lambda: simulate(jitter, telemetry))
        """)
        findings = audit_base_helpers(path, "base.py", self.KEYS)
        assert [f.rule for f in findings] == ["cache-key-field"]
        assert "jitter" in findings[0].message
        assert all("telemetry" not in f.message for f in findings)


class TestKeyClassAudit:
    def test_key_without_faults_is_caught(self, tmp_path):
        path = write(tmp_path, "cache.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class StreamKey:
                benchmark: str
                seed: int
        """)
        findings, names = audit_key_classes(path, "cache.py")
        assert [f.rule for f in findings] == ["cache-key-no-faults"]
        assert names == {"StreamKey"}

    def test_derived_key_coarser_than_stream_is_caught(self, tmp_path):
        path = write(tmp_path, "cache.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class StreamKey:
                benchmark: str
                seed: int
                faults: tuple = ()

            @dataclass(frozen=True)
            class GpdKey:
                benchmark: str
                buffer_size: int
                faults: tuple = ()
        """)
        findings, _ = audit_key_classes(path, "cache.py")
        assert any("seed" in f.message for f in findings)


class TestFaultTokenAudit:
    def test_inherited_token_is_clean(self, tmp_path):
        path = write(tmp_path, "model.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SampleDrop(FaultSpec):
                kind = "drop"
                rate: float = 0.0
                burst_mean: float = 1.0
        """)
        assert audit_fault_tokens(path, "model.py") == []

    def test_token_override_omitting_a_field_is_caught(self, tmp_path):
        path = write(tmp_path, "model.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class PcSkid(FaultSpec):
                kind = "skid"
                distribution: str = "exponential"
                scale: float = 0.0

                def token(self):
                    return (self.kind, self.scale)
        """)
        findings = audit_fault_tokens(path, "model.py")
        assert [f.rule for f in findings] == ["fault-token-incomplete"]
        assert "distribution" in findings[0].message

    def test_complete_token_override_is_clean(self, tmp_path):
        path = write(tmp_path, "model.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class PcSkid(FaultSpec):
                kind = "skid"
                distribution: str = "exponential"
                scale: float = 0.0

                def token(self):
                    return (self.kind, self.distribution, self.scale)
        """)
        assert audit_fault_tokens(path, "model.py") == []

    def test_kind_collision_is_caught(self, tmp_path):
        path = write(tmp_path, "model.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SampleDrop(FaultSpec):
                kind = "drop"
                rate: float = 0.0

            @dataclass(frozen=True)
            class BurstyDrop(FaultSpec):
                kind = "drop"
                rate: float = 0.0
        """)
        findings = audit_fault_tokens(path, "model.py")
        assert [f.rule for f in findings] == ["fault-kind-collision"]


class TestServiceFaultTokenAudit:
    """The token rules apply to the service-fault hierarchy too."""

    def test_service_spec_with_full_token_is_clean(self, tmp_path):
        path = write(tmp_path, "service.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class WorkerCrash(ServiceFaultSpec):
                kind = "worker-crash"
                shard: int = 0
                at_seq: int = 0
        """)
        assert audit_fault_tokens(path, "service.py") == []

    def test_service_token_override_omitting_a_field_is_caught(
            self, tmp_path):
        path = write(tmp_path, "service.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class TornSnapshot(ServiceFaultSpec):
                kind = "torn-snapshot"
                shard: int = 0
                at_seq: int = 0
                truncate: float = 0.5

                def token(self):
                    return (self.kind, self.shard, self.at_seq)
        """)
        findings = audit_fault_tokens(path, "service.py")
        assert [f.rule for f in findings] == ["fault-token-incomplete"]
        assert "truncate" in findings[0].message

    def test_service_kind_collision_is_caught(self, tmp_path):
        path = write(tmp_path, "service.py", """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class WorkerCrash(ServiceFaultSpec):
                kind = "worker-crash"
                shard: int = 0

            @dataclass(frozen=True)
            class WorkerKill(ServiceFaultSpec):
                kind = "worker-crash"
                shard: int = 0
        """)
        findings = audit_fault_tokens(path, "service.py")
        assert [f.rule for f in findings] == ["fault-kind-collision"]


class TestSnapshotFieldAudit:
    GOOD = """
        from dataclasses import dataclass

        SNAPSHOT_FIELDS = ("shard_id", "session")

        @dataclass
        class ShardSnapshot:
            shard_id: int
            session: object
    """

    def test_matching_schema_is_clean(self, tmp_path):
        path = write(tmp_path, "snapshot.py", self.GOOD)
        assert audit_snapshot_fields(path, "snapshot.py") == []

    def test_extra_dataclass_field_is_caught(self, tmp_path):
        path = write(tmp_path, "snapshot.py", """
            from dataclasses import dataclass

            SNAPSHOT_FIELDS = ("shard_id", "session")

            @dataclass
            class ShardSnapshot:
                shard_id: int
                session: object
                stash: dict
        """)
        findings = audit_snapshot_fields(path, "snapshot.py")
        assert [f.rule for f in findings] == ["snapshot-field-drift"]
        assert "stash" in findings[0].message

    def test_reordered_fields_are_caught(self, tmp_path):
        # Order is part of the schema: the payload dict is built in
        # SNAPSHOT_FIELDS order and checked positionally on decode.
        path = write(tmp_path, "snapshot.py", """
            from dataclasses import dataclass

            SNAPSHOT_FIELDS = ("session", "shard_id")

            @dataclass
            class ShardSnapshot:
                shard_id: int
                session: object
        """)
        findings = audit_snapshot_fields(path, "snapshot.py")
        assert [f.rule for f in findings] == ["snapshot-field-drift"]

    def test_non_literal_schema_tuple_is_caught(self, tmp_path):
        path = write(tmp_path, "snapshot.py", """
            from dataclasses import dataclass

            SNAPSHOT_FIELDS = tuple(sorted(["shard_id", "session"]))

            @dataclass
            class ShardSnapshot:
                shard_id: int
                session: object
        """)
        findings = audit_snapshot_fields(path, "snapshot.py")
        assert [f.rule for f in findings] == ["snapshot-field-drift"]
        assert "literal" in findings[0].message

    def test_missing_dataclass_is_caught(self, tmp_path):
        path = write(tmp_path, "snapshot.py", """
            SNAPSHOT_FIELDS = ("shard_id", "session")
        """)
        findings = audit_snapshot_fields(path, "snapshot.py")
        assert [f.rule for f in findings] == ["snapshot-field-drift"]
        assert "ShardSnapshot" in findings[0].message


def test_allowlist_stays_minimal():
    """Growing the exemption list must be a deliberate, reviewed act.

    ``telemetry`` is write-only observability plumbing;
    ``kernel_backend`` selects between bit-identical compiled kernel
    implementations (see ``test_kernel_backend_param_is_exempt`` for
    the contract that justifies it).
    """
    assert RESULT_INERT_PARAMS == {"telemetry", "kernel_backend"}


def test_repo_cache_keys_audit_clean():
    """The in-tree cache/base/fault modules pass the audit."""
    assert audit_cache_keys(REPO_ROOT) == []
