"""Concurrency/IPC lint: each rule on minimal dirty and clean sources."""

import textwrap

from repro.checks.concurrency import audit_messages, lint_concurrency

PATH = "src/repro/serve/fake.py"


def lint(source):
    return lint_concurrency(PATH, textwrap.dedent(source))


def audit(source):
    return audit_messages(PATH, textwrap.dedent(source))


def rules_of(findings):
    return {f.rule for f in findings}


class TestForkUnsafeGlobal:
    def test_mutable_module_dict_is_flagged(self):
        findings = lint("_registry = {}\n")
        assert rules_of(findings) == {"fork-unsafe-global"}
        assert "_registry" in findings[0].message

    def test_mutable_constructor_call_is_flagged(self):
        assert rules_of(lint("import collections\n"
                             "_events = collections.deque()\n")) \
            == {"fork-unsafe-global"}

    def test_instance_of_a_class_is_flagged(self):
        assert rules_of(lint("_BUS = EventBus()\n")) \
            == {"fork-unsafe-global"}

    def test_constant_case_literals_are_exempt(self):
        assert lint("FEEDS = {'gpd': 0, 'lpd': 1}\n"
                    "_RANKS = [1, 2, 3]\n") == []

    def test_constant_immutable_constructors_are_exempt(self):
        assert lint("import struct\n"
                    "_HEADER = struct.Struct('<IQI')\n"
                    "NAMES = frozenset({'a'})\n") == []

    def test_dunders_and_function_locals_are_exempt(self):
        assert lint("__all__ = ['f']\n"
                    "def f():\n"
                    "    cache = {}\n"
                    "    return cache\n") == []


class TestQueueNoTimeout:
    def test_blocking_get_without_timeout_is_flagged(self):
        findings = lint("def loop(in_q):\n"
                        "    return in_q.get()\n")
        assert rules_of(findings) == {"queue-no-timeout"}

    def test_blocking_put_on_queue_attribute_is_flagged(self):
        assert rules_of(lint("def send(self, msg):\n"
                             "    self.out_q.put(msg)\n")) \
            == {"queue-no-timeout"}

    def test_timeout_and_nowait_variants_are_clean(self):
        assert lint("def loop(in_q, out_q):\n"
                    "    m = in_q.get(timeout=0.05)\n"
                    "    out_q.put_nowait(m)\n"
                    "    out_q.put(m, block=False)\n") == []

    def test_mapping_get_is_out_of_scope(self):
        assert lint("def lookup(table, key):\n"
                    "    return table.get(key)\n") == []


class TestSignalHandler:
    def test_blocking_call_in_registered_handler_is_flagged(self):
        findings = lint("""\
            import signal, time

            def _on_term(signum, frame):
                time.sleep(1.0)

            def install():
                signal.signal(signal.SIGTERM, _on_term)
            """)
        assert rules_of(findings) == {"signal-handler-blocking"}
        assert "_on_term" in findings[0].message

    def test_flag_setting_handler_is_clean(self):
        assert lint("""\
            import signal

            def install(state):
                def _on_term(signum, frame):
                    state["terminated"] = True
                signal.signal(signal.SIGTERM, _on_term)
            """) == []

    def test_unregistered_function_may_block(self):
        assert lint("import time\n"
                    "def helper():\n"
                    "    time.sleep(0.1)\n") == []


class TestUnreapedWorker:
    SPAWN = ("import multiprocessing\n"
             "def start(ctx):\n"
             "    p = ctx.Process(target=print)\n"
             "    p.start()\n"
             "    return p\n")

    def test_spawn_without_reaping_is_flagged(self):
        assert rules_of(lint(self.SPAWN)) == {"unreaped-worker"}

    def test_join_alone_is_not_enough(self):
        assert rules_of(lint(
            self.SPAWN + "def stop(p):\n    p.join()\n")) \
            == {"unreaped-worker"}

    def test_join_plus_terminate_is_clean(self):
        assert lint(self.SPAWN
                    + "def stop(p):\n"
                      "    p.join(timeout=1.0)\n"
                      "    p.terminate()\n") == []


MESSAGES_OK = """\
    from dataclasses import dataclass

    PROTOCOL_VERSION = 1

    @dataclass(frozen=True)
    class Ping:
        seq: int

    MESSAGE_SCHEMA = {"Ping": ("seq",)}
    """


class TestMessageAudit:
    def test_conforming_module_is_clean(self):
        assert audit(MESSAGES_OK) == []

    def test_unpicklable_field_is_flagged(self):
        findings = audit("""\
            from dataclasses import dataclass
            from typing import Callable

            PROTOCOL_VERSION = 1

            @dataclass(frozen=True)
            class Ping:
                seq: int
                on_done: Callable[[int], None]

            MESSAGE_SCHEMA = {"Ping": ("seq", "on_done")}
            """)
        assert rules_of(findings) == {"message-field-unpicklable"}
        assert "Ping.on_done" in findings[0].message

    def test_missing_version_is_drift(self):
        findings = audit(MESSAGES_OK.replace(
            "PROTOCOL_VERSION = 1", ""))
        assert rules_of(findings) == {"message-schema-drift"}
        assert "PROTOCOL_VERSION" in findings[0].message

    def test_missing_schema_registry_is_drift(self):
        findings = audit(MESSAGES_OK.replace(
            'MESSAGE_SCHEMA = {"Ping": ("seq",)}', ""))
        assert rules_of(findings) == {"message-schema-drift"}

    def test_field_drift_is_reported_per_message(self):
        findings = audit(MESSAGES_OK.replace(
            '("seq",)', '("seq", "ghost")'))
        assert rules_of(findings) == {"message-schema-drift"}
        assert "Ping" in findings[0].message

    def test_stale_schema_entry_is_reported(self):
        findings = audit(MESSAGES_OK.replace(
            '{"Ping": ("seq",)}', '{"Ping": ("seq",), "Gone": ()}'))
        assert rules_of(findings) == {"message-schema-drift"}
        assert "Gone" in findings[0].message


class TestShippedTree:
    def test_shipped_messages_module_is_conformant(self):
        from pathlib import Path
        root = Path(__file__).resolve().parents[2]
        rel = "src/repro/serve/messages.py"
        source = (root / rel).read_text(encoding="utf-8")
        assert audit_messages(rel, source) == []
