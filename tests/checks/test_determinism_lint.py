"""Unit tests for the determinism lint rules."""

import textwrap

from repro.checks.determinism import lint_source
from repro.checks.suppress import SuppressionIndex


def lint(snippet):
    return lint_source("snippet.py", textwrap.dedent(snippet))


def rules(snippet):
    return [f.rule for f in lint(snippet)]


class TestUnseededRng:
    def test_global_random_module_draw(self):
        assert rules("""
            import random
            x = random.random()
        """) == ["unseeded-rng"]

    def test_from_import_draw(self):
        assert rules("""
            from random import randint
            x = randint(1, 6)
        """) == ["unseeded-rng"]

    def test_unseeded_random_instance(self):
        assert rules("""
            import random
            rng = random.Random()
        """) == ["unseeded-rng"]

    def test_seeded_random_instance_is_fine(self):
        assert rules("""
            import random
            rng = random.Random(7)
        """) == []

    def test_numpy_global_draw(self):
        assert rules("""
            import numpy as np
            x = np.random.rand(3)
        """) == ["unseeded-rng"]

    def test_numpy_aliased_submodule(self):
        assert rules("""
            import numpy.random as npr
            x = npr.randint(0, 10)
        """) == ["unseeded-rng"]

    def test_unseeded_default_rng(self):
        assert rules("""
            import numpy as np
            rng = np.random.default_rng()
        """) == ["unseeded-rng"]

    def test_seeded_default_rng_is_fine(self):
        assert rules("""
            import numpy as np
            rng = np.random.default_rng(123)
            x = rng.random()
        """) == []

    def test_from_import_default_rng(self):
        assert rules("""
            from numpy.random import default_rng
            rng = default_rng()
        """) == ["unseeded-rng"]

    def test_unrelated_random_attribute_is_fine(self):
        # A local object with a .random() method is not the module.
        assert rules("""
            x = obj.random()
        """) == []


class TestWallClock:
    def test_time_time(self):
        assert rules("""
            import time
            t = time.time()
        """) == ["wall-clock"]

    def test_from_import_time(self):
        assert rules("""
            from time import perf_counter
            t = perf_counter()
        """) == ["wall-clock"]

    def test_datetime_now(self):
        assert rules("""
            from datetime import datetime
            stamp = datetime.now()
        """) == ["wall-clock"]

    def test_simulated_time_is_fine(self):
        assert rules("""
            t = stream.total_cycles / frequency
        """) == []


class TestUnorderedIter:
    def test_for_over_set_literal(self):
        assert rules("""
            for x in {1, 2, 3}:
                print(x)
        """) == ["unordered-iter"]

    def test_for_over_set_call(self):
        assert rules("""
            for x in set(values):
                print(x)
        """) == ["unordered-iter"]

    def test_keys_union_binop(self):
        assert rules("""
            for k in a.keys() | b.keys():
                total += a.get(k, 0)
        """) == ["unordered-iter"]

    def test_sorted_wrapping_is_fine(self):
        assert rules("""
            for x in sorted(set(values)):
                print(x)
            for k in sorted(a.keys() | b.keys()):
                print(k)
        """) == []

    def test_list_of_set(self):
        assert rules("""
            items = list(set(values))
        """) == ["unordered-iter"]

    def test_join_of_set_comp(self):
        assert rules("""
            text = ",".join({str(v) for v in values})
        """) == ["unordered-iter"]

    def test_comprehension_over_set(self):
        assert rules("""
            doubled = [2 * x for x in {1, 2, 3}]
        """) == ["unordered-iter"]

    def test_dict_iteration_is_fine(self):
        # Dicts preserve insertion order; only sets are flagged.
        assert rules("""
            for k in mapping:
                print(k)
            for k in mapping.keys():
                print(k)
        """) == []

    def test_len_and_membership_are_fine(self):
        assert rules("""
            n = len(set(values))
            ok = x in {1, 2, 3}
        """) == []


class TestFloatEquality:
    def test_nonintegral_literal(self):
        findings = lint("""
            if r == 0.8:
                pass
        """)
        assert [f.rule for f in findings] == ["float-equality"]

    def test_not_equal(self):
        assert rules("""
            changed = value != 2.5
        """) == ["float-equality"]

    def test_integral_sentinels_are_fine(self):
        assert rules("""
            if total == 0.0 or scale == 1.0:
                pass
        """) == []

    def test_ordering_comparisons_are_fine(self):
        assert rules("""
            if r >= 0.8:
                pass
        """) == []


class TestSuppression:
    def test_trailing_allow(self):
        source = "import time\nt = time.time()  # repro: allow[wall-clock] diag\n"
        findings = lint_source("f.py", source)
        index = SuppressionIndex.from_source("f.py", source)
        assert [f for f in findings
                if not index.is_suppressed(f.rule, f.line)] == []
        assert index.unused_findings() == []

    def test_preceding_line_allow(self):
        source = ("import time\n"
                  "# repro: allow[wall-clock] diag\n"
                  "t = time.time()\n")
        findings = lint_source("f.py", source)
        index = SuppressionIndex.from_source("f.py", source)
        assert [f for f in findings
                if not index.is_suppressed(f.rule, f.line)] == []

    def test_wildcard_allow(self):
        source = "import time\nt = time.time()  # repro: allow[*]\n"
        index = SuppressionIndex.from_source("f.py", source)
        assert index.is_suppressed("wall-clock", 2)

    def test_wrong_rule_does_not_suppress(self):
        source = "import time\nt = time.time()  # repro: allow[unseeded-rng]\n"
        index = SuppressionIndex.from_source("f.py", source)
        assert not index.is_suppressed("wall-clock", 2)

    def test_unused_suppression_reported(self):
        source = "x = 1  # repro: allow[wall-clock]\n"
        index = SuppressionIndex.from_source("f.py", source)
        unused = index.unused_findings()
        assert len(unused) == 1
        assert unused[0].rule == "unused-suppression"

    def test_docstring_mention_is_not_a_suppression(self):
        source = '"""Use # repro: allow[wall-clock] to suppress."""\n'
        index = SuppressionIndex.from_source("f.py", source)
        assert index.unused_findings() == []

    def test_parse_error_reported(self):
        findings = lint_source("f.py", "def broken(:\n")
        assert [f.rule for f in findings] == ["parse-error"]
