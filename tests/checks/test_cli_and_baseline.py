"""End-to-end tests for the repro-check CLI, baseline and repo cleanliness."""

import json
from pathlib import Path

from repro.checks.baseline import Baseline
from repro.checks.cli import main
from repro.checks.findings import Finding, Severity
from repro.checks.registry import run_checks

REPO_ROOT = Path(__file__).resolve().parents[2]

DIRTY = "import time\nSTAMP = time.time()\n"
CLEAN = "import numpy as np\nRNG = np.random.default_rng(7)\n"


def make_project(tmp_path, source=DIRTY):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "mod.py").write_text(source, encoding="utf-8")
    return tmp_path


class TestCli:
    def test_clean_project_exits_zero(self, tmp_path, capsys):
        root = make_project(tmp_path, CLEAN)
        code = main(["--root", str(root), "--no-model-checker", "src"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_finding_exits_one(self, tmp_path, capsys):
        root = make_project(tmp_path)
        code = main(["--root", str(root), "--no-model-checker", "src"])
        assert code == 1
        out = capsys.readouterr().out
        assert "wall-clock" in out and "src/mod.py:2" in out

    def test_json_format(self, tmp_path, capsys):
        root = make_project(tmp_path)
        code = main(["--root", str(root), "--no-model-checker",
                     "--format", "json", "src"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["new"] == 1
        record = payload["new"][0]
        assert record["rule"] == "wall-clock"
        assert record["path"] == "src/mod.py"
        assert record["fingerprint"]

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = make_project(tmp_path)
        assert main(["--root", str(root), "--no-model-checker",
                     "--write-baseline", "src"]) == 0
        assert (root / "repro-check-baseline.json").exists()
        code = main(["--root", str(root), "--no-model-checker", "src"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_stale_baseline_entry_reported_but_passes(self, tmp_path,
                                                      capsys):
        root = make_project(tmp_path, CLEAN)
        Baseline(entries={"deadbeefdeadbeef": "gone"}).write(
            root / "repro-check-baseline.json")
        code = main(["--root", str(root), "--no-model-checker", "src"])
        assert code == 0
        assert "stale" in capsys.readouterr().out

    def test_unknown_rule_is_config_error(self, tmp_path):
        root = make_project(tmp_path, CLEAN)
        assert main(["--root", str(root), "--rules", "bogus"]) == 2

    def test_rule_filter(self, tmp_path):
        root = make_project(tmp_path)
        assert main(["--root", str(root), "--no-model-checker",
                     "--rules", "unseeded-rng", "src"]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "unseeded-rng" in out and "fsm-divergence" in out
        # Rules are grouped under their family headers.
        for family in ("determinism", "protocol", "concurrency", "twins"):
            assert f"[{family}]" in out
        assert "protocol-invariant" in out
        assert "twin-missing" in out

    def test_family_name_selects_all_its_rules(self, tmp_path):
        root = make_project(tmp_path)  # DIRTY carries wall-clock
        assert main(["--root", str(root), "--no-model-checker",
                     "--rules", "determinism", "src"]) == 1
        # ...and a family with no findings in this tree passes.
        assert main(["--root", str(root), "--no-model-checker",
                     "--rules", "twins", "src"]) == 0

    def test_family_and_rule_names_mix(self, tmp_path):
        root = make_project(tmp_path)
        assert main(["--root", str(root), "--no-model-checker",
                     "--rules", "twins,wall-clock", "src"]) == 1

    def test_bad_root_is_config_error(self, tmp_path):
        assert main(["--root", str(tmp_path / "absent")]) == 2


class TestFilteredSuppressionAudit:
    """Rule-filtered runs must not misjudge dormant suppressions."""

    SOURCE = ("import time\n"
              "T = time.time()  # repro: allow[wall-clock] fixture\n")

    def test_unrestricted_run_reports_stale_allows(self, tmp_path):
        root = make_project(
            tmp_path, "import numpy as np\n"
                      "X = 1  # repro: allow[wall-clock] nothing here\n")
        findings = run_checks(root, paths=("src",), model_checker=False)
        assert [f.rule for f in findings] == ["unused-suppression"]

    def test_filtered_run_skips_dormant_allows(self, tmp_path):
        # The allow names wall-clock, but only unseeded-rng ran: the
        # suppression never had a chance to fire, so it is dormant —
        # not stale — and must not be reported.
        root = make_project(
            tmp_path, "X = 1  # repro: allow[wall-clock] dormant\n")
        findings = run_checks(root, paths=("src",),
                              rules={"unseeded-rng"},
                              model_checker=False)
        assert findings == []

    def test_filtered_run_still_audits_active_rules(self, tmp_path):
        root = make_project(
            tmp_path, "X = 1  # repro: allow[wall-clock] stale\n")
        findings = run_checks(root, paths=("src",),
                              rules={"wall-clock", "unused-suppression"},
                              model_checker=False)
        assert [f.rule for f in findings] == ["unused-suppression"]

    def test_wildcard_allows_only_judged_unrestricted(self, tmp_path):
        root = make_project(
            tmp_path, "X = 1  # repro: allow[*] blanket\n")
        assert run_checks(root, paths=("src",),
                          rules={"wall-clock", "unused-suppression"},
                          model_checker=False) == []
        unrestricted = run_checks(root, paths=("src",),
                                  model_checker=False)
        assert [f.rule for f in unrestricted] == ["unused-suppression"]

    def test_serve_and_compiled_suppressions_are_live(self):
        # Every allow in the serving and compiled layers must still
        # suppress a real finding (the audit covers those paths too).
        findings = run_checks(REPO_ROOT)
        assert not [f for f in findings
                    if f.rule == "unused-suppression"
                    and ("serve/" in f.path or "telemetry/" in f.path
                         or "compiled/" in f.path)]


class TestBaseline:
    def finding(self, message="m"):
        return Finding(rule="wall-clock", severity=Severity.ERROR,
                       path="a.py", line=3, message=message)

    def test_roundtrip(self, tmp_path):
        baseline = Baseline.from_findings([self.finding()])
        path = tmp_path / "baseline.json"
        baseline.write(path)
        assert Baseline.load(path).entries == baseline.entries

    def test_split(self):
        known = self.finding("known")
        fresh = self.finding("fresh")
        baseline = Baseline.from_findings([known])
        new, accepted, stale = baseline.split([known, fresh])
        assert new == [fresh]
        assert accepted == [known]
        assert stale == []

    def test_fingerprint_ignores_line(self):
        a = self.finding()
        b = Finding(rule="wall-clock", severity=Severity.ERROR,
                    path="a.py", line=99, message="m")
        assert a.fingerprint() == b.fingerprint()

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == {}


class TestRepoIsClean:
    def test_repro_check_runs_clean_on_the_repo(self):
        """The acceptance gate: no findings, no baseline needed."""
        findings = run_checks(REPO_ROOT)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_repo_has_no_baseline_file(self):
        # The repo's contract is a clean run with an *empty* baseline;
        # if someone adds one, this test makes the grandfathering visible.
        assert not (REPO_ROOT / "repro-check-baseline.json").exists()
