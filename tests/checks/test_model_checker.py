"""Model-checker tests: the real machines verify, corrupted tables don't.

The mutation-style tests are the acceptance proof for the checker itself:
each one corrupts a single entry of a declarative transition table and
asserts that ``repro-check`` reports the divergence between the (still
correct) implementation and the (now wrong) spec.
"""

import dataclasses

from repro.checks.statemachine import (check_gpd_equivalence,
                                       check_gpd_trajectories,
                                       check_lpd_equivalence, check_spec,
                                       run_model_checker)
from repro.core.states import (LPD_DISSIMILAR, LPD_SIMILAR, PhaseState,
                               TransitionRule, gpd_machine_spec,
                               lpd_machine_spec)
from repro.core.thresholds import GpdThresholds, LpdThresholds


def replace_rule(spec, state, input_class, **changes):
    """Copy *spec* with one rule's fields changed."""
    rules = []
    hit = False
    for rule in spec.rules:
        if rule.state == state and rule.input == input_class:
            rule = dataclasses.replace(rule, **changes)
            hit = True
        rules.append(rule)
    assert hit, f"no rule ({state}, {input_class})"
    return dataclasses.replace(spec, rules=tuple(rules))


def drop_rule(spec, state, input_class):
    rules = tuple(r for r in spec.rules
                  if not (r.state == state and r.input == input_class))
    assert len(rules) == len(spec.rules) - 1
    return dataclasses.replace(spec, rules=rules)


class TestHealthySpecs:
    def test_lpd_spec_properties_hold(self):
        assert check_spec(lpd_machine_spec()) == []

    def test_gpd_spec_properties_hold(self):
        assert check_spec(gpd_machine_spec()) == []

    def test_gpd_spec_properties_hold_for_other_dwells(self):
        for dwell in (1, 3, 5):
            assert check_spec(gpd_machine_spec(dwell)) == []

    def test_lpd_implementation_matches_table(self):
        assert check_lpd_equivalence() == []

    def test_gpd_implementation_matches_table(self):
        assert check_gpd_equivalence() == []

    def test_gpd_trajectories_match_table(self):
        assert check_gpd_trajectories() == []

    def test_full_model_checker_is_clean(self):
        assert run_model_checker() == []

    def test_gpd_equivalence_with_nondefault_thresholds(self):
        th = GpdThresholds(th1=0.02, th2=0.06, th3=0.2, th4=0.5,
                           dwell_intervals=3)
        spec = gpd_machine_spec(3)
        assert check_gpd_equivalence(spec, th) == []
        assert check_gpd_trajectories(spec, th) == []

    def test_lpd_equivalence_with_nondefault_threshold(self):
        th = LpdThresholds(r_threshold=0.5)
        assert check_lpd_equivalence(thresholds=th) == []


class TestLpdMutations:
    def test_wrong_next_state_is_caught(self):
        # Corrupt Figure 12: claim LESS_UNSTABLE + similar stays put
        # instead of declaring a stable phase.
        mutated = replace_rule(
            lpd_machine_spec(), PhaseState.LESS_UNSTABLE.value, LPD_SIMILAR,
            next_state=PhaseState.LESS_UNSTABLE.value, phase_change=False)
        findings = check_lpd_equivalence(mutated)
        assert any(f.rule == "fsm-divergence" for f in findings)

    def test_wrong_phase_change_flag_is_caught_by_spec_check(self):
        mutated = replace_rule(
            lpd_machine_spec(), PhaseState.LESS_STABLE.value, LPD_DISSIMILAR,
            phase_change=False)
        findings = check_spec(mutated)
        assert any(f.rule == "fsm-phase-change-label" for f in findings)

    def test_wrong_phase_change_flag_is_caught_by_equivalence(self):
        mutated = replace_rule(
            lpd_machine_spec(), PhaseState.STABLE.value, LPD_DISSIMILAR,
            phase_change=True)
        findings = check_lpd_equivalence(mutated)
        assert any(f.rule == "fsm-divergence" for f in findings)

    def test_wrong_stable_set_behavior_is_caught(self):
        # Claim the stable set keeps updating after stabilization.
        mutated = replace_rule(
            lpd_machine_spec(), PhaseState.STABLE.value, LPD_SIMILAR,
            updates_stable_set=True)
        findings = check_lpd_equivalence(mutated)
        assert any("stable set" in f.message for f in findings)

    def test_missing_rule_is_caught(self):
        mutated = drop_rule(lpd_machine_spec(),
                            PhaseState.UNSTABLE.value, LPD_DISSIMILAR)
        findings = check_spec(mutated)
        assert any(f.rule == "fsm-incomplete" for f in findings)

    def test_duplicate_rule_is_caught(self):
        spec = lpd_machine_spec()
        extra = TransitionRule(PhaseState.UNSTABLE.value, LPD_SIMILAR,
                               PhaseState.STABLE.value, phase_change=True)
        mutated = dataclasses.replace(spec, rules=spec.rules + (extra,))
        findings = check_spec(mutated)
        assert any(f.rule == "fsm-nondeterministic" for f in findings)

    def test_unknown_target_state_is_caught(self):
        mutated = replace_rule(
            lpd_machine_spec(), PhaseState.UNSTABLE.value, LPD_SIMILAR,
            next_state="limbo")
        findings = check_spec(mutated)
        assert any(f.rule == "fsm-unknown-state" for f in findings)

    def test_unreachable_state_is_caught(self):
        # Divert every edge into LESS_UNSTABLE away from it.
        mutated = replace_rule(
            lpd_machine_spec(), PhaseState.UNSTABLE.value, LPD_SIMILAR,
            next_state=PhaseState.UNSTABLE.value)
        findings = check_spec(mutated)
        assert any(f.rule == "fsm-unreachable-state" for f in findings)


class TestGpdMutations:
    def test_wrong_collapse_target_is_caught(self):
        # Claim a collapse from STABLE only demotes to the grace state.
        mutated = replace_rule(
            gpd_machine_spec(), PhaseState.STABLE.value, "collapse_thin",
            next_state=PhaseState.LESS_UNSTABLE.value, phase_change=False)
        findings = check_gpd_equivalence(mutated)
        assert any(f.rule == "fsm-divergence" for f in findings)

    def test_wrong_thickness_gate_is_caught(self):
        # Claim a thick band still lets the detector leave UNSTABLE.
        spec = gpd_machine_spec()
        mutated = replace_rule(
            spec, PhaseState.UNSTABLE.value, "tight_thick",
            next_state=f"{PhaseState.LESS_STABLE.value}@2")
        findings = check_gpd_equivalence(mutated)
        assert any(f.rule == "fsm-divergence" for f in findings)

    def test_wrong_dwell_tick_is_caught(self):
        # Claim the dwell timer expires one interval early.
        mutated = replace_rule(
            gpd_machine_spec(), f"{PhaseState.LESS_STABLE.value}@2",
            "tight_thin", next_state=PhaseState.STABLE.value,
            phase_change=True)
        findings = check_gpd_equivalence(mutated)
        assert any(f.rule == "fsm-divergence" for f in findings)

    def test_trajectory_replay_catches_divergence(self):
        # The same early-expiry corruption must also fail the black-box
        # trajectory replay (no private state poking involved).
        mutated = replace_rule(
            gpd_machine_spec(), f"{PhaseState.LESS_STABLE.value}@2",
            "tight_thin", next_state=PhaseState.STABLE.value,
            phase_change=True)
        findings = check_gpd_trajectories(mutated)
        assert any(f.rule in ("fsm-divergence", "fsm-incomplete")
                   for f in findings)

    def test_run_model_checker_reports_mutation(self):
        mutated = replace_rule(
            gpd_machine_spec(), PhaseState.LESS_UNSTABLE.value,
            "tight_thin", next_state=PhaseState.UNSTABLE.value,
            phase_change=True)
        findings = run_model_checker(gpd_spec=mutated)
        assert any(f.rule == "fsm-divergence" for f in findings)

    def test_dwell_mismatch_is_caught(self):
        # Spec built for dwell=3 but implementation runs dwell=2.
        spec = gpd_machine_spec(3)
        findings = check_gpd_equivalence(spec, GpdThresholds())
        assert any(f.rule == "fsm-divergence" for f in findings)


def test_mutated_initial_state_breaks_reachability():
    spec = lpd_machine_spec()
    mutated = dataclasses.replace(spec, initial=PhaseState.STABLE.value)
    findings = check_spec(mutated)
    # UNSTABLE is still reachable (dissimilar edges), but the machine no
    # longer matches the implementation's start state.
    assert check_lpd_equivalence(mutated) != [] or findings != []
