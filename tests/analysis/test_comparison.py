"""Tests for the detector-zoo comparison helper."""

import pytest

from repro.analysis.comparison import SchemeResult, compare_detectors
from tests.conftest import model_stream


def stream_and_binary(name="187.facerec", scale=0.2):
    model, stream = model_stream(name, scale, period=45_000, seed=7)
    return stream, model.binary


class TestCompareDetectors:
    def test_all_schemes_run(self):
        stream, binary = stream_and_binary()
        results = compare_detectors(stream, binary)
        assert [r.scheme for r in results] == [
            "centroid", "composite", "bbv", "working_set", "lpd"]
        for result in results:
            assert isinstance(result, SchemeResult)
            assert 0.0 <= result.stable_fraction <= 1.0
            assert result.phase_changes >= 0
        assert results[-1].scope == "local"
        assert all(r.scope == "global" for r in results[:-1])

    def test_local_beats_global_on_the_flapper(self):
        stream, binary = stream_and_binary("187.facerec")
        results = {r.scheme: r for r in compare_detectors(stream, binary)}
        assert results["lpd"].phase_changes \
            < results["centroid"].phase_changes
        assert results["lpd"].stable_fraction \
            > results["centroid"].stable_fraction

    def test_global_subset_without_binary(self):
        stream, _binary = stream_and_binary()
        results = compare_detectors(stream,
                                    schemes=("centroid", "bbv"))
        assert len(results) == 2

    def test_lpd_requires_binary(self):
        stream, _binary = stream_and_binary()
        with pytest.raises(ValueError, match="binary"):
            compare_detectors(stream, schemes=("lpd",))

    def test_unknown_scheme_rejected(self):
        stream, binary = stream_and_binary()
        with pytest.raises(ValueError, match="unknown scheme"):
            compare_detectors(stream, binary, schemes=("oracle",))

    def test_stable_program_all_schemes_stable(self):
        stream, binary = stream_and_binary("171.swim", 0.2)
        for result in compare_detectors(stream, binary):
            assert result.stable_fraction > 0.8, result.scheme
            # The composite detector's DPI channel occasionally blips on
            # sampling noise; everything stays in the single digits.
            assert result.phase_changes <= 6, result.scheme
