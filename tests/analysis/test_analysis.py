"""Unit tests for the analysis helpers: metrics, charts, tables."""

import numpy as np
import pytest

from repro.analysis.charts import RegionChart, phase_line
from repro.analysis.metrics import (gpd_phase_changes,
                                    gpd_stable_percentage,
                                    ground_truth_region_matrix,
                                    lpd_region_breakdown, run_gpd,
                                    select_top_regions)
from repro.analysis.tables import format_cell, format_table
from repro.core import MonitorThresholds
from repro.costs import CostLedger
from repro.monitor import RegionMonitor
from repro.program.behavior import RegionSpec, bottleneck_profile
from repro.program.binary import BinaryBuilder, loop
from repro.program.workload import Steady, WorkloadScript, mixture
from repro.sampling import simulate_sampling


def small_setup():
    builder = BinaryBuilder(base=0x10000)
    builder.procedure("p_a", [loop("a", body=12)], at=0x20000)
    builder.procedure("p_b", [loop("b", body=12)], at=0x40000)
    binary = builder.build()
    regions = {
        "a": RegionSpec("a", *binary.loop_span("a"),
                        profiles={"main": bottleneck_profile(16, {4: 90.0})}),
        "b": RegionSpec("b", *binary.loop_span("b"),
                        profiles={"main": bottleneck_profile(16, {9: 90.0})}),
    }
    workload = WorkloadScript([
        Steady(30_000_000, mixture(("a", 0.7), ("b", 0.3))),
    ])
    stream = simulate_sampling(regions, workload, 3000, seed=1)
    return binary, stream


class TestMetrics:
    def test_run_gpd_charges_ledger(self):
        _binary, stream = small_setup()
        ledger = CostLedger()
        detector = run_gpd(stream, 512, ledger=ledger)
        assert detector.intervals_seen == stream.n_intervals(512)
        assert ledger.gpd_ops > 0

    def test_phase_change_and_stable_wrappers(self):
        _binary, stream = small_setup()
        changes = gpd_phase_changes(stream, 512)
        stable = gpd_stable_percentage(stream, 512)
        detector = run_gpd(stream, 512)
        assert changes == len(detector.events)
        assert stable == pytest.approx(
            100 * detector.stable_time_fraction())

    def test_lpd_region_breakdown_sorted_by_samples(self):
        binary, stream = small_setup()
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=512))
        monitor.process_stream(stream)
        rows = lpd_region_breakdown(monitor)
        assert len(rows) == 2
        assert rows[0]["samples"] >= rows[1]["samples"]
        assert {"region", "phase_changes", "stable_pct"} <= rows[0].keys()

    def test_select_top_regions(self):
        binary, stream = small_setup()
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=512))
        monitor.process_stream(stream)
        top = select_top_regions(monitor, 1)
        assert len(top) == 1
        assert top[0] == f"{0x20000:x}-{0x20000 + 64:x}"

    def test_ground_truth_matrix(self):
        _binary, stream = small_setup()
        names, matrix = ground_truth_region_matrix(stream, 512)
        assert matrix.shape == (stream.n_intervals(512), len(names))
        assert matrix.sum() == stream.n_intervals(512) * 512


class TestRegionChart:
    def chart(self):
        matrix = np.array([[10, 0], [8, 2], [3, 8], [0, 10]])
        phase = np.array([1, 1, 0, 0])
        return RegionChart(("alpha", "beta"), matrix, phase)

    def test_top_regions(self):
        chart = self.chart()
        assert chart.top_regions(1) == [("alpha", 21)]
        assert chart.top_regions(2)[1] == ("beta", 20)

    def test_region_series(self):
        chart = self.chart()
        assert chart.region_series("beta").tolist() == [0, 2, 8, 10]
        with pytest.raises(KeyError):
            chart.region_series("ghost")

    def test_downsample(self):
        chart = self.chart().downsampled(2)
        assert chart.n_intervals == 2
        assert chart.matrix[0, 0] == pytest.approx(9.0)
        assert chart.phase.tolist() == [1.0, 0.0]

    def test_downsample_validation(self):
        with pytest.raises(ValueError):
            self.chart().downsampled(0)

    def test_render_ascii(self):
        text = self.chart().render_ascii(width=4, top_k=2)
        lines = text.splitlines()
        assert len(lines) == 3  # two regions + phase line
        assert "alpha" in lines[0]
        assert "^" in lines[-1] and "_" in lines[-1]

    def test_phase_line_from_detector(self):
        from repro.core import GlobalPhaseDetector
        detector = GlobalPhaseDetector()
        for _ in range(10):
            detector.observe_centroid(1000.0)
        line = phase_line(detector)
        assert line[0] == 1      # warmup = unstable
        assert line[-1] == 0     # settled stable


class TestTables:
    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(0.0) == "0"
        assert format_cell(3.14159) == "3.14"
        assert format_cell(0.1234567) == "0.1235"
        assert format_cell(123456.0) == "123,456"
        assert format_cell("text") == "text"

    def test_format_table_alignment(self):
        table = format_table(["name", "count"],
                             [["a", 1], ["bbbb", 22]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        # Numeric column right-aligned: the ones digit lines up.
        assert lines[3].rstrip().endswith("1")
        assert lines[4].rstrip().endswith("22")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table
