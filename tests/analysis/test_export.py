"""Tests for experiment-result export (JSON/CSV) and the --out flag."""

import csv
import json

import numpy as np
import pytest

from repro.analysis.export import (export_results, result_to_dict,
                                   write_csv, write_json)
from repro.experiments.base import ExperimentResult


def sample_result(experiment_id="fig99"):
    return ExperimentResult(
        experiment_id=experiment_id,
        title="Synthetic result",
        headers=["name", "count", "ratio"],
        rows=[["alpha", 3, 0.5], ["beta", np.int64(7), np.float64(1.25)]],
        notes="a note",
        extras={"unserializable": object()})


class TestResultToDict:
    def test_roundtrips_core_fields(self):
        data = result_to_dict(sample_result())
        assert data["experiment_id"] == "fig99"
        assert data["headers"] == ["name", "count", "ratio"]
        assert data["rows"][0] == ["alpha", 3, 0.5]
        assert data["notes"] == "a note"
        assert "extras" not in data  # extras hold live objects, dropped

    def test_numpy_scalars_coerced(self):
        data = result_to_dict(sample_result())
        assert data["rows"][1] == ["beta", 7, 1.25]
        json.dumps(data)  # must be serializable


class TestWriters:
    def test_write_json(self, tmp_path):
        path = write_json(sample_result(), tmp_path / "deep/dir/out.json")
        loaded = json.loads(path.read_text())
        assert loaded["title"] == "Synthetic result"

    def test_write_csv(self, tmp_path):
        path = write_csv(sample_result(), tmp_path / "out.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["name", "count", "ratio"]
        assert rows[1] == ["alpha", "3", "0.5"]
        assert len(rows) == 3

    def test_export_results_names_by_id(self, tmp_path):
        results = [sample_result("fig01"), sample_result("fig02")]
        written = export_results(results, tmp_path)
        names = sorted(p.name for p in written)
        assert names == ["fig01.csv", "fig01.json", "fig02.csv",
                         "fig02.json"]

    def test_export_single_format(self, tmp_path):
        written = export_results([sample_result()], tmp_path,
                                 formats=("json",))
        assert [p.suffix for p in written] == [".json"]

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown export formats"):
            export_results([sample_result()], tmp_path, formats=("xml",))


class TestRunnerIntegration:
    def test_out_flag_writes_files(self, tmp_path, capsys):
        from repro.experiments.runner import main

        out = tmp_path / "results"
        assert main(["fig08", "--out", str(out)]) == 0
        assert (out / "fig08.json").exists()
        assert (out / "fig08.csv").exists()
        assert "exported 2 files" in capsys.readouterr().out
