"""Tests for phase classification and next-phase prediction."""

import numpy as np
import pytest

from repro.analysis.metrics import ground_truth_region_matrix
from repro.analysis.prediction import (MarkovPhasePredictor,
                                       PhaseClassifier, PredictionReport)
from repro.errors import ConfigError

PHASE_A = np.array([0.8, 0.1, 0.1])
PHASE_B = np.array([0.1, 0.8, 0.1])
PHASE_C = np.array([0.1, 0.1, 0.8])


def noisy(vector, rng, sigma=0.02):
    return np.clip(vector + rng.normal(0.0, sigma, vector.size), 0.0, 1.0)


class TestPhaseClassifier:
    def test_identical_intervals_share_a_phase(self):
        classifier = PhaseClassifier()
        ids = [classifier.classify(PHASE_A) for _ in range(5)]
        assert ids == [0] * 5
        assert classifier.n_phases == 1

    def test_distinct_behaviors_get_distinct_phases(self):
        classifier = PhaseClassifier()
        a = classifier.classify(PHASE_A)
        b = classifier.classify(PHASE_B)
        c = classifier.classify(PHASE_C)
        assert len({a, b, c}) == 3

    def test_recurrence_reuses_ids(self):
        rng = np.random.default_rng(3)
        classifier = PhaseClassifier()
        sequence = [PHASE_A, PHASE_B] * 10
        ids = [classifier.classify(noisy(v, rng)) for v in sequence]
        assert classifier.n_phases == 2
        assert ids == [0, 1] * 10

    def test_signature_is_running_mean(self):
        # Threshold wide enough that both vectors join one phase.
        classifier = PhaseClassifier(distance_threshold=0.5)
        classifier.classify(np.array([1.0, 0.0]))
        classifier.classify(np.array([0.8, 0.2]))
        signature = classifier.phase_signature(0)
        assert signature[0] == pytest.approx(0.9)
        assert signature.sum() == pytest.approx(1.0)

    def test_max_phases_cap(self):
        classifier = PhaseClassifier(distance_threshold=0.01, max_phases=2)
        vectors = [np.array([1.0, 0, 0]), np.array([0, 1.0, 0]),
                   np.array([0, 0, 1.0]), np.array([0.5, 0.5, 0])]
        ids = [classifier.classify(v) for v in vectors]
        assert classifier.n_phases == 2
        assert max(ids) <= 1

    def test_zero_vector_handled(self):
        classifier = PhaseClassifier()
        assert classifier.classify(np.zeros(3)) == 0

    def test_dimension_mismatch_rejected(self):
        classifier = PhaseClassifier()
        classifier.classify(PHASE_A)
        with pytest.raises(ConfigError):
            classifier.classify(np.array([0.5, 0.5]))

    def test_unknown_phase_lookup(self):
        with pytest.raises(ConfigError):
            PhaseClassifier().phase_signature(0)

    def test_phase_signature_returns_a_copy(self):
        classifier = PhaseClassifier()
        classifier.classify(PHASE_A)
        classifier.phase_signature(0)[:] = 0.0
        assert classifier.phase_signature(0).sum() == pytest.approx(1.0)

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            PhaseClassifier(distance_threshold=0.0)
        with pytest.raises(ConfigError):
            PhaseClassifier(max_phases=0)

    def test_classify_matrix(self):
        classifier = PhaseClassifier()
        matrix = np.stack([PHASE_A, PHASE_A, PHASE_B])
        assert classifier.classify_matrix(matrix) == [0, 0, 1]


class TestMarkovPredictor:
    def test_no_prediction_without_history(self):
        predictor = MarkovPhasePredictor()
        assert predictor.predict() is None
        assert predictor.report().accuracy == 0.0

    def test_perfect_on_periodic_sequence(self):
        predictor = MarkovPhasePredictor(order=1)
        report = predictor.observe_sequence([0, 1] * 20)
        # After learning the alternation, everything is predictable.
        assert report.accuracy > 0.9

    def test_order_two_needed_for_period_three_with_repeats(self):
        # Sequence 0,0,1,0,0,1...: after a 0, the next is 0 or 1 depending
        # on the *previous two* — order 1 caps near 2/3, order 2 nails it.
        sequence = [0, 0, 1] * 30
        low = MarkovPhasePredictor(order=1).observe_sequence(sequence)
        high = MarkovPhasePredictor(order=2).observe_sequence(sequence)
        assert high.accuracy > low.accuracy
        assert high.accuracy > 0.9

    def test_random_sequence_near_chance(self):
        rng = np.random.default_rng(0)
        sequence = list(rng.integers(0, 4, size=400))
        report = MarkovPhasePredictor(order=1).observe_sequence(sequence)
        assert report.accuracy < 0.45

    def test_constant_sequence(self):
        report = MarkovPhasePredictor().observe_sequence([7] * 10)
        assert report.accuracy == 1.0

    def test_report_counts(self):
        predictor = MarkovPhasePredictor()
        predictor.observe(0)       # no prediction scored (no history)
        predictor.observe(0)
        report = predictor.report()
        assert isinstance(report, PredictionReport)
        assert report.predictions == 1

    def test_order_validation(self):
        with pytest.raises(ConfigError):
            MarkovPhasePredictor(order=0)

    def test_unseen_context_falls_back_to_shorter_order(self):
        predictor = MarkovPhasePredictor(order=2)
        predictor.observe_sequence([0, 1, 0, 1])
        # History is now (0, 1); poison it to the never-seen (1, 1) while
        # keeping the order-1 context 1 -> 0 intact.
        predictor._history = [1, 1]
        assert predictor.predict() == 0

    def test_last_value_fallback_with_empty_table(self):
        predictor = MarkovPhasePredictor(order=1)
        predictor.observe(5)  # learns nothing (no prior history)
        assert predictor.predict() == 5

    def test_history_is_bounded_by_order(self):
        predictor = MarkovPhasePredictor(order=3)
        predictor.observe_sequence(list(range(10)))
        assert predictor._history == [7, 8, 9]


class TestEndToEnd:
    def test_facerec_phases_are_predictable(self):
        """The paper's footnote-1 scenario: facerec's periodic two-set
        switching yields a recurring, *predictable* phase sequence — the
        information a next-phase prefetcher would exploit."""
        from repro.program.spec2000 import get_benchmark
        from repro.sampling import simulate_sampling

        model = get_benchmark("187.facerec", 0.3)
        stream = simulate_sampling(model.regions, model.workload, 45_000,
                                   seed=7)
        _names, matrix = ground_truth_region_matrix(stream, 2032)
        ids = PhaseClassifier().classify_matrix(matrix)
        assert 2 <= max(ids) + 1 <= 6  # a few recurring phases
        report = MarkovPhasePredictor(order=2).observe_sequence(ids)
        assert report.accuracy > 0.8

    def test_multi_phase_program_less_predictable_than_periodic(self):
        from repro.program.spec2000 import get_benchmark
        from repro.sampling import simulate_sampling

        def accuracy(name):
            model = get_benchmark(name, 0.3)
            stream = simulate_sampling(model.regions, model.workload,
                                       45_000, seed=7)
            _names, matrix = ground_truth_region_matrix(stream, 2032)
            ids = PhaseClassifier().classify_matrix(matrix)
            return MarkovPhasePredictor(order=2).observe_sequence(
                ids).accuracy

        assert accuracy("187.facerec") >= accuracy("254.gap") - 0.05
