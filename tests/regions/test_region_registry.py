"""Unit tests for Region and RegionRegistry."""

import pytest

from repro.errors import RegionError
from repro.regions.region import Region, RegionKind
from repro.regions.registry import RegionRegistry


class TestRegion:
    def test_paper_style_name(self):
        region = Region(rid=0, start=0x146F0, end=0x14770)
        assert region.name == "146f0-14770"
        assert region.n_instructions == 32

    def test_span_validation(self):
        with pytest.raises(RegionError):
            Region(rid=0, start=0x1000, end=0x1000)
        with pytest.raises(RegionError):
            Region(rid=0, start=0x1000, end=0x1001)
        with pytest.raises(RegionError):
            Region(rid=0, start=-4, end=0x1000)

    def test_contains_and_overlaps(self):
        a = Region(rid=0, start=0x1000, end=0x1100)
        b = Region(rid=1, start=0x1080, end=0x1200)
        c = Region(rid=2, start=0x1100, end=0x1200)
        assert a.contains(0x1000)
        assert not a.contains(0x1100)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # half-open ranges just touch


class TestRegistry:
    def test_add_assigns_sequential_ids(self):
        registry = RegionRegistry()
        r0 = registry.add(0x1000, 0x1100)
        r1 = registry.add(0x2000, 0x2100)
        assert (r0.rid, r1.rid) == (0, 1)
        assert len(registry) == 2
        assert [r.rid for r in registry] == [0, 1]

    def test_duplicate_span_rejected(self):
        registry = RegionRegistry()
        registry.add(0x1000, 0x1100)
        with pytest.raises(RegionError):
            registry.add(0x1000, 0x1100)

    def test_remove(self):
        registry = RegionRegistry()
        region = registry.add(0x1000, 0x1100)
        removed = registry.remove(region.rid)
        assert removed is region
        assert len(registry) == 0
        with pytest.raises(RegionError):
            registry.remove(region.rid)
        with pytest.raises(RegionError):
            registry.get(region.rid)

    def test_version_bumps_on_mutation(self):
        registry = RegionRegistry()
        v0 = registry.version
        region = registry.add(0x1000, 0x1100)
        v1 = registry.version
        registry.remove(region.rid)
        v2 = registry.version
        assert v0 < v1 < v2

    def test_removed_span_can_be_readded(self):
        registry = RegionRegistry()
        region = registry.add(0x1000, 0x1100)
        registry.remove(region.rid)
        again = registry.add(0x1000, 0x1100)
        assert again.rid != region.rid

    def test_covering_finds_overlapping_regions(self):
        registry = RegionRegistry()
        outer = registry.add(0x1000, 0x1200)
        inner = registry.add(0x1080, 0x1100)
        hits = registry.covering(0x1090)
        assert [r.rid for r in hits] == [outer.rid, inner.rid]
        assert registry.covering(0x2000) == []

    def test_span_queries(self):
        registry = RegionRegistry()
        registry.add(0x1000, 0x1200)
        assert registry.has_span(0x1000, 0x1200)
        assert not registry.has_span(0x1000, 0x1100)
        assert registry.span_covered(0x1080, 0x1100)
        assert not registry.span_covered(0x1080, 0x1300)

    def test_contains_by_id(self):
        registry = RegionRegistry()
        region = registry.add(0x1000, 0x1100)
        assert region.rid in registry
        assert 99 not in registry

    def test_kind_and_formation_interval_recorded(self):
        registry = RegionRegistry()
        region = registry.add(0x1000, 0x1100,
                              kind=RegionKind.INTERPROCEDURAL,
                              formed_at_interval=7)
        assert region.kind is RegionKind.INTERPROCEDURAL
        assert region.formed_at_interval == 7
