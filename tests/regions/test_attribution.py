"""Unit tests for the sample-to-region attribution strategies."""

import numpy as np
import pytest

from repro.costs import CostLedger
from repro.regions.attribution import (ListAttributor, ScalarListAttributor,
                                       ScalarTreeAttributor, TreeAttributor,
                                       make_attributor)
from repro.regions.registry import RegionRegistry


def registry_with(*spans):
    registry = RegionRegistry()
    for start, end in spans:
        registry.add(start, end)
    return registry


class TestAttributionCorrectness:
    def test_samples_split_between_regions_and_ucr(self):
        registry = registry_with((0x1000, 0x1010), (0x2000, 0x2010))
        attributor = ListAttributor(registry)
        pcs = np.array([0x1000, 0x1004, 0x2008, 0x3000, 0x3000])
        result = attributor.attribute(pcs)
        assert result.n_samples == 5
        assert result.total_for(0) == 2
        assert result.total_for(1) == 1
        assert list(result.ucr_pcs) == [0x3000, 0x3000]
        assert result.ucr_fraction == pytest.approx(0.4)

    def test_histogram_slots(self):
        registry = registry_with((0x1000, 0x1010))
        result = ListAttributor(registry).attribute(
            np.array([0x1004, 0x1004, 0x100C]))
        assert list(result.region_counts[0]) == [0, 2, 0, 1]

    def test_overlapping_regions_both_incremented(self):
        # The paper: "when samples are obtained from overlapping regions,
        # we increment counters for all overlapping regions".
        registry = registry_with((0x1000, 0x1100), (0x1040, 0x1080))
        result = ListAttributor(registry).attribute(
            np.array([0x1050, 0x1050]))
        assert result.total_for(0) == 2
        assert result.total_for(1) == 2
        assert result.n_hits == 4  # stacked above the sample count

    def test_empty_interval(self):
        registry = registry_with((0x1000, 0x1010))
        result = ListAttributor(registry).attribute(
            np.array([], dtype=np.int64))
        assert result.n_samples == 0
        assert result.ucr_fraction == 0.0
        assert result.region_counts == {}

    def test_no_regions_all_ucr(self):
        result = ListAttributor(RegionRegistry()).attribute(
            np.array([0x1000, 0x2000]))
        assert result.ucr_fraction == 1.0

    @pytest.mark.parametrize("seed", range(4))
    def test_list_and_tree_agree(self, seed):
        rng = np.random.default_rng(seed)
        registry = RegionRegistry()
        for _ in range(12):
            start = int(rng.integers(0, 0x4000)) & ~0x3
            length = (int(rng.integers(4, 0x200)) & ~0x3) or 4
            if not registry.has_span(start, start + length):
                registry.add(start, start + length)
        pcs = (rng.integers(0, 0x5000, size=3000) & ~0x3).astype(np.int64)
        list_result = ListAttributor(registry).attribute(pcs)
        tree_result = TreeAttributor(registry).attribute(pcs)
        assert list_result.n_hits == tree_result.n_hits
        assert sorted(list_result.region_counts) \
            == sorted(tree_result.region_counts)
        for rid, counts in list_result.region_counts.items():
            assert np.array_equal(counts, tree_result.region_counts[rid])
        assert np.array_equal(np.sort(list_result.ucr_pcs),
                              np.sort(tree_result.ucr_pcs))


class TestCostCharging:
    def test_list_cost_scales_with_region_count(self):
        pcs = np.full(1000, 0x1004, dtype=np.int64)
        few_ledger = CostLedger()
        few = ListAttributor(registry_with((0x1000, 0x1010)), few_ledger)
        few.attribute(pcs)
        many_ledger = CostLedger()
        many_registry = registry_with(
            *[(0x1000 + i * 0x100, 0x1010 + i * 0x100) for i in range(50)])
        many = ListAttributor(many_registry, many_ledger)
        many.attribute(pcs)
        assert many_ledger.attribution_ops > 20 * few_ledger.attribution_ops

    def test_tree_cost_scales_sublinearly(self):
        pcs = np.full(1000, 0x1004, dtype=np.int64)

        def tree_cost(n_regions):
            ledger = CostLedger()
            registry = registry_with(
                *[(0x1000 + i * 0x100, 0x1010 + i * 0x100)
                  for i in range(n_regions)])
            TreeAttributor(registry, ledger).attribute(pcs)
            return ledger.attribution_ops

        assert tree_cost(256) < 4 * tree_cost(4)

    def test_tree_beats_list_with_many_regions(self):
        registry = registry_with(
            *[(0x1000 + i * 0x100, 0x1010 + i * 0x100) for i in range(200)])
        rng = np.random.default_rng(0)
        pcs = (0x1000 + (rng.integers(0, 200, size=2032) * 0x100)
               + 4).astype(np.int64)
        list_ledger, tree_ledger = CostLedger(), CostLedger()
        ListAttributor(registry, list_ledger).attribute(pcs)
        TreeAttributor(registry, tree_ledger).attribute(pcs)
        assert tree_ledger.attribution_ops < list_ledger.attribution_ops

    def test_list_beats_tree_with_few_regions(self):
        # The paper: "for benchmarks with a small number of regions, the
        # cost is slightly higher from the increased cost of maintaining
        # the tree".
        registry = registry_with((0x1000, 0x1010), (0x2000, 0x2010))
        pcs = np.full(2032, 0x1004, dtype=np.int64)
        list_ledger, tree_ledger = CostLedger(), CostLedger()
        ListAttributor(registry, list_ledger).attribute(pcs)
        tree = TreeAttributor(registry, tree_ledger)
        tree.attribute(pcs)
        total_tree = (tree_ledger.attribution_ops
                      + tree_ledger.tree_maintenance_ops)
        assert total_tree >= list_ledger.attribution_ops * 0.5

    def test_tree_rebuild_only_on_version_change(self):
        registry = registry_with((0x1000, 0x1010))
        ledger = CostLedger()
        attributor = TreeAttributor(registry, ledger)
        pcs = np.array([0x1004], dtype=np.int64)
        attributor.attribute(pcs)
        build_ops = ledger.tree_maintenance_ops
        attributor.attribute(pcs)
        assert ledger.tree_maintenance_ops == build_ops  # no rebuild
        registry.add(0x2000, 0x2010)
        attributor.attribute(pcs)
        assert ledger.tree_maintenance_ops > build_ops


class TestFactory:
    def test_known_strategies(self):
        registry = RegionRegistry()
        assert isinstance(make_attributor("list", registry), ListAttributor)
        assert isinstance(make_attributor("tree", registry), TreeAttributor)

    def test_scalar_reference_strategies(self):
        registry = RegionRegistry()
        assert isinstance(make_attributor("list-scalar", registry),
                          ScalarListAttributor)
        assert isinstance(make_attributor("tree-scalar", registry),
                          ScalarTreeAttributor)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="list.*tree"):
            make_attributor("hash", RegionRegistry())
