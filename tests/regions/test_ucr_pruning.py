"""Unit tests for UCR tracking and region pruning policy."""

import pytest

from repro.regions.pruning import PruningPolicy, RegionActivity
from repro.regions.ucr import UcrTracker


class TestUcrTracker:
    def test_trigger_above_threshold(self):
        tracker = UcrTracker(threshold=0.30)
        assert not tracker.record(0.30, 0)  # strictly-above semantics
        assert tracker.record(0.31, 1)
        assert tracker.trigger_intervals == [1]
        assert tracker.n_triggers == 1

    def test_history_and_median(self):
        tracker = UcrTracker()
        for index, fraction in enumerate([0.1, 0.5, 0.2]):
            tracker.record(fraction, index)
        assert tracker.history == [0.1, 0.5, 0.2]
        assert tracker.median() == pytest.approx(0.2)
        assert tracker.mean() == pytest.approx(0.8 / 3)

    def test_empty_statistics(self):
        tracker = UcrTracker()
        assert tracker.median() == 0.0
        assert tracker.mean() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            UcrTracker(threshold=0.0)
        with pytest.raises(ValueError):
            UcrTracker(threshold=1.0)
        tracker = UcrTracker()
        with pytest.raises(ValueError):
            tracker.record(1.5, 0)


class TestRegionActivity:
    def test_idle_counting(self):
        activity = RegionActivity(rid=0)
        activity.record(10, 100)
        assert activity.idle_intervals == 0
        activity.record(0, 100)
        activity.record(0, 100)
        assert activity.idle_intervals == 2
        activity.record(5, 100)
        assert activity.idle_intervals == 0
        assert activity.lifetime_samples == 15

    def test_share_window_bounded(self):
        activity = RegionActivity(rid=0)
        for _ in range(40):
            activity.record(10, 100, window=16)
        assert len(activity.recent_shares) == 16
        assert activity.recent_shares[-1] == pytest.approx(0.1)


class TestPruningPolicy:
    def test_idle_rule(self):
        policy = PruningPolicy(max_idle_intervals=4, grace_intervals=2)
        activity = RegionActivity(rid=0)
        for _ in range(4):
            activity.record(0, 100)
        assert policy.should_prune(activity, age_intervals=10)

    def test_grace_period_protects_young_regions(self):
        policy = PruningPolicy(max_idle_intervals=1, grace_intervals=8)
        activity = RegionActivity(rid=0)
        activity.record(0, 100)
        assert not policy.should_prune(activity, age_intervals=3)
        assert policy.should_prune(activity, age_intervals=8)

    def test_cold_share_rule(self):
        policy = PruningPolicy(max_idle_intervals=None,
                               min_recent_share=0.05, grace_intervals=4)
        activity = RegionActivity(rid=0)
        for _ in range(8):
            activity.record(1, 100)  # 1% share, never idle long
        assert policy.should_prune(activity, age_intervals=20)

    def test_active_region_survives(self):
        policy = PruningPolicy(max_idle_intervals=4, min_recent_share=0.05,
                               grace_intervals=2)
        activity = RegionActivity(rid=0)
        for _ in range(10):
            activity.record(50, 100)
        assert not policy.should_prune(activity, age_intervals=20)

    def test_disabled_rules(self):
        policy = PruningPolicy(max_idle_intervals=None,
                               min_recent_share=None)
        activity = RegionActivity(rid=0)
        for _ in range(100):
            activity.record(0, 100)
        assert not policy.should_prune(activity, age_intervals=200)
