"""Tests for hot-path trace selection and trace-based formation."""

import numpy as np

from repro.core import MonitorThresholds
from repro.monitor import RegionMonitor
from repro.program.behavior import RegionSpec, bottleneck_profile
from repro.program.binary import BinaryBuilder, branch, loop, straight
from repro.program.workload import Steady, WorkloadScript, mixture
from repro.regions.formation import RegionFormation
from repro.regions.region import RegionKind
from repro.regions.registry import RegionRegistry
from repro.regions.trace_builder import Trace, block_hotness, build_trace
from repro.sampling import simulate_sampling


def diamond_binary():
    """A branchy, loop-free procedure: test -> (hot arm | cold arm) ->
    tail."""
    builder = BinaryBuilder(base=0x10000)
    builder.procedure("branchy", [
        straight(4),
        branch(then_shapes=12, else_shapes=8),
        straight(6),
    ], at=0x20000)
    return builder.build()


def pcs_over(span, count, rng=None):
    start, end = span
    rng = rng or np.random.default_rng(0)
    slots = rng.integers(0, (end - start) // 4, size=count)
    return (start + 4 * slots).astype(np.int64)


class TestBlockHotness:
    def test_counts_per_block(self):
        binary = diamond_binary()
        procedure = binary.procedure("branchy")
        entry = procedure.blocks[0]
        pcs = np.concatenate([
            np.full(30, entry.start, dtype=np.int64),
            np.full(10, procedure.blocks[2].start, dtype=np.int64),
            np.full(5, 0x90000, dtype=np.int64),  # outside: ignored
        ])
        hotness = block_hotness(procedure, pcs)
        assert hotness[entry.start] == 30
        assert hotness[procedure.blocks[2].start] == 10
        assert sum(hotness.values()) == 40

    def test_empty(self):
        binary = diamond_binary()
        procedure = binary.procedure("branchy")
        assert block_hotness(procedure,
                             np.array([], dtype=np.int64)) == {}


class TestBuildTrace:
    def trace_through(self, hot_arm_weight, cold_arm_weight):
        binary = diamond_binary()
        procedure = binary.procedure("branchy")
        blocks = procedure.blocks
        entry, test, then_arm, else_arm, tail = blocks
        hotness = {entry.start: 100, test.start: 100,
                   then_arm.start: hot_arm_weight,
                   else_arm.start: cold_arm_weight, tail.start: 90}
        trace = build_trace(procedure, hotness, entry.start)
        return blocks, trace

    def test_follows_hot_arm(self):
        blocks, trace = self.trace_through(hot_arm_weight=80,
                                           cold_arm_weight=5)
        entry, test, then_arm, else_arm, tail = blocks
        assert trace.blocks == (entry.start, test.start, then_arm.start,
                                tail.start)
        assert else_arm.start not in trace.blocks

    def test_follows_other_arm_when_hotter(self):
        blocks, trace = self.trace_through(hot_arm_weight=5,
                                           cold_arm_weight=80)
        else_arm = blocks[3]
        assert else_arm.start in trace.blocks

    def test_stops_at_cold_successor(self):
        binary = diamond_binary()
        procedure = binary.procedure("branchy")
        entry = procedure.blocks[0]
        # Only the entry is hot: everything downstream is below the
        # heat-ratio cutoff.
        trace = build_trace(procedure, {entry.start: 100}, entry.start)
        assert trace.blocks == (entry.start,)

    def test_stops_at_cycle(self):
        builder = BinaryBuilder(base=0x10000)
        builder.procedure("loopy", [loop("l", body=8), straight(2)],
                          at=0x20000)
        binary = builder.build()
        procedure = binary.procedure("loopy")
        hotness = {block.start: 50 for block in procedure.blocks}
        trace = build_trace(procedure, hotness,
                            procedure.blocks[0].start)
        # Visits each loop block at most once.
        assert len(set(trace.blocks)) == len(trace.blocks)

    def test_max_blocks_cap(self):
        builder = BinaryBuilder(base=0x10000)
        builder.procedure("long", [straight(4)] * 30, at=0x20000)
        binary = builder.build()
        procedure = binary.procedure("long")
        hotness = {block.start: 50 for block in procedure.blocks}
        trace = build_trace(procedure, hotness, procedure.start,
                            max_blocks=5)
        assert trace.n_blocks == 5

    def test_seed_outside_procedure(self):
        binary = diamond_binary()
        procedure = binary.procedure("branchy")
        assert build_trace(procedure, {}, 0x90000) is None

    def test_span_and_heat(self):
        blocks, trace = self.trace_through(80, 5)
        assert trace.start == blocks[0].start
        assert trace.end >= blocks[-1].end
        assert trace.heat == 100 + 100 + 80 + 90
        assert trace.n_instructions \
            == (trace.end - trace.start) // 4
        assert isinstance(trace, Trace)


class TestTraceFormation:
    def test_formation_builds_trace_region_for_branchy_code(self):
        binary = diamond_binary()
        procedure = binary.procedure("branchy")
        registry = RegionRegistry()
        formation = RegionFormation(binary, registry, trace_fallback=True)
        rng = np.random.default_rng(1)
        pcs = pcs_over((procedure.start, procedure.end), 500, rng)
        outcome = formation.form(pcs)
        assert outcome.formed_any
        assert outcome.new_regions[0].kind is RegionKind.TRACE

    def test_without_fallback_branchy_code_fails(self):
        binary = diamond_binary()
        formation = RegionFormation(binary, RegionRegistry())
        procedure = binary.procedure("branchy")
        pcs = pcs_over((procedure.start, procedure.end), 500)
        outcome = formation.form(pcs)
        assert not outcome.formed_any
        assert outcome.seeds_failed > 0

    def test_loop_still_preferred_over_trace(self):
        builder = BinaryBuilder(base=0x10000)
        builder.procedure("p", [loop("l", body=12), straight(2)],
                          at=0x20000)
        binary = builder.build()
        formation = RegionFormation(binary, RegionRegistry(),
                                    trace_fallback=True)
        span = binary.loop_span("l")
        outcome = formation.form(
            np.full(100, span[0] + 8, dtype=np.int64))
        assert outcome.new_regions[0].kind is RegionKind.LOOP

    def test_monitor_with_trace_formation_reduces_ucr(self):
        """A crafty-shaped workload: hot branchy procedure code that
        loop-only formation cannot monitor."""
        binary = diamond_binary()
        procedure = binary.procedure("branchy")
        slots = (procedure.end - procedure.start) // 4
        regions = {
            "branchy_code": RegionSpec(
                "branchy_code", procedure.start, procedure.end,
                is_loop=False,
                profiles={"main": bottleneck_profile(
                    slots, {3: 150.0, 8: 100.0})}),
        }
        workload = WorkloadScript([
            Steady(30_000_000, mixture(("branchy_code", 1.0)))])
        stream = simulate_sampling(regions, workload, 2000, seed=2)

        loop_only = RegionMonitor(binary,
                                  MonitorThresholds(buffer_size=512))
        loop_only.process_stream(stream)
        traced = RegionMonitor(binary, MonitorThresholds(buffer_size=512),
                               trace_formation=True)
        traced.process_stream(stream)
        assert loop_only.ucr.median() > 0.9
        assert traced.ucr.median() < loop_only.ucr.median()
        kinds = {r.kind for r in traced.all_regions()}
        assert RegionKind.TRACE in kinds
