"""Unit tests for the centered interval tree."""

import numpy as np
import pytest

from repro.regions.interval_tree import Interval, IntervalTree


class TestInterval:
    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 5, 0)
        with pytest.raises(ValueError):
            Interval(6, 5, 0)

    def test_contains_half_open(self):
        iv = Interval(10, 20, 0)
        assert iv.contains(10)
        assert iv.contains(19)
        assert not iv.contains(20)
        assert not iv.contains(9)


class TestTreeBasics:
    def test_empty_tree(self):
        tree = IntervalTree([])
        assert len(tree) == 0
        assert tree.stab(5) == []

    def test_single_interval(self):
        tree = IntervalTree([(10, 20, 7)])
        assert tree.stab(15) == [7]
        assert tree.stab(20) == []
        assert tree.stab(9) == []

    def test_tuple_and_record_inputs_equivalent(self):
        a = IntervalTree([(0, 10, 1), (5, 15, 2)])
        b = IntervalTree([Interval(0, 10, 1), Interval(5, 15, 2)])
        assert a.stab(7) == b.stab(7) == [1, 2]

    def test_disjoint_intervals(self):
        tree = IntervalTree([(0, 10, 0), (20, 30, 1), (40, 50, 2)])
        assert tree.stab(5) == [0]
        assert tree.stab(25) == [1]
        assert tree.stab(45) == [2]
        assert tree.stab(15) == []

    def test_nested_intervals_all_reported(self):
        tree = IntervalTree([(0, 100, 0), (10, 90, 1), (40, 60, 2)])
        assert tree.stab(50) == [0, 1, 2]
        assert tree.stab(20) == [0, 1]
        assert tree.stab(5) == [0]

    def test_query_cost_recorded(self):
        tree = IntervalTree([(i * 10, i * 10 + 5, i) for i in range(64)])
        tree.stab(321)
        assert tree.last_query_cost > 0

    def test_logarithmic_scaling(self):
        # Cost for disjoint intervals should grow far slower than n.
        small = IntervalTree([(i * 10, i * 10 + 5, i) for i in range(16)])
        large = IntervalTree([(i * 10, i * 10 + 5, i) for i in range(1024)])
        small.stab(82)
        small_cost = small.last_query_cost
        large.stab(8002)
        large_cost = large.last_query_cost
        assert large_cost < small_cost * 8  # not 64x


class TestAgainstNaiveOracle:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_intervals_match_linear_scan(self, seed):
        rng = np.random.default_rng(seed)
        intervals = []
        for payload in range(rng.integers(1, 60)):
            start = int(rng.integers(0, 1000))
            end = start + int(rng.integers(1, 120))
            intervals.append(Interval(start, end, payload))
        tree = IntervalTree(intervals)
        for _ in range(200):
            point = int(rng.integers(-10, 1200))
            assert tree.stab(point) == tree.stab_naive(point)

    def test_heavily_overlapping(self):
        intervals = [Interval(0, 1000, i) for i in range(20)]
        intervals += [Interval(i, i + 1, 100 + i) for i in range(0, 100, 7)]
        tree = IntervalTree(intervals)
        for point in range(0, 120, 3):
            assert tree.stab(point) == tree.stab_naive(point)

    def test_boundary_points(self):
        tree = IntervalTree([(0, 10, 0), (10, 20, 1)])
        for point in (0, 9, 10, 19, 20):
            assert tree.stab(point) == tree.stab_naive(point)
