"""Tests for compiler annotations guiding region formation."""

import numpy as np
import pytest

from repro.core import MonitorThresholds
from repro.errors import RegionError
from repro.monitor import RegionMonitor
from repro.program.binary import BinaryBuilder, branch, loop, straight
from repro.regions.annotations import Annotation, AnnotationTable
from repro.regions.formation import RegionFormation
from repro.regions.region import RegionKind
from repro.regions.registry import RegionRegistry


class TestAnnotationTable:
    def test_lookup(self):
        table = AnnotationTable.from_spans([
            (0x1000, 0x1100, "kernel_a"),
            (0x2000, 0x2080),
        ])
        assert table.lookup(0x1040).label == "kernel_a"
        assert table.lookup(0x2000).start == 0x2000
        assert table.lookup(0x1100) is None
        assert table.lookup(0x0) is None
        assert len(table) == 2

    def test_iteration_sorted(self):
        table = AnnotationTable.from_spans([(0x2000, 0x2080),
                                            (0x1000, 0x1100)])
        assert [a.start for a in table] == [0x1000, 0x2000]

    def test_overlap_rejected(self):
        with pytest.raises(RegionError, match="overlap"):
            AnnotationTable.from_spans([(0x1000, 0x1100),
                                        (0x10F0, 0x1200)])

    def test_span_validation(self):
        with pytest.raises(RegionError):
            Annotation(0x1000, 0x1000)
        with pytest.raises(RegionError):
            Annotation(0x1000, 0x1003)

    def test_empty_table(self):
        table = AnnotationTable()
        assert len(table) == 0
        assert table.lookup(0x1000) is None


class TestAnnotatedFormation:
    def build_binary(self):
        builder = BinaryBuilder(base=0x10000)
        builder.procedure("branchy", [
            straight(4), branch(then_shapes=12, else_shapes=8),
            straight(6),
        ], at=0x20000)
        builder.procedure("p_l", [loop("l", body=12)], at=0x30000)
        return builder.build()

    def test_annotation_covers_unbuildable_code(self):
        binary = self.build_binary()
        procedure = binary.procedure("branchy")
        table = AnnotationTable.from_spans(
            [(procedure.start, procedure.end, "branchy_kernel")])
        formation = RegionFormation(binary, RegionRegistry(),
                                    annotations=table)
        outcome = formation.form(
            np.full(100, procedure.start + 8, dtype=np.int64))
        assert outcome.formed_any
        region = outcome.new_regions[0]
        assert region.kind is RegionKind.ANNOTATED
        assert (region.start, region.end) \
            == (procedure.start, procedure.end)

    def test_annotation_takes_precedence_over_loop(self):
        binary = self.build_binary()
        span = binary.loop_span("l")
        table = AnnotationTable.from_spans([(span[0], span[1], "the_loop")])
        formation = RegionFormation(binary, RegionRegistry(),
                                    annotations=table)
        outcome = formation.form(np.full(100, span[0] + 8,
                                         dtype=np.int64))
        assert outcome.new_regions[0].kind is RegionKind.ANNOTATED

    def test_unannotated_code_falls_back_to_loops(self):
        binary = self.build_binary()
        span = binary.loop_span("l")
        table = AnnotationTable.from_spans([(0x50000, 0x50100)])
        formation = RegionFormation(binary, RegionRegistry(),
                                    annotations=table)
        outcome = formation.form(np.full(100, span[0] + 8,
                                         dtype=np.int64))
        assert outcome.new_regions[0].kind is RegionKind.LOOP

    def test_monitor_accepts_annotations(self):
        binary = self.build_binary()
        procedure = binary.procedure("branchy")
        table = AnnotationTable.from_spans(
            [(procedure.start, procedure.end, "branchy_kernel")])
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=16),
                                annotations=table)
        rng = np.random.default_rng(0)
        pcs = (procedure.start
               + 4 * rng.integers(0, 8, size=16)).astype(np.int64)
        for index in range(5):
            monitor.process_interval(pcs, index)
        kinds = {r.kind for r in monitor.all_regions()}
        assert RegionKind.ANNOTATED in kinds
        assert monitor.ucr.history[-1] == 0.0
