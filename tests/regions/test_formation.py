"""Unit tests for region formation."""

import numpy as np
import pytest

from repro.program.binary import BinaryBuilder, call, loop, straight
from repro.regions.formation import RegionFormation
from repro.regions.region import RegionKind
from repro.regions.registry import RegionRegistry


def build_binary():
    b = BinaryBuilder(base=0x10000)
    b.procedure("callee", [straight(32)])
    b.procedure("main", [
        straight(8),
        loop("alpha", body=16),
        loop("beta", body=[straight(4), loop("gamma", body=8)]),
        loop("call_loop", body=[straight(2), call("callee")]),
        straight(4),
    ])
    b.procedure("orphan", [straight(16)])  # never called
    return b.build()


BINARY = build_binary()


def pcs_at(address, count):
    return np.full(count, address, dtype=np.int64)


class TestSeedSelection:
    def test_hot_seeds_ordered_by_count(self):
        formation = RegionFormation(BINARY, RegionRegistry(),
                                    hot_fraction=0.1)
        pcs = np.concatenate([pcs_at(0x100, 50), pcs_at(0x200, 30),
                              pcs_at(0x300, 20)])
        assert formation.hot_seeds(pcs) == [0x100, 0x200, 0x300]

    def test_cold_addresses_excluded(self):
        formation = RegionFormation(BINARY, RegionRegistry(),
                                    hot_fraction=0.2)
        pcs = np.concatenate([pcs_at(0x100, 90), pcs_at(0x200, 10)])
        assert formation.hot_seeds(pcs) == [0x100]

    def test_max_seeds_cap(self):
        formation = RegionFormation(BINARY, RegionRegistry(),
                                    hot_fraction=0.01, max_seeds=3)
        pcs = np.concatenate([pcs_at(0x100 * i, 10) for i in range(1, 11)])
        assert len(formation.hot_seeds(pcs)) == 3

    def test_empty_ucr(self):
        formation = RegionFormation(BINARY, RegionRegistry())
        assert formation.hot_seeds(np.array([], dtype=np.int64)) == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RegionFormation(BINARY, RegionRegistry(), hot_fraction=0.0)
        with pytest.raises(ValueError):
            RegionFormation(BINARY, RegionRegistry(), max_seeds=0)


class TestLoopFormation:
    def test_hot_loop_body_forms_loop_region(self):
        registry = RegionRegistry()
        formation = RegionFormation(BINARY, registry)
        alpha = BINARY.loop_span("alpha")
        outcome = formation.form(pcs_at(alpha[0] + 8, 100),
                                 interval_index=5)
        assert outcome.formed_any
        region = outcome.new_regions[0]
        assert (region.start, region.end) == alpha
        assert region.kind is RegionKind.LOOP
        assert region.formed_at_interval == 5

    def test_nested_loop_forms_innermost(self):
        registry = RegionRegistry()
        formation = RegionFormation(BINARY, registry)
        gamma = BINARY.loop_span("gamma")
        outcome = formation.form(pcs_at(gamma[0] + 8, 100))
        assert (outcome.new_regions[0].start,
                outcome.new_regions[0].end) == gamma

    def test_outer_loop_code_forms_outer_region(self):
        registry = RegionRegistry()
        formation = RegionFormation(BINARY, registry)
        beta = BINARY.loop_span("beta")
        # Address in beta's body but before gamma: the straight(4) chunk.
        outcome = formation.form(pcs_at(beta[0] + 2 * 4 + 4, 100))
        assert (outcome.new_regions[0].start,
                outcome.new_regions[0].end) == beta

    def test_existing_span_not_duplicated(self):
        registry = RegionRegistry()
        formation = RegionFormation(BINARY, registry)
        alpha = BINARY.loop_span("alpha")
        formation.form(pcs_at(alpha[0] + 8, 100))
        outcome = formation.form(pcs_at(alpha[0] + 8, 100))
        assert not outcome.formed_any
        assert outcome.seeds_resolved == 1
        assert len(registry) == 1

    def test_multiple_seeds_form_multiple_regions(self):
        registry = RegionRegistry()
        formation = RegionFormation(BINARY, registry, hot_fraction=0.1)
        alpha = BINARY.loop_span("alpha")
        gamma = BINARY.loop_span("gamma")
        pcs = np.concatenate([pcs_at(alpha[0] + 8, 50),
                              pcs_at(gamma[0] + 8, 50)])
        outcome = formation.form(pcs)
        spans = {(r.start, r.end) for r in outcome.new_regions}
        assert spans == {alpha, gamma}


class TestFormationFailure:
    def test_non_loop_code_fails(self):
        # Hot code in 'callee', which has no loops: the paper's crafty/gap
        # pathology — no region can be built, samples stay in the UCR.
        registry = RegionRegistry()
        formation = RegionFormation(BINARY, registry)
        callee = BINARY.procedure("callee")
        outcome = formation.form(pcs_at(callee.start + 8, 100))
        assert not outcome.formed_any
        assert outcome.seeds_failed == 1
        assert outcome.failed_addresses == (callee.start + 8,)

    def test_address_outside_binary_fails(self):
        formation = RegionFormation(BINARY, RegionRegistry())
        outcome = formation.form(pcs_at(0x4, 100))
        assert outcome.seeds_failed == 1

    def test_trigger_count(self):
        formation = RegionFormation(BINARY, RegionRegistry())
        formation.form(pcs_at(0x4, 10))
        formation.form(pcs_at(0x4, 10))
        assert formation.trigger_count == 2


class TestInterprocedural:
    def test_called_from_loop_forms_procedure_region(self):
        registry = RegionRegistry()
        formation = RegionFormation(BINARY, registry, interprocedural=True)
        callee = BINARY.procedure("callee")
        outcome = formation.form(pcs_at(callee.start + 8, 100))
        assert outcome.formed_any
        region = outcome.new_regions[0]
        assert (region.start, region.end) == (callee.start, callee.end)
        assert region.kind is RegionKind.INTERPROCEDURAL

    def test_never_called_procedure_still_fails(self):
        registry = RegionRegistry()
        formation = RegionFormation(BINARY, registry, interprocedural=True)
        orphan = BINARY.procedure("orphan")
        outcome = formation.form(pcs_at(orphan.start + 8, 100))
        assert not outcome.formed_any
        assert outcome.seeds_failed == 1

    def test_loop_code_still_preferred_over_procedure(self):
        registry = RegionRegistry()
        formation = RegionFormation(BINARY, registry, interprocedural=True)
        alpha = BINARY.loop_span("alpha")
        outcome = formation.form(pcs_at(alpha[0] + 8, 100))
        assert outcome.new_regions[0].kind is RegionKind.LOOP
