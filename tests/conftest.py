"""Suite-level hooks and shared builders for the test tree.

Two things live here:

* the ``--shuffle-seed`` option — CI runs the suite twice with different
  seeds to flush out inter-test coupling (cache leakage, bus state), so
  every test must pass in any collection order;
* the shared stream/plan builders that many test modules used to
  duplicate: :func:`model_stream` simulates (and memoizes) a benchmark
  sampling run, :func:`drop_plan` builds the standard bursty-loss fault
  plan.  Both are importable (``from tests.conftest import model_stream``)
  and exposed as fixtures for new tests.
"""

from __future__ import annotations

import random

import pytest

from repro.faults.inject import inject
from repro.faults.model import FaultPlan, SampleDrop
from repro.program.spec2000 import get_benchmark
from repro.sampling import simulate_sampling


def pytest_addoption(parser):
    parser.addoption(
        "--shuffle-seed", type=int, default=None,
        help="shuffle test collection order with this seed "
             "(flushes out inter-test coupling)")


def pytest_collection_modifyitems(config, items):
    seed = config.getoption("--shuffle-seed")
    if seed is not None:
        random.Random(seed).shuffle(items)


#: Memoized (model, ideal stream) pairs — streams are read-only test
#: inputs, so modules sharing a configuration share the simulation.
_STREAM_CACHE: dict[tuple, tuple] = {}


def model_stream(name: str, scale: float = 0.05, period: int = 45_000,
                 seed: int = 7, plan: FaultPlan | None = None,
                 plan_seed: int | None = None):
    """(benchmark model, sample stream) for a standard test run.

    The ideal stream is memoized per ``(name, scale, period, seed)``;
    a fault *plan* is injected on top (seeded by *plan_seed*, default
    *seed*) without touching the cached ideal stream.
    """
    key = (name, scale, period, seed)
    if key not in _STREAM_CACHE:
        model = get_benchmark(name, scale)
        stream = simulate_sampling(model.regions, model.workload, period,
                                   seed=seed)
        _STREAM_CACHE[key] = (model, stream)
    model, stream = _STREAM_CACHE[key]
    if plan is not None and not plan.is_empty:
        stream = inject(stream, plan,
                        seed=plan_seed if plan_seed is not None else seed)
    return model, stream


def drop_plan(rate: float = 0.2, burst_mean: float = 4.0) -> FaultPlan:
    """The standard bursty sample-drop fault plan used across tests."""
    return FaultPlan((SampleDrop(rate=rate, burst_mean=burst_mean),))


@pytest.fixture
def bench_stream():
    """Fixture handle on :func:`model_stream`."""
    return model_stream


@pytest.fixture
def make_drop_plan():
    """Fixture handle on :func:`drop_plan`."""
    return drop_plan
