"""Differential conformance on recorded data (the acceptance gate).

A committed fixture trace fed through the scalar ``OnlineSession`` and
through a ``BatchSession`` lane must produce bit-identical per-stream
results — reports, GPD trajectory, phase events and the complete
telemetry stream.  The synthetic conformance suite (``tests/batch/``)
proves the engines agree on simulated streams; this one proves the
agreement extends to real recordings, whose dwell-heavy zero-order-hold
buffers (long runs of one PC) are a sample distribution the simulator
never produces.
"""

from pathlib import Path

import pytest

from repro.batch import BatchSession
from repro.core.thresholds import MonitorThresholds
from repro.ingest import TraceSource, load_profile
from repro.monitor.online import OnlineSession
from repro.telemetry.bus import EventBus
from repro.telemetry.sinks import InMemorySink

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS = REPO_ROOT / "tests" / "fixtures" / "traces" / "realtrace"

#: Small intervals so every fixture crosses many interval boundaries.
THRESHOLDS = MonitorThresholds(buffer_size=504)

FIXTURES = sorted(p.name for p in CORPUS.glob("*.json"))


def traced_bus():
    bus, sink = EventBus(), InMemorySink()
    bus.attach(sink)
    return bus, sink


@pytest.mark.parametrize("fixture", FIXTURES)
def test_recorded_stream_is_bit_identical_across_backends(fixture):
    profile = load_profile(CORPUS / fixture)
    stream = TraceSource(profile, sampling_period=45_000).stream()

    scalar_bus, scalar_sink = traced_bus()
    scalar = OnlineSession(binary=None, run_gpd=True,
                           monitor_thresholds=THRESHOLDS,
                           telemetry=scalar_bus)
    scalar.feed_stream(stream)

    lane_bus, lane_sink = traced_bus()
    batch = BatchSession(binary=None, run_gpd=True,
                         monitor_thresholds=THRESHOLDS)
    lane = batch.add_lane(stream=stream, telemetry=lane_bus)
    batch.run()

    assert scalar.stats.intervals == lane.stats.intervals > 0
    assert scalar.stats.samples == lane.stats.samples
    assert scalar.stats.global_events == lane.stats.global_events
    assert len(scalar.reports) == len(lane.reports)
    for a, b in zip(scalar.reports, lane.reports):
        assert a.interval_index == b.interval_index
        assert a.events == b.events
    assert scalar.gpd.state == lane.gpd.state
    assert scalar.gpd.events == lane.gpd.events
    assert scalar.gpd.stable_interval_count() \
        == lane.gpd.stable_interval_count()
    assert scalar_sink.events == lane_sink.events
    assert scalar.summary() == lane.summary()


def test_corpus_has_the_required_coverage():
    # The acceptance criterion pins >= 3 committed recordings; the
    # parametrized test above must actually have run on them.
    assert len(FIXTURES) >= 3
