"""Parser contract: perf-script text in, events + drop counters out.

The malformed-input corpus below is the satellite's heart: truncated
lines, interleaved comms, out-of-order timestamps, kernel addresses and
missing symbols must *never* raise — each rejected line lands in a
named drop counter and each tolerable oddity is normalized.
"""

from pathlib import Path

from repro.ingest import format_perf_script, parse_perf_script
from repro.ingest.perfscript import PerfEvent

REPO_ROOT = Path(__file__).resolve().parents[2]
REAL_TEXT = REPO_ROOT / "tests" / "fixtures" / "traces" / "perfscript_py.txt"

GOOD_LINE = ("          python   4242  12.000001000:     55d2c4e012ab "
             "PyEval_EvalFrameDefault+0x12b (/usr/bin/python3.11)")


class TestWellFormed:
    def test_single_record(self):
        events, stats = parse_perf_script(GOOD_LINE)
        assert stats.parsed == 1 and stats.total_dropped == 0
        event = events[0]
        assert event.comm == "python"
        assert event.pid == 4242
        assert event.time_ns == 12_000_001_000
        assert event.ip == 0x55D2C4E012AB
        assert event.sym == "PyEval_EvalFrameDefault"  # +0x offset stripped
        assert event.dso == "/usr/bin/python3.11"

    def test_timestamps_parse_exactly_without_float_round_trip(self):
        # 16 significant digits would already lose ns precision in a
        # float; the parser goes digits -> int directly.
        line = ("  python  1  90071992.547409919:  10 f (/bin/p)")
        events, _ = parse_perf_script(line)
        assert events[0].time_ns == 90_071_992_547_409_919

    def test_short_fraction_is_padded_not_scaled(self):
        events, _ = parse_perf_script("  python  1  3.5:  10 f (/bin/p)")
        assert events[0].time_ns == 3_500_000_000

    def test_comm_with_spaces(self):
        line = ("  Web Content   99  1.000000100:  4f0 paint (/usr/lib/ff)")
        events, _ = parse_perf_script(line)
        assert events[0].comm == "Web Content"

    def test_missing_symbol_normalizes_to_empty(self):
        line = "  python  1  1.0:  4f0 [unknown] (/usr/bin/python3)"
        events, _ = parse_perf_script(line)
        assert events[0].sym == ""

    def test_blank_and_comment_lines_are_ignored_not_dropped(self):
        text = "\n".join(["# header", "", GOOD_LINE, "   "])
        events, stats = parse_perf_script(text)
        assert len(events) == 1
        assert stats.ignored == 3 and stats.total_dropped == 0


class TestMalformedCorpus:
    """Skip-and-count: the adversarial corpus never raises."""

    CORPUS = "\n".join([
        GOOD_LINE,
        "  python  4242  12.0000",                       # truncated mid-time
        "  python  4242",                                 # truncated record
        "  python  4242  12.000002000:  55d2c4e01300",    # no DSO tail
        "  python  4242  12.000003000:  9000 sym ()",     # empty DSO
        "  python  4242  12.000004000:  ffffffff81000000 "
        "do_syscall_64+0x3f ([kernel.kallsyms])",         # kernel space
        "  swapper     0  12.000005000:  0 idle (/boot/vmlinuz)",  # other comm
        "  python  4242  11.999999000:  55d2c4e01310 f (/usr/bin/python3.11)",
        GOOD_LINE.replace("12.000001000", "12.000006000"),
    ])

    def test_corpus_never_raises_and_counts_every_drop(self):
        events, stats = parse_perf_script(self.CORPUS, comm="python")
        assert stats.parsed == len(events) == 3
        assert stats.dropped == {"truncated": 2, "no-dso": 2,
                                 "kernel": 1, "other-comm": 1}
        assert stats.total_dropped == 6

    def test_out_of_order_timestamps_are_kept_and_counted(self):
        _, stats = parse_perf_script(self.CORPUS, comm="python")
        assert stats.reordered == 1  # the 11.999999 line, kept not dropped

    def test_keep_kernel_flag_retains_bracketed_dsos(self):
        events, stats = parse_perf_script(self.CORPUS, comm="python",
                                          keep_kernel=True)
        assert "kernel" not in stats.dropped
        assert any(e.dso == "[kernel.kallsyms]" for e in events)

    def test_without_comm_filter_every_process_is_kept(self):
        events, stats = parse_perf_script(self.CORPUS)
        assert "other-comm" not in stats.dropped
        assert {e.comm for e in events} == {"python", "swapper"}

    def test_stats_manifest_payload_is_sorted_and_complete(self):
        _, stats = parse_perf_script(self.CORPUS, comm="python")
        payload = stats.to_json()
        assert payload["parsed"] == 3
        assert list(payload["dropped"]) == sorted(payload["dropped"])

    def test_pure_garbage_yields_empty_not_error(self):
        events, stats = parse_perf_script("}{ not a record\n\x00\xff junk")
        assert events == []
        assert stats.total_dropped == 2


class TestFormatting:
    def test_format_then_parse_is_lossless(self):
        original = [
            PerfEvent(comm="python", pid=7, time_ns=1_000_000,
                      ip=0x4000, sym="main", dso="/bin/app"),
            PerfEvent(comm="python", pid=7, time_ns=2_500_000,
                      ip=0x4010, sym="", dso="/bin/app"),
        ]
        events, stats = parse_perf_script(format_perf_script(original))
        assert events == original
        assert stats.total_dropped == 0

    def test_empty_event_list_formats_to_empty_text(self):
        assert format_perf_script([]) == ""


class TestRealRecording:
    """The committed perf-script text fixture parses cleanly."""

    def test_committed_text_fixture_parses_without_drops(self):
        text = REAL_TEXT.read_text(encoding="utf-8")
        events, stats = parse_perf_script(text, comm="python")
        assert stats.parsed == len(events) > 500
        assert stats.total_dropped == 0
        # Real CPython frames: source files plus the odd frozen module.
        assert all(e.dso.endswith(".py") or e.dso.startswith("<frozen ")
                   for e in events)
        assert sum(e.dso.endswith(".py") for e in events) > 500
