"""Property suite: the ingest pipeline round-trips and composes.

Three laws, each over generated inputs:

* **text round-trip** — perf-script text -> events -> formatted text ->
  events is lossless for normalized records;
* **profile round-trip** — events -> compact profile -> JSON -> profile
  preserves every column, the checksum, and (through TraceSource) the
  replayed sample buffers bit for bit;
* **resample composition** — resampling at P then at ``k * P`` equals
  resampling at ``k * P`` directly, so period normalization is a
  congruence, not an approximation.

Plus the anchor the whole design hangs on: per-DSO offsets cancel any
per-DSO load-base shift (ASLR-invariance of trace identity).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ingest import (TraceProvenance, TraceSource, format_perf_script,
                          parse_perf_script, profile_from_events,
                          resample_profile)
from repro.ingest.perfscript import PerfEvent

PROV = TraceProvenance(command="gen", tool="hypothesis", event="cycles",
                       period_ns=50)

#: Normalized-form constraints: what format_perf_script itself emits.
comms = st.sampled_from(["python", "gzip", "app-under-test"])
syms = st.sampled_from(["", "main", "PyEval_EvalFrameDefault", "loop+x"])
dsos = st.sampled_from(["/bin/app", "/lib/x.so", "/usr/bin/python3.11"])


@st.composite
def event_lists(draw, min_size=1, max_size=40):
    """Sorted-timestamp event lists over a small DSO pool."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    deltas = draw(st.lists(st.integers(min_value=0, max_value=10_000),
                           min_size=n, max_size=n))
    start = draw(st.integers(min_value=0, max_value=10**9))
    times = np.cumsum([start] + deltas[:-1]).tolist()
    events = []
    for i in range(n):
        events.append(PerfEvent(
            comm=draw(comms), pid=draw(st.integers(1, 99_999)),
            time_ns=int(times[i]),
            ip=draw(st.integers(0x1000, 0x7FFF_FFFF_F000)),
            sym=draw(syms), dso=draw(dsos)))
    return events


class TestTextRoundTrip:
    @given(event_lists())
    @settings(max_examples=50, deadline=None)
    def test_format_then_parse_is_identity(self, events):
        parsed, stats = parse_perf_script(format_perf_script(events))
        assert parsed == events
        assert stats.parsed == len(events)
        assert stats.total_dropped == 0

    @given(event_lists())
    @settings(max_examples=25, deadline=None)
    def test_double_round_trip_is_stable(self, events):
        once = format_perf_script(events)
        twice = format_perf_script(parse_perf_script(once)[0])
        assert twice == once


class TestProfileRoundTrip:
    @given(event_lists())
    @settings(max_examples=50, deadline=None)
    def test_json_round_trip_preserves_columns_and_checksum(self, events):
        profile = profile_from_events(events, "gen", PROV)
        reloaded = profile.__class__.from_json(profile.to_json())
        assert reloaded.dsos == profile.dsos
        assert np.array_equal(reloaded.dso_index, profile.dso_index)
        assert np.array_equal(reloaded.offsets, profile.offsets)
        assert np.array_equal(reloaded.times_ns, profile.times_ns)
        assert reloaded.checksum == profile.checksum

    @given(event_lists(min_size=5), st.integers(50, 400))
    @settings(max_examples=25, deadline=None)
    def test_round_tripped_profile_replays_identical_buffers(self, events,
                                                             period):
        profile = profile_from_events(events, "gen", PROV)
        if int(profile.times_ns[-1]) < period:
            return  # shorter than one period: nothing to replay
        reloaded = profile.__class__.from_json(profile.to_json())
        first = TraceSource(profile, period).stream()
        second = TraceSource(reloaded, period).stream()
        assert np.array_equal(first.pcs, second.pcs)
        assert np.array_equal(first.cycles, second.cycles)
        assert np.array_equal(first.region_ids, second.region_ids)

    @given(event_lists(), st.integers(0, 2**32))
    @settings(max_examples=25, deadline=None)
    def test_aslr_shift_never_changes_identity(self, events, entropy):
        # Slide every DSO by its own page-aligned constant — exactly
        # what the loader does between runs — and require the same
        # checksum, the coordinate the cache keys trust.
        rng = np.random.default_rng(entropy)
        shift = {dso: int(rng.integers(0, 1 << 20)) * 0x1000
                 for dso in {e.dso for e in events}}
        slid = [PerfEvent(comm=e.comm, pid=e.pid, time_ns=e.time_ns,
                          ip=e.ip + shift[e.dso], sym=e.sym, dso=e.dso)
                for e in events]
        original = profile_from_events(events, "gen", PROV)
        shifted = profile_from_events(slid, "gen", PROV)
        assert shifted.checksum == original.checksum


class TestResampleComposition:
    @given(event_lists(min_size=5), st.integers(20, 200),
           st.integers(2, 5))
    @settings(max_examples=50, deadline=None)
    def test_fine_then_coarse_equals_coarse_directly(self, events, period,
                                                     multiple):
        profile = profile_from_events(events, "gen", PROV)
        coarse_period = period * multiple
        if int(profile.times_ns[-1]) < coarse_period:
            return  # the coarse grid has no ticks: nothing to compare
        fine = resample_profile(profile, period)
        composed = resample_profile(fine, coarse_period)
        direct = resample_profile(profile, coarse_period)
        assert np.array_equal(composed.times_ns, direct.times_ns)
        assert np.array_equal(composed.dso_index, direct.dso_index)
        assert np.array_equal(composed.offsets, direct.offsets)
        assert composed.checksum == direct.checksum

    @given(event_lists(min_size=5), st.integers(20, 200), st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_source_periods_compose_the_same_way(self, events, period,
                                                 multiple):
        # The same law one layer up: replaying at period P*k equals
        # replaying the P-resampled profile at P*k.
        profile = profile_from_events(events, "gen", PROV)
        coarse = period * multiple
        if int(profile.times_ns[-1]) < max(coarse, period):
            return
        direct = TraceSource(profile, coarse).stream()
        through_fine = TraceSource(resample_profile(profile, period),
                                   coarse).stream()
        assert np.array_equal(direct.cycles, through_fine.cycles)
        assert np.array_equal(direct.region_ids, through_fine.region_ids)
        # Both replays hold the *same recorded samples*; the mapper may
        # place a DSO at a different segment base (resampling can drop
        # a DSO's largest never-held offset, shrinking its span), so
        # PCs agree up to one constant shift per DSO.
        for rid in np.unique(direct.region_ids):
            mask = direct.region_ids == rid
            deltas = direct.pcs[mask] - through_fine.pcs[mask]
            assert np.all(deltas == deltas[0])
