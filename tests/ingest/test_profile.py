"""Profile format: ASLR-stable offsets, checksums, strict (de)serialization."""

import json

import numpy as np
import pytest

from repro.errors import IngestError
from repro.ingest import (PROFILE_FORMAT, PROFILE_VERSION, TraceProfile,
                          TraceProvenance, load_profile, parse_perf_script,
                          profile_from_events, save_profile)
from repro.ingest.perfscript import PerfEvent

PROV = TraceProvenance(command="demo", tool="test", event="cycles",
                       period_ns=1000)


def make_events(base_a=0x7F00_0000, base_b=0x5500_0000):
    """Two DSOs, interleaved, with deliberately unsorted timestamps."""
    return [
        PerfEvent("app", 1, 3_000, base_a + 0x40, "f", "/lib/a.so"),
        PerfEvent("app", 1, 1_000, base_a + 0x10, "f", "/lib/a.so"),
        PerfEvent("app", 1, 2_000, base_b + 0x80, "g", "/bin/app"),
        PerfEvent("app", 1, 4_000, base_b + 0x20, "h", "/bin/app"),
    ]


class TestConversion:
    def test_events_are_stable_sorted_and_rebased(self):
        profile = profile_from_events(make_events(), "demo", PROV)
        assert profile.times_ns.tolist() == [0, 1000, 2000, 3000]
        assert profile.duration_ns == 3000
        assert profile.n_samples == 4

    def test_dso_table_is_name_sorted(self):
        profile = profile_from_events(make_events(), "demo", PROV)
        assert profile.dsos == ("/bin/app", "/lib/a.so")

    def test_offsets_are_per_dso_minima(self):
        profile = profile_from_events(make_events(), "demo", PROV)
        by_dso = {}
        for i in range(profile.n_samples):
            by_dso.setdefault(int(profile.dso_index[i]), []).append(
                int(profile.offsets[i]))
        # /bin/app saw +0x80 and +0x20 -> offsets {0x60, 0x00};
        # /lib/a.so saw +0x40 and +0x10 -> offsets {0x30, 0x00}.
        assert sorted(by_dso[0]) == [0x00, 0x60]
        assert sorted(by_dso[1]) == [0x00, 0x30]

    def test_aslr_shift_cancels_identity_is_stable(self):
        # The same recording under different load bases (a fresh ASLR
        # roll for every DSO) must produce the identical profile.
        first = profile_from_events(make_events(), "demo", PROV)
        slid = profile_from_events(
            make_events(base_a=0x1234_5000, base_b=0x7FFF_0000),
            "demo", PROV)
        assert first.checksum == slid.checksum
        assert np.array_equal(first.offsets, slid.offsets)

    def test_empty_event_list_is_an_ingest_error(self):
        with pytest.raises(IngestError, match="no events"):
            profile_from_events([], "demo", PROV)

    def test_parse_stats_land_in_the_manifest(self):
        events, stats = parse_perf_script(
            "  app  1  1.0:  40 f (/bin/app)\n  garbage")
        profile = profile_from_events(events, "demo", PROV, stats=stats)
        assert profile.provenance.parse["parsed"] == 1
        assert profile.provenance.parse["dropped"] == {"truncated": 1}


class TestValidation:
    def build(self, **overrides):
        columns = dict(
            name="demo", provenance=PROV, dsos=("/bin/app",),
            dso_index=np.zeros(3, dtype=np.int32),
            offsets=np.array([0, 16, 32], dtype=np.int64),
            times_ns=np.array([0, 10, 20], dtype=np.int64))
        columns.update(overrides)
        return TraceProfile(**columns)

    def test_well_formed_profile_passes(self):
        assert self.build().n_samples == 3

    def test_no_samples_rejected(self):
        with pytest.raises(IngestError, match="no samples"):
            self.build(dso_index=np.array([], dtype=np.int32))

    def test_ragged_columns_rejected(self):
        with pytest.raises(IngestError, match="ragged"):
            self.build(offsets=np.array([0, 16], dtype=np.int64))

    def test_dso_index_out_of_range_rejected(self):
        with pytest.raises(IngestError, match="DSO table"):
            self.build(dso_index=np.array([0, 0, 1], dtype=np.int32))

    def test_negative_offset_rejected(self):
        with pytest.raises(IngestError, match="negative offset"):
            self.build(offsets=np.array([0, -4, 8], dtype=np.int64))

    def test_backwards_times_rejected(self):
        with pytest.raises(IngestError, match="backwards"):
            self.build(times_ns=np.array([0, 20, 10], dtype=np.int64))


class TestSerialization:
    def test_save_load_round_trip_preserves_everything(self, tmp_path):
        profile = profile_from_events(make_events(), "demo", PROV)
        path = save_profile(profile, tmp_path / "demo.json")
        loaded = load_profile(path)
        assert loaded.name == profile.name
        assert loaded.dsos == profile.dsos
        assert loaded.provenance == profile.provenance
        assert np.array_equal(loaded.dso_index, profile.dso_index)
        assert np.array_equal(loaded.offsets, profile.offsets)
        assert np.array_equal(loaded.times_ns, profile.times_ns)
        assert loaded.checksum == profile.checksum

    def test_checksum_excludes_name_and_provenance(self):
        profile = profile_from_events(make_events(), "demo", PROV)
        renamed = profile_from_events(
            make_events(), "other",
            TraceProvenance(command="x", tool="y", event="z", period_ns=1))
        assert renamed.checksum == profile.checksum

    def test_checksum_covers_every_column(self):
        base = profile_from_events(make_events(), "demo", PROV)
        for mutation in (
                dict(dso_index=np.array([0, 0, 1, 0], dtype=np.int32)),
                dict(offsets=base.offsets + np.int64(16)),
                dict(times_ns=base.times_ns + np.int64(5)),
        ):
            from dataclasses import replace
            assert replace(base, **{
                k: np.ascontiguousarray(v) for k, v in mutation.items()
            }).checksum != base.checksum

    def test_edited_fixture_fails_checksum_verification(self, tmp_path):
        profile = profile_from_events(make_events(), "demo", PROV)
        path = save_profile(profile, tmp_path / "demo.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["samples"]["offset"][0] += 64  # the stealth edit
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(IngestError, match="checksum mismatch"):
            load_profile(path)
        # verify=False is the explicit escape hatch for forensics.
        assert load_profile(path, verify=False).n_samples == 4

    def test_wrong_format_and_version_are_rejected(self, tmp_path):
        profile = profile_from_events(make_events(), "demo", PROV)
        payload = profile.to_json()
        bad_format = dict(payload, format="something-else")
        bad_version = dict(payload, version=PROFILE_VERSION + 1)
        with pytest.raises(IngestError, match="not a"):
            TraceProfile.from_json(bad_format)
        with pytest.raises(IngestError, match="version"):
            TraceProfile.from_json(bad_version)
        assert payload["format"] == PROFILE_FORMAT

    def test_malformed_documents_raise_ingest_errors(self, tmp_path):
        for text in ("not json at all", '["a", "list"]',
                     json.dumps({"format": PROFILE_FORMAT,
                                 "version": PROFILE_VERSION,
                                 "name": "x", "dsos": ["/bin/app"],
                                 "samples": {}})):
            path = tmp_path / "bad.json"
            path.write_text(text, encoding="utf-8")
            with pytest.raises(IngestError):
                load_profile(path)

    def test_missing_file_raises_ingest_error(self, tmp_path):
        with pytest.raises(IngestError, match="cannot read"):
            load_profile(tmp_path / "absent.json")
