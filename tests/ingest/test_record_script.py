"""End-to-end capture tool: scripts/record_trace.py as a subprocess.

The ``pysample`` mode runs a real workload under the in-process frame
sampler and must produce a loadable, checksummed profile; ``convert``
must reproduce a profile from committed perf-script text; ``record``
must gate cleanly when ``perf`` is absent.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.ingest import load_profile

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "scripts" / "record_trace.py"
REAL_TEXT = REPO_ROOT / "tests" / "fixtures" / "traces" / "perfscript_py.txt"


def run_tool(*args, timeout=120):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True, timeout=timeout,
        cwd=str(REPO_ROOT))


@pytest.fixture(scope="module")
def tiny_workload(tmp_path_factory):
    path = tmp_path_factory.mktemp("wl") / "busy.py"
    path.write_text(
        "import json\n"
        "total = 0\n"
        "for i in range(3000):\n"
        "    total += len(json.dumps({'i': i, 'row': list(range(40))}))\n"
        "print(total)\n", encoding="utf-8")
    return path


class TestPysample:
    def test_records_a_loadable_checksummed_profile(self, tiny_workload,
                                                    tmp_path):
        out = tmp_path / "busy.json"
        kept = tmp_path / "busy.txt"
        result = run_tool("pysample", str(tiny_workload), "--name", "busy",
                          "--out", str(out), "--interval-us", "200",
                          "--keep-script", str(kept))
        assert result.returncode == 0, result.stderr
        profile = load_profile(out)  # checksum verified on load
        assert profile.n_samples > 0
        assert profile.name == "busy"
        assert profile.provenance.tool.startswith("pysampler")
        assert profile.provenance.period_ns == 200_000
        assert kept.exists()

    def test_two_runs_differ_in_time_but_share_the_pipeline(self,
                                                            tiny_workload,
                                                            tmp_path):
        # Load bases are random per run (deliberately ASLR-like) and
        # timing decides which frames get caught; both recordings must
        # still convert into valid profiles that saw the workload file.
        outs = []
        for i in range(2):
            out = tmp_path / f"run{i}.json"
            result = run_tool("pysample", str(tiny_workload), "--name",
                              f"run{i}", "--out", str(out),
                              "--interval-us", "500")
            assert result.returncode == 0, result.stderr
            outs.append(load_profile(out))
        for profile in outs:
            assert any(dso.endswith("busy.py") for dso in profile.dsos)
            assert int(profile.offsets.min()) >= 0

    def test_missing_workload_script_exits_nonzero(self, tmp_path):
        result = run_tool("pysample", str(tmp_path / "absent.py"),
                          "--name", "x", "--out", str(tmp_path / "x.json"))
        assert result.returncode == 2
        assert "not found" in result.stderr


class TestConvert:
    def test_converts_committed_perf_script_text(self, tmp_path):
        out = tmp_path / "converted.json"
        result = run_tool("convert", str(REAL_TEXT), "--name", "conv",
                          "--out", str(out), "--comm", "python",
                          "--command", "python workload.py",
                          "--tool", "pysampler", "--period-ns", "1000000")
        assert result.returncode == 0, result.stderr
        profile = load_profile(out)
        assert profile.provenance.command == "python workload.py"
        assert profile.provenance.parse["parsed"] == profile.n_samples

    def test_text_with_no_surviving_events_exits_one(self, tmp_path):
        source = tmp_path / "junk.txt"
        source.write_text("nothing to see\n", encoding="utf-8")
        result = run_tool("convert", str(source), "--name", "junk",
                          "--out", str(tmp_path / "junk.json"))
        assert result.returncode == 1
        assert "no events survived" in result.stderr


class TestRecordGate:
    def test_record_without_perf_gates_with_guidance(self, tmp_path,
                                                     monkeypatch):
        # Hide any real perf: an empty PATH makes shutil.which fail.
        result = subprocess.run(
            [sys.executable, str(SCRIPT), "record", "--name", "x",
             "--out", str(tmp_path / "x.json"), "true"],
            capture_output=True, text=True, timeout=60,
            cwd=str(REPO_ROOT), env={"PATH": str(tmp_path)})
        assert result.returncode == 2
        assert "perf not found" in result.stderr


class TestFixtureProvenance:
    """Committed fixtures carry complete, honest manifests."""

    def test_every_fixture_manifest_is_complete(self):
        corpus = REPO_ROOT / "tests" / "fixtures" / "traces" / "realtrace"
        for path in sorted(corpus.glob("*.json")):
            payload = json.loads(path.read_text(encoding="utf-8"))
            provenance = payload["provenance"]
            assert provenance["command"], path.name
            assert provenance["tool"].startswith("pysampler"), path.name
            assert provenance["event"], path.name
            assert provenance["period_ns"] > 0, path.name
            assert provenance["parse"]["parsed"] > 0, path.name
            assert payload["checksum"] == load_profile(path).checksum
