"""The realtrace experiment family over the committed corpus."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments import extra_realtrace
from repro.experiments.cache import GLOBAL_CACHE
from repro.experiments.config import ExperimentConfig
from repro.experiments.extra_realtrace import (DETECTORS, agreement,
                                               load_corpus, run,
                                               trace_detections)
from repro.experiments.runner import EXPERIMENTS

SMALL = ExperimentConfig(scale=0.4, seed=7)


@pytest.fixture(autouse=True)
def fresh_cache():
    GLOBAL_CACHE.clear()
    yield
    GLOBAL_CACHE.clear()


class TestCorpus:
    def test_committed_corpus_loads_with_at_least_three_traces(self):
        profiles = load_corpus()
        assert len(profiles) >= 3
        assert len({p.name for p in profiles}) == len(profiles)

    def test_corpus_env_override_is_honored(self, tmp_path, monkeypatch):
        monkeypatch.setenv(extra_realtrace.CORPUS_ENV, str(tmp_path))
        assert extra_realtrace.corpus_dir() == tmp_path
        with pytest.raises(ExperimentError, match="no trace profiles"):
            load_corpus()


class TestAgreement:
    def test_empty_sets_agree_perfectly(self):
        assert agreement([], []) == 1.0

    def test_disjoint_detections_score_zero(self):
        assert agreement([5], [50]) == 0.0

    def test_tolerant_match_counts_once(self):
        # One detection of a matches one of b within tolerance; the
        # second b detection is unmatched: 1 / (1 + 2 - 1).
        assert agreement([10], [12, 40]) == 0.5

    def test_agreement_is_symmetric(self):
        a, b = [3, 20, 41], [5, 44]
        assert agreement(a, b) == agreement(b, a)


class TestScoreboard:
    def test_full_zoo_runs_over_every_committed_trace(self):
        result = run(SMALL)
        profiles = load_corpus()
        assert result.experiment_id == "realtrace"
        assert len(result.rows) == len(profiles) * len(DETECTORS)
        scoreboard = result.extras["scoreboard"]
        assert set(scoreboard) == {p.name for p in profiles}
        for name, entry in scoreboard.items():
            assert set(entry["detections"]) == set(DETECTORS)
            assert set(entry["stable"]) == set(DETECTORS)
            for fraction in entry["stable"].values():
                assert 0.0 <= fraction <= 1.0
            for score in entry["agreement"].values():
                assert 0.0 <= score <= 1.0
            assert entry["intervals"] >= extra_realtrace.MIN_INTERVALS

    def test_scale_trims_the_replay_not_the_recording(self):
        profile = load_corpus()[0]
        _, _, n_small = trace_detections(profile, SMALL)
        _, _, n_full = trace_detections(
            profile, ExperimentConfig(scale=1.0, seed=7))
        assert n_small < n_full

    def test_scoreboard_is_deterministic(self):
        first = run(SMALL)
        GLOBAL_CACHE.clear()
        second = run(SMALL)
        assert first.rows == second.rows

    def test_checksums_in_scoreboard_match_fixtures(self):
        result = run(SMALL)
        for profile in load_corpus():
            entry = result.extras["scoreboard"][profile.name]
            assert entry["checksum"] == profile.checksum

    def test_registered_with_the_runner(self):
        assert "realtrace" in EXPERIMENTS
        assert EXPERIMENTS["realtrace"] is run

    def test_table_renders(self):
        text = run(SMALL).to_table()
        assert "realtrace" in text and "gpd" in text


class TestTrim:
    def test_trimmed_stream_keeps_the_contract(self):
        from repro.experiments.config import BASE_PERIOD
        from repro.experiments.base import trace_stream_for
        profile = load_corpus()[0]
        stream = trace_stream_for(profile, BASE_PERIOD, SMALL)
        trimmed = extra_realtrace._trim(stream, 10, SMALL.buffer_size)
        assert len(trimmed.pcs) == 10 * SMALL.buffer_size
        assert trimmed.total_cycles == int(trimmed.cycles[-1]) + 1
        assert np.array_equal(trimmed.pcs,
                              stream.pcs[:len(trimmed.pcs)])

    def test_trim_beyond_length_returns_the_stream_itself(self):
        from repro.experiments.config import BASE_PERIOD
        from repro.experiments.base import trace_stream_for
        profile = load_corpus()[0]
        stream = trace_stream_for(profile, BASE_PERIOD, SMALL)
        assert extra_realtrace._trim(stream, 10**6,
                                     SMALL.buffer_size) is stream
