"""Region-space mapping, resampling and the TraceSource stream contract."""

import numpy as np
import pytest

from repro.core.histogram import INSTRUCTION_BYTES
from repro.errors import IngestError
from repro.faults.inject import inject
from repro.ingest import (TraceProvenance, TraceSource, profile_from_events,
                          resample_profile, resample_ticks)
from repro.ingest.mapping import DSO_GUARD_SLOTS, RegionSpaceMapper
from repro.ingest.perfscript import PerfEvent
from repro.sampling import SampleStream

PROV = TraceProvenance(command="demo", tool="test", event="cycles",
                       period_ns=100)


def two_dso_profile():
    events = [
        PerfEvent("app", 1, t, 0x1000 + (t % 300), "f", "/bin/app")
        for t in range(0, 5_000, 100)
    ] + [
        PerfEvent("app", 1, t, 0x9000 + (t % 500), "g", "/lib/x.so")
        for t in range(5_000, 10_000, 100)
    ]
    return profile_from_events(events, "twodso", PROV)


class TestRegionSpaceMapper:
    def test_segments_are_disjoint_with_guard_gaps(self):
        profile = two_dso_profile()
        mapper = RegionSpaceMapper(profile)
        base_a, span_a = mapper.segment("/bin/app")
        base_b, span_b = mapper.segment("/lib/x.so")
        assert base_a == 0
        assert base_b >= base_a + span_a \
            + DSO_GUARD_SLOTS * INSTRUCTION_BYTES

    def test_pcs_are_base_plus_offset(self):
        profile = two_dso_profile()
        mapper = RegionSpaceMapper(profile)
        pcs = mapper.pcs(profile.dso_index, profile.offsets)
        for i, dso in enumerate(profile.dsos):
            base, span = mapper.segment(dso)
            mask = profile.dso_index == i
            assert int(pcs[mask].min()) >= base
            assert int(pcs[mask].max()) < base + span

    def test_unknown_dso_and_bad_index_raise(self):
        mapper = RegionSpaceMapper(two_dso_profile())
        with pytest.raises(IngestError, match="not in the profile"):
            mapper.segment("/lib/other.so")
        with pytest.raises(IngestError, match="DSO table"):
            mapper.pcs(np.array([5]), np.array([0]))


class TestResampling:
    def test_zero_order_hold_reports_latest_sample_at_or_before(self):
        times = np.array([0, 250, 600], dtype=np.int64)
        ticks, held = resample_ticks(times, 100)
        assert ticks.tolist() == [100, 200, 300, 400, 500, 600]
        assert held.tolist() == [0, 0, 1, 1, 1, 2]

    def test_ticks_before_first_sample_are_dropped(self):
        ticks, held = resample_ticks(np.array([350, 400], dtype=np.int64),
                                     100)
        assert ticks.tolist() == [400]
        assert held.tolist() == [1]

    def test_invalid_inputs_raise(self):
        with pytest.raises(IngestError, match="positive"):
            resample_ticks(np.array([0, 10], dtype=np.int64), 0)
        with pytest.raises(IngestError, match="empty"):
            resample_ticks(np.array([], dtype=np.int64), 100)

    def test_resample_profile_keeps_absolute_tick_times(self):
        profile = two_dso_profile()
        coarse = resample_profile(profile, 700)
        assert coarse.times_ns[0] == 700  # not rebased to zero
        assert np.all(np.diff(coarse.times_ns) == 700)

    def test_period_longer_than_trace_raises(self):
        with pytest.raises(IngestError, match="no ticks fit"):
            resample_profile(two_dso_profile(), 10_000_000)


class TestTraceSource:
    def test_stream_satisfies_the_sampling_contract(self):
        profile = two_dso_profile()
        stream = TraceSource(profile, sampling_period=150).stream()
        assert isinstance(stream, SampleStream)
        assert stream.pcs.dtype == np.int64
        assert stream.cycles.dtype == np.int64
        assert np.all(np.diff(stream.cycles) > 0)
        assert stream.sampling_period == 150
        assert stream.region_names == profile.dsos
        assert stream.total_cycles > int(stream.cycles[-1])
        assert len(stream.pcs) == len(stream.cycles) \
            == len(stream.region_ids) == len(stream.dcache_miss)

    def test_region_ids_track_the_recorded_dso(self):
        profile = two_dso_profile()
        source = TraceSource(profile, sampling_period=150)
        stream = source.stream()
        mapper = source.mapper
        for i, dso in enumerate(profile.dsos):
            mask = stream.region_ids == i
            if np.any(mask):
                base, span = mapper.segment(dso)
                assert int(stream.pcs[mask].min()) >= base
                assert int(stream.pcs[mask].max()) < base + span

    def test_cycles_per_ns_rescales_the_timeline(self):
        profile = two_dso_profile()
        slow = TraceSource(profile, 150, cycles_per_ns=1.0).stream()
        fast = TraceSource(profile, 150, cycles_per_ns=2.0).stream()
        # Twice the cycles per nanosecond -> twice the ticks (±1).
        assert abs(len(fast.pcs) - 2 * len(slow.pcs)) <= 2

    def test_repeat_tiles_the_recording_without_overlap(self):
        profile = two_dso_profile()
        once = TraceSource(profile, 150).stream()
        twice = TraceSource(profile, 150, repeat=2).stream()
        assert len(twice.pcs) > 2 * len(once.pcs) - 4
        assert np.all(np.diff(twice.cycles) > 0)
        # The first tile replays identically.
        n = len(once.pcs)
        assert np.array_equal(twice.pcs[:n], once.pcs)

    def test_identity_fingerprint_carries_every_replay_knob(self):
        profile = two_dso_profile()
        identity = TraceSource(profile, 150, cycles_per_ns=2.0,
                               repeat=3).identity()
        token = identity.token()
        assert token[0] == "trace"
        payload = dict(token[1:])
        assert payload["name"] == "twodso"
        assert payload["checksum"] == profile.checksum
        assert payload["cycles_per_ns"] == 2.0
        assert payload["repeat"] == 3

    def test_invalid_replay_parameters_raise(self):
        profile = two_dso_profile()
        with pytest.raises(IngestError, match="sampling_period"):
            TraceSource(profile, 0)
        with pytest.raises(IngestError, match="cycles_per_ns"):
            TraceSource(profile, 150, cycles_per_ns=0.0)
        with pytest.raises(IngestError, match="repeat"):
            TraceSource(profile, 150, repeat=0)

    def test_trace_shorter_than_one_period_raises(self):
        profile = two_dso_profile()
        with pytest.raises(IngestError, match="shorter than one"):
            TraceSource(profile, 10_000_000).stream()

    def test_fault_injection_applies_to_replayed_streams(self):
        # The stream contract is what makes the adapter composable:
        # downstream tooling (here the fault injector) must work on a
        # recorded stream exactly as on a synthetic one.
        from tests.conftest import drop_plan
        stream = TraceSource(two_dso_profile(), 150).stream()
        faulted = inject(stream, drop_plan(rate=0.5, burst_mean=2.0),
                         seed=3)
        assert 0 < len(faulted.pcs) < len(stream.pcs)
        assert faulted.sampling_period == stream.sampling_period
