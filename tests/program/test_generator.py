"""Tests for the random program generator."""

import pytest

from repro.program.generator import random_program


class TestGenerator:
    @pytest.mark.parametrize("seed", range(12))
    def test_generated_programs_are_valid(self, seed):
        program = random_program(seed)
        # Workload only references declared regions.
        for name in program.workload.region_names():
            assert name in program.regions
        # Every loop region has a discoverable natural loop.
        for spec in program.regions.values():
            loop = program.binary.innermost_loop_at(spec.start + 8)
            if spec.is_loop:
                assert loop is not None
            else:
                assert loop is None
        assert program.workload.total_cycles > 0

    def test_deterministic_per_seed(self):
        a = random_program(42)
        b = random_program(42)
        assert a.binary.text_range == b.binary.text_range
        assert sorted(a.regions) == sorted(b.regions)
        assert a.workload.total_cycles == b.workload.total_cycles

    def test_seeds_vary_structure(self):
        shapes = {random_program(seed).binary.text_range
                  for seed in range(10)}
        assert len(shapes) > 1

    def test_ucr_procedure_called_from_loop_when_present(self):
        for seed in range(20):
            program = random_program(seed)
            if "ucr_proc" in program.regions:
                assert program.binary.caller_loop_of("ucr_proc") is not None
                break
        else:
            pytest.fail("no generated program included a UCR procedure")

    def test_respects_max_loops(self):
        program = random_program(3, max_loops=2)
        loops = [spec for spec in program.regions.values() if spec.is_loop]
        assert 1 <= len(loops) <= 2
