"""Unit tests for profiles and RegionSpec."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.program.behavior import (RegionSpec, blended_profile,
                                    bottleneck_profile, shifted_profile,
                                    uniform_profile)


class TestProfiles:
    def test_uniform_is_normalized(self):
        p = uniform_profile(10)
        assert p.sum() == pytest.approx(1.0)
        assert np.allclose(p, 0.1)

    def test_uniform_requires_slots(self):
        with pytest.raises(WorkloadError):
            uniform_profile(0)

    def test_bottleneck_spike(self):
        p = bottleneck_profile(10, {4: 300.0})
        assert p.argmax() == 4
        assert p.sum() == pytest.approx(1.0)
        assert p[4] > 0.9

    def test_bottleneck_validation(self):
        with pytest.raises(WorkloadError):
            bottleneck_profile(10, {10: 1.0})
        with pytest.raises(WorkloadError):
            bottleneck_profile(10, {0: -1.0})

    def test_shifted_profile_moves_spike(self):
        p = bottleneck_profile(10, {4: 300.0})
        q = shifted_profile(p, 1)
        assert q.argmax() == 5
        assert q.sum() == pytest.approx(1.0)

    def test_shift_wraps(self):
        p = bottleneck_profile(4, {3: 100.0})
        assert shifted_profile(p, 1).argmax() == 0

    def test_blended_profile(self):
        a = bottleneck_profile(6, {0: 100.0})
        b = bottleneck_profile(6, {5: 100.0})
        mid = blended_profile(a, b, 0.5)
        assert mid.sum() == pytest.approx(1.0)
        assert mid[0] == pytest.approx(mid[5])
        assert np.allclose(blended_profile(a, b, 0.0), a)
        assert np.allclose(blended_profile(a, b, 1.0), b)

    def test_blend_validation(self):
        a = uniform_profile(4)
        with pytest.raises(WorkloadError):
            blended_profile(a, uniform_profile(5), 0.5)
        with pytest.raises(WorkloadError):
            blended_profile(a, a, 1.5)


class TestRegionSpec:
    def test_defaults_and_slots(self):
        spec = RegionSpec("r", 0x1000, 0x1040)
        assert spec.n_slots == 16
        assert "main" in spec.profiles
        assert spec.profile().sum() == pytest.approx(1.0)

    def test_invalid_span(self):
        with pytest.raises(WorkloadError):
            RegionSpec("r", 0x1000, 0x1000)
        with pytest.raises(WorkloadError):
            RegionSpec("r", 0x1000, 0x1001)

    def test_profile_length_validated(self):
        with pytest.raises(WorkloadError):
            RegionSpec("r", 0x1000, 0x1040,
                       profiles={"main": uniform_profile(8)})

    def test_main_profile_required(self):
        with pytest.raises(WorkloadError):
            RegionSpec("r", 0x1000, 0x1040,
                       profiles={"other": uniform_profile(16)})

    def test_profiles_are_normalized_on_init(self):
        spec = RegionSpec("r", 0x1000, 0x1010,
                          profiles={"main": np.array([1.0, 1.0, 1.0, 1.0])})
        assert spec.profile().sum() == pytest.approx(1.0)

    def test_unknown_profile_raises_with_list(self):
        spec = RegionSpec("r", 0x1000, 0x1010)
        with pytest.raises(WorkloadError, match="profiles: main"):
            spec.profile("ghost")

    def test_trait_validation(self):
        with pytest.raises(WorkloadError):
            RegionSpec("r", 0x1000, 0x1010, cpi=0.0)
        with pytest.raises(WorkloadError):
            RegionSpec("r", 0x1000, 0x1010, dpi=1.5)
        with pytest.raises(WorkloadError):
            RegionSpec("r", 0x1000, 0x1010, opt_potential=1.0)

    def test_for_loop_constructor(self):
        spec = RegionSpec.for_loop("hot", (0x2000, 0x2080), dpi=0.02)
        assert spec.start == 0x2000
        assert spec.n_slots == 32
        assert spec.dpi == 0.02
