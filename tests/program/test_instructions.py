"""Unit tests for instructions and basic blocks."""

import pytest

from repro.errors import AddressError
from repro.program.instructions import BasicBlock, Instruction, Opcode


def block(start, n, successors=(), last=None, last_target=None):
    instructions = []
    for i in range(n):
        addr = start + 4 * i
        if i == n - 1 and last is not None:
            instructions.append(Instruction(addr, last, last_target))
        else:
            instructions.append(Instruction(addr))
    return BasicBlock(start, tuple(instructions), tuple(successors))


class TestInstruction:
    def test_alignment_enforced(self):
        with pytest.raises(AddressError):
            Instruction(0x1001)
        with pytest.raises(AddressError):
            Instruction(-4)

    def test_target_only_on_control_flow(self):
        Instruction(0x1000, Opcode.BRANCH, 0x2000)
        Instruction(0x1000, Opcode.CALL, 0x2000)
        with pytest.raises(AddressError):
            Instruction(0x1000, Opcode.ALU, 0x2000)

    def test_classification(self):
        assert Instruction(0x0, Opcode.BRANCH, 0x10).is_control_flow
        assert Instruction(0x0, Opcode.RET).is_control_flow
        assert not Instruction(0x0, Opcode.LOAD).is_control_flow
        assert Instruction(0x0, Opcode.LOAD).is_memory
        assert Instruction(0x0, Opcode.STORE).is_memory
        assert not Instruction(0x0, Opcode.FP).is_memory


class TestBasicBlock:
    def test_basic_properties(self):
        b = block(0x1000, 4, successors=(0x1010,))
        assert b.end == 0x1010
        assert b.n_instructions == 4
        assert b.contains(0x100C)
        assert not b.contains(0x1010)
        assert b.terminator.address == 0x100C

    def test_empty_block_rejected(self):
        with pytest.raises(AddressError):
            BasicBlock(0x1000, ())

    def test_start_mismatch_rejected(self):
        instr = (Instruction(0x1004),)
        with pytest.raises(AddressError):
            BasicBlock(0x1000, instr)

    def test_non_contiguous_rejected(self):
        instr = (Instruction(0x1000), Instruction(0x1008))
        with pytest.raises(AddressError):
            BasicBlock(0x1000, instr)

    def test_call_targets(self):
        b = block(0x1000, 3, last=Opcode.CALL, last_target=0x4000)
        assert b.call_targets() == (0x4000,)
        assert block(0x1000, 3).call_targets() == ()

    def test_repr_mentions_range(self):
        assert "0x1000" in repr(block(0x1000, 2))
