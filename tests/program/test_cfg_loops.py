"""Unit tests for the CFG, dominators, and natural-loop detection."""

import pytest

from repro.errors import AddressError
from repro.program.cfg import ControlFlowGraph
from repro.program.instructions import BasicBlock, Instruction
from repro.program.loops import find_natural_loops, innermost_loop_containing


def make_block(start, n, successors=()):
    instructions = tuple(Instruction(start + 4 * i) for i in range(n))
    return BasicBlock(start, instructions, tuple(successors))


def diamond_cfg():
    """entry -> (left | right) -> join."""
    blocks = [
        make_block(0x0, 2, (0x8, 0x10)),
        make_block(0x8, 2, (0x18,)),
        make_block(0x10, 2, (0x18,)),
        make_block(0x18, 2, ()),
    ]
    return ControlFlowGraph(0x0, blocks)


def self_loop_cfg():
    """entry -> loop(self) -> exit."""
    blocks = [
        make_block(0x0, 2, (0x8,)),
        make_block(0x8, 4, (0x8, 0x18)),
        make_block(0x18, 2, ()),
    ]
    return ControlFlowGraph(0x0, blocks)


def nested_loop_cfg():
    """entry -> H1 -> H2 -> body -> latch2(H2) -> latch1(H1) -> exit.

    H1 heads the outer loop, H2 the inner.
    """
    blocks = [
        make_block(0x00, 2, (0x08,)),          # entry
        make_block(0x08, 2, (0x10, 0x30)),     # H1: outer header
        make_block(0x10, 2, (0x18, 0x28)),     # H2: inner header
        make_block(0x18, 2, (0x20,)),          # inner body
        make_block(0x20, 2, (0x10,)),          # latch2 -> H2
        make_block(0x28, 2, (0x08,)),          # latch1 -> H1
        make_block(0x30, 2, ()),               # exit
    ]
    return ControlFlowGraph(0x00, blocks)


class TestCfgConstruction:
    def test_duplicate_block_rejected(self):
        blocks = [make_block(0x0, 2), make_block(0x0, 2)]
        with pytest.raises(AddressError):
            ControlFlowGraph(0x0, blocks)

    def test_unknown_entry_rejected(self):
        with pytest.raises(AddressError):
            ControlFlowGraph(0x100, [make_block(0x0, 2)])

    def test_unknown_successor_rejected(self):
        with pytest.raises(AddressError):
            ControlFlowGraph(0x0, [make_block(0x0, 2, (0x999,))])

    def test_predecessors(self):
        cfg = diamond_cfg()
        assert set(cfg.predecessors(0x18)) == {0x8, 0x10}
        assert cfg.predecessors(0x0) == ()

    def test_block_containing(self):
        cfg = diamond_cfg()
        assert cfg.block_containing(0xC).start == 0x8
        assert cfg.block_containing(0x999) is None


class TestTraversal:
    def test_rpo_starts_at_entry(self):
        rpo = diamond_cfg().reverse_post_order()
        assert rpo[0] == 0x0
        assert rpo[-1] == 0x18
        assert len(rpo) == 4

    def test_unreachable_blocks_excluded(self):
        blocks = [make_block(0x0, 2, (0x8,)), make_block(0x8, 2),
                  make_block(0x20, 2)]
        cfg = ControlFlowGraph(0x0, blocks)
        assert 0x20 not in cfg.reachable()

    def test_deep_chain_does_not_recurse(self):
        # 5000-block chain: iterative DFS must handle it.
        blocks = [make_block(i * 8, 2, ((i + 1) * 8,))
                  for i in range(4999)]
        blocks.append(make_block(4999 * 8, 2))
        cfg = ControlFlowGraph(0x0, blocks)
        assert len(cfg.reverse_post_order()) == 5000


class TestDominators:
    def test_diamond(self):
        cfg = diamond_cfg()
        idom = cfg.immediate_dominators()
        assert idom[0x8] == 0x0
        assert idom[0x10] == 0x0
        assert idom[0x18] == 0x0  # join dominated by entry, not branches

    def test_dominates_is_reflexive_and_respects_entry(self):
        cfg = diamond_cfg()
        assert cfg.dominates(0x8, 0x8)
        assert cfg.dominates(0x0, 0x18)
        assert not cfg.dominates(0x8, 0x18)

    def test_back_edges_in_self_loop(self):
        edges = self_loop_cfg().back_edges()
        assert len(edges) == 1
        assert edges[0].source == 0x8
        assert edges[0].target == 0x8

    def test_no_back_edges_in_dag(self):
        assert diamond_cfg().back_edges() == []

    def test_nested_loop_back_edges(self):
        edges = {(e.source, e.target)
                 for e in nested_loop_cfg().back_edges()}
        assert edges == {(0x20, 0x10), (0x28, 0x08)}


class TestNaturalLoops:
    def test_self_loop(self):
        loops = find_natural_loops(self_loop_cfg())
        assert len(loops) == 1
        assert loops[0].header == 0x8
        assert loops[0].blocks == frozenset({0x8})
        assert (loops[0].start, loops[0].end) == (0x8, 0x18)

    def test_nested_loops_with_parents(self):
        loops = find_natural_loops(nested_loop_cfg())
        assert len(loops) == 2
        inner, outer = loops  # innermost first
        assert inner.header == 0x10
        assert outer.header == 0x08
        assert inner.parent == outer.header
        assert outer.parent is None
        assert inner.blocks < outer.blocks

    def test_loop_spans(self):
        loops = find_natural_loops(nested_loop_cfg())
        inner, outer = loops
        assert (inner.start, inner.end) == (0x10, 0x28)
        assert (outer.start, outer.end) == (0x08, 0x30)
        assert inner.n_instructions == 6
        assert outer.n_instructions == 10

    def test_innermost_containing(self):
        loops = find_natural_loops(nested_loop_cfg())
        hit = innermost_loop_containing(loops, 0x18)
        assert hit is not None and hit.header == 0x10
        hit = innermost_loop_containing(loops, 0x28)  # only in outer span
        assert hit is not None and hit.header == 0x08
        assert innermost_loop_containing(loops, 0x100) is None

    def test_merged_back_edges_share_header(self):
        # Two back edges to the same header merge into one loop.
        blocks = [
            make_block(0x00, 2, (0x08,)),
            make_block(0x08, 2, (0x10, 0x18)),   # header
            make_block(0x10, 2, (0x08,)),        # latch A
            make_block(0x18, 2, (0x08, 0x20)),   # latch B / exit test
            make_block(0x20, 2, ()),
        ]
        cfg = ControlFlowGraph(0x00, blocks)
        loops = find_natural_loops(cfg)
        assert len(loops) == 1
        assert loops[0].blocks == frozenset({0x08, 0x10, 0x18})
