"""Tests for the synthetic SPEC CPU2000 suite models."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.program.spec2000 import (FIG3_BENCHMARKS, FIG6_BENCHMARKS,
                                    FIG13_BENCHMARKS, FIG16_BENCHMARKS,
                                    FIG17_BENCHMARKS, SUITE,
                                    benchmark_names, get_benchmark)

#: A small scale that keeps every model's total runtime tiny.
SCALE = 0.02


class TestRegistry:
    def test_suite_has_24_models(self):
        assert len(SUITE) == 24
        assert benchmark_names() == sorted(SUITE)

    def test_figure_membership(self):
        assert len(FIG3_BENCHMARKS) == 21
        assert len(FIG6_BENCHMARKS) == 23
        assert len(FIG13_BENCHMARKS) == 8
        assert len(FIG16_BENCHMARKS) == 24
        assert set(FIG17_BENCHMARKS) == {"181.mcf", "172.mgrid", "254.gap",
                                         "191.fma3d"}
        assert "176.gcc" not in FIG3_BENCHMARKS  # short running, excluded
        assert set(FIG3_BENCHMARKS) <= set(FIG6_BENCHMARKS)

    def test_unknown_benchmark(self):
        with pytest.raises(ConfigError, match="unknown benchmark"):
            get_benchmark("999.doom")

    def test_scale_validation(self):
        with pytest.raises(ConfigError):
            get_benchmark("181.mcf", scale=0.0)

    def test_caching_returns_same_object(self):
        a = get_benchmark("181.mcf", SCALE)
        b = get_benchmark("181.mcf", SCALE)
        assert a is b

    def test_scaling_shrinks_duration(self):
        full = get_benchmark("171.swim", 1.0)
        small = get_benchmark("171.swim", 0.1)
        assert small.workload.total_cycles == pytest.approx(
            full.workload.total_cycles * 0.1, rel=0.01)


@pytest.mark.parametrize("name", sorted(SUITE))
class TestEveryModelIsWellFormed:
    def test_workload_references_known_regions(self, name):
        model = get_benchmark(name, SCALE)
        for region_name in model.workload.region_names():
            assert region_name in model.regions

    def test_loop_regions_match_binary_loops(self, name):
        model = get_benchmark(name, SCALE)
        for region_name, spec in model.regions.items():
            if not spec.is_loop:
                continue
            found = model.binary.innermost_loop_at(spec.start + 8)
            assert found is not None, \
                f"{name}: loop region {region_name} has no binary loop"

    def test_non_loop_regions_have_no_loop(self, name):
        model = get_benchmark(name, SCALE)
        for region_name, spec in model.regions.items():
            if spec.is_loop:
                continue
            assert model.binary.innermost_loop_at(spec.start + 8) is None, \
                f"{name}: UCR region {region_name} sits inside a loop"

    def test_selected_regions_exist(self, name):
        model = get_benchmark(name, SCALE)
        for region_name in model.selected_region_names:
            assert region_name in model.regions
            assert model.monitored_name(region_name)

    def test_mixture_weights_cover_execution(self, name):
        model = get_benchmark(name, SCALE)
        for piece in model.workload.compile()[:50]:
            shares = piece.mix.region_shares()
            assert sum(shares.values()) == pytest.approx(1.0)


class TestPaperAddresses:
    def test_mcf_regions_match_figure_9(self):
        model = get_benchmark("181.mcf", SCALE)
        assert model.monitored_name("mcf_r1") == "146f0-14770"
        assert model.monitored_name("mcf_r2") == "142c8-14318"
        assert model.monitored_name("mcf_r3") == "13134-133d4"

    def test_gap_regions_match_figure_11(self):
        model = get_benchmark("254.gap", SCALE)
        assert model.monitored_name("gap_g1") == "7ba2c-7ba78"
        assert model.monitored_name("gap_g2") == "8d25c-8d314"


class TestEncodedBehaviors:
    """Cheap behavioral checks on the workload ground truth (no detector
    runs — those live in the integration tests)."""

    def test_mcf_region_tradeoff(self):
        from repro.program.workload import region_cycles_per_window

        model = get_benchmark("181.mcf", 0.1)
        pieces = model.workload.compile()
        window = model.workload.total_cycles // 10
        matrix = region_cycles_per_window(pieces, window, 10,
                                          ["mcf_r1", "mcf_r2"])
        shares = matrix / matrix.sum(axis=1, keepdims=True)
        assert shares[0, 0] > shares[-1, 0]  # r1 fades
        assert shares[0, 1] < shares[-1, 1]  # r2 grows

    def test_facerec_alternates_sets(self):
        model = get_benchmark("187.facerec", 0.1)
        pieces = model.workload.compile()
        dominant = []
        for piece in pieces:
            shares = piece.mix.region_shares()
            dominant.append(max(shares, key=shares.get))
        assert "face_f1" in dominant and "face_f3" in dominant

    def test_gap_ucr_weight_above_threshold(self):
        model = get_benchmark("254.gap", 0.1)
        piece = model.workload.compile()[0]
        shares = piece.mix.region_shares()
        ucr = shares.get("gap_u1", 0) + shares.get("gap_u2", 0)
        assert ucr > 0.30

    def test_crafty_ucr_weight_above_threshold(self):
        model = get_benchmark("186.crafty", 0.1)
        shares = model.workload.compile()[0].mix.region_shares()
        ucr = sum(v for k, v in shares.items() if k.startswith("crafty_u"))
        assert ucr > 0.30

    def test_gcc_has_hundreds_of_loops(self):
        model = get_benchmark("176.gcc", SCALE)
        n_loops = sum(1 for spec in model.regions.values() if spec.is_loop)
        assert n_loops >= 300

    def test_ammp_has_one_huge_region(self):
        model = get_benchmark("188.ammp", SCALE)
        big = model.regions["ammp_a1"]
        assert big.n_slots == 1600
        assert len(big.profiles) >= 4  # the wandering profiles

    def test_fig17_benchmarks_have_opt_potential(self):
        for name in FIG17_BENCHMARKS:
            model = get_benchmark(name, SCALE)
            potentials = [spec.opt_potential
                          for spec in model.regions.values()
                          if spec.is_loop]
            assert max(potentials) > 0.0

    def test_descriptions_present(self):
        for name in benchmark_names():
            model = get_benchmark(name, SCALE)
            assert model.description
            assert model.name == name
