"""Direct unit tests for Procedure (gaps, call-in-loop analysis)."""

import pytest

from repro.errors import AddressError
from repro.program.binary import BinaryBuilder, call, loop, straight
from repro.program.instructions import BasicBlock, Instruction
from repro.program.procedures import Procedure


def make_block(start, n, successors=(), last=None, last_target=None):
    instructions = []
    for i in range(n):
        addr = start + 4 * i
        if i == n - 1 and last is not None:
            instructions.append(Instruction(addr, last, last_target))
        else:
            instructions.append(Instruction(addr))
    return BasicBlock(start, tuple(instructions), tuple(successors))


class TestConstruction:
    def test_basic_properties(self):
        blocks = [make_block(0x1000, 4, (0x1010,)), make_block(0x1010, 4)]
        procedure = Procedure("f", 0x1000, blocks)
        assert procedure.start == 0x1000
        assert procedure.end == 0x1020
        assert procedure.n_instructions == 8
        assert procedure.contains(0x101C)
        assert not procedure.contains(0x1020)
        assert "f" in repr(procedure)

    def test_blocks_sorted_by_address(self):
        blocks = [make_block(0x1010, 4), make_block(0x1000, 4, (0x1010,))]
        procedure = Procedure("f", 0x1000, blocks)
        assert [b.start for b in procedure.blocks] == [0x1000, 0x1010]

    def test_empty_rejected(self):
        with pytest.raises(AddressError):
            Procedure("f", 0x1000, [])

    def test_gap_rejected(self):
        blocks = [make_block(0x1000, 4, (0x1020,)), make_block(0x1020, 4)]
        with pytest.raises(AddressError, match="gap"):
            Procedure("f", 0x1000, blocks)

    def test_loops_cached(self):
        blocks = [make_block(0x1000, 2, (0x1008,)),
                  make_block(0x1008, 4, (0x1008, 0x1018)),
                  make_block(0x1018, 2)]
        procedure = Procedure("f", 0x1000, blocks)
        assert procedure.loops is procedure.loops  # cached_property


class TestCallAnalysis:
    def build(self):
        builder = BinaryBuilder(base=0x10000)
        builder.procedure("leaf_a", [straight(8)])
        builder.procedure("leaf_b", [straight(8)])
        builder.procedure("main", [
            call("leaf_a"),                       # call OUTSIDE any loop
            loop("l", body=[straight(2), call("leaf_b")]),
            straight(2),
        ], at=0x20000)
        return builder.build()

    def test_call_targets(self):
        binary = self.build()
        main = binary.procedure("main")
        targets = main.call_targets()
        assert binary.procedure("leaf_a").entry in targets
        assert binary.procedure("leaf_b").entry in targets

    def test_calls_inside_loops_distinguishes(self):
        binary = self.build()
        main = binary.procedure("main")
        in_loop = main.calls_inside_loops()
        assert binary.procedure("leaf_b").entry in in_loop
        assert binary.procedure("leaf_a").entry not in in_loop
        loop_span = binary.loop_span("l")
        found = in_loop[binary.procedure("leaf_b").entry]
        assert (found.start, found.end) == loop_span

    def test_caller_loop_of_respects_loop_membership(self):
        binary = self.build()
        assert binary.caller_loop_of("leaf_b") is not None
        assert binary.caller_loop_of("leaf_a") is None
