"""Tests for the repro-suite inspection CLI."""

import pytest

from repro.errors import ConfigError
from repro.program.suite_cli import describe, inventory_table, main
from repro.program.spec2000 import benchmark_names, get_benchmark


class TestInventory:
    def test_lists_every_model(self):
        table = inventory_table()
        for name in benchmark_names():
            assert name in table
        assert "intervals@45k" in table

    def test_main_without_args_prints_inventory(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "Synthetic SPEC CPU2000 suite" in out
        assert "181.mcf" in out


class TestDescribe:
    def test_mcf_description_sections(self):
        text = describe(get_benchmark("181.mcf", 0.1))
        assert "146f0-14770" in text
        assert "natural loops" in text
        assert "workload segments" in text
        assert "selected regions" in text
        assert "periodic" in text and "drift" in text

    def test_gap_shows_proc_regions(self):
        text = describe(get_benchmark("254.gap", 0.1))
        assert "proc" in text  # the UCR procedures
        assert "7ba2c-7ba78" in text

    def test_long_segment_lists_truncated(self):
        text = describe(get_benchmark("173.applu", 0.1))
        assert "steady" in text

    def test_main_with_benchmark(self, capsys):
        assert main(["172.mgrid", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "172.mgrid" in out
        assert "regions" in out

    def test_main_unknown_benchmark(self):
        with pytest.raises(ConfigError):
            main(["999.doom"])
