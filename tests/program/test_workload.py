"""Unit tests for workload scripts and timeline compilation."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.program.workload import (Component, Drift, Mixture, Periodic,
                                    Steady, WorkloadScript, mixture,
                                    region_cycles,
                                    region_cycles_per_window)

MIX_A = mixture(("a", 0.7), ("b", 0.3))
MIX_B = mixture(("b", 1.0))


class TestMixture:
    def test_weights_normalized(self):
        assert MIX_A.weights.sum() == pytest.approx(1.0)
        assert MIX_A.weights[0] == pytest.approx(0.7)

    def test_tuple_shorthand_with_profile(self):
        mix = mixture(("a", 1.0, "alt"))
        assert mix.components[0].profile == "alt"

    def test_component_positive_weight(self):
        with pytest.raises(WorkloadError):
            Component("a", 0.0)

    def test_empty_mixture_rejected(self):
        with pytest.raises(WorkloadError):
            Mixture(())

    def test_duplicate_region_profile_rejected(self):
        with pytest.raises(WorkloadError):
            mixture(("a", 0.5), ("a", 0.5))

    def test_same_region_different_profiles_allowed(self):
        mix = mixture(("a", 0.5, "p0"), ("a", 0.5, "p1"))
        assert mix.region_shares() == {"a": pytest.approx(1.0)}


class TestSegments:
    def test_steady_pieces(self):
        pieces = Steady(1000, MIX_A).pieces(500)
        assert len(pieces) == 1
        assert (pieces[0].start, pieces[0].end) == (500, 1500)
        assert pieces[0].duration == 1000

    def test_periodic_alternation(self):
        seg = Periodic(1000, (MIX_A, MIX_B), switch_period=300)
        pieces = seg.pieces(0)
        assert [p.start for p in pieces] == [0, 300, 600, 900]
        assert pieces[0].mix is MIX_A
        assert pieces[1].mix is MIX_B
        assert pieces[3].end == 1000  # truncated final piece

    def test_periodic_validation(self):
        with pytest.raises(WorkloadError):
            Periodic(1000, (MIX_A,), 100)
        with pytest.raises(WorkloadError):
            Periodic(1000, (MIX_A, MIX_B), 0)
        with pytest.raises(WorkloadError, match="500k pieces"):
            Periodic(10**9, (MIX_A, MIX_B), 1)

    def test_drift_interpolates_weights(self):
        seg = Drift(1000, mixture(("a", 1.0)), mixture(("b", 1.0)), steps=4)
        pieces = seg.pieces(0)
        assert len(pieces) == 4
        first_shares = pieces[0].mix.region_shares()
        last_shares = pieces[-1].mix.region_shares()
        assert first_shares["a"] > 0.8
        assert last_shares["b"] > 0.8
        # Every piece's shares sum to 1.
        for piece in pieces:
            assert sum(piece.mix.region_shares().values()) \
                == pytest.approx(1.0)

    def test_drift_pieces_tile_duration(self):
        pieces = Drift(997, MIX_A, MIX_B, steps=7).pieces(100)
        assert pieces[0].start == 100
        assert pieces[-1].end == 1097
        for left, right in zip(pieces, pieces[1:]):
            assert left.end == right.start

    def test_duration_validation(self):
        for bad in (Steady, ):
            with pytest.raises(WorkloadError):
                bad(0, MIX_A)
        with pytest.raises(WorkloadError):
            Drift(100, MIX_A, MIX_B, steps=1)


class TestWorkloadScript:
    def test_compile_concatenates_segments(self):
        script = WorkloadScript([Steady(100, MIX_A), Steady(200, MIX_B)])
        pieces = script.compile()
        assert [(p.start, p.end) for p in pieces] == [(0, 100), (100, 300)]
        assert script.total_cycles == 300

    def test_empty_script_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadScript([])

    def test_region_names_in_first_use_order(self):
        script = WorkloadScript([Steady(100, MIX_A), Steady(100, MIX_B)])
        assert script.region_names() == ["a", "b"]

    def test_scaled_shrinks_durations(self):
        script = WorkloadScript([
            Steady(1000, MIX_A),
            Periodic(2000, (MIX_A, MIX_B), 500),
            Drift(1000, MIX_A, MIX_B, steps=4),
        ])
        small = script.scaled(0.1)
        assert small.total_cycles == pytest.approx(400, abs=2)
        # Switch period is NOT scaled: the switching time scale is part of
        # the modeled behavior; only run length shrinks.
        assert small.segments[1].switch_period == 500

    def test_scale_factor_validation(self):
        script = WorkloadScript([Steady(100, MIX_A)])
        with pytest.raises(WorkloadError):
            script.scaled(0.0)


class TestTimingGroundTruth:
    def test_region_cycles_totals(self):
        script = WorkloadScript([Steady(1000, MIX_A), Steady(1000, MIX_B)])
        totals = region_cycles(script.compile())
        assert totals["a"] == pytest.approx(700.0)
        assert totals["b"] == pytest.approx(1300.0)
        assert sum(totals.values()) == pytest.approx(2000.0)

    def test_window_matrix_conserves_cycles(self):
        script = WorkloadScript([
            Steady(1000, MIX_A),
            Periodic(1000, (MIX_A, MIX_B), 150),
        ])
        matrix = region_cycles_per_window(script.compile(), 250, 8,
                                          ["a", "b"])
        assert matrix.shape == (8, 2)
        assert matrix.sum() == pytest.approx(2000.0)
        totals = region_cycles(script.compile())
        assert matrix[:, 0].sum() == pytest.approx(totals["a"])
        assert matrix[:, 1].sum() == pytest.approx(totals["b"])

    def test_window_matrix_piece_split_across_windows(self):
        script = WorkloadScript([Steady(1000, mixture(("a", 1.0)))])
        matrix = region_cycles_per_window(script.compile(), 300, 3, ["a"])
        assert matrix[:, 0].tolist() == [300.0, 300.0, 300.0]

    def test_window_matrix_validation(self):
        with pytest.raises(WorkloadError):
            region_cycles_per_window([], 0, 2, ["a"])
