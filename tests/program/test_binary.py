"""Unit tests for the binary builder and SyntheticBinary queries."""

import pytest

from repro.errors import AddressError
from repro.program.binary import (BinaryBuilder, LoopShape, call, loop,
                                  straight)
from repro.program.instructions import Opcode


def toy_binary():
    b = BinaryBuilder(base=0x10000)
    b.procedure("helper", [straight(16)])
    b.procedure("main", [
        straight(8),
        loop("outer", body=[straight(4), loop("inner", body=12),
                            call("helper")]),
        straight(4),
    ], at=0x20000)
    return b.build()


class TestShapes:
    def test_shape_sizes(self):
        assert straight(7).size == 7
        assert call("x", 5).size == 5
        assert loop("l", body=10).size == 14  # header 2 + 10 + latch 2
        nested = loop("o", body=[straight(3), loop("i", body=4)])
        assert nested.size == 2 + 3 + (2 + 4 + 2) + 2

    def test_shape_validation(self):
        with pytest.raises(AddressError):
            straight(0)
        with pytest.raises(AddressError):
            call("x", 0)
        with pytest.raises(AddressError):
            LoopShape("l", body=())
        with pytest.raises(AddressError):
            loop("l", body=4, header_n=0)


class TestBuilder:
    def test_explicit_placement(self):
        b = BinaryBuilder(base=0x10000)
        b.procedure("p", [loop("hot", body=28)], at=0x146EC)
        # header 2 instructions after the procedure start
        binary = b.build()
        start, end = binary.loop_span("hot")
        assert start == 0x146EC
        assert end == 0x146EC + 32 * 4

    def test_duplicate_procedure_rejected(self):
        b = BinaryBuilder()
        b.procedure("p", [straight(4)])
        with pytest.raises(AddressError):
            b.procedure("p", [straight(4)])

    def test_duplicate_loop_name_rejected(self):
        b = BinaryBuilder()
        b.procedure("p", [loop("l", body=4)])
        b.procedure("q", [loop("l", body=4)])
        with pytest.raises(AddressError):
            b.build()

    def test_overlapping_placement_rejected(self):
        b = BinaryBuilder(base=0x1000)
        b.procedure("p", [straight(64)], at=0x1000)
        with pytest.raises(AddressError):
            b.procedure("q", [straight(4)], at=0x1010)

    def test_unknown_callee_rejected(self):
        b = BinaryBuilder()
        b.procedure("p", [call("ghost")])
        with pytest.raises(AddressError):
            b.build()

    def test_unaligned_placement_rejected(self):
        b = BinaryBuilder()
        with pytest.raises(AddressError):
            b.procedure("p", [straight(4)], at=0x1002)

    def test_load_pattern(self):
        # Non-terminal block: every 4th instruction is a load.  The final
        # block of a procedure ends in RET instead, which may displace the
        # last load.
        binary = BinaryBuilder().procedure(
            "p", [straight(8), straight(4)]).build()
        block = binary.procedure("p").blocks[0]
        loads = [i for i in block.instructions if i.opcode is Opcode.LOAD]
        assert len(loads) == 2  # slots 3 and 7
        last = binary.procedure("p").blocks[-1].terminator
        assert last.opcode is Opcode.RET


class TestBinaryQueries:
    def test_procedure_lookup(self):
        binary = toy_binary()
        assert binary.procedure("main").name == "main"
        with pytest.raises(AddressError):
            binary.procedure("ghost")

    def test_procedure_at(self):
        binary = toy_binary()
        main = binary.procedure("main")
        assert binary.procedure_at(main.start) is main
        assert binary.procedure_at(main.end - 4) is main
        assert binary.procedure_at(main.end) is None
        assert binary.procedure_at(0x0) is None

    def test_loops_discovered_match_named_spans(self):
        binary = toy_binary()
        main = binary.procedure("main")
        assert len(main.loops) == 2
        spans = {(lp.start, lp.end) for lp in main.loops}
        assert binary.loop_span("inner") in spans
        assert binary.loop_span("outer") in spans

    def test_innermost_loop_at(self):
        binary = toy_binary()
        inner_start, inner_end = binary.loop_span("inner")
        outer_start, outer_end = binary.loop_span("outer")
        hit = binary.innermost_loop_at(inner_start + 8)
        assert (hit.start, hit.end) == (inner_start, inner_end)
        hit = binary.innermost_loop_at(outer_start)
        assert (hit.start, hit.end) == (outer_start, outer_end)
        assert binary.innermost_loop_at(binary.procedure("helper").start) \
            is None

    def test_call_graph(self):
        binary = toy_binary()
        assert binary.callers_of("helper") == {"main"}
        assert binary.callers_of("main") == set()

    def test_caller_loop_of(self):
        binary = toy_binary()
        found = binary.caller_loop_of("helper")
        assert found is not None
        procedure, lp = found
        assert procedure.name == "main"
        assert (lp.start, lp.end) == binary.loop_span("outer")

    def test_text_range_and_repr(self):
        binary = toy_binary()
        lo, hi = binary.text_range
        assert lo == 0x10000
        assert hi == binary.procedure("main").end
        assert "2 procedures" in repr(binary)

    def test_all_loops(self):
        binary = toy_binary()
        loops = binary.all_loops()
        assert len(loops) == 2
        assert all(proc.name == "main" for proc, _ in loops)

    def test_unknown_loop_span(self):
        with pytest.raises(AddressError):
            toy_binary().loop_span("ghost")

    def test_procedures_must_not_overlap(self):
        from repro.program.procedures import Procedure
        from repro.program.binary import SyntheticBinary
        from repro.program.instructions import BasicBlock, Instruction

        def proc(name, start, n):
            instrs = tuple(Instruction(start + 4 * i) for i in range(n))
            return Procedure(name, start, [BasicBlock(start, instrs)])

        with pytest.raises(AddressError):
            SyntheticBinary([proc("a", 0x1000, 8), proc("b", 0x1010, 8)])
        with pytest.raises(AddressError):
            SyntheticBinary([])


class TestBranchShape:
    def test_branch_size(self):
        from repro.program.binary import branch

        shape = branch(then_shapes=6, else_shapes=8, test_n=2)
        assert shape.size == 16

    def test_branch_validation(self):
        from repro.errors import AddressError
        from repro.program.binary import BranchShape, branch

        with pytest.raises(AddressError):
            branch(then_shapes=4, else_shapes=4, test_n=0)
        with pytest.raises(AddressError):
            BranchShape(then_shapes=(), else_shapes=(straight(4),))

    def test_diamond_cfg_structure(self):
        from repro.program.binary import branch

        builder = BinaryBuilder(base=0x10000)
        builder.procedure("f", [straight(2),
                                branch(then_shapes=4, else_shapes=4),
                                straight(2)])
        binary = builder.build()
        cfg = binary.procedure("f").cfg
        test_block = cfg.block(0x10008)
        assert len(test_block.successors) == 2
        then_start, else_start = test_block.successors
        join = cfg.block(then_start).successors[0]
        assert cfg.block(else_start).successors == (join,)
        assert cfg.dominates(0x10008, join)
        assert not cfg.dominates(then_start, join)

    def test_nested_branch_in_loop(self):
        from repro.program.binary import branch

        builder = BinaryBuilder(base=0x10000)
        builder.procedure("g", [loop("l", body=[branch(4, 4)]),
                                straight(2)])
        binary = builder.build()
        loops = binary.procedure("g").loops
        assert len(loops) == 1
        span = binary.loop_span("l")
        assert (loops[0].start, loops[0].end) == span
