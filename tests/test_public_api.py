"""API-surface hygiene: the public interface stays importable and
documented."""

import importlib
import inspect

import pytest

import repro

PUBLIC_PACKAGES = [
    "repro.core",
    "repro.program",
    "repro.sampling",
    "repro.regions",
    "repro.monitor",
    "repro.optimizer",
    "repro.analysis",
    "repro.experiments",
]


class TestTopLevelApi:
    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"repro.{name} lacks a docstring"

    def test_public_classes_have_documented_public_methods(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if not inspect.isclass(obj):
                continue
            for method_name, member in inspect.getmembers(obj):
                if method_name.startswith("_"):
                    continue
                if inspect.isfunction(member) \
                        and member.__qualname__.startswith(obj.__name__):
                    assert member.__doc__, \
                        f"{obj.__name__}.{method_name} lacks a docstring"


@pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
class TestSubpackages:
    def test_package_exports_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_package_documented(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if inspect.isclass(obj) and issubclass(obj, Exception) \
                    and obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name

    def test_library_raises_only_its_hierarchy_for_config_errors(self):
        from repro import GpdThresholds, ReproError

        with pytest.raises(ReproError):
            GpdThresholds(th1=0.5, th2=0.1)
