"""Unit tests for the related-work baseline detectors (BBV, working set)."""

import numpy as np
import pytest

from repro.core.baselines import (BasicBlockVectorDetector,
                                  WorkingSetDetector)
from repro.core.states import PhaseEventKind
from repro.errors import ConfigError

RNG = np.random.default_rng(6)


def buffer_at(base, n=512, spread=256):
    return base + 4 * RNG.integers(0, spread // 4, size=n)


def feed(detector, buffers):
    events = []
    for pcs in buffers:
        event = detector.observe_buffer(pcs)
        if event is not None:
            events.append(event)
    return events


@pytest.mark.parametrize("cls", [BasicBlockVectorDetector,
                                 WorkingSetDetector])
class TestSharedBehavior:
    def test_starts_unstable(self, cls):
        detector = cls()
        assert not detector.in_stable_phase
        assert detector.stable_time_fraction() == 0.0

    def test_steady_working_set_stabilizes(self, cls):
        detector = cls()
        feed(detector, [buffer_at(0x10000) for _ in range(8)])
        assert detector.in_stable_phase
        assert detector.phase_change_count() == 1
        assert detector.events[0].kind is PhaseEventKind.BECAME_STABLE

    def test_working_set_move_destabilizes(self, cls):
        detector = cls()
        feed(detector, [buffer_at(0x10000) for _ in range(8)])
        feed(detector, [buffer_at(0x90000) for _ in range(3)])
        kinds = [e.kind for e in detector.events]
        assert PhaseEventKind.BECAME_UNSTABLE in kinds

    def test_single_blip_costs_two_phase_changes(self, cls):
        # Interval-pair schemes have no grace: a one-interval excursion
        # produces a dissimilar comparison on the way out AND on the way
        # back — the sampling sensitivity the paper criticizes.
        detector = cls()
        feed(detector, [buffer_at(0x10000) for _ in range(8)])
        detector.observe_buffer(buffer_at(0x90000))
        feed(detector, [buffer_at(0x10000) for _ in range(4)])
        assert detector.in_stable_phase  # eventually recovers
        assert detector.phase_change_count() >= 3

    def test_dissimilarity_log(self, cls):
        detector = cls()
        feed(detector, [buffer_at(0x10000)] * 3)
        assert len(detector.dissimilarities) == 3
        assert detector.dissimilarities[0] == 1.0  # nothing to compare
        assert all(0.0 <= d <= 1.0 for d in detector.dissimilarities)

    def test_threshold_validation(self, cls):
        with pytest.raises(ConfigError):
            cls(threshold=0.0)
        with pytest.raises(ConfigError):
            cls(threshold=1.0)

    def test_chunk_validation(self, cls):
        with pytest.raises(ConfigError):
            cls(chunk_bytes=2)


class TestSchemeDifferences:
    def test_bbv_sees_frequency_shift_working_set_does_not(self):
        """The paper's §4 distinction: Dhodapkar's scheme 'only determines
        if the instruction ... was executed', Sherwood's also weighs
        frequencies.  Shift execution weight between two always-touched
        chunks: BBV reacts, the working-set detector does not."""
        chunk_a, chunk_b = 0x10000, 0x10000 + 0x400

        def mixed(frac_a, n=512):
            n_a = int(n * frac_a)
            return np.concatenate([
                buffer_at(chunk_a, n_a, spread=128),
                buffer_at(chunk_b, n - n_a, spread=128)])

        bbv = BasicBlockVectorDetector(threshold=0.25)
        ws = WorkingSetDetector(threshold=0.5)
        for _ in range(6):
            for detector in (bbv, ws):
                detector.observe_buffer(mixed(0.9))
        for _ in range(4):
            for detector in (bbv, ws):
                detector.observe_buffer(mixed(0.1))
        # BBV saw the frequency shift (destabilize + restabilize on the
        # new distribution); the working-set detector never blinked.
        assert bbv.phase_change_count() >= 3
        assert ws.phase_change_count() == 1
        assert ws.in_stable_phase

    def test_bbv_scale_invariance(self):
        # Same distribution, different buffer sizes: no change.
        detector = BasicBlockVectorDetector()
        feed(detector, [buffer_at(0x10000, n=512)] * 4)
        detector.observe_buffer(buffer_at(0x10000, n=2048))
        assert detector.in_stable_phase

    def test_working_set_distance_extremes(self):
        detector = WorkingSetDetector()
        same = detector._difference({1: 5, 2: 5}, {1: 9, 2: 1})
        disjoint = detector._difference({1: 5, 2: 5}, {3: 5, 4: 5})
        assert same == 0.0
        assert disjoint == 1.0
        assert detector._difference({}, {}) == 0.0

    def test_bbv_distance_extremes(self):
        detector = BasicBlockVectorDetector()
        same = detector._difference({1: 5, 2: 5}, {1: 50, 2: 50})
        disjoint = detector._difference({1: 10}, {2: 10})
        assert same == pytest.approx(0.0)
        assert disjoint == pytest.approx(1.0)


class TestOnSimulatedStreams:
    def test_periodic_program_flaps_frequency_sensitive_schemes(self):
        """facerec-style periodic switching defeats the frequency-aware
        global detector (BBV), the same pathology as the centroid GPD;
        the set-based working-set scheme barely reacts because every
        region stays *resident* at low weight — the coarseness the
        paper's related-work section attributes to it."""
        from repro.program.spec2000 import get_benchmark
        from repro.sampling import simulate_sampling

        model = get_benchmark("187.facerec", 0.25)
        stream = simulate_sampling(model.regions, model.workload, 45_000,
                                   seed=7)
        counts = {}
        for cls in (BasicBlockVectorDetector, WorkingSetDetector):
            detector = cls()
            for _index, window in stream.intervals(2032):
                detector.observe_buffer(stream.pcs[window])
            counts[cls.__name__] = detector.phase_change_count()
        assert counts["BasicBlockVectorDetector"] >= 8
        assert counts["WorkingSetDetector"] \
            < counts["BasicBlockVectorDetector"]

    def test_stable_program_is_stable_under_all_schemes(self):
        from repro.program.spec2000 import get_benchmark
        from repro.sampling import simulate_sampling

        model = get_benchmark("171.swim", 0.25)
        stream = simulate_sampling(model.regions, model.workload, 45_000,
                                   seed=7)
        for cls in (BasicBlockVectorDetector, WorkingSetDetector):
            detector = cls()
            for _index, window in stream.intervals(2032):
                detector.observe_buffer(stream.pcs[window])
            assert detector.phase_change_count() <= 2, cls.__name__
            assert detector.stable_time_fraction() > 0.9, cls.__name__
