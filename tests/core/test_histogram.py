"""Unit tests for RegionHistogram."""

import numpy as np
import pytest

from repro.core.histogram import INSTRUCTION_BYTES, RegionHistogram
from repro.errors import AddressError


class TestConstruction:
    def test_basic_construction(self):
        h = RegionHistogram(0x1000, 0x1040)
        assert h.n_instructions == 16
        assert h.total() == 0
        assert h.is_empty()

    def test_end_before_start_raises(self):
        with pytest.raises(AddressError):
            RegionHistogram(0x1000, 0x1000)
        with pytest.raises(AddressError):
            RegionHistogram(0x2000, 0x1000)

    def test_negative_start_raises(self):
        with pytest.raises(AddressError):
            RegionHistogram(-4, 8)

    def test_unaligned_size_raises(self):
        with pytest.raises(AddressError, match="instruction width"):
            RegionHistogram(0x1000, 0x1001)

    def test_from_counts(self):
        h = RegionHistogram.from_counts(0x400, [1, 2, 3])
        assert h.start == 0x400
        assert h.end == 0x400 + 3 * INSTRUCTION_BYTES
        assert list(h.counts) == [1, 2, 3]

    def test_from_counts_empty_raises(self):
        with pytest.raises(AddressError):
            RegionHistogram.from_counts(0x400, [])


class TestSampling:
    def test_add_sample_increments_correct_slot(self):
        h = RegionHistogram(0x1000, 0x1010)
        h.add_sample(0x1008)
        assert list(h.counts) == [0, 0, 1, 0]
        assert h.total() == 1

    def test_add_sample_outside_region_raises(self):
        h = RegionHistogram(0x1000, 0x1010)
        with pytest.raises(AddressError):
            h.add_sample(0x0FFC)
        with pytest.raises(AddressError):
            h.add_sample(0x1010)

    def test_add_sample_unaligned_pc_maps_to_slot(self):
        # Real PMUs can report skidded PCs; byte addresses within an
        # instruction map to that instruction's slot.
        h = RegionHistogram(0x1000, 0x1010)
        h.add_sample(0x1002)
        assert list(h.counts) == [1, 0, 0, 0]

    def test_add_pcs_filters_and_counts(self):
        h = RegionHistogram(0x1000, 0x1010)
        pcs = np.array([0x0FF0, 0x1000, 0x1004, 0x1004, 0x100C, 0x2000])
        inside = h.add_pcs(pcs)
        assert inside == 4
        assert list(h.counts) == [1, 2, 0, 1]

    def test_add_pcs_empty_array(self):
        h = RegionHistogram(0x1000, 0x1010)
        assert h.add_pcs(np.array([], dtype=np.int64)) == 0
        assert h.is_empty()

    def test_add_pcs_matches_scalar_adds(self):
        rng = np.random.default_rng(3)
        pcs = rng.integers(0x1000, 0x1100, size=500) & ~0x3
        batch = RegionHistogram(0x1000, 0x1100)
        scalar = RegionHistogram(0x1000, 0x1100)
        batch.add_pcs(pcs)
        for pc in pcs:
            scalar.add_sample(int(pc))
        assert batch == scalar


class TestInspection:
    def test_hottest(self):
        h = RegionHistogram.from_counts(0x2000, [3, 9, 1])
        assert h.hottest() == 0x2004

    def test_clear(self):
        h = RegionHistogram.from_counts(0x2000, [3, 9, 1])
        h.clear()
        assert h.is_empty()

    def test_copy_is_independent(self):
        h = RegionHistogram.from_counts(0x2000, [1, 1])
        c = h.copy()
        c.add_sample(0x2000)
        assert h.counts[0] == 1
        assert c.counts[0] == 2

    def test_counts_view_is_readonly(self):
        h = RegionHistogram(0x1000, 0x1010)
        with pytest.raises(ValueError):
            h.counts[0] = 5

    def test_equality(self):
        a = RegionHistogram.from_counts(0x1000, [1, 2])
        b = RegionHistogram.from_counts(0x1000, [1, 2])
        c = RegionHistogram.from_counts(0x1000, [2, 1])
        d = RegionHistogram.from_counts(0x2000, [1, 2])
        assert a == b
        assert a != c
        assert a != d
        assert a.__eq__(42) is NotImplemented

    def test_len_and_repr(self):
        h = RegionHistogram(0x1000, 0x1020)
        assert len(h) == 8
        assert "0x1000" in repr(h)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(RegionHistogram(0x1000, 0x1010))
