"""Detector-hardening tests: NaN-safe Pearson and starvation gates."""

import math

import numpy as np
import pytest

from repro.core.correlation import pearson_r, pearson_r_strict
from repro.core.gpd import GlobalPhaseDetector
from repro.core.lpd import LocalPhaseDetector
from repro.core.thresholds import GpdThresholds, LpdThresholds
from repro.errors import ConfigError


class TestNanSafePearson:
    def test_nan_input_is_undefined_not_nan(self):
        x = np.array([1.0, float("nan"), 3.0])
        y = np.array([1.0, 2.0, 3.0])
        assert pearson_r_strict(x, y) is None
        assert pearson_r(x, y) == 0.0  # degenerate fallback, never NaN

    def test_inf_input_is_undefined(self):
        x = np.array([1.0, float("inf"), 3.0])
        assert pearson_r_strict(x, x) is None

    def test_finite_inputs_unaffected(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        y = np.array([2.0, 4.0, 6.0, 8.0])
        assert pearson_r_strict(x, y) == pytest.approx(1.0)


class TestLpdStarvationGate:
    def test_min_interval_samples_validated(self):
        with pytest.raises(ConfigError):
            LpdThresholds(min_interval_samples=0)

    def test_starved_interval_holds_state(self):
        thresholds = LpdThresholds(min_interval_samples=8)
        detector = LocalPhaseDetector(n_instructions=16,
                                      thresholds=thresholds)
        full = np.zeros(16)
        full[3] = 40.0
        starved = np.zeros(16)
        starved[3] = 2.0  # samples present, but under the gate
        for index in range(10):
            detector.observe(full, index)
        assert detector.in_stable_phase
        events_before = detector.phase_change_count()
        for index in range(10, 20):
            detector.observe(starved, index)
        # Insufficient data: the verdict holds, no spurious transitions.
        assert detector.in_stable_phase
        assert detector.phase_change_count() == events_before

    def test_default_gate_keeps_seed_behavior(self):
        default = LocalPhaseDetector(n_instructions=16)
        gated = LocalPhaseDetector(n_instructions=16,
                                   thresholds=LpdThresholds(
                                       min_interval_samples=1))
        rng = np.random.default_rng(0)
        for index in range(20):
            counts = rng.integers(0, 20, size=16).astype(float)
            default.observe(counts, index)
            gated.observe(counts, index)
        assert default.state is gated.state
        assert default.phase_change_count() == gated.phase_change_count()

    def test_reset_returns_to_unstable(self):
        detector = LocalPhaseDetector(n_instructions=16)
        full = np.zeros(16)
        full[5] = 30.0
        for index in range(10):
            detector.observe(full, index)
        assert detector.in_stable_phase
        changes = detector.phase_change_count()
        detector.reset()
        assert not detector.in_stable_phase
        assert detector.phase_change_count() == changes  # history kept


class TestGpdStarvationGate:
    def test_min_buffer_samples_validated(self):
        with pytest.raises(ConfigError):
            GpdThresholds(min_buffer_samples=0)

    def test_starved_buffer_does_not_move_centroid(self):
        thresholds = GpdThresholds(min_buffer_samples=4)
        detector = GlobalPhaseDetector(thresholds)
        buffer = np.full(64, 0x4000, dtype=np.int64)
        for _ in range(10):
            detector.observe_buffer(buffer)
        state_before = detector.state
        for _ in range(5):
            detector.observe_buffer(np.array([1], dtype=np.int64))
        assert detector.state is state_before
        starved = detector.observations[-1]
        assert math.isnan(starved.centroid_value)
        assert starved.event is None

    def test_non_finite_centroid_routed_to_starved(self):
        detector = GlobalPhaseDetector()
        detector.observe_centroid(0x4000)
        event = detector.observe_centroid(float("nan"))
        assert event is None
        assert math.isnan(detector.observations[-1].centroid_value)

    def test_empty_buffer_does_not_crash(self):
        detector = GlobalPhaseDetector()
        assert detector.observe_buffer(
            np.array([], dtype=np.int64)) is None
