"""Unit tests for the centroid-based Global Phase Detector (Figure 1)."""

import numpy as np
import pytest

from repro.core.gpd import GlobalPhaseDetector
from repro.core.states import PhaseEventKind, PhaseState
from repro.core.thresholds import GpdThresholds
from repro.errors import ConfigError


def feed_centroids(detector, values):
    for value in values:
        detector.observe_centroid(float(value))


def fresh_detector(**overrides):
    defaults = dict(dwell_intervals=2, history_length=8)
    defaults.update(overrides)
    return GlobalPhaseDetector(GpdThresholds(**defaults))


class TestWarmup:
    def test_starts_in_warmup(self):
        detector = fresh_detector()
        assert detector.state is PhaseState.WARMUP
        assert not detector.in_stable_phase

    def test_leaves_warmup_after_two_centroids(self):
        detector = fresh_detector()
        detector.observe_centroid(1000.0)
        assert detector.state is PhaseState.WARMUP
        detector.observe_centroid(1000.0)
        # Second observation computes no band yet at step time for the
        # first but history now has 2; third observation sees a band.
        detector.observe_centroid(1000.0)
        assert detector.state is not PhaseState.WARMUP

    def test_interval_counter(self):
        detector = fresh_detector()
        feed_centroids(detector, [1.0, 2.0, 3.0])
        assert detector.intervals_seen == 3


class TestStabilization:
    def test_steady_centroids_reach_stable(self):
        detector = fresh_detector()
        feed_centroids(detector, [1000.0] * 10)
        assert detector.state is PhaseState.STABLE
        assert detector.in_stable_phase
        events = detector.events
        assert len(events) == 1
        assert events[0].kind is PhaseEventKind.BECAME_STABLE

    def test_dwell_timer_delays_stability(self):
        # With a longer dwell the stable declaration arrives later.
        quick = fresh_detector(dwell_intervals=1)
        slow = fresh_detector(dwell_intervals=4)
        series = [1000.0] * 12
        feed_centroids(quick, series)
        feed_centroids(slow, series)
        quick_idx = quick.events[0].interval_index
        slow_idx = slow.events[0].interval_index
        assert quick_idx < slow_idx

    def test_thick_band_blocks_stabilization(self):
        # Alternate far-apart centroids: SD stays >= E/6, detector must
        # never leave UNSTABLE.
        detector = fresh_detector()
        feed_centroids(detector, [1000.0, 3000.0] * 10)
        assert detector.state in (PhaseState.UNSTABLE, PhaseState.WARMUP)
        assert detector.events == []

    def test_buffer_interface_equivalent_to_centroid(self):
        a = fresh_detector()
        b = fresh_detector()
        rng = np.random.default_rng(5)
        for _ in range(8):
            pcs = rng.integers(0x10000, 0x10100, size=64)
            a.observe_buffer(pcs)
            b.observe_centroid(float(pcs.mean()))
        assert a.state is b.state
        assert len(a.events) == len(b.events)


class TestDestabilization:
    def stable_detector(self):
        detector = fresh_detector()
        feed_centroids(detector, [1000.0] * 10)
        assert detector.in_stable_phase
        return detector

    def test_large_jump_revokes_stability(self):
        detector = self.stable_detector()
        detector.observe_centroid(900000.0)
        assert detector.state is PhaseState.UNSTABLE
        assert not detector.in_stable_phase
        assert detector.events[-1].kind is PhaseEventKind.BECAME_UNSTABLE

    def test_moderate_drift_goes_less_unstable_without_event(self):
        detector = self.stable_detector()
        events_before = len(detector.events)
        # Drift between TH2 (5%) and TH4 (67%) of E=1000: e.g. +30%.
        detector.observe_centroid(1300.0)
        assert detector.state is PhaseState.LESS_UNSTABLE
        assert detector.in_stable_phase  # declaration survives excursion
        assert len(detector.events) == events_before

    def test_less_unstable_recovers_to_stable(self):
        detector = self.stable_detector()
        detector.observe_centroid(1300.0)
        assert detector.state is PhaseState.LESS_UNSTABLE
        # Return to the band: recovery without a phase-change event.
        feed_centroids(detector, [1000.0] * 3)
        assert detector.state is PhaseState.STABLE
        kinds = [e.kind for e in detector.events]
        assert kinds.count(PhaseEventKind.BECAME_UNSTABLE) == 0

    def test_small_drift_keeps_stable(self):
        detector = self.stable_detector()
        detector.observe_centroid(1030.0)  # 3% < TH2
        assert detector.state is PhaseState.STABLE


class TestAccounting:
    def test_stable_time_fraction_zero_without_observations(self):
        assert fresh_detector().stable_time_fraction() == 0.0

    def test_stable_time_fraction_counts_stable_intervals(self):
        detector = fresh_detector()
        feed_centroids(detector, [1000.0] * 20)
        fraction = detector.stable_time_fraction()
        assert 0.5 < fraction < 1.0
        assert detector.stable_interval_count() == round(fraction * 20)

    def test_observation_log_shape(self):
        detector = fresh_detector()
        feed_centroids(detector, [1000.0] * 5)
        assert len(detector.observations) == 5
        assert [o.interval_index for o in detector.observations] == list(range(5))
        assert detector.observations[0].band is None
        assert detector.observations[-1].band is not None

    def test_flapping_workload_produces_many_events(self):
        # Periodic centroid swings (the facerec pathology): the detector
        # should repeatedly stabilize and destabilize.
        detector = fresh_detector(history_length=4)
        pattern = ([1000.0] * 8 + [50000.0] * 8) * 6
        feed_centroids(detector, pattern)
        stable_events = [e for e in detector.events
                         if e.kind is PhaseEventKind.BECAME_STABLE]
        unstable_events = [e for e in detector.events
                           if e.kind is PhaseEventKind.BECAME_UNSTABLE]
        assert len(stable_events) >= 3
        assert len(unstable_events) >= 3


class TestThresholdValidation:
    def test_ordering_enforced(self):
        with pytest.raises(ConfigError):
            GpdThresholds(th1=0.2, th2=0.1)

    def test_dwell_must_be_positive(self):
        with pytest.raises(ConfigError):
            GpdThresholds(dwell_intervals=0)

    def test_history_must_hold_two(self):
        with pytest.raises(ConfigError):
            GpdThresholds(history_length=1)

    def test_defaults_match_paper(self):
        th = GpdThresholds()
        assert th.th1 == pytest.approx(0.01)
        assert th.th2 == pytest.approx(0.05)
        assert th.th3 == pytest.approx(0.10)
        assert th.th4 == pytest.approx(0.67)
        assert th.thickness_divisor == 6.0
