"""Unit tests for Pearson's coefficient of correlation.

Pins down the formula against the paper's Figure 8 anchor values and the
degenerate-case conventions the LPD relies on.
"""

import math

import numpy as np
import pytest

from repro.core.correlation import pearson_r, pearson_r_pure, pearson_r_strict

# The three distributions of Figure 8 (10 instruction slots).  "Original" is
# a single-bottleneck histogram; shifting the bottleneck by one instruction
# must destroy the correlation; scaling all counts must preserve it.
ORIGINAL = [10.0, 12.0, 11.0, 13.0, 350.0, 12.0, 11.0, 10.0, 13.0, 12.0]
SHIFTED = [10.0, 12.0, 11.0, 13.0, 12.0, 350.0, 11.0, 10.0, 13.0, 12.0]
SCALED = [3.0 * v for v in ORIGINAL]


class TestFigure8Properties:
    def test_identical_distributions_are_perfectly_correlated(self):
        assert pearson_r(ORIGINAL, ORIGINAL) == pytest.approx(1.0)

    def test_bottleneck_shift_destroys_correlation(self):
        r = pearson_r(ORIGINAL, SHIFTED)
        # Paper reports r = -0.056 for its instance of this shape: near
        # zero, slightly negative.
        assert -0.3 < r < 0.1

    def test_uniform_scaling_preserves_correlation(self):
        r = pearson_r(ORIGINAL, SCALED)
        # Paper reports r = 0.998 for scaling plus sampling noise; exact
        # scaling gives exactly 1.
        assert r == pytest.approx(1.0)

    def test_scaling_with_noise_stays_high(self):
        rng = np.random.default_rng(8)
        noisy = np.asarray(SCALED) + rng.normal(0.0, 2.0, size=len(SCALED))
        assert pearson_r(ORIGINAL, noisy) > 0.99


class TestAgainstNumpyOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_corrcoef_on_random_vectors(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 100, size=32).astype(float)
        y = rng.integers(0, 100, size=32).astype(float)
        expected = float(np.corrcoef(x, y)[0, 1])
        assert pearson_r(x, y) == pytest.approx(expected, abs=1e-12)

    @pytest.mark.parametrize("seed", range(6))
    def test_pure_python_matches_vectorized(self, seed):
        rng = np.random.default_rng(100 + seed)
        x = rng.integers(0, 50, size=17).astype(float)
        y = rng.integers(0, 50, size=17).astype(float)
        assert pearson_r_pure(x, y) == pytest.approx(pearson_r(x, y),
                                                     abs=1e-12)


class TestEdgeCases:
    def test_perfect_anticorrelation(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [4.0, 3.0, 2.0, 1.0]
        assert pearson_r(x, y) == pytest.approx(-1.0)

    def test_result_is_clamped_to_unit_interval(self):
        x = [1e9, 2e9, 3e9]
        y = [2e9, 4e9, 6e9]
        assert pearson_r(x, y) <= 1.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="equal length"):
            pearson_r([1.0, 2.0], [1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="equal length"):
            pearson_r_pure([1.0], [1.0, 2.0])

    def test_two_dimensional_input_raises(self):
        with pytest.raises(ValueError, match="1-D"):
            pearson_r(np.ones((2, 2)), np.ones((2, 2)))

    def test_strict_returns_none_for_zero_variance(self):
        assert pearson_r_strict([5.0, 5.0, 5.0], [1.0, 2.0, 3.0]) is None
        assert pearson_r_strict([1.0, 2.0, 3.0], [0.0, 0.0, 0.0]) is None

    def test_strict_returns_none_for_single_element(self):
        assert pearson_r_strict([1.0], [2.0]) is None

    def test_degenerate_both_flat_counts_as_similar(self):
        assert pearson_r([5.0, 5.0, 5.0], [7.0, 7.0, 7.0]) == 1.0
        assert pearson_r([0.0, 0.0], [0.0, 0.0]) == 1.0

    def test_degenerate_one_flat_counts_as_dissimilar(self):
        assert pearson_r([5.0, 5.0, 5.0], [1.0, 9.0, 5.0]) == 0.0
        assert pearson_r([1.0, 9.0, 5.0], [5.0, 5.0, 5.0]) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(77)
        x = rng.integers(0, 30, size=12).astype(float)
        y = rng.integers(0, 30, size=12).astype(float)
        assert pearson_r(x, y) == pytest.approx(pearson_r(y, x))

    def test_translation_invariance(self):
        x = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        y = np.array([9.0, 2.0, 6.0, 5.0, 3.0])
        assert pearson_r(x + 100.0, y) == pytest.approx(pearson_r(x, y))

    def test_not_nan_for_any_small_integer_pair(self):
        for a in range(3):
            for b in range(3):
                r = pearson_r([float(a), float(b)], [float(b), float(a)])
                assert not math.isnan(r)
