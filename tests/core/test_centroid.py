"""Unit tests for centroid math and the Band of Stability."""

import numpy as np
import pytest

from repro.core.centroid import BandOfStability, CentroidHistory, centroid
from repro.errors import ConfigError


class TestCentroid:
    def test_mean_of_samples(self):
        assert centroid([0x1000, 0x2000]) == pytest.approx(0x1800)

    def test_single_sample(self):
        assert centroid([0x4000]) == 0x4000

    def test_empty_buffer_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_accepts_numpy_array(self):
        assert centroid(np.array([10, 20, 30])) == pytest.approx(20.0)


class TestBandOfStability:
    def test_bounds(self):
        band = BandOfStability(expectation=1000.0, sd=50.0)
        assert band.lower == 950.0
        assert band.upper == 1050.0

    def test_drift_zero_inside_band(self):
        band = BandOfStability(1000.0, 50.0)
        for value in (950.0, 1000.0, 1050.0):
            assert band.drift(value) == 0.0

    def test_drift_distance_outside_band(self):
        band = BandOfStability(1000.0, 50.0)
        assert band.drift(900.0) == pytest.approx(50.0)
        assert band.drift(1150.0) == pytest.approx(100.0)

    def test_drift_ratio_normalizes_by_expectation(self):
        band = BandOfStability(1000.0, 50.0)
        assert band.drift_ratio(1150.0) == pytest.approx(0.1)
        assert band.drift_ratio(1000.0) == 0.0

    def test_drift_ratio_degenerate_expectation(self):
        band = BandOfStability(0.0, 0.0)
        assert band.drift_ratio(10.0) == float("inf")
        assert band.drift_ratio(0.0) == 0.0

    def test_thickness_check_matches_paper_rule(self):
        # SD must be strictly less than E/6 for the band to be thin enough.
        assert not BandOfStability(600.0, 99.0).is_too_thick()
        assert BandOfStability(600.0, 100.0).is_too_thick()
        assert BandOfStability(600.0, 101.0).is_too_thick()

    def test_thickness_custom_divisor(self):
        band = BandOfStability(100.0, 30.0)
        assert band.is_too_thick(6.0)
        assert not band.is_too_thick(3.0)


class TestCentroidHistory:
    def test_requires_length_two(self):
        with pytest.raises(ConfigError):
            CentroidHistory(1)

    def test_band_needs_two_values(self):
        history = CentroidHistory(4)
        history.push(100.0)
        assert not history.can_compute_band()
        with pytest.raises(ValueError):
            history.band()
        history.push(200.0)
        assert history.can_compute_band()

    def test_band_statistics(self):
        history = CentroidHistory(8)
        history.extend([10.0, 20.0, 30.0])
        band = history.band()
        assert band.expectation == pytest.approx(20.0)
        assert band.sd == pytest.approx(np.std([10.0, 20.0, 30.0]))

    def test_window_eviction(self):
        history = CentroidHistory(3)
        history.extend([1.0, 2.0, 3.0, 4.0])
        assert history.values == (2.0, 3.0, 4.0)
        assert len(history) == 3

    def test_clear(self):
        history = CentroidHistory(3)
        history.extend([1.0, 2.0])
        history.clear()
        assert len(history) == 0
        assert not history.can_compute_band()
