"""Unit tests for the pluggable similarity measures.

Every measure must satisfy the two Figure 8 properties that make a
similarity metric usable for local phase detection: scale invariance
(sampling-rate changes are not phase changes) and bottleneck-shift
sensitivity (a moved hot instruction is one).
"""

import numpy as np
import pytest

from repro.core.similarity import (MEASURES, CosineSimilarity,
                                   ManhattanOverlap, PearsonSimilarity,
                                   TopKJaccard, get_measure)

ORIGINAL = np.array([10.0, 12.0, 11.0, 13.0, 350.0, 12.0, 11.0, 10.0, 13.0,
                     12.0])
SHIFTED = np.array([10.0, 12.0, 11.0, 13.0, 12.0, 350.0, 11.0, 10.0, 13.0,
                    12.0])

ALL_MEASURES = [PearsonSimilarity(), CosineSimilarity(), ManhattanOverlap(),
                TopKJaccard(3)]


@pytest.mark.parametrize("measure", ALL_MEASURES, ids=lambda m: m.name)
class TestRequiredProperties:
    def test_identity_scores_near_one(self, measure):
        assert measure(ORIGINAL, ORIGINAL) == pytest.approx(1.0)

    def test_scale_invariance(self, measure):
        assert measure(ORIGINAL, 7.0 * ORIGINAL) == pytest.approx(1.0,
                                                                  abs=1e-9)

    def test_bottleneck_shift_scores_below_threshold(self, measure):
        assert measure(ORIGINAL, SHIFTED) < 0.8

    def test_score_bounded(self, measure):
        rng = np.random.default_rng(4)
        for _ in range(10):
            a = rng.integers(0, 200, size=10).astype(float)
            b = rng.integers(0, 200, size=10).astype(float)
            score = measure(a, b)
            assert -1.0 <= score <= 1.0

    def test_symmetric(self, measure):
        rng = np.random.default_rng(9)
        a = rng.integers(0, 50, size=12).astype(float)
        b = rng.integers(0, 50, size=12).astype(float)
        assert measure(a, b) == pytest.approx(measure(b, a))


class TestCosine:
    def test_zero_vectors(self):
        measure = CosineSimilarity()
        zero = np.zeros(4)
        assert measure(zero, zero) == 1.0
        assert measure(zero, np.ones(4)) == 0.0

    def test_orthogonal_hot_sets(self):
        measure = CosineSimilarity()
        a = np.array([100.0, 0.0, 0.0, 0.0])
        b = np.array([0.0, 100.0, 0.0, 0.0])
        assert measure(a, b) == pytest.approx(0.0)


class TestManhattan:
    def test_disjoint_distributions_score_zero(self):
        measure = ManhattanOverlap()
        a = np.array([10.0, 0.0, 0.0])
        b = np.array([0.0, 0.0, 10.0])
        assert measure(a, b) == pytest.approx(0.0)

    def test_zero_totals(self):
        measure = ManhattanOverlap()
        zero = np.zeros(3)
        assert measure(zero, zero) == 1.0
        assert measure(zero, np.array([1.0, 0.0, 0.0])) == 0.0

    def test_half_overlap(self):
        measure = ManhattanOverlap()
        a = np.array([1.0, 1.0, 0.0, 0.0])
        b = np.array([0.0, 0.0, 1.0, 1.0])
        assert measure(a, b) == pytest.approx(0.0)
        c = np.array([1.0, 0.0, 1.0, 0.0])
        assert measure(a, c) == pytest.approx(0.5)


class TestTopK:
    def test_requires_positive_k(self):
        with pytest.raises(ValueError):
            TopKJaccard(0)

    def test_same_hot_set_scores_one(self):
        measure = TopKJaccard(2)
        a = np.array([100.0, 90.0, 1.0, 1.0])
        b = np.array([50.0, 200.0, 2.0, 0.0])
        assert measure(a, b) == 1.0

    def test_disjoint_hot_sets_score_zero(self):
        measure = TopKJaccard(2)
        a = np.array([100.0, 90.0, 1.0, 1.0])
        b = np.array([1.0, 2.0, 100.0, 90.0])
        assert measure(a, b) == 0.0

    def test_both_empty(self):
        measure = TopKJaccard(2)
        assert measure(np.zeros(4), np.zeros(4)) == 1.0

    def test_fewer_nonzero_than_k(self):
        measure = TopKJaccard(8)
        a = np.array([5.0, 0.0, 0.0, 0.0])
        assert measure(a, a) == 1.0

    def test_ignores_zero_slots_in_top_k(self):
        measure = TopKJaccard(3)
        a = np.array([10.0, 5.0, 0.0, 0.0])
        b = np.array([10.0, 5.0, 0.0, 0.0])
        # Top-3 partition must not pull in zero-count slots.
        assert measure(a, b) == 1.0


class TestRegistry:
    def test_known_measures_present(self):
        for name in ("pearson", "cosine", "manhattan", "topk8"):
            assert get_measure(name).name == name
            assert name in MEASURES

    def test_unknown_measure_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known measures"):
            get_measure("euclid")
