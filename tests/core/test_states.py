"""Unit tests for phase states and event accounting."""

import pytest

from repro.core.states import (PhaseEvent, PhaseEventKind, PhaseState,
                               count_phase_changes, is_stable_state,
                               transition_crosses_boundary)


class TestStableBoundary:
    def test_stable_side(self):
        assert is_stable_state(PhaseState.STABLE)
        assert is_stable_state(PhaseState.LESS_STABLE)

    def test_unstable_side(self):
        assert not is_stable_state(PhaseState.UNSTABLE)
        assert not is_stable_state(PhaseState.LESS_UNSTABLE)
        assert not is_stable_state(PhaseState.WARMUP)

    def test_boundary_crossings(self):
        assert transition_crosses_boundary(PhaseState.LESS_UNSTABLE,
                                           PhaseState.STABLE)
        assert transition_crosses_boundary(PhaseState.LESS_STABLE,
                                           PhaseState.UNSTABLE)
        assert not transition_crosses_boundary(PhaseState.STABLE,
                                               PhaseState.LESS_STABLE)
        assert not transition_crosses_boundary(PhaseState.UNSTABLE,
                                               PhaseState.LESS_UNSTABLE)


class TestPhaseEvent:
    def event(self, kind=PhaseEventKind.BECAME_STABLE):
        return PhaseEvent(interval_index=3, kind=kind,
                          state_from=PhaseState.LESS_UNSTABLE,
                          state_to=PhaseState.STABLE, detail="r=0.95")

    def test_is_stabilization(self):
        assert self.event().is_stabilization()
        assert not self.event(PhaseEventKind.BECAME_UNSTABLE).is_stabilization()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            self.event().interval_index = 5

    def test_count_phase_changes(self):
        events = [self.event(), self.event(PhaseEventKind.BECAME_UNSTABLE)]
        assert count_phase_changes(events) == 2
        assert count_phase_changes([]) == 0
        assert count_phase_changes(iter(events)) == 2
