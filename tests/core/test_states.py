"""Unit tests for phase states and event accounting."""

import pytest

from repro.core.states import (GPD_NO_BAND, LPD_DISSIMILAR, LPD_SIMILAR,
                               PhaseEvent, PhaseEventKind, PhaseState,
                               classify_gpd_input, classify_lpd_input,
                               count_phase_changes, gpd_machine_spec,
                               is_stable_state, lpd_machine_spec,
                               transition_crosses_boundary)


class TestStableBoundary:
    def test_stable_side(self):
        assert is_stable_state(PhaseState.STABLE)
        assert is_stable_state(PhaseState.LESS_STABLE)

    def test_unstable_side(self):
        assert not is_stable_state(PhaseState.UNSTABLE)
        assert not is_stable_state(PhaseState.LESS_UNSTABLE)
        assert not is_stable_state(PhaseState.WARMUP)

    def test_boundary_crossings(self):
        assert transition_crosses_boundary(PhaseState.LESS_UNSTABLE,
                                           PhaseState.STABLE)
        assert transition_crosses_boundary(PhaseState.LESS_STABLE,
                                           PhaseState.UNSTABLE)
        assert not transition_crosses_boundary(PhaseState.STABLE,
                                               PhaseState.LESS_STABLE)
        assert not transition_crosses_boundary(PhaseState.UNSTABLE,
                                               PhaseState.LESS_UNSTABLE)


class TestPhaseEvent:
    def event(self, kind=PhaseEventKind.BECAME_STABLE):
        return PhaseEvent(interval_index=3, kind=kind,
                          state_from=PhaseState.LESS_UNSTABLE,
                          state_to=PhaseState.STABLE, detail="r=0.95")

    def test_is_stabilization(self):
        assert self.event().is_stabilization()
        assert not self.event(PhaseEventKind.BECAME_UNSTABLE).is_stabilization()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            self.event().interval_index = 5

    def test_count_phase_changes(self):
        events = [self.event(), self.event(PhaseEventKind.BECAME_UNSTABLE)]
        assert count_phase_changes(events) == 2
        assert count_phase_changes([]) == 0
        assert count_phase_changes(iter(events)) == 2


class TestMachineSpecs:
    def test_lpd_spec_shape(self):
        spec = lpd_machine_spec()
        assert spec.name == "lpd"
        assert len(spec.states) == 4
        assert len(spec.inputs) == 2
        assert len(spec.rules) == 8
        assert spec.initial == PhaseState.UNSTABLE.value

    def test_gpd_spec_shape(self):
        spec = gpd_machine_spec(dwell_intervals=2)
        # WARMUP, UNSTABLE, less_stable@2, less_stable@1, STABLE,
        # LESS_UNSTABLE — and 11 input classes each.
        assert len(spec.states) == 6
        assert len(spec.inputs) == 11
        assert len(spec.rules) == 6 * 11

    def test_gpd_spec_rejects_bad_dwell(self):
        with pytest.raises(ValueError):
            gpd_machine_spec(dwell_intervals=0)

    def test_walk_replays_the_declare_path(self):
        spec = lpd_machine_spec()
        taken = list(spec.walk([LPD_SIMILAR, LPD_SIMILAR]))
        assert [r.next_state for r in taken] == [
            PhaseState.LESS_UNSTABLE.value, PhaseState.STABLE.value]
        assert [r.phase_change for r in taken] == [False, True]

    def test_table_is_total(self):
        for spec in (lpd_machine_spec(), gpd_machine_spec()):
            table = spec.table()
            for state in spec.states:
                for input_class in spec.inputs:
                    assert (state, input_class) in table

    def test_phase_state_strips_dwell_suffix(self):
        spec = gpd_machine_spec()
        assert spec.phase_state("less_stable@2") is PhaseState.LESS_STABLE
        assert spec.phase_state("stable") is PhaseState.STABLE

    def test_classify_lpd_input(self):
        assert classify_lpd_input(0.85, 0.8) == LPD_SIMILAR
        assert classify_lpd_input(0.8, 0.8) == LPD_SIMILAR
        assert classify_lpd_input(0.79, 0.8) == LPD_DISSIMILAR

    def test_classify_gpd_input(self):
        assert classify_gpd_input(0.0, True) == "tight_thin"
        assert classify_gpd_input(0.01, False) == "tight_thick"
        assert classify_gpd_input(0.03, True) == "tolerable_thin"
        assert classify_gpd_input(0.08, True) == "moderate_thin"
        assert classify_gpd_input(0.5, True) == "large_thin"
        assert classify_gpd_input(float("inf"), True) == "collapse_thin"
        assert classify_gpd_input(9.9, True, has_band=False) == GPD_NO_BAND
