"""Unit tests for the multi-metric (centroid + CPI + DPI) GPD."""

import numpy as np
import pytest

from repro.core.performance import (PERFORMANCE_CHANNEL_THRESHOLDS,
                                    CompositeGlobalDetector)
from repro.core.states import PhaseEventKind
from repro.errors import ConfigError
from repro.program.behavior import RegionSpec, bottleneck_profile
from repro.program.workload import Steady, WorkloadScript, mixture
from repro.sampling import simulate_sampling


def feed_steady(detector, n, centroid=100_000.0, cpi=1.2, dpi=8.0):
    for _ in range(n):
        detector.observe_interval(centroid=centroid, cpi=cpi, dpi=dpi)


class TestConstruction:
    def test_default_channels(self):
        detector = CompositeGlobalDetector()
        assert detector.channels == ("centroid", "cpi", "dpi")

    def test_channel_subset(self):
        detector = CompositeGlobalDetector(channels=("cpi",))
        assert detector.channels == ("cpi",)

    def test_unknown_channel_rejected(self):
        with pytest.raises(ConfigError, match="unknown channels"):
            CompositeGlobalDetector(channels=("centroid", "ipc"))
        with pytest.raises(ConfigError):
            CompositeGlobalDetector(channels=())

    def test_detector_lookup(self):
        detector = CompositeGlobalDetector()
        assert detector.detector("cpi").thresholds \
            == PERFORMANCE_CHANNEL_THRESHOLDS
        with pytest.raises(ConfigError):
            detector.detector("ipc")

    def test_missing_channel_value_rejected(self):
        detector = CompositeGlobalDetector()
        with pytest.raises(ConfigError, match="received no value"):
            detector.observe_interval(centroid=1.0, cpi=1.0)


class TestCompositeSemantics:
    def test_steady_metrics_stabilize_all_channels(self):
        detector = CompositeGlobalDetector()
        feed_steady(detector, 12)
        assert detector.in_stable_phase
        kinds = [e.kind for e in detector.events]
        assert kinds == [PhaseEventKind.BECAME_STABLE]

    def test_cpi_regression_alone_is_a_phase_change(self):
        # The paper: performance-characteristic changes matter even when
        # the working set (centroid) is unchanged.
        detector = CompositeGlobalDetector()
        feed_steady(detector, 12)
        for _ in range(3):
            detector.observe_interval(centroid=100_000.0, cpi=3.5, dpi=8.0)
        assert not detector.in_stable_phase
        assert detector.events[-1].kind is PhaseEventKind.BECAME_UNSTABLE
        assert "cpi" in detector.events[-1].detail

    def test_dpi_spike_alone_is_a_phase_change(self):
        detector = CompositeGlobalDetector()
        feed_steady(detector, 12)
        for _ in range(3):
            detector.observe_interval(centroid=100_000.0, cpi=1.2,
                                      dpi=60.0)
        assert not detector.in_stable_phase

    def test_centroid_jump_alone_is_a_phase_change(self):
        detector = CompositeGlobalDetector()
        feed_steady(detector, 12)
        detector.observe_interval(centroid=900_000.0, cpi=1.2, dpi=8.0)
        assert not detector.in_stable_phase

    def test_stability_requires_all_channels(self):
        # Keep the DPI channel oscillating hard (smoothing off so the
        # swings reach the detector raw): composite never stabilizes.
        detector = CompositeGlobalDetector(performance_smoothing=1.0)
        for index in range(20):
            detector.observe_interval(centroid=100_000.0, cpi=1.2,
                                      dpi=5.0 if index % 2 else 200.0)
        assert not detector.in_stable_phase
        assert detector.stable_time_fraction() == 0.0

    def test_smoothing_validation(self):
        with pytest.raises(ConfigError):
            CompositeGlobalDetector(performance_smoothing=0.0)
        with pytest.raises(ConfigError):
            CompositeGlobalDetector(performance_smoothing=1.5)

    def test_smoothing_damps_noise(self):
        rng = np.random.default_rng(0)
        noisy = 30.0 + rng.normal(0.0, 6.0, size=60)
        raw = CompositeGlobalDetector(channels=("dpi",),
                                      performance_smoothing=1.0)
        smoothed = CompositeGlobalDetector(channels=("dpi",),
                                           performance_smoothing=0.2)
        for value in noisy:
            raw.observe_interval(dpi=float(value))
            smoothed.observe_interval(dpi=float(value))
        assert smoothed.stable_time_fraction() \
            >= raw.stable_time_fraction()

    def test_recovery_restabilizes(self):
        detector = CompositeGlobalDetector()
        feed_steady(detector, 12)
        for _ in range(3):
            detector.observe_interval(centroid=100_000.0, cpi=3.5, dpi=8.0)
        feed_steady(detector, 15, cpi=3.5)
        assert detector.in_stable_phase
        assert detector.phase_change_count() == 3

    def test_channel_events_recorded(self):
        detector = CompositeGlobalDetector()
        feed_steady(detector, 12)
        channels = {ce.channel for ce in detector.channel_events}
        assert channels == {"centroid", "cpi", "dpi"}

    def test_interval_accounting(self):
        detector = CompositeGlobalDetector(channels=("centroid",))
        feed_steady(detector, 10)
        assert detector.intervals_seen == 10
        assert 0.0 < detector.stable_time_fraction() <= 1.0


class TestStreamIntegration:
    def stream(self, cpi_a=1.0, cpi_b=1.0, dpi_a=0.01, dpi_b=0.01):
        regions = {
            "a": RegionSpec("a", 0x20000, 0x20100,
                            profiles={"main": bottleneck_profile(
                                64, {9: 100.0})},
                            cpi=cpi_a, dpi=dpi_a),
            "b": RegionSpec("b", 0x21000, 0x21100,
                            profiles={"main": bottleneck_profile(
                                64, {30: 100.0})},
                            cpi=cpi_b, dpi=dpi_b),
        }
        workload = WorkloadScript([
            Steady(40_000_000, mixture(("a", 1.0))),
            Steady(40_000_000, mixture(("b", 1.0))),
        ])
        return simulate_sampling(regions, workload, 2500, seed=5)

    def test_interval_cpi_tracks_region_cpi(self):
        stream = self.stream(cpi_a=1.0, cpi_b=4.0)
        cpis = stream.interval_cpi(512)
        n = cpis.size
        assert cpis[: n // 3].mean() == pytest.approx(1.0, rel=0.05)
        assert cpis[-n // 3:].mean() == pytest.approx(4.0, rel=0.05)

    def test_interval_dpi_tracks_region_dpi(self):
        stream = self.stream(dpi_a=0.01, dpi_b=0.2)
        dpis = stream.interval_dpi(512)
        n = dpis.size
        assert dpis[: n // 3].mean() == pytest.approx(10.0, rel=0.2)
        assert dpis[-n // 3:].mean() == pytest.approx(200.0, rel=0.2)

    def test_empty_stream_metrics(self):
        stream = self.stream()
        assert stream.interval_cpi(10**9).size == 0
        assert stream.interval_dpi(10**9).size == 0

    def test_composite_detects_pure_performance_phase_change(self):
        # Same address ranges are close (centroid barely moves), but CPI
        # quadruples: only the performance channels can see it.
        stream = self.stream(cpi_a=1.0, cpi_b=4.0)
        centroid_only = CompositeGlobalDetector(
            channels=("centroid",)).process_stream(stream, 512)
        composite = CompositeGlobalDetector().process_stream(stream, 512)
        cpi_changes = [ce for ce in composite.channel_events
                       if ce.channel == "cpi"]
        assert len(cpi_changes) >= 2  # destabilize + restabilize
        assert composite.phase_change_count() \
            >= centroid_only.phase_change_count()

    def test_fallback_instr_delta(self):
        import numpy as np

        from repro.sampling.events import SampleStream

        stream = SampleStream(
            pcs=np.full(100, 0x1000, dtype=np.int64),
            cycles=np.arange(100, dtype=np.int64) * 10,
            dcache_miss=np.zeros(100, dtype=bool),
            region_ids=np.zeros(100, dtype=np.int32),
            region_names=("a",), sampling_period=10, total_cycles=1000)
        # No instr_delta: CPI defaults to 1.0.
        assert stream.interval_cpi(10)[0] == pytest.approx(1.0)
