"""Unit tests for the Local Phase Detector (Figure 12)."""

import numpy as np
import pytest

from repro.core.histogram import RegionHistogram
from repro.core.lpd import LocalPhaseDetector
from repro.core.similarity import ManhattanOverlap
from repro.core.states import PhaseEventKind, PhaseState
from repro.core.thresholds import LpdThresholds

HOT = np.array([5.0, 8.0, 200.0, 9.0, 6.0, 7.0, 5.0, 4.0])
SHIFTED = np.array([5.0, 8.0, 9.0, 200.0, 6.0, 7.0, 5.0, 4.0])


def detector(**kwargs):
    return LocalPhaseDetector(n_instructions=HOT.size, **kwargs)


def feed(det, histograms, start_index=0):
    events = []
    for offset, hist in enumerate(histograms):
        event = det.observe(hist, start_index + offset)
        if event is not None:
            events.append(event)
    return events


class TestInitialState:
    def test_starts_unstable_with_r_zero(self):
        det = detector()
        assert det.state is PhaseState.UNSTABLE
        assert det.last_r == 0.0
        assert not det.in_stable_phase

    def test_requires_positive_size(self):
        with pytest.raises(ValueError):
            LocalPhaseDetector(n_instructions=0)

    def test_first_interval_sets_stable_set_without_r(self):
        det = detector()
        det.observe(HOT, 0)
        # "After two intervals, an r-value can be computed": after one,
        # r still reads 0 and the state is unchanged.
        assert det.last_r == 0.0
        assert det.state is PhaseState.UNSTABLE
        assert np.array_equal(det.stable_set(), HOT)


class TestStabilization:
    def test_three_similar_intervals_reach_stable(self):
        det = detector()
        events = feed(det, [HOT, HOT, HOT])
        assert det.state is PhaseState.STABLE
        assert len(events) == 1
        assert events[0].kind is PhaseEventKind.BECAME_STABLE
        assert events[0].interval_index == 2

    def test_scaled_histograms_stabilize(self):
        # Sampling-rate variation: same shape, different magnitude.
        det = detector()
        feed(det, [HOT, 2.5 * HOT, 0.5 * HOT, 4.0 * HOT])
        assert det.state is PhaseState.STABLE

    def test_stable_set_frozen_once_stable(self):
        det = detector()
        feed(det, [HOT, HOT, HOT])
        frozen = det.stable_set()
        feed(det, [1.7 * HOT], start_index=3)
        assert np.array_equal(det.stable_set(), frozen)

    def test_stable_set_updates_while_unstable(self):
        det = detector()
        det.observe(HOT, 0)
        det.observe(SHIFTED, 1)  # dissimilar: stays unstable, set updated
        assert np.array_equal(det.stable_set(), SHIFTED)

    def test_dissimilar_interval_interrupts_stabilization(self):
        det = detector()
        det.observe(HOT, 0)
        det.observe(HOT, 1)          # -> LESS_UNSTABLE
        assert det.state is PhaseState.LESS_UNSTABLE
        det.observe(SHIFTED, 2)      # back to UNSTABLE, no event ever
        assert det.state is PhaseState.UNSTABLE
        assert det.events == []


class TestDestabilization:
    def stable(self):
        det = detector()
        feed(det, [HOT, HOT, HOT])
        assert det.state is PhaseState.STABLE
        return det

    def test_single_bad_interval_gives_grace_not_phase_change(self):
        det = self.stable()
        det.observe(SHIFTED, 3)
        assert det.state is PhaseState.LESS_STABLE
        assert det.in_stable_phase
        assert len(det.events) == 1  # only the stabilization

    def test_two_bad_intervals_trigger_phase_change(self):
        det = self.stable()
        det.observe(SHIFTED, 3)
        event = det.observe(SHIFTED, 4)
        assert det.state is PhaseState.UNSTABLE
        assert event is not None
        assert event.kind is PhaseEventKind.BECAME_UNSTABLE
        # Stable set re-seeded from the new behavior.
        assert np.array_equal(det.stable_set(), SHIFTED)

    def test_recovery_from_grace(self):
        det = self.stable()
        det.observe(SHIFTED, 3)
        det.observe(HOT, 4)
        assert det.state is PhaseState.STABLE
        assert len(det.events) == 1

    def test_bottleneck_shift_then_restabilize(self):
        det = self.stable()
        feed(det, [SHIFTED] * 4, start_index=3)
        assert det.state is PhaseState.STABLE
        kinds = [e.kind for e in det.events]
        assert kinds == [PhaseEventKind.BECAME_STABLE,
                         PhaseEventKind.BECAME_UNSTABLE,
                         PhaseEventKind.BECAME_STABLE]


class TestEmptyIntervals:
    def test_none_holds_r_and_state(self):
        det = detector()
        feed(det, [HOT, HOT, HOT])
        r_before = det.last_r
        state_before = det.state
        det.observe(None, 3)
        assert det.last_r == r_before
        assert det.state is state_before
        assert not det.observations[-1].had_samples

    def test_zero_histogram_treated_as_no_samples(self):
        det = detector()
        det.observe(np.zeros(HOT.size), 0)
        assert det.active_intervals == 0
        assert det.stable_set() is None

    def test_gap_in_execution_does_not_destabilize(self):
        # Paper section 3.2.2: regions sampled only in some intervals keep
        # their local phase across the gaps.
        det = detector()
        feed(det, [HOT, HOT, HOT])
        feed(det, [None, None, None, HOT], start_index=3)
        assert det.state is PhaseState.STABLE
        assert len(det.events) == 1

    def test_region_histogram_interface(self):
        det = LocalPhaseDetector(n_instructions=4)
        h = RegionHistogram.from_counts(0x1000, [1, 50, 2, 1])
        empty = RegionHistogram(0x1000, 0x1010)
        feed(det, [h, h, empty, h])
        assert det.state is PhaseState.STABLE
        assert det.active_intervals == 3

    def test_size_mismatch_raises(self):
        det = LocalPhaseDetector(n_instructions=4)
        with pytest.raises(ValueError, match="slots"):
            det.observe(np.ones(5), 0)


class TestAccounting:
    def test_stable_time_fraction(self):
        det = detector()
        feed(det, [HOT] * 10)
        # Intervals 0 and 1 are unstable/less-unstable; 2..9 stable.
        assert det.active_intervals == 10
        assert det.stable_time_fraction() == pytest.approx(8 / 10)

    def test_stable_time_fraction_empty(self):
        assert detector().stable_time_fraction() == 0.0

    def test_phase_change_count(self):
        det = detector()
        feed(det, [HOT, HOT, HOT] + [SHIFTED] * 4)
        assert det.phase_change_count() == 3

    def test_observation_records_r_values(self):
        det = detector()
        feed(det, [HOT, HOT, SHIFTED])
        rs = [o.r_value for o in det.observations]
        assert rs[0] == 0.0
        assert rs[1] == pytest.approx(1.0)
        assert rs[2] < 0.8


class TestThresholds:
    def test_custom_threshold_changes_behavior(self):
        # A mildly-noisy histogram: similar enough for r_t=0.5 but not 0.99.
        rng = np.random.default_rng(11)
        noisy = HOT + rng.normal(0.0, 15.0, size=HOT.size)
        strict = detector(thresholds=LpdThresholds(r_threshold=0.999))
        loose = detector(thresholds=LpdThresholds(r_threshold=0.5))
        for det in (strict, loose):
            feed(det, [HOT, noisy, noisy])
        assert loose.in_stable_phase
        assert not strict.in_stable_phase

    def test_adaptive_threshold_relaxes_for_large_regions(self):
        th = LpdThresholds(adaptive=True, adaptive_reference_size=64)
        small = LocalPhaseDetector(32, thresholds=th)
        large = LocalPhaseDetector(4096, thresholds=th)
        assert small.effective_threshold == pytest.approx(0.8)
        assert large.effective_threshold < 0.8
        assert large.effective_threshold >= th.adaptive_floor

    def test_adaptive_threshold_floor(self):
        th = LpdThresholds(adaptive=True, adaptive_reference_size=16,
                           adaptive_floor=0.7)
        huge = LocalPhaseDetector(1 << 20, thresholds=th)
        assert huge.effective_threshold == pytest.approx(0.7)

    def test_alternative_measure_plugs_in(self):
        det = LocalPhaseDetector(HOT.size, measure=ManhattanOverlap())
        feed(det, [HOT, HOT, HOT])
        assert det.in_stable_phase
