"""Unit tests for the fault model and the stream injectors."""

import numpy as np
import pytest

from repro.errors import ConfigError, FaultError
from repro.faults import (DuplicateSamples, FaultPlan, InterruptStall,
                          PcBitCorruption, PcSkid, PeriodDrift,
                          PeriodJitter, SampleDrop, inject,
                          simulate_faulty_sampling)
from repro.program.behavior import RegionSpec
from repro.program.workload import Steady, WorkloadScript, mixture

REGIONS = {
    "a": RegionSpec("a", 0x1000, 0x1400),
    "b": RegionSpec("b", 0x8000, 0x8400),
}
SCRIPT = WorkloadScript([Steady(20_000_000,
                                mixture(("a", 0.7), ("b", 0.3)))])


@pytest.fixture(scope="module")
def stream():
    from repro.sampling.pmu import simulate_sampling

    return simulate_sampling(REGIONS, SCRIPT, 1000, seed=11)


class TestSpecValidation:
    def test_drop_rate_range(self):
        with pytest.raises(ConfigError):
            SampleDrop(rate=1.0)
        with pytest.raises(ConfigError):
            SampleDrop(rate=-0.1)
        with pytest.raises(ConfigError):
            SampleDrop(rate=0.1, burst_mean=0.5)

    def test_skid_validation(self):
        with pytest.raises(ConfigError):
            PcSkid(distribution="cauchy", scale=1.0)
        with pytest.raises(ConfigError):
            PcSkid(scale=-1.0)

    def test_jitter_drift_ranges(self):
        with pytest.raises(ConfigError):
            PeriodJitter(fraction=0.5)
        with pytest.raises(ConfigError):
            PeriodDrift(rate=-0.95)

    def test_duplicate_corrupt_stall_ranges(self):
        with pytest.raises(ConfigError):
            DuplicateSamples(rate=1.0)
        with pytest.raises(ConfigError):
            PcBitCorruption(rate=0.1, bit_width=0)
        with pytest.raises(ConfigError):
            InterruptStall(rate=0.1, max_window=1)

    def test_noop_detection(self):
        assert SampleDrop().is_noop()
        assert PcSkid().is_noop()
        assert not SampleDrop(rate=0.1).is_noop()
        assert FaultPlan(()).is_empty
        assert FaultPlan((SampleDrop(), PcSkid())).is_empty
        assert not FaultPlan((SampleDrop(rate=0.1),)).is_empty

    def test_plan_rejects_non_specs(self):
        with pytest.raises(ConfigError):
            FaultPlan(("drop",))

    def test_corruption_flag(self):
        assert FaultPlan((PcBitCorruption(rate=0.1),)).allows_corruption
        assert not FaultPlan((PcBitCorruption(),)).allows_corruption
        assert not FaultPlan((SampleDrop(rate=0.1),)).allows_corruption


class TestPlanTokens:
    def test_roundtrip(self):
        plan = FaultPlan((SampleDrop(rate=0.2, burst_mean=4.0),
                          PcSkid(distribution="gaussian", scale=2.0),
                          InterruptStall(rate=0.01, max_window=5)))
        assert FaultPlan.from_token(plan.token()) == plan

    def test_malformed_token(self):
        with pytest.raises(FaultError):
            FaultPlan.from_token((("no-such-kind", ("rate", 0.1)),))
        with pytest.raises(FaultError):
            FaultPlan.from_token((("drop", ("bogus_field", 0.1)),))

    def test_describe(self):
        assert FaultPlan(()).describe() == "none"
        text = FaultPlan((SampleDrop(rate=0.2),)).describe()
        assert "drop" in text and "0.2" in text


class TestInjection:
    def test_empty_plan_is_identity_object(self, stream):
        assert inject(stream, FaultPlan(()), seed=5) is stream
        noop = FaultPlan((SampleDrop(), PcSkid(), PeriodJitter()))
        assert inject(stream, noop, seed=5) is stream

    def test_rejects_non_plan(self, stream):
        with pytest.raises(FaultError):
            inject(stream, [SampleDrop(rate=0.1)], seed=5)

    def test_input_never_mutated(self, stream):
        before = stream.pcs.copy()
        inject(stream, FaultPlan((PcSkid(scale=3.0),
                                  SampleDrop(rate=0.3))), seed=5)
        assert np.array_equal(stream.pcs, before)

    def test_drop_removes_expected_fraction(self, stream):
        out = inject(stream, FaultPlan((SampleDrop(rate=0.25),)), seed=5)
        survived = out.n_samples / stream.n_samples
        assert survived == pytest.approx(0.75, abs=0.02)

    def test_bursty_drop_matches_marginal_rate(self, stream):
        out = inject(stream, FaultPlan(
            (SampleDrop(rate=0.25, burst_mean=6.0),)), seed=5)
        survived = out.n_samples / stream.n_samples
        assert survived == pytest.approx(0.75, abs=0.05)

    def test_bursty_drop_is_bursty(self, stream):
        iid = inject(stream, FaultPlan((SampleDrop(rate=0.25),)), seed=5)
        bursty = inject(stream, FaultPlan(
            (SampleDrop(rate=0.25, burst_mean=6.0),)), seed=5)
        # Burst losses leave longer cycle gaps than iid losses do.
        assert bursty.cycles[1:].size and iid.cycles[1:].size
        assert np.diff(bursty.cycles).max() > np.diff(iid.cycles).max()

    def test_skid_keeps_pcs_in_observed_range(self, stream):
        out = inject(stream, FaultPlan((PcSkid(scale=50.0),)), seed=5)
        assert out.pcs.min() >= stream.pcs.min()
        assert out.pcs.max() <= stream.pcs.max()
        assert not np.array_equal(out.pcs, stream.pcs)

    def test_jitter_keeps_cycles_monotone(self, stream):
        out = inject(stream, FaultPlan((PeriodJitter(fraction=0.4),)),
                     seed=5)
        assert np.all(np.diff(out.cycles) >= 0)

    def test_drift_stretches_gaps(self, stream):
        out = inject(stream, FaultPlan((PeriodDrift(rate=1.0),)), seed=5)
        gaps = np.diff(out.cycles)
        # The final gap should be about double the first one.
        assert gaps[-10:].mean() > 1.5 * gaps[:10].mean()
        assert np.all(gaps >= 0)

    def test_duplicate_grows_stream(self, stream):
        out = inject(stream, FaultPlan((DuplicateSamples(rate=0.2),)),
                     seed=5)
        grown = out.n_samples / stream.n_samples
        assert grown == pytest.approx(1.2, abs=0.02)
        assert np.all(np.diff(out.cycles) >= 0)

    def test_corruption_flips_single_bits(self, stream):
        out = inject(stream, FaultPlan((PcBitCorruption(rate=0.1),)),
                     seed=5)
        changed = out.pcs != stream.pcs
        assert 0.0 < changed.mean() < 0.15
        diffs = (out.pcs[changed] ^ stream.pcs[changed])
        # Every changed PC differs in exactly one bit.
        assert np.all(np.bitwise_and(diffs, diffs - 1) == 0)

    def test_stall_conserves_instr_delta(self, stream):
        assert stream.instr_delta is not None
        out = inject(stream, FaultPlan(
            (InterruptStall(rate=0.05, max_window=6),)), seed=5)
        assert out.n_samples < stream.n_samples
        # The survivor of every window carries the window's instructions.
        assert out.instr_delta.sum() == pytest.approx(
            stream.instr_delta.sum(), rel=1e-12)

    def test_compound_plan_applies_in_order(self, stream):
        plan = FaultPlan((SampleDrop(rate=0.2),
                          PcSkid(distribution="exponential", scale=2.0),
                          DuplicateSamples(rate=0.05)))
        out = inject(stream, plan, seed=5)
        assert np.all(np.diff(out.cycles) >= 0)
        assert out.sampling_period == stream.sampling_period
        assert out.region_names == stream.region_names

    def test_simulate_faulty_sampling_matches_manual(self, stream):
        plan = FaultPlan((SampleDrop(rate=0.2),))
        combined = simulate_faulty_sampling(REGIONS, SCRIPT, 1000, plan,
                                            seed=11)
        manual = inject(stream, plan, seed=11)
        assert np.array_equal(combined.pcs, manual.pcs)
        assert np.array_equal(combined.cycles, manual.cycles)
