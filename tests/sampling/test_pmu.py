"""Unit tests for the PMU simulator, sample stream, and buffer."""

import numpy as np
import pytest

from repro.errors import SamplingError, WorkloadError
from repro.program.behavior import RegionSpec, bottleneck_profile
from repro.program.workload import (Periodic, Steady, WorkloadScript,
                                    mixture)
from repro.sampling.buffer import SampleBuffer
from repro.sampling.events import SampleStream
from repro.sampling.pmu import PMUSimulator, simulate_sampling

REGION_A = RegionSpec("a", 0x1000, 0x1100,
                      profiles={"main": bottleneck_profile(64, {10: 50.0})},
                      dpi=0.2)
REGION_B = RegionSpec("b", 0x8000, 0x8100)
REGIONS = {"a": REGION_A, "b": REGION_B}


def steady_stream(duration=10_000_000, period=1000, seed=0, jitter=0.0):
    script = WorkloadScript([Steady(duration,
                                    mixture(("a", 0.6), ("b", 0.4)))])
    return simulate_sampling(REGIONS, script, period, seed=seed,
                             jitter=jitter)


class TestSimulation:
    def test_sample_count_matches_period(self):
        stream = steady_stream(duration=1_000_000, period=1000)
        # Interrupts at 1000, 2000, ..., 999000 (tick at total_cycles-? );
        # allow off-by-one at the boundary.
        assert abs(stream.n_samples - 999) <= 1

    def test_samples_land_in_region_spans(self):
        stream = steady_stream()
        in_a = (stream.pcs >= 0x1000) & (stream.pcs < 0x1100)
        in_b = (stream.pcs >= 0x8000) & (stream.pcs < 0x8100)
        assert np.all(in_a | in_b)

    def test_mixture_weights_respected(self):
        stream = steady_stream()
        share_a = np.mean((stream.pcs < 0x2000))
        assert share_a == pytest.approx(0.6, abs=0.02)

    def test_profile_spike_respected(self):
        stream = steady_stream()
        spike_pc = 0x1000 + 10 * 4
        in_a = stream.pcs[stream.pcs < 0x2000]
        spike_share = np.mean(in_a == spike_pc)
        # Spike weight 50 over a base of 64 slots: 50/113 of region a.
        assert spike_share == pytest.approx(50.0 / 113.0, abs=0.03)

    def test_deterministic_given_seed(self):
        s1 = steady_stream(seed=42)
        s2 = steady_stream(seed=42)
        assert np.array_equal(s1.pcs, s2.pcs)
        assert np.array_equal(s1.dcache_miss, s2.dcache_miss)

    def test_different_seeds_differ(self):
        s1 = steady_stream(seed=1)
        s2 = steady_stream(seed=2)
        assert not np.array_equal(s1.pcs, s2.pcs)

    def test_dcache_miss_rate_tracks_dpi(self):
        stream = steady_stream()
        in_a = stream.pcs < 0x2000
        assert stream.dcache_miss[in_a].mean() == pytest.approx(0.2,
                                                                abs=0.02)
        assert stream.dcache_miss[~in_a].mean() == pytest.approx(
            REGION_B.dpi, abs=0.01)

    def test_ground_truth_region_ids(self):
        stream = steady_stream()
        names = stream.region_names
        id_a = names.index("a")
        assert np.all((stream.region_ids == id_a) == (stream.pcs < 0x2000))
        assert stream.region_name_of(0) in names

    def test_cycles_ascending(self):
        stream = steady_stream()
        assert np.all(np.diff(stream.cycles) > 0)

    def test_jitter_perturbs_cycles_not_distribution(self):
        jittered = steady_stream(jitter=0.3)
        plain = steady_stream(jitter=0.0)
        assert abs(jittered.n_samples - plain.n_samples) <= 2
        share = np.mean(jittered.pcs < 0x2000)
        assert share == pytest.approx(0.6, abs=0.03)

    def test_periodic_workload_alternates(self):
        script = WorkloadScript([Periodic(
            4_000_000, (mixture(("a", 1.0)), mixture(("b", 1.0))),
            switch_period=1_000_000)])
        stream = simulate_sampling(REGIONS, script, 1000, seed=0)
        first_chunk = stream.pcs[stream.cycles < 1_000_000]
        second_chunk = stream.pcs[(stream.cycles >= 1_000_000)
                                  & (stream.cycles < 2_000_000)]
        assert np.all(first_chunk < 0x2000)
        assert np.all(second_chunk >= 0x8000)

    def test_unknown_region_rejected(self):
        script = WorkloadScript([Steady(1000, mixture(("ghost", 1.0)))])
        with pytest.raises(WorkloadError):
            PMUSimulator(REGIONS, script, 100)

    def test_parameter_validation(self):
        script = WorkloadScript([Steady(1000, mixture(("a", 1.0)))])
        with pytest.raises(SamplingError):
            PMUSimulator(REGIONS, script, 0)
        with pytest.raises(SamplingError):
            PMUSimulator(REGIONS, script, 100, jitter=0.6)

    def test_period_longer_than_run_yields_empty_stream(self):
        script = WorkloadScript([Steady(1000, mixture(("a", 1.0)))])
        stream = simulate_sampling(REGIONS, script, 10_000)
        assert stream.n_samples == 0
        assert stream.n_intervals(16) == 0


class TestSampleStream:
    def test_interval_slicing(self):
        stream = steady_stream(duration=1_000_000, period=100)
        n = stream.n_intervals(2032)
        assert n == stream.n_samples // 2032
        windows = list(stream.intervals(2032))
        assert len(windows) == n
        assert windows[0][1] == slice(0, 2032)

    def test_interval_pcs_bounds(self):
        stream = steady_stream(duration=1_000_000, period=100)
        with pytest.raises(SamplingError):
            stream.interval_pcs(2032, stream.n_intervals(2032))

    def test_centroids_match_manual_means(self):
        stream = steady_stream(duration=1_000_000, period=100)
        centroids = stream.centroids(2032)
        manual = stream.interval_pcs(2032, 0).mean()
        assert centroids[0] == pytest.approx(manual)

    def test_centroids_empty_when_too_few_samples(self):
        stream = steady_stream(duration=100_000, period=1000)
        assert stream.centroids(2032).size == 0

    def test_scalar_sample_iteration(self):
        stream = steady_stream(duration=50_000, period=1000)
        samples = list(stream.samples())
        assert len(samples) == stream.n_samples
        assert samples[0].pc == int(stream.pcs[0])

    def test_array_size_mismatch_rejected(self):
        with pytest.raises(SamplingError):
            SampleStream(pcs=np.zeros(3, dtype=np.int64),
                         cycles=np.zeros(2, dtype=np.int64),
                         dcache_miss=np.zeros(3, dtype=bool),
                         region_ids=np.zeros(3, dtype=np.int32),
                         region_names=("a",), sampling_period=10,
                         total_cycles=100)


class TestSampleBuffer:
    def test_overflow_fires_at_capacity(self):
        delivered = []
        buffer = SampleBuffer(4, lambda pcs, i: delivered.append((i, list(pcs))))
        for pc in range(3):
            assert not buffer.push(pc)
        assert buffer.push(3)
        assert delivered == [(0, [0, 1, 2, 3])]
        assert buffer.fill == 0

    def test_push_many_counts_overflows(self):
        delivered = []
        buffer = SampleBuffer(4, lambda pcs, i: delivered.append(i))
        overflows = buffer.push_many(np.arange(10))
        assert overflows == 2
        assert delivered == [0, 1]
        assert buffer.fill == 2
        assert list(buffer.pending()) == [8, 9]

    def test_multiple_subscribers(self):
        seen_a, seen_b = [], []
        buffer = SampleBuffer(2, lambda pcs, i: seen_a.append(i))
        buffer.subscribe(lambda pcs, i: seen_b.append(i))
        buffer.push_many(np.arange(4))
        assert seen_a == seen_b == [0, 1]
        assert buffer.intervals_delivered == 2

    def test_capacity_validation(self):
        with pytest.raises(SamplingError):
            SampleBuffer(0)

    def test_buffered_intervals_match_stream_slices(self):
        stream = steady_stream(duration=500_000, period=100)
        collected = []
        buffer = SampleBuffer(1000, lambda pcs, i: collected.append(pcs))
        buffer.push_many(stream.pcs)
        for index, window in stream.intervals(1000):
            assert np.array_equal(collected[index], stream.pcs[window])
