"""The ``repro-trace`` CLI: every subcommand, every exit status."""

import json

import pytest

from repro.telemetry.cli import main
from repro.telemetry.events import (Deoptimization, IntervalClosed,
                                    PhaseChange, RegionFormed, SampleBatch,
                                    StateTransition)
from repro.telemetry.sinks import JsonlTraceSink
from repro.telemetry.trace import header_record


@pytest.fixture
def trace(tmp_path):
    """A small hand-built trace: one region's life plus GPD activity."""
    path = tmp_path / "run.jsonl"
    sink = JsonlTraceSink(path)
    events = [
        SampleBatch(cumulative_samples=16, batch_size=16),
        RegionFormed(interval_index=0, rid=1, start=0x2000, end=0x2400,
                     kind="loop"),
        StateTransition(1, "lpd", 1, "unstable", "less_unstable", 0.9),
        StateTransition(2, "lpd", 1, "less_unstable", "stable", 0.95),
        PhaseChange(2, "lpd", 1, "became_stable", "less_unstable",
                    "stable", "r=0.95"),
        StateTransition(2, "gpd", -1, "warmup", "unstable", -1.0),
        IntervalClosed(interval_index=2, n_samples=16, ucr_fraction=0.5,
                       n_regions=1),
        Deoptimization(interval_index=9, rid=1, reason="watchdog",
                       action="unpatch"),
    ]
    for event in events:
        sink.emit(event)
    sink.close()
    return str(path)


class TestValidate:
    def test_valid_trace_exit_zero(self, trace, capsys):
        assert main(["validate", trace]) == 0
        out = capsys.readouterr().out
        assert "valid" in out and "8 event record(s)" in out

    def test_missing_file_exit_two(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_corrupt_trace_exit_one(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(header_record()) + "\n"
                        + '{"etype": "mystery", "seq": 1, "v": 1}\n')
        assert main(["validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "unknown etype" in out and "1 problem(s)" in out


class TestSummary:
    def test_counts_and_sections(self, trace, capsys):
        assert main(["summary", trace]) == 0
        out = capsys.readouterr().out
        assert "8 events" in out
        assert "state_transition" in out
        assert "samples delivered: 16" in out
        assert "per-region (lpd):" in out
        assert "gpd: 1 transitions, 0 phase changes" in out
        assert "deoptimizations: 1 (watchdog/unpatch: 1)" in out

    def test_prometheus_exposition(self, trace, capsys):
        assert main(["summary", trace, "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_events_total counter" in out
        assert 'repro_state_transitions_total{detector="lpd",rid="1"} 2' \
            in out

    def test_rejects_invalid_trace(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["summary", str(path)]) == 2
        assert "not a valid trace" in capsys.readouterr().err


class TestTimeline:
    def test_lpd_timeline_collapses_segments(self, trace, capsys):
        assert main(["timeline", trace]) == 0
        out = capsys.readouterr().out
        assert "region 1 [0x2000-0x2400]:" in out
        assert "[1] less_unstable" in out
        assert "[2] stable" in out

    def test_gpd_timeline(self, trace, capsys):
        assert main(["timeline", trace, "--detector", "gpd"]) == 0
        out = capsys.readouterr().out
        assert "gpd:" in out and "unstable" in out

    def test_rid_filter_miss_reports_empty(self, trace, capsys):
        assert main(["timeline", trace, "--rid", "42"]) == 0
        assert "no transitions" in capsys.readouterr().out


class TestRegions:
    def test_region_report(self, trace, capsys):
        assert main(["regions", trace]) == 0
        out = capsys.readouterr().out
        assert "region 1  [0x2000-0x2400]  kind=loop" in out
        assert "unstable" in out and "->" in out
        assert "phase changes: 1" in out
        assert "watchdog: interval 9: unpatch (watchdog)" in out

    def test_rid_filter(self, trace, capsys):
        assert main(["regions", trace, "--rid", "1"]) == 0
        assert "region 1" in capsys.readouterr().out

    def test_empty_filter_reports_no_regions(self, trace, capsys):
        assert main(["regions", trace, "--rid", "99"]) == 0
        assert "no region events" in capsys.readouterr().out


class TestEndToEnd:
    def test_cli_reads_a_pipeline_trace(self, tmp_path, capsys):
        """Generate a real trace via the runner path and inspect it."""
        import numpy as np

        from repro.core import MonitorThresholds
        from repro.monitor import OnlineSession
        from repro.program.binary import BinaryBuilder, loop
        from repro.telemetry.bus import EventBus

        builder = BinaryBuilder(base=0x10000)
        builder.procedure("p", [loop("l", body=12)], at=0x20000)
        binary = builder.build()
        path = tmp_path / "session.jsonl"
        sink = JsonlTraceSink(path)
        session = OnlineSession(
            binary=binary,
            monitor_thresholds=MonitorThresholds(buffer_size=8),
            run_gpd=False, telemetry=EventBus(sinks=[sink]))
        span = binary.loop_span("l")
        rng = np.random.default_rng(5)
        for _ in range(12):
            session.feed_many(
                (span[0] + 4 * rng.integers(0, 12, size=8)).astype(
                    np.int64))
        sink.close()

        assert main(["validate", str(path)]) == 0
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "per-region (lpd):" in out
