"""MetricsRegistry: counters, gauges, histograms, text exposition."""

import pytest

from repro.errors import ConfigError
from repro.telemetry.metrics import (DEFAULT_FRACTION_BUCKETS, Counter, Gauge,
                                     Histogram, MetricKey, MetricsRegistry)


class TestMetricKey:
    def test_labels_are_sorted_for_identity(self):
        a = MetricKey.make("m", {"b": "2", "a": "1"})
        b = MetricKey.make("m", {"a": "1", "b": "2"})
        assert a == b

    def test_render_labels(self):
        key = MetricKey.make("m", {"rid": "3", "detector": "lpd"})
        assert key.render_labels() == '{detector="lpd",rid="3"}'
        assert MetricKey("m").render_labels() == ""


class TestPrimitives:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigError):
            Counter().inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2.0

    def test_histogram_buckets_and_overflow(self):
        hist = Histogram(bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            hist.observe(value)
        assert hist.counts == [1, 1]
        assert hist.overflow == 1
        assert hist.n == 3
        assert hist.cumulative() == [("1", 1), ("2", 2), ("+Inf", 3)]

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ConfigError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ConfigError):
            Histogram(bounds=())


class TestRegistry:
    def test_create_or_get_returns_same_series(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", rid="1")
        a.inc()
        assert registry.counter("hits", rid="1").value == 1.0
        assert registry.counter("hits", rid="2").value == 0.0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ConfigError):
            registry.gauge("m")

    def test_series_is_deterministically_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a", rid="2")
        registry.counter("a", rid="1")
        names = [(key.name, key.labels) for key, _ in registry.series()]
        assert names == sorted(names)

    def test_to_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_intervals_total", "intervals").inc(4)
        registry.gauge("repro_regions_live", "live regions").set(2)
        text = registry.to_text()
        assert "# HELP repro_intervals_total intervals" in text
        assert "# TYPE repro_intervals_total counter" in text
        assert "repro_intervals_total 4" in text
        assert "repro_regions_live 2" in text
        assert text.endswith("\n")

    def test_to_text_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("frac", "fractions",
                                  bounds=DEFAULT_FRACTION_BUCKETS)
        hist.observe(0.15)
        text = registry.to_text()
        assert 'frac_bucket{le="0.1"} 0' in text
        assert 'frac_bucket{le="0.2"} 1' in text
        assert 'frac_bucket{le="+Inf"} 1' in text
        assert "frac_sum 0.15" in text
        assert "frac_count 1" in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_text() == ""
