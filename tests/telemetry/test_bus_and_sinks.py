"""EventBus semantics and the four sink implementations."""

import json

import pytest

from repro.telemetry.bus import EventBus, capture, get_bus
from repro.telemetry.events import (IntervalClosed, SampleBatch,
                                    StateTransition)
from repro.telemetry.sinks import (InMemorySink, JsonlTraceSink, MetricsSink,
                                   NullSink, Sink)
from repro.telemetry.trace import validate_trace


def _transition(i=0, rid=1):
    return StateTransition(interval_index=i, detector="lpd", rid=rid,
                           state_from="unstable", state_to="stable",
                           metric=0.9)


class TestEventBus:
    def test_default_bus_is_disabled(self):
        assert EventBus().enabled is False

    def test_null_sinks_keep_bus_disabled(self):
        assert EventBus(sinks=[NullSink(), NullSink()]).enabled is False

    def test_non_null_sink_enables(self):
        assert EventBus(sinks=[InMemorySink()]).enabled is True

    def test_attach_detach_recompute_enabled(self):
        bus = EventBus()
        sink = InMemorySink()
        bus.attach(sink)
        assert bus.enabled
        bus.detach(sink)
        assert not bus.enabled

    def test_detach_unknown_sink_is_noop(self):
        bus = EventBus()
        bus.detach(InMemorySink())
        assert not bus.enabled

    def test_emit_fans_out_in_attachment_order(self):
        first, second = InMemorySink(), InMemorySink()
        bus = EventBus(sinks=[first, second])
        event = _transition()
        bus.emit(event)
        assert first.events == [event]
        assert second.events == [event]

    def test_close_resets_to_disabled_null_state(self):
        bus = EventBus(sinks=[InMemorySink()])
        bus.close()
        assert not bus.enabled
        assert all(isinstance(s, NullSink) for s in bus.sinks)

    def test_global_bus_is_a_disabled_singleton(self):
        assert get_bus() is get_bus()
        assert not get_bus().enabled

    def test_capture_attaches_then_detaches(self):
        bus = EventBus()
        with capture(InMemorySink(), bus=bus) as sink:
            assert bus.enabled
            bus.emit(_transition())
        assert not bus.enabled
        assert len(sink.events) == 1

    def test_capture_detaches_on_error(self):
        bus = EventBus()
        with pytest.raises(RuntimeError):
            with capture(InMemorySink(), bus=bus):
                raise RuntimeError("boom")
        assert not bus.enabled

    def test_capture_defaults_to_global_bus(self):
        with capture(InMemorySink()) as sink:
            assert get_bus().enabled
            get_bus().emit(_transition())
        assert not get_bus().enabled
        assert len(sink.events) == 1


class TestSinkContract:
    def test_base_sink_emit_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Sink().emit(_transition())

    def test_flush_and_close_default_to_noop(self):
        sink = NullSink()
        sink.flush()
        sink.close()

    def test_null_sink_drops_events(self):
        NullSink().emit(_transition())


class TestInMemorySink:
    def test_accumulates_in_order(self):
        sink = InMemorySink()
        events = [_transition(i) for i in range(3)]
        for event in events:
            sink.emit(event)
        assert sink.events == events

    def test_by_type_filters(self):
        sink = InMemorySink()
        sink.emit(_transition())
        sink.emit(SampleBatch(cumulative_samples=5, batch_size=5))
        assert len(sink.by_type(StateTransition)) == 1
        assert len(sink.by_type(SampleBatch)) == 1
        assert sink.by_type(IntervalClosed) == []

    def test_clear(self):
        sink = InMemorySink()
        sink.emit(_transition())
        sink.clear()
        assert sink.events == []


class TestJsonlTraceSink:
    def test_header_written_on_construction(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path)
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        header = json.loads(lines[0])
        assert header["etype"] == "trace_header"
        assert header["seq"] == 0

    def test_records_have_increasing_seq_and_sorted_keys(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path)
        sink.emit(_transition(0))
        sink.emit(_transition(1))
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["seq"] for line in lines] == [0, 1, 2]
        for line in lines:
            keys = list(json.loads(line))
            assert keys == sorted(keys)

    def test_records_written_counter(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        assert sink.records_written == 0
        sink.emit(_transition())
        assert sink.records_written == 1
        sink.close()

    def test_flush_leaves_valid_prefix(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path)
        sink.emit(_transition(0))
        sink.flush()
        # Not closed: what is on disk must already be a valid trace.
        assert validate_trace(path) == []
        sink.close()

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()
        sink.flush()

    def test_rejects_non_finite_metric(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        bad = StateTransition(interval_index=0, detector="gpd", rid=-1,
                              state_from="warmup", state_to="warmup",
                              metric=float("inf"))
        with pytest.raises(ValueError):
            sink.emit(bad)
        sink.close()


class TestMetricsSink:
    def test_counts_events_by_type(self):
        sink = MetricsSink()
        sink.emit(_transition())
        sink.emit(SampleBatch(cumulative_samples=8, batch_size=8))
        text = sink.registry.to_text()
        assert 'repro_events_total{etype="state_transition"} 1' in text
        assert 'repro_samples_total 8' in text

    def test_per_region_transition_labels(self):
        sink = MetricsSink()
        sink.emit(_transition(rid=1))
        sink.emit(_transition(rid=1))
        sink.emit(_transition(rid=2))
        counter = sink.registry.counter("repro_state_transitions_total",
                                        detector="lpd", rid="1")
        assert counter.value == 2

    def test_interval_closed_updates_gauge_and_histogram(self):
        sink = MetricsSink()
        sink.emit(IntervalClosed(interval_index=0, n_samples=100,
                                 ucr_fraction=0.25, n_regions=3))
        assert sink.registry.gauge("repro_regions_live").value == 3
        hist = sink.registry.histogram("repro_ucr_fraction")
        assert hist.n == 1

    def test_na_ucr_fraction_not_observed(self):
        sink = MetricsSink()
        sink.emit(IntervalClosed(interval_index=0, n_samples=100,
                                 ucr_fraction=-1.0, n_regions=0))
        assert sink.registry.histogram("repro_ucr_fraction").n == 0
