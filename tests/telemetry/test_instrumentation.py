"""Instrumentation wiring: the pipeline emits the documented events.

Each test runs a small real pipeline with an ``InMemorySink`` on an
isolated :class:`EventBus` and asserts the event stream's shape.  No test
touches the process-wide bus, so they are safe under pytest-xdist-style
ordering.
"""

import numpy as np

from repro.core import MonitorThresholds
from repro.core.gpd import GlobalPhaseDetector
from repro.core.lpd import LocalPhaseDetector
from repro.experiments.cache import (GpdKey, SimulationCache, StreamKey,
                                     cache_disabled)
from repro.monitor import (OnlineSession, RegionMonitor, RegionWatchdog,
                           WatchdogConfig)
from repro.program.binary import BinaryBuilder, loop, straight
from repro.telemetry.bus import EventBus, capture, get_bus
from repro.telemetry.events import (NO_REGION, CacheHit, CacheMiss,
                                    Deoptimization, IntervalClosed,
                                    PhaseChange, RegionFormed,
                                    RegionQuarantined, SampleBatch,
                                    StableSetFrozen, StableSetUpdated,
                                    StateTransition)
from repro.telemetry.sinks import InMemorySink


def tiny_binary():
    builder = BinaryBuilder(base=0x10000)
    builder.procedure("p", [loop("l", body=12), straight(4)], at=0x20000)
    return builder.build()


def hot_pcs(binary, size=8, seed=0):
    span = binary.loop_span("l")
    rng = np.random.default_rng(seed)
    return (span[0] + 4 * rng.integers(0, 12, size=size)).astype(np.int64)


def bus_with_sink():
    sink = InMemorySink()
    return EventBus(sinks=[sink]), sink


class TestLpdInstrumentation:
    def run_stable(self, n=8):
        bus, sink = bus_with_sink()
        detector = LocalPhaseDetector(n_instructions=16, telemetry=bus,
                                      region_id=7)
        counts = np.linspace(1.0, 16.0, 16)
        for i in range(n):
            detector.observe(counts, i)
        return detector, sink

    def test_every_active_interval_emits_a_transition(self):
        detector, sink = self.run_stable(8)
        transitions = sink.by_type(StateTransition)
        # The priming interval installs the stable set without a machine
        # step; every later interval is one step.
        assert len(transitions) == 7
        assert {e.detector for e in transitions} == {"lpd"}
        assert {e.rid for e in transitions} == {7}

    def test_stabilization_emits_phase_change_and_freeze(self):
        detector, sink = self.run_stable(8)
        assert detector.in_stable_phase
        changes = sink.by_type(PhaseChange)
        assert [e.kind for e in changes] == ["became_stable"]
        assert len(sink.by_type(StableSetFrozen)) == 1
        assert sink.by_type(StableSetUpdated)  # pre-freeze updates

    def test_starved_interval_emits_nothing(self):
        bus, sink = bus_with_sink()
        detector = LocalPhaseDetector(n_instructions=16, telemetry=bus)
        detector.observe(np.zeros(16), 0)
        assert sink.events == []

    def test_disabled_bus_emits_nothing(self):
        bus = EventBus()
        detector = LocalPhaseDetector(n_instructions=16, telemetry=bus)
        counts = np.linspace(1.0, 16.0, 16)
        for i in range(6):
            detector.observe(counts, i)
        assert detector.active_intervals == 6  # pipeline ran normally


class TestGpdInstrumentation:
    def test_transitions_carry_finite_metric(self):
        bus, sink = bus_with_sink()
        detector = GlobalPhaseDetector(telemetry=bus)
        for value in (100.0, 101.0, 100.5, 100.2, 100.4, 100.3, 100.1,
                      100.2, 100.3):
            detector.observe_centroid(value)
        transitions = sink.by_type(StateTransition)
        assert transitions
        assert {e.rid for e in transitions} == {NO_REGION}
        assert {e.detector for e in transitions} == {"gpd"}
        assert all(np.isfinite(e.metric) for e in transitions)

    def test_declaration_emits_phase_change(self):
        bus, sink = bus_with_sink()
        detector = GlobalPhaseDetector(telemetry=bus)
        for _ in range(30):
            detector.observe_centroid(100.0)
        assert detector.in_stable_phase
        changes = sink.by_type(PhaseChange)
        assert changes and changes[0].kind == "became_stable"


class TestMonitorInstrumentation:
    def test_formation_and_interval_closed(self):
        binary = tiny_binary()
        bus, sink = bus_with_sink()
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=8),
                                telemetry=bus)
        monitor.process_interval(hot_pcs(binary), 0)
        formed = sink.by_type(RegionFormed)
        assert len(formed) == len(monitor.live_regions()) == 1
        assert formed[0].kind
        closed = sink.by_type(IntervalClosed)
        assert len(closed) == 1
        assert closed[0].n_samples == 8
        assert closed[0].n_regions == 1
        assert 0.0 <= closed[0].ucr_fraction <= 1.0

    def test_per_region_detectors_tagged_with_rid(self):
        binary = tiny_binary()
        bus, sink = bus_with_sink()
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=8),
                                telemetry=bus)
        pcs = hot_pcs(binary)
        for i in range(6):
            monitor.process_interval(pcs, i)
        rid = monitor.region_record(monitor.live_regions()[0].rid).rid
        lpd_events = [e for e in sink.by_type(StateTransition)
                      if e.detector == "lpd"]
        assert lpd_events
        assert {e.rid for e in lpd_events} == {rid}


class TestWatchdogInstrumentation:
    def test_starvation_trip_emits_deopt_and_quarantine(self):
        binary = tiny_binary()
        bus, sink = bus_with_sink()
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=8),
                                telemetry=bus)
        watchdog = RegionWatchdog(
            WatchdogConfig(starvation_intervals=2, backoff_intervals=100),
            monitor, telemetry=bus)
        empty = np.array([], dtype=np.int64)
        watchdog.observe_interval(monitor.process_interval(
            hot_pcs(binary), 0))
        for i in range(1, 3):
            watchdog.observe_interval(monitor.process_interval(empty, i))
        deopts = sink.by_type(Deoptimization)
        assert [e.action for e in deopts] == ["deoptimize"]
        assert deopts[0].reason == "starved"
        quarantined = sink.by_type(RegionQuarantined)
        assert len(quarantined) == 1
        assert quarantined[0].rid == deopts[0].rid


class TestOnlineSessionInstrumentation:
    def test_feed_many_emits_sample_batches(self):
        binary = tiny_binary()
        bus, sink = bus_with_sink()
        session = OnlineSession(binary=binary,
                                monitor_thresholds=MonitorThresholds(
                                    buffer_size=8),
                                run_gpd=False, telemetry=bus)
        session.feed_many(hot_pcs(binary, size=16))
        batches = sink.by_type(SampleBatch)
        assert len(batches) == 1
        assert batches[0].batch_size == 16
        assert batches[0].cumulative_samples == 16
        assert len(sink.by_type(IntervalClosed)) == 2

    def test_gpd_only_session_closes_intervals_with_na_ucr(self):
        bus, sink = bus_with_sink()
        session = OnlineSession(monitor_thresholds=MonitorThresholds(
            buffer_size=8), run_gpd=True, telemetry=bus)
        rng = np.random.default_rng(3)
        session.feed_many(rng.integers(0x10000, 0x20000, size=24))
        closed = sink.by_type(IntervalClosed)
        assert len(closed) == 3
        assert {e.ucr_fraction for e in closed} == {-1.0}
        assert {e.n_regions for e in closed} == {0}


class TestCacheInstrumentation:
    def test_hit_and_miss_events(self):
        store = SimulationCache()
        key = StreamKey("181.mcf", 1.0, 45000, 7)
        with capture(InMemorySink()) as sink:
            store.stream(key, lambda: "artifact")
            store.stream(key, lambda: "artifact")
        misses = sink.by_type(CacheMiss)
        hits = sink.by_type(CacheHit)
        assert len(misses) == len(hits) == 1
        assert misses[0].kind == hits[0].kind == "stream"
        assert "181.mcf" in hits[0].key

    def test_kinds_distinguish_stores(self):
        store = SimulationCache()
        with capture(InMemorySink()) as sink:
            store.detector(GpdKey("181.mcf", 1.0, 45000, 7, 2032),
                           lambda: "gpd-run")
        assert sink.by_type(CacheMiss)[0].kind == "gpd"

    def test_disabled_cache_emits_nothing(self):
        store = SimulationCache()
        store.enabled = False
        key = StreamKey("181.mcf", 1.0, 45000, 7)
        with capture(InMemorySink()) as sink:
            store.stream(key, lambda: "artifact")
        assert sink.events == []

    def test_cache_disabled_context_emits_nothing_globally(self):
        with capture(InMemorySink()) as sink, cache_disabled():
            from repro.experiments.cache import GLOBAL_CACHE

            GLOBAL_CACHE.stream(StreamKey("x", 1.0, 1, 1), lambda: None)
        assert sink.events == []


class TestDefaultBusSafety:
    def test_components_default_to_the_disabled_global_bus(self):
        assert not get_bus().enabled
        detector = LocalPhaseDetector(n_instructions=16)
        counts = np.linspace(1.0, 16.0, 16)
        for i in range(4):
            detector.observe(counts, i)
        # Nothing to assert beyond "no crash": the global bus is disabled
        # and no sink observed anything.
        assert detector.active_intervals == 4

    def test_region_id_defaults_to_no_region(self):
        bus, sink = bus_with_sink()
        detector = LocalPhaseDetector(n_instructions=16, telemetry=bus)
        counts = np.linspace(1.0, 16.0, 16)
        detector.observe(counts, 0)
        detector.observe(counts, 1)
        assert {e.rid for e in sink.by_type(StateTransition)} == {NO_REGION}
