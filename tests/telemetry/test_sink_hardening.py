"""JsonlTraceSink under I/O failure: count drops, never raise."""

import pytest

from repro.errors import ReproError
from repro.telemetry.events import IntervalClosed
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sinks import JsonlTraceSink


class FlakyFile:
    """A file-object stand-in that fails on command."""

    def __init__(self, real):
        self.real = real
        self.fail_with: type[Exception] | None = None

    @property
    def closed(self):
        return self.real.closed

    def write(self, data):
        if self.fail_with is not None:
            raise self.fail_with("injected sink failure")
        return self.real.write(data)

    def flush(self):
        if self.fail_with is not None:
            raise self.fail_with("injected sink failure")
        self.real.flush()

    def close(self):
        self.real.close()


def event(i=0):
    return IntervalClosed(interval_index=i, n_samples=100,
                          ucr_fraction=0.25, n_regions=1)


@pytest.fixture
def flaky_sink(tmp_path):
    metrics = MetricsRegistry()
    sink = JsonlTraceSink(tmp_path / "trace.jsonl", metrics=metrics)
    flaky = FlakyFile(sink._file)
    sink._file = flaky
    yield sink, flaky, metrics
    flaky.fail_with = None
    sink.close()


def test_write_failure_is_counted_not_raised(flaky_sink):
    sink, flaky, metrics = flaky_sink
    sink.emit(event(0))
    flaky.fail_with = OSError  # disk full / revoked handle
    sink.emit(event(1))
    sink.emit(event(2))
    assert sink.records_written == 1
    assert sink.records_dropped == 2
    counter = metrics.counter("repro_trace_dropped_total",
                              "trace records lost to sink I/O failure",
                              error="OSError")
    assert counter.value == 2


def test_sink_recovers_when_the_file_heals(flaky_sink):
    sink, flaky, _ = flaky_sink
    flaky.fail_with = OSError
    sink.emit(event(0))
    flaky.fail_with = None
    sink.emit(event(1))
    assert sink.records_written == 1
    assert sink.records_dropped == 1


def test_flush_failure_is_swallowed(flaky_sink):
    sink, flaky, metrics = flaky_sink
    sink.emit(event(0))
    flaky.fail_with = OSError
    sink.flush()  # must not raise into the runner's finally block
    assert sink.records_dropped == 1


def test_closed_file_counts_as_value_error(tmp_path):
    metrics = MetricsRegistry()
    sink = JsonlTraceSink(tmp_path / "trace.jsonl", metrics=metrics)
    sink._file.close()
    sink.emit(event(0))  # ValueError path: write on a closed file
    assert sink.records_dropped == 1
    counter = metrics.counter("repro_trace_dropped_total",
                              "trace records lost to sink I/O failure",
                              error="ValueError")
    assert counter.value == 1
    sink.close()  # idempotent, still no raise


def test_surviving_records_remain_valid_jsonl(tmp_path):
    import json

    sink = JsonlTraceSink(tmp_path / "trace.jsonl")
    flaky = FlakyFile(sink._file)
    sink._file = flaky
    sink.emit(event(0))
    flaky.fail_with = OSError
    sink.emit(event(1))
    flaky.fail_with = None
    sink.emit(event(2))
    sink.close()
    lines = (tmp_path / "trace.jsonl").read_text().splitlines()
    records = [json.loads(line) for line in lines]
    assert len(records) == 3  # header + the two surviving events
    assert [r["interval_index"] for r in records[1:]] == [0, 2]


def test_unopenable_trace_file_still_raises(tmp_path):
    # Construction failure is a configuration error the caller must
    # see — only the per-event path degrades.
    with pytest.raises((OSError, ReproError)):
        JsonlTraceSink(tmp_path / "missing-dir" / "trace.jsonl")
