"""Golden-trace replay: regenerated traces must match the fixtures byte
for byte.

These are the repository's broadest regression net: one fixture pins the
complete telemetry stream of a fig13-style monitored run, the other a
faultsweep rung behind the drop20 plan.  A failure here means pipeline
behavior, event ordering or the trace schema changed — if the change was
intentional, regenerate with ``python scripts/regen_golden_traces.py``
and commit the diff alongside it.
"""

import json

import pytest

from repro.telemetry.events import SCHEMA_VERSION
from repro.telemetry.trace import read_trace, validate_trace
from tests.fixtures.traces.golden import (GOLDEN_TRACES, TRACE_DIR,
                                          write_golden_trace)

NAMES = sorted(GOLDEN_TRACES)


@pytest.mark.parametrize("name", NAMES)
def test_fixture_exists_and_validates(name):
    path = TRACE_DIR / name
    assert path.is_file(), \
        f"missing fixture {name}; run scripts/regen_golden_traces.py"
    assert validate_trace(path) == []


@pytest.mark.parametrize("name", NAMES)
def test_fixture_pins_current_schema_version(name):
    with open(TRACE_DIR / name, encoding="utf-8") as handle:
        header = json.loads(handle.readline())
    assert header["etype"] == "trace_header"
    assert header["v"] == SCHEMA_VERSION, \
        "schema version moved; regenerate the golden traces"


@pytest.mark.parametrize("name", NAMES)
def test_replay_is_byte_identical(name, tmp_path):
    regenerated = write_golden_trace(name, tmp_path)
    fixture_bytes = (TRACE_DIR / name).read_bytes()
    regenerated_bytes = regenerated.read_bytes()
    if fixture_bytes != regenerated_bytes:
        fixture_events = list(read_trace(TRACE_DIR / name))
        new_events = list(read_trace(regenerated))
        divergence = next(
            (i for i, (a, b) in enumerate(zip(fixture_events, new_events))
             if a != b),
            min(len(fixture_events), len(new_events)))
        pytest.fail(
            f"{name} diverges from its fixture at event {divergence} "
            f"({len(fixture_events)} pinned vs {len(new_events)} "
            f"regenerated); if intentional, run "
            f"scripts/regen_golden_traces.py and commit the diff")


def test_fixture_traces_are_nonempty():
    for name in NAMES:
        events = list(read_trace(TRACE_DIR / name))
        assert len(events) > 100, name
