"""The event taxonomy: registration, immutability, JSON-scalar fields."""

import dataclasses

import pytest

from repro.telemetry.events import (EVENT_TYPES, NO_REGION, SCHEMA_VERSION,
                                    CacheHit, Deoptimization, IntervalClosed,
                                    PhaseChange, RegionFormed, SampleBatch,
                                    StateTransition, TelemetryEvent,
                                    event_fields)


class TestTaxonomy:
    def test_every_event_type_registered_under_its_etype(self):
        for etype, cls in EVENT_TYPES.items():
            assert cls.etype == etype
            assert issubclass(cls, TelemetryEvent)

    def test_twelve_event_types(self):
        assert len(EVENT_TYPES) == 12

    def test_etypes_are_unique_snake_case(self):
        for etype in EVENT_TYPES:
            assert etype == etype.lower()
            assert " " not in etype

    def test_schema_version_is_positive_int(self):
        assert isinstance(SCHEMA_VERSION, int) and SCHEMA_VERSION >= 1

    def test_no_region_sentinel(self):
        assert NO_REGION == -1


class TestEventClasses:
    def test_events_are_frozen(self):
        event = SampleBatch(cumulative_samples=10, batch_size=10)
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.batch_size = 11

    def test_events_compare_by_value(self):
        a = StateTransition(1, "lpd", 2, "unstable", "stable", 0.9)
        b = StateTransition(1, "lpd", 2, "unstable", "stable", 0.9)
        assert a == b

    @pytest.mark.parametrize("cls", sorted(EVENT_TYPES.values(),
                                           key=lambda c: c.etype))
    def test_fields_are_json_scalars(self, cls):
        mapping = event_fields(cls)
        assert mapping, f"{cls.__name__} has no payload fields"
        for name, ftype in mapping.items():
            assert ftype in (int, float, str), (cls.__name__, name)

    def test_event_fields_matches_dataclass_fields(self):
        mapping = event_fields(IntervalClosed)
        assert mapping == {"interval_index": int, "n_samples": int,
                           "ucr_fraction": float, "n_regions": int}

    def test_region_formed_carries_span_and_kind(self):
        event = RegionFormed(interval_index=3, rid=1, start=0x1000,
                             end=0x2000, kind="loop")
        assert (event.start, event.end, event.kind) == (0x1000, 0x2000,
                                                        "loop")

    def test_deoptimization_actions_documented(self):
        event = Deoptimization(interval_index=5, rid=NO_REGION,
                               reason="global-phase-change",
                               action="unpatch_all")
        assert event.rid == NO_REGION

    def test_cache_events_carry_no_virtual_time(self):
        assert set(event_fields(CacheHit)) == {"kind", "key"}

    def test_phase_change_kind_is_string(self):
        event = PhaseChange(interval_index=2, detector="gpd", rid=NO_REGION,
                            kind="became_stable", state_from="less_stable",
                            state_to="stable", detail="")
        assert isinstance(event.kind, str)
