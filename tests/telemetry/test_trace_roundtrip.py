"""Trace schema: round-trip fidelity and validation of corrupted files."""

import json

import pytest

from repro.telemetry.events import (EVENT_TYPES, CacheMiss, Deoptimization,
                                    IntervalClosed, PhaseChange,
                                    RegionBlacklisted, RegionFormed,
                                    RegionQuarantined, SampleBatch,
                                    StableSetFrozen, StableSetUpdated,
                                    StateTransition, CacheHit)
from repro.telemetry.sinks import JsonlTraceSink
from repro.telemetry.trace import (from_record, header_record, read_trace,
                                   to_record, validate_trace)

#: One representative instance of every event type.
SPECIMENS = [
    SampleBatch(cumulative_samples=2032, batch_size=2032),
    IntervalClosed(interval_index=0, n_samples=2032, ucr_fraction=0.42,
                   n_regions=3),
    StateTransition(interval_index=1, detector="lpd", rid=2,
                    state_from="unstable", state_to="less_unstable",
                    metric=0.85),
    PhaseChange(interval_index=2, detector="gpd", rid=-1,
                kind="became_stable", state_from="less_stable",
                state_to="stable", detail="drift_ratio=0.004"),
    StableSetFrozen(interval_index=3, rid=2),
    StableSetUpdated(interval_index=4, rid=2),
    RegionFormed(interval_index=5, rid=2, start=0x2000, end=0x2400,
                 kind="loop"),
    RegionQuarantined(interval_index=6, rid=2, reason="starved"),
    RegionBlacklisted(interval_index=7, rid=2, reason="stuck-unstable"),
    Deoptimization(interval_index=8, rid=2, reason="watchdog",
                   action="unpatch"),
    CacheHit(kind="stream", key="StreamKey(benchmark='181.mcf', ...)"),
    CacheMiss(kind="monitor", key="MonitorKey(benchmark='181.mcf', ...)"),
]


def test_specimens_cover_every_event_type():
    assert {type(e).etype for e in SPECIMENS} == set(EVENT_TYPES)


@pytest.mark.parametrize("event", SPECIMENS,
                         ids=[type(e).etype for e in SPECIMENS])
def test_record_roundtrip_is_lossless(event):
    record = to_record(event, seq=9)
    # Through actual JSON, as the file format would.
    decoded = json.loads(json.dumps(record, sort_keys=True,
                                    allow_nan=False))
    assert from_record(decoded) == event


def test_file_roundtrip_preserves_order(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = JsonlTraceSink(path)
    for event in SPECIMENS:
        sink.emit(event)
    sink.close()
    assert validate_trace(path) == []
    assert list(read_trace(path)) == SPECIMENS


def test_from_record_rejects_unknown_etype():
    with pytest.raises(ValueError, match="unknown etype"):
        from_record({"etype": "no_such_event", "seq": 1, "v": 1})


def test_from_record_rejects_missing_field():
    record = to_record(SPECIMENS[0], seq=1)
    del record["batch_size"]
    with pytest.raises(ValueError, match="batch_size"):
        from_record(record)


def test_from_record_rejects_extra_field():
    record = to_record(SPECIMENS[0], seq=1)
    record["wall_time"] = 12.5
    with pytest.raises(ValueError, match="wall_time"):
        from_record(record)


def test_from_record_rejects_bool_for_int():
    record = to_record(SPECIMENS[0], seq=1)
    record["batch_size"] = True
    with pytest.raises(ValueError):
        from_record(record)


def test_from_record_rejects_version_mismatch():
    record = to_record(SPECIMENS[0], seq=1)
    record["v"] = 99
    with pytest.raises(ValueError, match="version"):
        from_record(record)


class TestValidateTrace:
    def _write(self, path, lines):
        path.write_text("".join(line + "\n" for line in lines))

    def test_missing_file(self, tmp_path):
        problems = validate_trace(tmp_path / "absent.jsonl")
        assert problems and "cannot open" in problems[0]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        assert validate_trace(path) == ["empty trace (no header record)"]

    def test_missing_header(self, tmp_path):
        path = tmp_path / "t.jsonl"
        record = to_record(SPECIMENS[0], seq=1)
        self._write(path, [json.dumps(record)])
        assert any("trace_header" in p for p in validate_trace(path))

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, [json.dumps(header_record()), "{not json"])
        assert any("invalid JSON" in p for p in validate_trace(path))

    def test_non_monotonic_seq(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, [
            json.dumps(header_record()),
            json.dumps(to_record(SPECIMENS[0], seq=2)),
            json.dumps(to_record(SPECIMENS[0], seq=2)),
        ])
        assert any("seq 2" in p for p in validate_trace(path))

    def test_truncated_last_record(self, tmp_path):
        path = tmp_path / "t.jsonl"
        full = json.dumps(header_record()) + "\n" \
            + json.dumps(to_record(SPECIMENS[0], seq=1))
        path.write_text(full[:-5])  # simulated crash mid-write
        assert validate_trace(path) != []

    def test_valid_trace_has_no_problems(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path)
        sink.emit(SPECIMENS[2])
        sink.close()
        assert validate_trace(path) == []
