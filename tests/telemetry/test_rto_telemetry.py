"""RTO instrumentation: both policies narrate their deoptimizations."""

from repro.optimizer import RtoConfig, RTOSystem
from repro.program.behavior import RegionSpec, bottleneck_profile
from repro.program.binary import BinaryBuilder, loop, straight
from repro.program.spec2000 import INTERVAL_45K
from repro.program.workload import Periodic, Steady, WorkloadScript, mixture
from repro.telemetry.bus import EventBus
from repro.telemetry.events import (NO_REGION, Deoptimization, PhaseChange,
                                    StateTransition)
from repro.telemetry.sinks import InMemorySink


def build_system():
    builder = BinaryBuilder(base=0x10000)
    builder.procedure("p_a", [loop("a", body=28)], at=0x20000)
    builder.procedure("p_b", [loop("b", body=44)], at=0x90000)
    builder.procedure("cold", [straight(32)], at=0x16000)
    binary = builder.build()
    regions = {
        # Region 'a' has two profiles so a workload can flip its *local*
        # behavior — the trigger for LPD-driven unpatches.
        "a": RegionSpec("a", *binary.loop_span("a"),
                        profiles={"main": bottleneck_profile(32, {9: 200.0}),
                                  "alt": bottleneck_profile(32, {25: 200.0})},
                        dpi=0.10, opt_potential=0.30),
        "b": RegionSpec("b", *binary.loop_span("b"),
                        profiles={"main": bottleneck_profile(48, {20: 150.0})},
                        dpi=0.02, opt_potential=0.10),
        "cold_code": RegionSpec("cold_code", binary.procedure("cold").start,
                                binary.procedure("cold").end, is_loop=False),
    }
    return binary, regions


def globally_flapping_workload(intervals=60):
    """Region *shares* flap (the GPD flaps, local behavior is steady)."""
    mix_a = mixture(("a", 0.70), ("b", 0.20), ("cold_code", 0.10))
    mix_b = mixture(("a", 0.20), ("b", 0.70), ("cold_code", 0.10))
    return WorkloadScript([Periodic(
        intervals * INTERVAL_45K, (mix_a, mix_b),
        switch_period=12 * INTERVAL_45K)])


def locally_flapping_workload(intervals=80):
    """Region 'a' alternates its internal profile (local phase changes)."""
    mix_main = mixture(("a", 0.55, "main"), ("b", 0.35), ("cold_code", 0.10))
    mix_alt = mixture(("a", 0.55, "alt"), ("b", 0.35), ("cold_code", 0.10))
    return WorkloadScript([Periodic(
        intervals * INTERVAL_45K, (mix_main, mix_alt),
        switch_period=16 * INTERVAL_45K)])


def steady_workload(intervals=40):
    return WorkloadScript([Steady(
        intervals * INTERVAL_45K,
        mixture(("a", 0.55), ("b", 0.35), ("cold_code", 0.10)))])


def run_with_sink(policy, workload, **config_kwargs):
    binary, regions = build_system()
    sink = InMemorySink()
    bus = EventBus(sinks=[sink])
    system = RTOSystem(binary, regions, workload, 45_000,
                       RtoConfig(policy=policy, **config_kwargs), seed=3,
                       telemetry=bus)
    return system.run(), sink


class TestOrigPolicy:
    def test_gpd_transitions_flow_through_the_system_bus(self):
        result, sink = run_with_sink("orig", steady_workload())
        gpd = [e for e in sink.by_type(StateTransition)
               if e.detector == "gpd"]
        assert gpd and result.stable_fraction > 0

    def test_global_unpatch_all_emitted_on_flap(self):
        result, sink = run_with_sink("orig", globally_flapping_workload())
        assert result.n_unpatches > 0
        deopts = sink.by_type(Deoptimization)
        assert deopts
        assert {e.action for e in deopts} == {"unpatch_all"}
        assert {e.rid for e in deopts} == {NO_REGION}
        assert {e.reason for e in deopts} == {"global-phase-change"}


class TestLpdPolicy:
    def test_share_flapping_does_not_unpatch_locally(self):
        # The paper's claim, visible in the event stream: regions whose
        # *share* flaps but whose local behavior is steady stay deployed.
        result, sink = run_with_sink("lpd", globally_flapping_workload())
        assert result.n_unpatches == 0
        assert sink.by_type(Deoptimization) == []

    def test_local_unpatches_carry_region_ids(self):
        result, sink = run_with_sink("lpd", locally_flapping_workload())
        assert result.n_unpatches > 0
        deopts = [e for e in sink.by_type(Deoptimization)
                  if e.action == "unpatch"]
        assert deopts
        assert {e.reason for e in deopts} == {"local-phase-change"}
        assert all(e.rid >= 0 for e in deopts)

    def test_event_stream_matches_result_counters(self):
        result, sink = run_with_sink("lpd", locally_flapping_workload())
        unpatch_events = [e for e in sink.by_type(Deoptimization)
                          if e.action == "unpatch"]
        # Every recorded unpatch of a candidate trace is narrated; the
        # trace-cache counter also counts non-candidate regions, so the
        # event count is a lower bound that must still be consistent.
        assert 0 < len(unpatch_events) <= result.n_unpatches

    def test_lpd_emits_per_region_phase_changes(self):
        _, sink = run_with_sink("lpd", locally_flapping_workload())
        changes = [e for e in sink.by_type(PhaseChange)
                   if e.detector == "lpd"]
        assert changes
        assert all(e.rid >= 0 for e in changes)
