"""Tests for the fault-sweep experiment, faulted cache keys, and the
runner's graceful-degradation path."""

import numpy as np
import pytest

from repro.experiments import extra_fault_sweep
from repro.experiments.base import (benchmark_for, gpd_run, monitored_run,
                                    stream_for)
from repro.experiments.cache import WarmTask, get_cache
from repro.experiments.config import BASE_PERIOD, ExperimentConfig
from repro.experiments.runner import (collect_warm_tasks, main,
                                      warm_cache_parallel)
from repro.faults import FaultPlan, SampleDrop

SMALL = ExperimentConfig(scale=0.05, seed=7)
PAIR = ("164.gzip", "181.mcf")
DROP20 = FaultPlan((SampleDrop(rate=0.20, burst_mean=4.0),))


@pytest.fixture(autouse=True)
def _fresh_cache():
    get_cache().clear()
    yield
    get_cache().clear()


class TestFaultedCacheKeys:
    def test_empty_plan_shares_the_ideal_entry(self):
        model = benchmark_for("181.mcf", SMALL)
        ideal = stream_for(model, BASE_PERIOD, SMALL)
        empty = stream_for(model, BASE_PERIOD, SMALL, plan=FaultPlan(()))
        assert empty is ideal  # byte-identical by construction
        assert get_cache().stats().streams == 1

    def test_faulted_stream_gets_its_own_entry(self):
        model = benchmark_for("181.mcf", SMALL)
        ideal = stream_for(model, BASE_PERIOD, SMALL)
        faulted = stream_for(model, BASE_PERIOD, SMALL, plan=DROP20)
        assert faulted is not ideal
        assert faulted.n_samples < ideal.n_samples
        assert get_cache().stats().streams == 2
        # Same plan again: pure hit.
        again = stream_for(model, BASE_PERIOD, SMALL, plan=DROP20)
        assert again is faulted

    def test_monitor_and_gpd_keys_separate_by_plan(self):
        model = benchmark_for("181.mcf", SMALL)
        clean_monitor = monitored_run(model, BASE_PERIOD, SMALL)
        fault_monitor = monitored_run(model, BASE_PERIOD, SMALL,
                                      plan=DROP20)
        assert fault_monitor is not clean_monitor
        clean_gpd = gpd_run(model, BASE_PERIOD, SMALL)
        fault_gpd = gpd_run(model, BASE_PERIOD, SMALL, plan=DROP20)
        assert fault_gpd is not clean_gpd

    def test_faulted_runs_are_deterministic(self):
        model = benchmark_for("181.mcf", SMALL)
        first = stream_for(model, BASE_PERIOD, SMALL, plan=DROP20)
        get_cache().clear()
        second = stream_for(model, BASE_PERIOD, SMALL, plan=DROP20)
        assert np.array_equal(first.pcs, second.pcs)
        assert np.array_equal(first.cycles, second.cycles)


class TestWarmPhaseWithFaults:
    def test_warm_tasks_carry_plan_tokens(self):
        tasks = collect_warm_tasks(["faultsweep"], SMALL)
        tokens = {task.faults for task in tasks}
        assert () in tokens          # the clean anchor runs
        assert len(tokens) == len(extra_fault_sweep.PLANS)

    def test_parallel_warm_matches_serial(self):
        tasks = [task for task in collect_warm_tasks(["faultsweep"], SMALL)
                 if task.benchmark in PAIR]
        warm_cache_parallel(tasks, SMALL, jobs=2)
        warmed_rows = extra_fault_sweep.run(SMALL, benchmarks=PAIR).rows
        hits_only = get_cache().stats()
        assert hits_only.misses == 0
        from repro.experiments.cache import cache_disabled

        with cache_disabled():
            serial_rows = extra_fault_sweep.run(SMALL,
                                                benchmarks=PAIR).rows
        assert warmed_rows == serial_rows

    def test_worker_seeds_faulted_and_ideal_streams(self):
        token = DROP20.token()
        tasks = [WarmTask("monitor", "181.mcf", BASE_PERIOD, faults=token)]
        warm_cache_parallel(tasks, SMALL, jobs=1)
        stats = get_cache().stats()
        assert stats.streams == 2  # ideal + faulted
        assert stats.monitors == 1


class TestFaultSweepExperiment:
    def test_drop20_completes_and_lpd_wins(self):
        result = extra_fault_sweep.run(SMALL, benchmarks=PAIR)
        assert len(result.rows) == len(PAIR) * len(extra_fault_sweep.PLANS)
        spurious = result.extras["spurious"]
        wins = sum(1 for plans in spurious.values()
                   if plans["drop20"][1] <= plans["drop20"][0])
        assert wins * 2 > len(spurious)  # LPD <= GPD on the majority

    def test_clean_rows_have_zero_deltas(self):
        result = extra_fault_sweep.run(SMALL, benchmarks=("164.gzip",))
        clean = [row for row in result.rows if row[1] == "clean"]
        assert clean and all(row[4] == 0 and row[5] == 0 for row in clean)
        assert all(row[6] == 0.0 and row[7] == 0.0 for row in clean)

    def test_runner_cli_smoke(self, capsys):
        assert main(["faultsweep", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "faultsweep" in out and "drop20" in out


class TestRunnerDegradation:
    def test_failing_figure_reported_not_fatal(self, capsys, monkeypatch):
        from repro.experiments import runner as runner_module

        def boom(config):
            raise RuntimeError("synthetic figure failure")

        monkeypatch.setitem(runner_module.EXPERIMENTS, "fig08", boom)
        code = main(["fig08", "ivalsize", "--scale", "0.05"])
        captured = capsys.readouterr()
        assert code == 1
        assert "synthetic figure failure" in captured.err
        assert "1/2 experiments failed" in captured.err
        # The healthy figure still ran and printed its table.
        assert "ivalsize" in captured.out

    def test_all_healthy_exits_zero(self, capsys):
        assert main(["fig08", "--scale", "0.05"]) == 0
