"""Tests for the experiment harness (small scale, subset benchmarks)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (fig02_mcf_region_chart,
                               fig03_gpd_phase_changes,
                               fig04_gpd_stable_time,
                               fig05_facerec_region_chart, fig06_ucr_median,
                               fig07_ucr_over_time,
                               fig08_pearson_properties, fig09_mcf_regions,
                               fig10_mcf_correlation, fig11_gap_regions,
                               fig13_lpd_phase_changes,
                               fig14_lpd_stable_time, fig15_cost,
                               fig16_interval_tree, fig17_speedup)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import EXPERIMENTS, main, run_experiment

SMALL = ExperimentConfig(scale=0.05, seed=7)
TINY = ExperimentConfig(scale=0.02, seed=7)


class TestIndividualExperiments:
    def test_fig02_summarizes_mcf(self):
        result = fig02_mcf_region_chart.run(SMALL)
        assert result.experiment_id == "fig02"
        assert result.rows
        chart = result.extras["chart"]
        assert "146f0-14770" in chart.region_names

    def test_fig03_shape(self):
        result = fig03_gpd_phase_changes.run(
            SMALL, benchmarks=("181.mcf", "171.swim"))
        by_name = {row[0]: row[1:] for row in result.rows}
        # mcf flaps at 45k, swim does not.
        assert by_name["181.mcf"][0] > by_name["171.swim"][0]
        assert len(result.headers) == 4

    def test_fig04_percentages_bounded(self):
        result = fig04_gpd_stable_time.run(SMALL, benchmarks=("171.swim",))
        for row in result.rows:
            for value in row[1:]:
                assert 0.0 <= value <= 100.0

    def test_fig05_counts_switches(self):
        # Needs enough intervals for a few set switches to land.
        result = fig05_facerec_region_chart.run(
            ExperimentConfig(scale=0.15, seed=7))
        values = dict((row[0], row[1]) for row in result.rows)
        assert values["working-set switches (ground truth)"] > 0
        assert values["GPD phase changes"] > 0

    def test_fig06_gap_crafty_above_line(self):
        result = fig06_ucr_median.run(
            SMALL, benchmarks=("254.gap", "171.swim"))
        by_name = {row[0]: row for row in result.rows}
        assert by_name["254.gap"][2] is True
        assert by_name["171.swim"][2] is False

    def test_fig07_interproc_collapses_ucr(self):
        result = fig07_ucr_over_time.run(TINY)
        # Columns: bucket, gap loop-only, gap interproc, crafty loop-only,
        # crafty interproc.
        last = result.rows[-1]
        assert last[1] > 25.0   # gap loop-only stays high
        assert last[2] < 5.0    # interprocedural fixes it
        assert last[3] > 25.0
        assert last[4] < 10.0

    def test_fig08_anchor_values(self):
        result = fig08_pearson_properties.run()
        rows = {row[0]: row for row in result.rows}
        assert rows["shift bottleneck by 1 instruction"][1] < 0.3
        assert rows["shift bottleneck by 1 instruction"][2] == "yes"
        assert rows["more samples, similar frequencies"][1] > 0.99
        assert rows["more samples, similar frequencies"][2] == "no"

    def test_fig09_tradeoff_direction(self):
        result = fig09_mcf_regions.run(SMALL)
        first, last = result.rows[0], result.rows[-1]
        assert first[1] > last[1]  # 146f0 fades
        assert first[2] < last[2]  # 142c8 grows

    def test_fig10_high_correlation(self):
        result = fig10_mcf_correlation.run(SMALL)
        for row in result.rows:
            assert row[1] > 0.9   # mean r
            assert row[3] <= 2    # few local changes

    def test_fig11_g1_more_stable_than_g2(self):
        result = fig11_gap_regions.run(SMALL)
        assert "7ba2c-7ba78" in result.headers[1]
        assert result.rows

    def test_fig13_gap_outlier(self):
        # The erratic region needs several burst cycles to rack up
        # changes, so run a bit longer than the other tests.
        result = fig13_lpd_phase_changes.run(
            ExperimentConfig(scale=0.2, seed=7),
            benchmarks=("254.gap", "189.lucas"))
        gap_g3 = [row for row in result.rows if row[0] == "254.gap"
                  and row[1] == "r3"]
        lucas = [row for row in result.rows if row[0] == "189.lucas"]
        assert gap_g3[0][3] > 3          # erratic region flaps at 45k
        assert all(row[3] <= 2 for row in lucas)

    def test_fig14_high_stability(self):
        result = fig14_lpd_stable_time.run(SMALL, benchmarks=("189.lucas",))
        for row in result.rows:
            assert row[3] > 80.0  # 45k column

    def test_fig15_ordering(self):
        result = fig15_cost.run(TINY, benchmarks=("176.gcc", "171.swim"))
        by_name = {row[0]: row for row in result.rows}
        assert by_name["176.gcc"][3] > by_name["171.swim"][3]
        # LPD is many times slower than GPD everywhere.
        for row in result.rows:
            assert row[4] > 5.0

    def test_fig16_crossover(self):
        result = fig16_interval_tree.run(
            TINY, benchmarks=("176.gcc", "189.lucas"))
        by_name = {row[0]: row for row in result.rows}
        assert by_name["176.gcc"][4] < 0.5
        assert by_name["189.lucas"][4] > 1.0

    def test_fig17_runs_and_reports(self):
        result = fig17_speedup.run(SMALL, benchmarks=("172.mgrid",))
        assert len(result.rows) == 1
        # mgrid: both policies equivalent, near-zero speedup.
        for value in result.rows[0][1:4]:
            assert abs(value) < 5.0


class TestExtraExperiments:
    def test_detector_zoo(self):
        from repro.experiments import extra_detector_zoo

        result = extra_detector_zoo.run(
            ExperimentConfig(scale=0.15, seed=7),
            benchmarks=("187.facerec",))
        by_scheme = {row[1]: row for row in result.rows}
        assert by_scheme["centroid"][3] > by_scheme["lpd"][3]
        assert by_scheme["lpd"][2] == "local"

    def test_interval_size_sweep(self):
        from repro.experiments import extra_interval_size

        result = extra_interval_size.run(ExperimentConfig(scale=0.15,
                                                          seed=7))
        assert len(result.rows) == 5
        # GPD changes vary wildly across buffer sizes; LPD stays flat.
        gpd_counts = [row[2] for row in result.rows]
        lpd_counts = [row[4] for row in result.rows]
        assert max(gpd_counts) - min(gpd_counts) >= 10
        assert max(lpd_counts) - min(lpd_counts) <= 10


class TestRunner:
    def test_registry_covers_all_data_figures(self):
        expected = {f"fig{n:02d}" for n in
                    (2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 14, 15, 16, 17)}
        expected |= {"zoo", "ivalsize", "faultsweep", "fleet", "chaos",
                     "cpd", "realtrace"}
        assert set(EXPERIMENTS) == expected

    def test_all_runs_only_the_figures(self):
        from repro.experiments.runner import DEFAULT_SET

        assert all(eid.startswith("fig") for eid in DEFAULT_SET)
        assert len(DEFAULT_SET) == 15

    def test_run_experiment_unknown_id(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("fig99", SMALL)

    def test_run_experiment_dispatch(self):
        result = run_experiment("fig08", SMALL)
        assert result.experiment_id == "fig08"

    def test_main_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig03" in out and "fig17" in out

    def test_main_runs_one(self, capsys):
        assert main(["fig08", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Pearson" in out

    def test_result_to_table(self):
        result = fig08_pearson_properties.run()
        table = result.to_table()
        assert "[fig08]" in table
        assert "note:" in table


class TestMainTrace:
    def test_trace_flag_writes_a_valid_trace(self, tmp_path, capsys):
        from repro.telemetry.bus import get_bus
        from repro.telemetry.trace import validate_trace

        path = tmp_path / "run.jsonl"
        assert main(["fig08", "--scale", "0.05", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"trace: {path}" in out
        assert validate_trace(path) == []
        # The sink was detached again: the global bus is back to its
        # zero-overhead default.
        assert not get_bus().enabled

    def test_failed_figure_leaves_a_valid_partial_trace(
            self, tmp_path, capsys, monkeypatch):
        from repro.experiments import runner
        from repro.telemetry.trace import validate_trace

        def boom(config):
            raise RuntimeError("mid-figure crash")

        monkeypatch.setitem(runner.EXPERIMENTS, "fig08", boom)
        path = tmp_path / "partial.jsonl"
        assert main(["fig08", "--scale", "0.05",
                     "--trace", str(path)]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err
        # The failure summary flushed and closed the sink: whatever
        # made it to disk is a well-formed trace prefix.
        assert validate_trace(path) == []
