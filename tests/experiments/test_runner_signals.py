"""Graceful shutdown of the experiments runner on SIGTERM/SIGINT."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments import runner

REPO_ROOT = __import__("pathlib").Path(__file__).resolve().parents[2]


class TestInProcess:
    """Interrupts reach the loop as _GracefulExit / KeyboardInterrupt."""

    @pytest.fixture
    def fake_experiments(self, monkeypatch):
        calls = []

        def register(experiment_id, fn):
            monkeypatch.setitem(runner.EXPERIMENTS, experiment_id, fn)
            monkeypatch.setitem(runner.TITLES, experiment_id,
                                experiment_id)

        def interrupted(config):
            calls.append("interrupted")
            raise KeyboardInterrupt

        def failing(config):
            calls.append("failing")
            raise ValueError("real failure")

        register("fakeint", interrupted)
        register("fakefail", failing)
        return calls

    def test_interrupt_alone_exits_zero(self, fake_experiments, capsys):
        assert runner.main(["fakeint"]) == 0
        assert "interrupted" in capsys.readouterr().err

    def test_interrupt_skips_the_remaining_figures(self, fake_experiments):
        assert runner.main(["fakeint", "fakefail"]) == 0
        assert fake_experiments == ["interrupted"]

    def test_real_failure_before_interrupt_still_fails(
            self, fake_experiments):
        assert runner.main(["fakefail", "fakeint"]) == 1

    def test_interrupt_flushes_the_trace(self, fake_experiments, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert runner.main(["fakeint", "--trace", str(trace)]) == 0
        lines = trace.read_text().splitlines()
        assert len(lines) >= 1  # at least the header survived the stop
        for line in lines:
            json.loads(line)  # every surviving line is complete JSON

    def test_handlers_are_restored_after_main(self, fake_experiments):
        before = (signal.getsignal(signal.SIGTERM),
                  signal.getsignal(signal.SIGINT))
        runner.main(["fakeint"])
        after = (signal.getsignal(signal.SIGTERM),
                 signal.getsignal(signal.SIGINT))
        assert after == before


def test_sigterm_mid_run_exits_zero_with_valid_trace(tmp_path):
    """End to end: a SIGTERM'd runner leaves a valid trace and exits 0."""
    trace = tmp_path / "trace.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.runner",
         "fig03", "fig04", "fig08", "--scale", "0.05",
         "--trace", str(trace)],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        deadline = time.monotonic() + 60.0
        # Wait until the run is demonstrably inside the figure loop
        # (the trace header is written once tracing is attached).
        while time.monotonic() < deadline and (
                not trace.exists() or trace.stat().st_size == 0):
            time.sleep(0.05)
            if process.poll() is not None:
                break
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=120)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 0, stderr
    # Finished before the signal landed, or reported the interruption —
    # either way the trace must be a valid JSONL prefix.
    for line in trace.read_text().splitlines():
        json.loads(line)
    assert "trace:" in stdout
