"""Tests for the simulation cache and the parallel warm-up runner."""

import pytest

from repro.experiments import cache as cache_module
from repro.experiments import fig03_gpd_phase_changes
from repro.experiments.base import benchmark_for, gpd_run, monitored_run
from repro.experiments.cache import (GpdKey, SimulationCache, StreamKey,
                                     WarmTask, cache_disabled, get_cache)
from repro.experiments.config import GPD_PERIODS, ExperimentConfig
from repro.experiments.runner import (collect_warm_tasks, main,
                                      warm_cache_parallel)
from repro.program.spec2000 import FIG3_BENCHMARKS, FIG13_BENCHMARKS

SMALL = ExperimentConfig(scale=0.05, seed=7)
PAIR = ("181.mcf", "171.swim")


@pytest.fixture(autouse=True)
def _fresh_cache():
    get_cache().clear()
    yield
    get_cache().clear()


class TestSimulationCache:
    def test_memoizes_and_counts(self):
        cache = SimulationCache()
        calls = []
        key = StreamKey("181.mcf", 1.0, 45_000, 7)
        first = cache.stream(key, lambda: calls.append(1) or "stream")
        second = cache.stream(key, lambda: calls.append(1) or "other")
        assert first == second == "stream"
        assert calls == [1]
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.streams) == (1, 1, 1)

    def test_distinct_keys_do_not_collide(self):
        cache = SimulationCache()
        a = cache.stream(StreamKey("181.mcf", 1.0, 45_000, 7), lambda: "a")
        b = cache.stream(StreamKey("181.mcf", 1.0, 45_000, 8), lambda: "b")
        assert (a, b) == ("a", "b")

    def test_lru_eviction(self):
        cache = SimulationCache(max_entries=2)
        keys = [StreamKey("x", 1.0, period, 7) for period in (1, 2, 3)]
        for key in keys:
            cache.stream(key, lambda k=key: k.period)
        # Oldest entry evicted: recomputation happens.
        calls = []
        cache.stream(keys[0], lambda: calls.append(1) or 1)
        assert calls == [1]

    def test_disabled_bypasses_store(self):
        cache = SimulationCache()
        cache.enabled = False
        key = StreamKey("x", 1.0, 1, 7)
        calls = []
        for _ in range(2):
            cache.stream(key, lambda: calls.append(1) or "v")
        assert len(calls) == 2
        assert cache.stats().streams == 0

    def test_put_then_hit(self):
        cache = SimulationCache()
        key = GpdKey("x", 1.0, 1, 7, 256)
        cache.put_detector(key, "injected")
        assert cache.detector(key, lambda: "computed") == "injected"

    def test_clear_resets_everything(self):
        cache = SimulationCache()
        cache.stream(StreamKey("x", 1.0, 1, 7), lambda: "v")
        cache.clear()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.streams) == (0, 0, 0)

    def test_stats_renders(self):
        text = str(SimulationCache().stats())
        assert "hits" in text and "streams" in text

    def test_cache_disabled_context_restores(self):
        store = get_cache()
        assert store.enabled
        with cache_disabled():
            assert not store.enabled
        assert store.enabled


class TestCachedHelpers:
    def test_monitored_run_reuses_stream_and_monitor(self):
        model = benchmark_for("181.mcf", SMALL)
        first = monitored_run(model, 45_000, SMALL)
        again = monitored_run(model, 45_000, SMALL)
        assert again is first

    def test_gpd_and_monitor_share_one_stream(self):
        model = benchmark_for("181.mcf", SMALL)
        gpd_run(model, 45_000, SMALL)
        monitored_run(model, 45_000, SMALL)
        assert get_cache().stats().streams == 1


class TestWarmTaskCollection:
    def test_fig03_fig04_share_their_tasks(self):
        tasks = collect_warm_tasks(["fig03", "fig04"], SMALL)
        assert len(tasks) == len(set(tasks))
        assert len(tasks) == len(FIG3_BENCHMARKS) * len(GPD_PERIODS)
        assert all(task.kind == "gpd" for task in tasks)

    def test_fig13_fig14_share_their_tasks(self):
        tasks = collect_warm_tasks(["fig13", "fig14"], SMALL)
        assert len(tasks) == len(FIG13_BENCHMARKS) * len(GPD_PERIODS)
        assert all(task.kind == "monitor" for task in tasks)

    def test_figures_without_warm_targets(self):
        assert collect_warm_tasks(["fig08"], SMALL) == []


class TestParallelWarm:
    def test_seeds_cache_with_worker_results(self):
        tasks = [WarmTask("gpd", name, 45_000) for name in PAIR]
        assert warm_cache_parallel(tasks, SMALL, jobs=2) == 2
        stats = get_cache().stats()
        assert stats.streams == 2 and stats.detectors == 2
        # The figure phase is now pure lookups.
        for name in PAIR:
            gpd_run(benchmark_for(name, SMALL), 45_000, SMALL)
        after = get_cache().stats()
        assert after.misses == 0 and after.hits >= 2

    def test_parallel_rows_match_serial(self):
        tasks = [task for task in collect_warm_tasks(["fig03"], SMALL)
                 if task.benchmark in PAIR]
        warm_cache_parallel(tasks, SMALL, jobs=2)
        parallel_rows = fig03_gpd_phase_changes.run(
            SMALL, benchmarks=PAIR).rows
        with cache_disabled():
            serial_rows = fig03_gpd_phase_changes.run(
                SMALL, benchmarks=PAIR).rows
        assert parallel_rows == serial_rows

    def test_empty_task_list(self):
        assert warm_cache_parallel([], SMALL, jobs=4) == 0


class TestRunnerFlags:
    def test_jobs_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig08", "--jobs", "0"])

    def test_no_cache_run(self, capsys):
        try:
            assert main(["fig08", "--no-cache"]) == 0
        finally:
            cache_module.set_enabled(True)
        out = capsys.readouterr().out
        assert "Pearson" in out
        assert "cache:" not in out

    def test_jobs_smoke(self, capsys):
        assert main(["fig08", "--scale", "0.05", "--jobs", "2"]) == 0
        assert "cache:" in capsys.readouterr().out

    def test_profile_prints_table(self, capsys):
        assert main(["fig08", "--scale", "0.05", "--profile"]) == 0
        assert "cumulative" in capsys.readouterr().out
