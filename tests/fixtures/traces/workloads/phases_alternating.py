"""Fixture workload: A/B/A/B alternation between two behaviors.

The recurring-phase shape (the paper's facerec pattern): JSON work and
dict churn alternate twice, so detectors should report phase changes
at every switch and a recurring structure across the run.
"""

import json
import random

JSON_ROUNDS = 800
CHURN_ROUNDS = 220

rng = random.Random(7)


def phase_json(rounds: int) -> int:
    doc = {"grid": [[rng.random() for _ in range(24)]
                    for _ in range(24)]}
    total = 0
    for _ in range(rounds):
        total += len(json.loads(json.dumps(doc))["grid"])
    return total


def phase_churn(rounds: int) -> int:
    total = 0
    for r in range(rounds):
        table = {i: [i] * 6 for i in range(9000)}
        for i in range(0, 9000, 2):
            del table[i]
        total += len(table) + r
    return total


def main() -> None:
    total = 0
    for _ in range(2):
        total += phase_json(JSON_ROUNDS)
        total += phase_churn(CHURN_ROUNDS)
    print(f"phases done: {total}")


if __name__ == "__main__":
    main()
