"""Fixture workload: three distinct phases of real stdlib work.

Phase 1 serializes/deserializes nested JSON, phase 2 runs regex scans
over generated text, phase 3 sorts shuffled lists.  Iteration counts
are fixed so the recorded command fully determines the work; only the
wall-clock timing (what the sampler measures) varies run to run.
"""

import json
import random
import re

JSON_ROUNDS = 900
REGEX_ROUNDS = 700
SORT_ROUNDS = 450

rng = random.Random(1234)


def phase_json(rounds: int) -> int:
    doc = {"users": [{"id": i, "tags": [f"t{j}" for j in range(8)],
                      "meta": {"score": i * 0.5, "ok": i % 3 == 0}}
                     for i in range(60)]}
    total = 0
    for _ in range(rounds):
        text = json.dumps(doc, sort_keys=True)
        total += len(json.loads(text)["users"])
    return total


def phase_regex(rounds: int) -> int:
    words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
    text = " ".join(rng.choice(words) + str(rng.randrange(1000))
                    for _ in range(4000))
    pattern = re.compile(r"(alpha|gamma)(\d+)")
    total = 0
    for _ in range(rounds):
        total += sum(int(m.group(2)) for m in pattern.finditer(text))
    return total


def phase_sort(rounds: int) -> int:
    base = [rng.random() for _ in range(9000)]
    total = 0
    for _ in range(rounds):
        data = base[:]
        rng.shuffle(data)
        data.sort()
        total += int(data[0] * 1e6)
    return total


def main() -> None:
    a = phase_json(JSON_ROUNDS)
    b = phase_regex(REGEX_ROUNDS)
    c = phase_sort(SORT_ROUNDS)
    print(f"phases done: {a} {b} {c}")


if __name__ == "__main__":
    main()
