"""Fixture workload: compression phase then hashing phase.

Both phases spend most of their time in C extension calls, so the
sampler sees the *call sites* — a realistic profile shape for glue
code driving native kernels.
"""

import hashlib
import random
import zlib

COMPRESS_ROUNDS = 550
HASH_ROUNDS = 1100

rng = random.Random(99)
PAYLOAD = bytes(rng.randrange(64) for _ in range(120_000))


def phase_compress(rounds: int) -> int:
    total = 0
    for level in range(rounds):
        total += len(zlib.compress(PAYLOAD, 6))
    return total


def phase_hash(rounds: int) -> int:
    digest = b""
    for _ in range(rounds):
        digest = hashlib.sha256(PAYLOAD + digest).digest()
    return digest[0]


def main() -> None:
    a = phase_compress(COMPRESS_ROUNDS)
    b = phase_hash(HASH_ROUNDS)
    print(f"phases done: {a} {b}")


if __name__ == "__main__":
    main()
