"""Fixture workload: deep recursion phase then dict-churn phase.

Phase 1 is pure-Python recursive Fibonacci (one hot code object);
phase 2 builds and evicts dictionaries (allocator/hashtable heavy) —
two sharply different interpreter behaviors back to back.
"""

FIB_ROUNDS = 220
DICT_ROUNDS = 900


def fib(n: int) -> int:
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)


def phase_fib(rounds: int) -> int:
    total = 0
    for _ in range(rounds):
        total += fib(21)
    return total


def phase_dict(rounds: int) -> int:
    total = 0
    for r in range(rounds):
        table = {}
        for i in range(12_000):
            table[(i * 2654435761) & 0xFFFF] = i
        for key in list(table):
            if key % 3 == 0:
                del table[key]
        total += len(table) + r
    return total


def main() -> None:
    a = phase_fib(FIB_ROUNDS)
    b = phase_dict(DICT_ROUNDS)
    print(f"phases done: {a} {b}")


if __name__ == "__main__":
    main()
