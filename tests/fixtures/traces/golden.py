"""Golden-trace builders: the pinned telemetry streams of two runs.

A golden trace is a schema-versioned JSONL file capturing every
telemetry event of one deterministic pipeline run.  The replay test
(``tests/telemetry/test_golden_traces.py``) re-runs each builder and
asserts the regenerated file is *byte-identical* to the committed
fixture — any change to event ordering, event payloads, pipeline
numerics or the trace schema shows up as a diff on a reviewable text
file instead of a silent behavior change.

To regenerate after an intentional change::

    python scripts/regen_golden_traces.py

Both builders force ``cache_disabled()`` so a warm experiment cache can
never swallow the run (a cache hit would emit nothing), and both route
telemetry through a private bus so unrelated process-wide sinks cannot
leak records into the fixture.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.base import benchmark_for, gpd_run, monitored_run
from repro.experiments.cache import cache_disabled
from repro.experiments.config import ExperimentConfig
from repro.faults.model import FaultPlan, SampleDrop
from repro.telemetry.bus import EventBus
from repro.telemetry.sinks import JsonlTraceSink

__all__ = ["GOLDEN_TRACES", "TRACE_DIR", "write_golden_trace"]

#: Directory the committed fixtures live in.
TRACE_DIR = Path(__file__).resolve().parent

#: Shared run configuration (small scale keeps the fixtures reviewable).
CONFIG = ExperimentConfig(scale=0.05, seed=7)
PERIOD = 45_000
BENCHMARK = "181.mcf"

#: The faultsweep rung pinned by the second fixture (its ``drop20`` plan).
DROP20 = FaultPlan((SampleDrop(rate=0.20, burst_mean=4.0),))


def _fig13_style_run(bus: EventBus) -> None:
    """A fig13-style monitored run: 181.mcf regions at the 45k period."""
    model = benchmark_for(BENCHMARK, CONFIG)
    with cache_disabled():
        monitored_run(model, PERIOD, CONFIG, telemetry=bus)


def _faultsweep_drop20_run(bus: EventBus) -> None:
    """One faultsweep rung: GPD + monitor behind the drop20 plan."""
    model = benchmark_for(BENCHMARK, CONFIG)
    with cache_disabled():
        gpd_run(model, PERIOD, CONFIG, plan=DROP20, telemetry=bus)
        monitored_run(model, PERIOD, CONFIG, plan=DROP20, telemetry=bus)


#: Fixture file name -> builder.  Adding a pinned run = adding an entry
#: here and committing the regenerated file.
GOLDEN_TRACES = {
    "fig13_mcf_45k.jsonl": _fig13_style_run,
    "faultsweep_mcf_drop20.jsonl": _faultsweep_drop20_run,
}


def write_golden_trace(name: str, directory: Path | str = TRACE_DIR) -> Path:
    """Run one builder and write its trace; returns the file path."""
    builder = GOLDEN_TRACES[name]
    path = Path(directory) / name
    bus = EventBus()
    sink = JsonlTraceSink(path)
    bus.attach(sink)
    try:
        builder(bus)
    finally:
        sink.close()
    return path
