"""Integration tests for the RTO policy simulation."""

import pytest

from repro.errors import ConfigError
from repro.optimizer import RtoConfig, RTOSystem, compare_policies
from repro.program.behavior import RegionSpec, bottleneck_profile
from repro.program.binary import BinaryBuilder, loop, straight
from repro.program.spec2000 import INTERVAL_45K
from repro.program.workload import Periodic, Steady, WorkloadScript, mixture

BUFFER = 2032


def build_system():
    """Two hot loops far apart; loop 'a' has real optimization potential."""
    builder = BinaryBuilder(base=0x10000)
    builder.procedure("p_a", [loop("a", body=28)], at=0x20000)
    builder.procedure("p_b", [loop("b", body=44)], at=0x90000)
    builder.procedure("cold", [straight(32)], at=0x16000)
    binary = builder.build()
    regions = {
        "a": RegionSpec("a", *binary.loop_span("a"),
                        profiles={"main": bottleneck_profile(32, {9: 200.0})},
                        dpi=0.10, opt_potential=0.30),
        "b": RegionSpec("b", *binary.loop_span("b"),
                        profiles={"main": bottleneck_profile(48, {20: 150.0})},
                        dpi=0.02, opt_potential=0.10),
        "cold_code": RegionSpec("cold_code", binary.procedure("cold").start,
                                binary.procedure("cold").end, is_loop=False),
    }
    return binary, regions


def steady_workload(intervals=40):
    return WorkloadScript([Steady(
        intervals * INTERVAL_45K,
        mixture(("a", 0.55), ("b", 0.35), ("cold_code", 0.10)))])


def flapping_workload(intervals=60):
    mix_a = mixture(("a", 0.70), ("b", 0.20), ("cold_code", 0.10))
    mix_b = mixture(("a", 0.20), ("b", 0.70), ("cold_code", 0.10))
    return WorkloadScript([Periodic(
        intervals * INTERVAL_45K, (mix_a, mix_b),
        switch_period=12 * INTERVAL_45K)])


class TestPolicies:
    def test_orig_deploys_on_stable_workload(self):
        binary, regions = build_system()
        system = RTOSystem(binary, regions, steady_workload(), 45_000,
                           RtoConfig(policy="orig"), seed=3)
        result = system.run()
        assert result.policy == "orig"
        assert result.n_deployments >= 2  # both hot loops
        assert result.timing.saved_cycles > 0
        assert result.stable_fraction > 0.7
        assert result.total_cycles < result.timing.base_cycles

    def test_lpd_deploys_on_stable_workload(self):
        binary, regions = build_system()
        system = RTOSystem(binary, regions, steady_workload(), 45_000,
                           RtoConfig(policy="lpd"), seed=3)
        result = system.run()
        assert result.policy == "lpd"
        assert result.n_deployments >= 2
        assert result.timing.saved_cycles > 0

    def test_flapping_workload_starves_orig_not_lpd(self):
        # The paper's core result in miniature: global flapping unpatches
        # ORIG's traces while LPD's regions remain locally stable.
        binary, regions = build_system()
        orig, lpd, speedup = compare_policies(
            binary, regions, flapping_workload(), 45_000, seed=3)
        assert orig.n_unpatches > 0
        assert lpd.stable_fraction > orig.stable_fraction
        assert speedup > 0.0

    def test_same_stream_used_for_fair_comparison(self):
        binary, regions = build_system()
        orig, lpd, _ = compare_policies(binary, regions,
                                        steady_workload(), 45_000, seed=3)
        assert orig.timing.base_cycles == lpd.timing.base_cycles

    def test_detector_overhead_charging(self):
        binary, regions = build_system()
        workload = steady_workload()
        free = RTOSystem(binary, regions, workload, 45_000,
                         RtoConfig(policy="lpd"), seed=3).run()
        charged = RTOSystem(
            binary, regions, workload, 45_000,
            RtoConfig(policy="lpd", charge_detector_overhead=True),
            seed=3).run()
        assert charged.timing.detector_overhead_cycles > 0
        assert free.timing.detector_overhead_cycles == 0
        assert charged.total_cycles > free.total_cycles

    def test_non_loop_regions_never_optimized(self):
        binary, regions = build_system()
        result = RTOSystem(binary, regions, steady_workload(), 45_000,
                           RtoConfig(policy="orig"), seed=3).run()
        # Only two loop candidates exist.
        assert result.n_deployments <= 2

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            RtoConfig(policy="magic")
        with pytest.raises(ConfigError):
            RtoConfig(hot_share=0.0)
        with pytest.raises(ConfigError):
            RtoConfig(deploy_cost=-1)


class TestSelfMonitoring:
    def build_harmful_system(self):
        """Loop 'a' has a *negative* optimization potential: the deployed
        prefetch hurts, and only self-monitoring can catch it."""
        binary, regions = build_system()
        spec = regions["a"]
        regions["a"] = RegionSpec(
            "a", spec.start, spec.end,
            profiles={"main": spec.profile().copy()},
            dpi=0.10, opt_potential=-0.20)
        return binary, regions

    def test_harmful_optimization_undone(self):
        binary, regions = self.build_harmful_system()
        config = RtoConfig(policy="lpd", self_monitoring=True)
        result = RTOSystem(binary, regions, steady_workload(60), 45_000,
                           config, seed=3).run()
        assert result.n_undone >= 1

    def test_without_self_monitoring_harm_persists(self):
        binary, regions = self.build_harmful_system()
        with_sm = RTOSystem(binary, regions, steady_workload(60), 45_000,
                            RtoConfig(policy="lpd", self_monitoring=True),
                            seed=3).run()
        without_sm = RTOSystem(binary, regions, steady_workload(60),
                               45_000, RtoConfig(policy="lpd"),
                               seed=3).run()
        assert without_sm.n_undone == 0
        # Undoing the harmful optimization must not run slower.
        assert with_sm.total_cycles <= without_sm.total_cycles

    def test_beneficial_optimizations_not_undone(self):
        binary, regions = build_system()
        config = RtoConfig(policy="lpd", self_monitoring=True)
        result = RTOSystem(binary, regions, steady_workload(60), 45_000,
                           config, seed=3).run()
        assert result.n_undone == 0
        assert result.timing.saved_cycles > 0
