"""Unit tests for trace bookkeeping and the timing model."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.optimizer.optimization import Optimization, OptimizationKind
from repro.optimizer.timing import RtoTiming, TimingModel
from repro.optimizer.traces import TraceAction, TraceCache
from repro.program.workload import Steady, WorkloadScript, mixture


class TestOptimization:
    def test_gain_bounds(self):
        Optimization("r", 0.3)
        Optimization("r", -0.2)
        with pytest.raises(ConfigError):
            Optimization("r", 1.0)
        with pytest.raises(ConfigError):
            Optimization("r", 0.1, deploy_cost=-1)

    def test_observed_dpi(self):
        helpful = Optimization("r", 0.25)
        harmful = Optimization("r", -0.25)
        assert helpful.observed_dpi(0.10) == pytest.approx(0.05)
        assert harmful.observed_dpi(0.10) == pytest.approx(0.15)
        # Never negative even for huge gains.
        assert Optimization("r", 0.9).observed_dpi(0.1) == 0.0

    def test_kind_default(self):
        assert Optimization("r", 0.1).kind is OptimizationKind.PREFETCH


class TestTraceCache:
    def test_deploy_unpatch_cycle(self):
        cache = TraceCache()
        assert cache.deploy("a", 3)
        assert cache.is_deployed("a")
        assert not cache.deploy("a", 4)  # idempotent
        assert cache.unpatch("a", 7)
        assert not cache.is_deployed("a")
        assert not cache.unpatch("a", 8)
        assert cache.n_deployments == 1
        assert cache.n_unpatches == 1

    def test_unpatch_all(self):
        cache = TraceCache()
        cache.deploy("a", 0)
        cache.deploy("b", 1)
        assert cache.unpatch_all(5) == 2
        assert not cache.is_deployed("a")
        actions = [e.action for e in cache.events]
        assert actions.count(TraceAction.UNPATCH) == 2

    def test_activity_matrix_latency(self):
        cache = TraceCache()
        cache.deploy("a", 2)
        cache.unpatch("a", 5)
        matrix = cache.active_matrix(8, ["a"])
        # Effective from interval 3 through 5 inclusive.
        assert matrix[:, 0].tolist() == [False, False, False, True, True,
                                         True, False, False]

    def test_activity_matrix_still_deployed(self):
        cache = TraceCache()
        cache.deploy("a", 0)
        matrix = cache.active_matrix(4, ["a"])
        assert matrix[:, 0].tolist() == [False, True, True, True]

    def test_redeploy_after_unpatch(self):
        cache = TraceCache()
        cache.deploy("a", 0)
        cache.unpatch("a", 2)
        cache.deploy("a", 4)
        matrix = cache.active_matrix(7, ["a"])
        assert matrix[:, 0].tolist() == [False, True, True, False, False,
                                         True, True]

    def test_unknown_region_ignored_in_matrix(self):
        cache = TraceCache()
        cache.deploy("ghost", 0)
        matrix = cache.active_matrix(3, ["a"])
        assert not matrix.any()

    def test_negative_intervals_rejected(self):
        with pytest.raises(ConfigError):
            TraceCache().active_matrix(-1, ["a"])


class TestTimingModel:
    def model(self):
        script = WorkloadScript([
            Steady(1000, mixture(("a", 0.6), ("b", 0.4))),
        ])
        return TimingModel(script.compile(), script.total_cycles,
                           interval_cycles=100, n_intervals=10,
                           region_order=["a", "b"])

    def test_cycles_matrix(self):
        model = self.model()
        assert model.cycles_matrix.shape == (10, 2)
        assert model.cycles_matrix.sum() == pytest.approx(1000.0)
        assert model.cycles_matrix[0, 0] == pytest.approx(60.0)

    def test_evaluate_savings(self):
        model = self.model()
        active = np.ones((10, 2), dtype=bool)
        timing = model.evaluate(active, {"a": 0.5}, n_deployments=2,
                                deploy_cost=10)
        # Region a executes 600 cycles; half saved.
        assert timing.saved_cycles == pytest.approx(300.0)
        assert timing.deploy_overhead_cycles == 20.0
        assert timing.total_cycles == pytest.approx(1000 - 300 + 20)

    def test_partial_activity(self):
        model = self.model()
        active = np.zeros((10, 2), dtype=bool)
        active[5:, 0] = True
        timing = model.evaluate(active, {"a": 0.5, "b": 0.9},
                                n_deployments=1, deploy_cost=0)
        assert timing.saved_cycles == pytest.approx(0.5 * 60 * 5)

    def test_shape_mismatch_rejected(self):
        model = self.model()
        with pytest.raises(ConfigError):
            model.evaluate(np.ones((9, 2), dtype=bool), {}, 0, 0)

    def test_speedups(self):
        fast = RtoTiming(base_cycles=1000, saved_cycles=200,
                         deploy_overhead_cycles=0)
        slow = RtoTiming(base_cycles=1000, saved_cycles=0,
                         deploy_overhead_cycles=0)
        assert fast.speedup_vs(slow) == pytest.approx(0.25)
        assert slow.speedup_vs(fast) == pytest.approx(-0.2)
        assert fast.speedup_vs_baseline() == pytest.approx(0.25)

    def test_detector_overhead_included(self):
        timing = RtoTiming(base_cycles=1000, saved_cycles=100,
                           deploy_overhead_cycles=10,
                           detector_overhead_cycles=5)
        assert timing.total_cycles == pytest.approx(915.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            TimingModel([], 0, interval_cycles=0, n_intervals=1,
                        region_order=[])
