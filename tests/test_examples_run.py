"""Every shipped example must run to completion (small scales)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: (script, argv) — arguments pick small scales where supported.
EXAMPLES = [
    ("quickstart.py", []),
    ("mcf_phase_analysis.py", ["0.1"]),
    ("sampling_sensitivity.py", ["187.facerec", "0.1"]),
    ("optimizer_comparison.py", ["172.mgrid", "0.1"]),
    ("custom_benchmark.py", []),
    ("performance_channels.py", []),
    ("phase_prediction.py", ["187.facerec", "0.1"]),
]


@pytest.mark.parametrize("script,argv", EXAMPLES,
                         ids=[name for name, _ in EXAMPLES])
def test_example_runs(script, argv):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path), *argv],
        capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr[-2000:]
    # Every example prints a substantive report, not just a banner.
    assert len(completed.stdout) > 300, completed.stdout


def test_examples_directory_is_covered():
    shipped = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    tested = {name for name, _ in EXAMPLES}
    assert shipped == tested, (
        f"examples and test list out of sync: {shipped ^ tested}")
