"""Property-based tests on the phase-detection core (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.centroid import BandOfStability, CentroidHistory
from repro.core.correlation import pearson_r, pearson_r_pure
from repro.core.gpd import GlobalPhaseDetector
from repro.core.histogram import RegionHistogram
from repro.core.lpd import LocalPhaseDetector
from repro.core.similarity import (CosineSimilarity, ManhattanOverlap,
                                   PearsonSimilarity, TopKJaccard)
from repro.core.states import is_stable_state

count_vectors = st.lists(st.integers(min_value=0, max_value=10_000),
                         min_size=2, max_size=64)


def paired_vectors():
    return st.integers(min_value=2, max_value=64).flatmap(
        lambda n: st.tuples(
            st.lists(st.integers(0, 10_000), min_size=n, max_size=n),
            st.lists(st.integers(0, 10_000), min_size=n, max_size=n)))


class TestPearsonProperties:
    @given(paired_vectors())
    def test_bounded_and_symmetric(self, pair):
        x, y = pair
        r = pearson_r(x, y)
        assert -1.0 <= r <= 1.0
        assert r == pearson_r(y, x)

    @given(count_vectors)
    def test_self_correlation_is_one(self, x):
        assert pearson_r(x, x) == 1.0

    @given(count_vectors, st.floats(min_value=0.01, max_value=1000.0))
    def test_scale_invariance(self, x, factor):
        scaled = [v * factor for v in x]
        assert abs(pearson_r(x, scaled) - 1.0) < 1e-9

    @given(paired_vectors(), st.integers(0, 10_000))
    def test_translation_invariance(self, pair, offset):
        x, y = pair
        shifted = [v + offset for v in x]
        assert abs(pearson_r(shifted, y) - pearson_r(x, y)) < 1e-6

    @given(paired_vectors())
    @settings(max_examples=50)
    def test_pure_matches_vectorized(self, pair):
        x, y = pair
        assert abs(pearson_r_pure(x, y) - pearson_r(x, y)) < 1e-9


class TestSimilarityMeasureProperties:
    measures = [PearsonSimilarity(), CosineSimilarity(),
                ManhattanOverlap(), TopKJaccard(4)]

    @given(paired_vectors())
    @settings(max_examples=40)
    def test_all_measures_bounded_and_symmetric(self, pair):
        x = np.asarray(pair[0], dtype=float)
        y = np.asarray(pair[1], dtype=float)
        for measure in self.measures:
            score = measure(x, y)
            assert -1.0 <= score <= 1.0 + 1e-12, measure.name
            assert abs(score - measure(y, x)) < 1e-9, measure.name

    @given(count_vectors, st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=40)
    def test_all_measures_scale_invariant(self, x, factor):
        a = np.asarray(x, dtype=float)
        for measure in self.measures:
            assert measure(a, factor * a) > 1.0 - 1e-6, measure.name


class TestBandProperties:
    @given(st.lists(st.floats(min_value=1.0, max_value=1e9,
                              allow_nan=False), min_size=2, max_size=32),
           st.floats(min_value=0.0, max_value=2e9, allow_nan=False))
    def test_drift_non_negative_and_zero_inside(self, values, probe):
        history = CentroidHistory(32)
        history.extend(values)
        band = history.band()
        drift = band.drift(probe)
        assert drift >= 0.0
        if band.lower <= probe <= band.upper:
            assert drift == 0.0
        else:
            assert drift > 0.0

    @given(st.floats(min_value=1.0, max_value=1e9),
           st.floats(min_value=0.0, max_value=1e9))
    def test_band_bounds_ordered(self, expectation, sd):
        band = BandOfStability(expectation, sd)
        assert band.lower <= band.upper


class TestDetectorInvariants:
    @given(st.lists(st.floats(min_value=1e3, max_value=1e7,
                              allow_nan=False), min_size=1, max_size=100))
    @settings(max_examples=40)
    def test_gpd_event_log_alternates(self, centroids):
        detector = GlobalPhaseDetector()
        for value in centroids:
            detector.observe_centroid(value)
        kinds = [e.kind.value for e in detector.events]
        # Events must strictly alternate stable/unstable, starting stable.
        for index, kind in enumerate(kinds):
            expected = ("became_stable" if index % 2 == 0
                        else "became_unstable")
            assert kind == expected
        assert len(detector.observations) == len(centroids)

    @given(st.lists(st.one_of(
        st.none(),
        st.lists(st.integers(0, 500), min_size=8, max_size=8)),
        min_size=0, max_size=60))
    @settings(max_examples=40)
    def test_lpd_event_log_alternates_and_counts(self, histograms):
        detector = LocalPhaseDetector(n_instructions=8)
        for index, counts in enumerate(histograms):
            vector = None if counts is None else np.asarray(counts, float)
            detector.observe(vector, index)
        kinds = [e.kind.value for e in detector.events]
        for index, kind in enumerate(kinds):
            expected = ("became_stable" if index % 2 == 0
                        else "became_unstable")
            assert kind == expected
        assert detector.stable_intervals <= detector.active_intervals
        assert is_stable_state(detector.state) == detector.in_stable_phase
        assert 0.0 <= detector.stable_time_fraction() <= 1.0

    @given(st.lists(st.integers(0, 1000), min_size=4, max_size=32))
    @settings(max_examples=40)
    def test_lpd_constant_behavior_never_destabilizes(self, counts):
        vector = np.asarray(counts, dtype=float)
        if vector.sum() == 0:
            return
        detector = LocalPhaseDetector(n_instructions=vector.size)
        for index in range(20):
            detector.observe(vector, index)
        assert detector.phase_change_count() <= 1  # only stabilization


class TestHistogramProperties:
    @given(st.lists(st.integers(0, 63), min_size=0, max_size=500))
    def test_total_equals_samples_added(self, offsets):
        histogram = RegionHistogram(0x1000, 0x1000 + 64 * 4)
        for offset in offsets:
            histogram.add_sample(0x1000 + offset * 4)
        assert histogram.total() == len(offsets)

    @given(st.lists(st.integers(0, 2**20), min_size=0, max_size=300))
    def test_batch_add_counts_inside_only(self, raw):
        pcs = np.asarray([v * 4 for v in raw], dtype=np.int64)
        histogram = RegionHistogram(0x1000, 0x2000)
        inside = histogram.add_pcs(pcs)
        expected = int(((pcs >= 0x1000) & (pcs < 0x2000)).sum())
        assert inside == expected
        assert histogram.total() == expected
