"""Property-based tests over randomly generated programs (hypothesis).

Uses :mod:`repro.program.generator` to build arbitrary valid binaries and
workloads and checks pipeline-level invariants: attribution conserves
samples, the two attribution strategies agree, formation only builds
regions around real loops, and the monitor's accounting stays consistent.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MonitorThresholds
from repro.monitor import RegionMonitor
from repro.program.generator import random_program
from repro.regions.attribution import ListAttributor, TreeAttributor
from repro.regions.region import RegionKind
from repro.regions.registry import RegionRegistry
from repro.sampling import simulate_sampling

seeds = st.integers(min_value=0, max_value=10_000)


def simulate(seed: int, period: int = 25_000):
    program = random_program(seed)
    stream = simulate_sampling(program.regions, program.workload, period,
                               seed=seed)
    return program, stream


class TestSamplingProperties:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_samples_land_in_declared_regions(self, seed):
        program, stream = simulate(seed)
        spans = [(spec.start, spec.end)
                 for spec in program.regions.values()]
        for pc in np.unique(stream.pcs):
            assert any(start <= pc < end for start, end in spans)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_simulation_deterministic(self, seed):
        _, first = simulate(seed)
        _, second = simulate(seed)
        assert np.array_equal(first.pcs, second.pcs)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_sample_count_bounded_by_period(self, seed):
        program, stream = simulate(seed)
        upper = program.workload.total_cycles // stream.sampling_period
        assert 0 <= stream.n_samples <= upper + 1


class TestAttributionProperties:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_strategies_agree_and_conserve(self, seed):
        program, stream = simulate(seed)
        registry = RegionRegistry()
        for spec in program.regions.values():
            if spec.is_loop:
                registry.add(spec.start, spec.end)
        pcs = stream.pcs[:2000]
        if pcs.size == 0:
            return
        list_result = ListAttributor(registry).attribute(pcs)
        tree_result = TreeAttributor(registry).attribute(pcs)
        # Conservation: every sample is attributed or UCR (regions from
        # distinct loop procedures never overlap here).
        attributed = sum(int(v.sum())
                         for v in list_result.region_counts.values())
        assert attributed + list_result.ucr_pcs.size == pcs.size
        # Agreement between strategies.
        assert sorted(list_result.region_counts) == \
            sorted(tree_result.region_counts)
        for rid, counts in list_result.region_counts.items():
            assert np.array_equal(counts, tree_result.region_counts[rid])


class TestMonitorProperties:
    @given(seeds)
    @settings(max_examples=12, deadline=None)
    def test_monitor_invariants(self, seed):
        program, stream = simulate(seed)
        monitor = RegionMonitor(program.binary,
                                MonitorThresholds(buffer_size=256))
        monitor.process_stream(stream)
        # 1. Formed loop regions correspond to real binary loops.
        for region in monitor.all_regions():
            if region.kind is RegionKind.LOOP:
                loop = program.binary.innermost_loop_at(region.start)
                assert loop is not None
        # 2. UCR fractions are valid and the history is complete.
        assert len(monitor.ucr.history) == monitor.intervals_processed
        assert all(0.0 <= f <= 1.0 for f in monitor.ucr.history)
        # 3. Per-region accounting is self-consistent.
        for rid, count in monitor.phase_change_counts().items():
            detector = monitor.detector(rid)
            assert count == len(detector.events)
            assert detector.stable_intervals <= detector.active_intervals
        # 4. The sample matrix matches the reports.
        _regions, matrix = monitor.region_sample_matrix()
        assert matrix.shape[0] == monitor.intervals_processed
        assert int(matrix.sum()) == sum(
            sum(report.region_samples.values())
            for report in monitor.reports)

    @given(seeds)
    @settings(max_examples=12, deadline=None)
    def test_interprocedural_resolves_superset_per_trigger(self, seed):
        """On one identical formation trigger, the inter-procedural rule
        resolves a superset of the loop-only rule's seeds.

        (A whole-run UCR comparison is NOT monotone: resolving more code
        early can drop UCR below the trigger threshold sooner, ending
        formation with some cold loops unformed — a real property of
        threshold-triggered formation.)
        """
        from repro.regions.formation import RegionFormation
        from repro.regions.registry import RegionRegistry

        program, stream = simulate(seed)
        pcs = stream.pcs[:512]
        if pcs.size == 0:
            return
        plain = RegionFormation(program.binary, RegionRegistry())
        interproc = RegionFormation(program.binary, RegionRegistry(),
                                    interprocedural=True)
        plain_outcome = plain.form(pcs)
        interproc_outcome = interproc.form(pcs)
        assert set(interproc_outcome.failed_addresses) \
            <= set(plain_outcome.failed_addresses)
        assert interproc_outcome.seeds_resolved \
            >= plain_outcome.seeds_resolved
