"""Property tests for the change-point-detection subsystem.

Three families of properties:

* *Quiescence + permutation invariance*: a feature stream whose noise
  stays below the ``min_effect`` divergence floor never produces a
  detection — in any observation order.  (The floor makes this exact:
  the permutation test is never even consulted, so there is no
  significance level to be unlucky against.)
* *Detection*: a large injected mean shift is always found — offline at
  the exact index, online within a bounded lag.
* *Result-inertness*: attaching a telemetry sink perturbs no bit of a
  detector trajectory.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpd import (CpdThresholds, CusumDetector, EDivisiveDetector,
                       e_divisive)
from repro.telemetry.bus import EventBus, capture
from repro.telemetry.sinks import InMemorySink

N_BINS = 6

seeds = st.integers(min_value=0, max_value=10_000)

#: A base count pattern: one dominant slot plus background mass.
patterns = st.lists(st.integers(min_value=50, max_value=500),
                    min_size=N_BINS, max_size=N_BINS)


def quiet_stream(pattern, n, seed):
    """n intervals of one pattern with sub-min_effect count jitter."""
    rng = np.random.default_rng(seed)
    base = np.asarray(pattern, dtype=float)
    return [base + rng.integers(0, 2, size=base.size) for _ in range(n)]


class TestQuiescence:
    @given(pattern=patterns, seed=seeds,
           n=st.integers(min_value=12, max_value=48))
    @settings(max_examples=25, deadline=None)
    def test_sub_effect_noise_never_detects(self, pattern, seed, n):
        detector = EDivisiveDetector(N_BINS)
        for index, counts in enumerate(quiet_stream(pattern, n, seed)):
            detector.observe(counts, index)
        assert detector.change_points == []

    @given(pattern=patterns, seed=seeds, perm_seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_quiescence_is_permutation_invariant(self, pattern, seed,
                                                 perm_seed):
        stream = quiet_stream(pattern, 24, seed)
        order = np.random.default_rng(perm_seed).permutation(len(stream))
        detector = EDivisiveDetector(N_BINS)
        for index, position in enumerate(order):
            detector.observe(stream[position], index)
        assert detector.change_points == []


class TestDetection:
    @given(n_before=st.integers(min_value=6, max_value=12),
           n_after=st.integers(min_value=6, max_value=12),
           low=st.floats(min_value=0.0, max_value=5.0),
           gap=st.floats(min_value=1.0, max_value=10.0))
    @settings(max_examples=25, deadline=None)
    def test_offline_step_is_found_at_the_exact_index(self, n_before,
                                                      n_after, low, gap):
        series = [low] * n_before + [low + gap] * n_after
        changes = e_divisive(series, p_threshold=0.05)
        assert [c.index for c in changes] == [n_before]
        assert changes[0].after_mean > changes[0].before_mean

    @given(seed=seeds, boundary=st.integers(min_value=15, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_online_shift_is_found_within_bounded_lag(self, seed, boundary):
        rng = np.random.default_rng(seed)
        a = np.array([300, 100, 10, 0, 0, 0], dtype=float)
        b = np.array([0, 0, 0, 10, 100, 300], dtype=float)
        detector = EDivisiveDetector(N_BINS)
        for index in range(boundary + 20):
            base = a if index < boundary else b
            counts = base + rng.integers(0, 3, size=N_BINS)
            detector.observe(counts, index)
        cpd = detector.cpd
        assert len(detector.change_points) == 1
        assert boundary <= detector.change_points[0] \
            <= boundary + 2 * cpd.min_segment


class TestResultInertness:
    @given(pattern=patterns, seed=seeds,
           boundary=st.integers(min_value=8, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_sink_attachment_changes_no_bit(self, pattern, seed, boundary):
        rng = np.random.default_rng(seed)
        shifted = np.roll(np.asarray(pattern, dtype=float), N_BINS // 2)
        stream = []
        for index in range(boundary + 15):
            base = np.asarray(pattern, dtype=float) \
                if index < boundary else shifted
            stream.append(base + rng.integers(0, 3, size=N_BINS))

        def trajectory(cls, telemetry):
            detector = cls(N_BINS, cpd=CpdThresholds(seed=seed % 100),
                           telemetry=telemetry)
            for index, counts in enumerate(stream):
                detector.observe(counts, index)
            return (detector.change_points, detector.change_scores,
                    [(o.interval_index, o.statistic, o.state)
                     for o in detector.observations],
                    [(e.interval_index, e.kind) for e in detector.events])

        for cls in (EDivisiveDetector, CusumDetector):
            silent = trajectory(cls, EventBus())
            bus = EventBus()
            with capture(InMemorySink(), bus=bus) as sink:
                loud = trajectory(cls, bus)
            assert len(sink.events) > 0
            assert silent == loud
