"""Property-based tests for the fault-injection subsystem (hypothesis).

Pins the injector's contract: a plan is a pure function of
``(stream, plan, seed)``; cycle stamps stay monotone; PCs stay inside
the stream's observed text range unless the plan corrupts bits; and the
empty / all-no-op plan is byte-identical (the same object, even).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (DuplicateSamples, FaultPlan, InterruptStall,
                          PcBitCorruption, PcSkid, PeriodDrift,
                          PeriodJitter, SampleDrop, inject)
from repro.program.behavior import RegionSpec
from repro.program.workload import Steady, WorkloadScript, mixture
from repro.sampling.pmu import simulate_sampling

REGIONS = {
    "a": RegionSpec("a", 0x1000, 0x1200),
    "b": RegionSpec("b", 0x9000, 0x9200),
}
SCRIPT = WorkloadScript([Steady(3_000_000,
                                mixture(("a", 0.5), ("b", 0.5)))])

_STREAM_CACHE: dict[int, object] = {}


def stream_for_seed(seed: int):
    if seed not in _STREAM_CACHE:
        _STREAM_CACHE[seed] = simulate_sampling(REGIONS, SCRIPT, 1000,
                                                seed=seed)
    return _STREAM_CACHE[seed]


rates = st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
positive_rates = st.floats(min_value=0.01, max_value=0.5, allow_nan=False)
seeds = st.integers(min_value=0, max_value=500)


@st.composite
def fault_plans(draw, with_corruption=True):
    """An arbitrary valid plan of 0-4 specs."""
    choices = [
        lambda: SampleDrop(rate=draw(rates),
                           burst_mean=draw(st.floats(1.0, 8.0))),
        lambda: PcSkid(distribution=draw(st.sampled_from(
            ["gaussian", "exponential"])),
            scale=draw(st.floats(0.0, 10.0))),
        lambda: PeriodJitter(fraction=draw(st.floats(0.0, 0.45))),
        lambda: PeriodDrift(rate=draw(st.floats(-0.5, 2.0))),
        lambda: DuplicateSamples(rate=draw(rates)),
        lambda: InterruptStall(rate=draw(rates),
                               max_window=draw(st.integers(2, 6))),
    ]
    if with_corruption:
        choices.append(lambda: PcBitCorruption(
            rate=draw(rates), bit_width=draw(st.integers(1, 30))))
    n_specs = draw(st.integers(min_value=0, max_value=4))
    makers = draw(st.lists(st.sampled_from(choices), min_size=n_specs,
                           max_size=n_specs))
    return FaultPlan(tuple(maker() for maker in makers))


def assert_streams_equal(first, second):
    assert np.array_equal(first.pcs, second.pcs)
    assert np.array_equal(first.cycles, second.cycles)
    assert np.array_equal(first.dcache_miss, second.dcache_miss)
    assert np.array_equal(first.region_ids, second.region_ids)
    if first.instr_delta is None:
        assert second.instr_delta is None
    else:
        assert np.array_equal(first.instr_delta, second.instr_delta)


class TestInjectorDeterminism:
    @given(fault_plans(), seeds)
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_output(self, plan, seed):
        stream = stream_for_seed(0)
        assert_streams_equal(inject(stream, plan, seed=seed),
                             inject(stream, plan, seed=seed))

    @given(fault_plans())
    @settings(max_examples=20, deadline=None)
    def test_token_roundtrip_preserves_output(self, plan):
        stream = stream_for_seed(0)
        rebuilt = FaultPlan.from_token(plan.token())
        assert_streams_equal(inject(stream, plan, seed=3),
                             inject(stream, rebuilt, seed=3))


class TestStreamInvariants:
    @given(fault_plans(), seeds)
    @settings(max_examples=40, deadline=None)
    def test_cycles_stay_monotone(self, plan, seed):
        stream = stream_for_seed(1)
        out = inject(stream, plan, seed=seed)
        assert np.all(np.diff(out.cycles) >= 0)

    @given(fault_plans(with_corruption=False), seeds)
    @settings(max_examples=40, deadline=None)
    def test_pcs_stay_in_text_range_without_corruption(self, plan, seed):
        stream = stream_for_seed(1)
        out = inject(stream, plan, seed=seed)
        assert not plan.allows_corruption
        if out.n_samples:
            assert out.pcs.min() >= stream.pcs.min()
            assert out.pcs.max() <= stream.pcs.max()

    @given(fault_plans(), seeds)
    @settings(max_examples=30, deadline=None)
    def test_arrays_stay_parallel(self, plan, seed):
        stream = stream_for_seed(1)
        out = inject(stream, plan, seed=seed)
        n = out.n_samples
        assert out.cycles.size == n
        assert out.dcache_miss.size == n
        assert out.region_ids.size == n
        if out.instr_delta is not None:
            assert out.instr_delta.size == n


class TestNoOpPlans:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_empty_plan_returns_same_object(self, seed):
        stream = stream_for_seed(2)
        assert inject(stream, FaultPlan(()), seed=seed) is stream

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_zero_rate_plan_returns_same_object(self, seed):
        stream = stream_for_seed(2)
        plan = FaultPlan((SampleDrop(rate=0.0), PcSkid(scale=0.0),
                          PeriodJitter(fraction=0.0),
                          DuplicateSamples(rate=0.0),
                          PcBitCorruption(rate=0.0),
                          InterruptStall(rate=0.0)))
        assert inject(stream, plan, seed=seed) is stream

    @given(fault_plans(), seeds)
    @settings(max_examples=25, deadline=None)
    def test_downstream_pipeline_never_crashes(self, plan, seed):
        # The monitor must degrade through any valid faulted stream.
        from repro.core import MonitorThresholds
        from repro.monitor import RegionMonitor
        from repro.program import BinaryBuilder
        from repro.program.binary import loop

        stream = stream_for_seed(3)
        out = inject(stream, plan, seed=seed)
        builder = BinaryBuilder()
        builder.procedure("a", [loop("la", body=120)], at=0x1000)
        builder.procedure("b", [loop("lb", body=120)], at=0x9000)
        monitor = RegionMonitor(builder.build(),
                                MonitorThresholds(buffer_size=256))
        monitor.process_stream(out)  # must not raise
