"""Property suite: snapshot→restore is bit-identical under churn.

Hypothesis drives a :class:`~repro.serve.worker.ShardWorker` through
generated delivery schedules — ragged batch widths, arbitrary
cross-stream interleavings, duplicated deliveries, a snapshot point
anywhere in the schedule — and asserts that a worker restored from its
snapshot finishes the schedule with exactly the acknowledgements, event
deltas and cursors of an uninterrupted twin.

A separate cross-backend test proves the snapshot *file* is portable
across kernel backends: the restoring process runs with ``REPRO_NO_JIT``
flipped relative to the writer (a real backend switch when Numba is
installed; the backend probe's bit-equality contract is what makes this
sound).
"""

import os
import subprocess
import sys

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import model_stream

from repro.serve import ServeConfig, ShardWorker
from repro.serve.messages import Batch
from repro.serve.snapshot import SnapshotStore

REPO_ROOT = __import__("pathlib").Path(__file__).resolve().parents[2]

STREAMS = ("alpha", "beta")
#: Sample budget per stream: enough intervals that detectors act.
BUDGET = 7 * 2032


def _config():
    model, _ = model_stream("181.mcf")
    return ServeConfig(binary=model.binary, n_shards=1, snapshot_every=3)


def _make_worker(directory, config, subdir):
    store = SnapshotStore(directory / subdir, shard_id=0,
                          keep=config.snapshot_keep)
    return ShardWorker(0, STREAMS, config, store)


def _schedule(cut_points, order, duplicate_at):
    """Build a delivery schedule from the generated raw material."""
    _, stream = model_stream("181.mcf")
    samples = stream.pcs[:BUDGET].astype(np.int64)
    per_stream = {}
    for stream_name, cuts in zip(STREAMS, cut_points):
        bounds = sorted({max(1, int(c * samples.size)) for c in cuts})
        per_stream[stream_name] = [
            np.array(chunk, dtype=np.int64) for chunk in
            np.split(samples, bounds) if chunk.size]
    pending = [(name, i) for name in STREAMS
               for i in range(len(per_stream[name]))]
    # `order` ranks deliveries; per-stream order may invert freely —
    # the worker's stash machinery owes correctness anyway.
    ranked = sorted(zip(order, pending))[:len(pending)]
    deliveries = []
    for seq, (_, (name, i)) in enumerate(ranked):
        deliveries.append(Batch(seq=seq, stream=name, stream_seq=i,
                                samples=per_stream[name][i]))
    if duplicate_at is not None and deliveries:
        repeat = deliveries[duplicate_at % len(deliveries)]
        deliveries.append(Batch(seq=len(deliveries), stream=repeat.stream,
                                stream_seq=repeat.stream_seq,
                                samples=repeat.samples))
    return deliveries


churn = st.tuples(
    st.tuples(
        st.lists(st.floats(0.05, 0.95), min_size=1, max_size=4),
        st.lists(st.floats(0.05, 0.95), min_size=1, max_size=4)),
    st.lists(st.integers(0, 10_000), min_size=12, max_size=12,
             unique=True),
    st.one_of(st.none(), st.integers(0, 11)),
    st.integers(0, 10))


@given(churn)
@settings(max_examples=12, deadline=None)
def test_restored_worker_finishes_bit_identically(tmp_path_factory, data):
    (cut_points, order, duplicate_at, cut) = data
    directory = tmp_path_factory.mktemp("roundtrip")
    config = _config()
    deliveries = _schedule(cut_points, order, duplicate_at)
    split = min(cut, len(deliveries) - 1) + 1 if deliveries else 0

    straight = _make_worker(directory, config, "straight")
    straight_acks = [straight.handle_batch(m) for m in deliveries]

    crashed = _make_worker(directory, config, "crashed")
    for message in deliveries[:split]:
        crashed.handle_batch(message)
    crashed.take_snapshot()
    del crashed

    revived = _make_worker(directory, config, "crashed")
    revived_acks = [revived.handle_batch(m) for m in deliveries[split:]]

    assert revived_acks == straight_acks[split:]
    assert revived.stream_seqs == straight.stream_seqs
    assert revived.cursors == straight.cursors
    # Snapshots strip drained (empty) stash entries; only parked
    # batches are observable state.
    def parked(worker):
        return {stream: {seq: chunk.tobytes()
                         for seq, chunk in entries.items()}
                for stream, entries in worker.stash.items() if entries}

    assert parked(revived) == parked(straight)


def test_snapshot_restores_across_kernel_backends(tmp_path):
    """Write under one backend, restore and continue under the other."""
    config = _config()
    deliveries = _schedule(((0.3, 0.6), (0.5,)), list(range(12)), None)
    split = len(deliveries) // 2

    straight = _make_worker(tmp_path, config, "straight")
    straight_acks = [straight.handle_batch(m) for m in deliveries]
    expected = repr([(a.seq, a.applied) for a in straight_acks[split:]])

    crashed = _make_worker(tmp_path, config, "crashed")
    for message in deliveries[:split]:
        crashed.handle_batch(message)
    crashed.take_snapshot()
    del crashed

    snippet = (
        "import sys\n"
        "import numpy as np\n"
        "from pathlib import Path\n"
        f"sys.path.insert(0, {str(REPO_ROOT)!r})\n"
        "from tests.property.test_snapshot_roundtrip import (\n"
        "    _config, _make_worker, _schedule)\n"
        "directory = Path(sys.argv[1])\n"
        "split = int(sys.argv[2])\n"
        "deliveries = _schedule(((0.3, 0.6), (0.5,)), list(range(12)),\n"
        "                       None)\n"
        "worker = _make_worker(directory, _config(), 'crashed')\n"
        "assert worker.restored_seq == split - 1, worker.restored_seq\n"
        "acks = [worker.handle_batch(m) for m in deliveries[split:]]\n"
        "print(repr([(a.seq, a.applied) for a in acks]))\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    # Flip the kernel backend for the restoring process.  Where Numba
    # is absent both halves run NumPy — the file-format portability is
    # still exercised; CI's kernel-backends matrix makes the flip real.
    flipped = os.environ.get("REPRO_NO_JIT", "") in ("", "0")
    env["REPRO_NO_JIT"] = "1" if flipped else "0"
    result = subprocess.run(
        [sys.executable, "-c", snippet, str(tmp_path), str(split)],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
        timeout=300)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == expected
