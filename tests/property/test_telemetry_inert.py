"""Telemetry is result-inert: instrumented runs are bit-identical.

The subsystem's core contract — and the reason ``telemetry`` may be
exempted from cache keys: attaching any sink must not perturb a single
bit of any pipeline output.  Hypothesis drives random programs, sampling
periods and fault plans through the monitor, GPD and RTO with telemetry
off (default disabled bus) and on (recording sink), and compares the
complete observable state.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MonitorThresholds
from repro.core.gpd import GlobalPhaseDetector
from repro.faults import FaultPlan, SampleDrop, inject
from repro.monitor import RegionMonitor
from repro.program.generator import random_program
from repro.sampling import simulate_sampling
from repro.telemetry.bus import EventBus
from repro.telemetry.sinks import InMemorySink

seeds = st.integers(min_value=0, max_value=2_000)
drop_rates = st.floats(min_value=0.0, max_value=0.4, allow_nan=False)


def _stream(seed, drop_rate=0.0, period=25_000):
    program = random_program(seed)
    stream = simulate_sampling(program.regions, program.workload, period,
                               seed=seed)
    if drop_rate > 0.0:
        plan = FaultPlan((SampleDrop(rate=drop_rate),))
        stream = inject(stream, plan, seed=seed)
    return program, stream


def _monitor_state(monitor):
    """Everything figure code reads off a finished monitor run."""
    regions, matrix = monitor.region_sample_matrix()
    return {
        "spans": [(r.rid, r.start, r.end) for r in regions],
        "matrix": matrix.copy(),
        "fractions": monitor.stable_time_fractions(),
        "ucr": monitor.ucr.median(),
        "events": [(rid, e.interval_index, e.kind, e.state_from, e.state_to)
                   for report in monitor.reports
                   for rid, e in report.events],
    }


def _assert_monitor_states_equal(a, b):
    assert a["spans"] == b["spans"]
    assert np.array_equal(a["matrix"], b["matrix"])
    assert a["fractions"] == b["fractions"]
    assert a["ucr"] == b["ucr"]
    assert a["events"] == b["events"]


class TestMonitorInert:
    @given(seeds, drop_rates)
    @settings(max_examples=15, deadline=None)
    def test_monitor_run_identical_with_telemetry_on(self, seed, rate):
        program, stream = _stream(seed, rate)
        thresholds = MonitorThresholds(buffer_size=512)

        off = RegionMonitor(program.binary, thresholds)
        off.process_stream(stream)

        sink = InMemorySink()
        on = RegionMonitor(program.binary, thresholds,
                           telemetry=EventBus(sinks=[sink]))
        on.process_stream(stream)

        _assert_monitor_states_equal(_monitor_state(off),
                                     _monitor_state(on))
        # The instrumented run actually observed the pipeline.
        assert len(sink.events) > 0


class TestGpdInert:
    @given(seeds, drop_rates)
    @settings(max_examples=15, deadline=None)
    def test_gpd_run_identical_with_telemetry_on(self, seed, rate):
        _, stream = _stream(seed, rate)
        centroids = stream.centroids(512)

        off = GlobalPhaseDetector()
        on = GlobalPhaseDetector(telemetry=EventBus(
            sinks=[InMemorySink()]))
        for value in centroids:
            off.observe_centroid(float(value))
            on.observe_centroid(float(value))

        assert off.state is on.state
        assert off.in_stable_phase == on.in_stable_phase
        assert [(o.interval_index, o.centroid_value, o.drift_ratio,
                 o.state) for o in off.observations] \
            == [(o.interval_index, o.centroid_value, o.drift_ratio,
                 o.state) for o in on.observations]
        assert [(e.interval_index, e.kind) for e in off.events] \
            == [(e.interval_index, e.kind) for e in on.events]


class TestFigurePayloadInert:
    @given(seeds)
    @settings(max_examples=6, deadline=None)
    def test_breakdown_rows_identical(self, seed):
        """The actual figure payload (fig13/fig14 rows) is bit-identical."""
        from repro.analysis.metrics import lpd_region_breakdown

        program, stream = _stream(seed)
        thresholds = MonitorThresholds(buffer_size=512)

        off = RegionMonitor(program.binary, thresholds)
        off.process_stream(stream)
        on = RegionMonitor(program.binary, thresholds,
                           telemetry=EventBus(sinks=[InMemorySink()]))
        on.process_stream(stream)

        assert lpd_region_breakdown(off) == lpd_region_breakdown(on)
