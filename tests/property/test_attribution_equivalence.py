"""Equivalence oracles for the performance engine (hypothesis).

The engine's batched attribution (`"list"`/`"tree"`) and the simulation
cache are pure optimizations: they must reproduce, byte for byte, what the
per-PC scalar references (`"list-scalar"`/`"tree-scalar"`) and a fresh
uncached computation produce.  These tests drive random registries, random
sample vectors and whole random-program monitor pipelines through both
sides and compare everything observable: counts, UCR samples, hit totals,
ledger charges, reports and phase statistics.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MonitorThresholds
from repro.costs import CostLedger
from repro.experiments import cache as cache_module
from repro.experiments.base import benchmark_for, monitored_run
from repro.experiments.config import ExperimentConfig
from repro.monitor import RegionMonitor
from repro.program.generator import random_program
from repro.regions.attribution import make_attributor
from repro.regions.registry import RegionRegistry
from repro.sampling import simulate_sampling

seeds = st.integers(min_value=0, max_value=10_000)


def random_registry(rng: np.random.Generator,
                    max_regions: int = 16) -> RegionRegistry:
    """A random region table, overlapping spans included."""
    registry = RegionRegistry()
    for _ in range(int(rng.integers(0, max_regions + 1))):
        start = int(rng.integers(0, 0x4000)) & ~0x3
        length = (int(rng.integers(4, 0x400)) & ~0x3) or 4
        if not registry.has_span(start, start + length):
            registry.add(start, start + length)
    return registry


def random_pcs(rng: np.random.Generator) -> np.ndarray:
    return (rng.integers(0, 0x4800, size=int(rng.integers(0, 3000)))
            & ~0x3).astype(np.int64)


def assert_results_identical(batched, scalar) -> None:
    assert batched.n_samples == scalar.n_samples
    assert batched.n_hits == scalar.n_hits
    assert np.array_equal(batched.ucr_pcs, scalar.ucr_pcs)
    assert batched.region_totals == scalar.region_totals
    assert sorted(batched.region_counts) == sorted(scalar.region_counts)
    for rid, counts in batched.region_counts.items():
        reference = scalar.region_counts[rid]
        assert counts.dtype == reference.dtype
        assert np.array_equal(counts, reference)


def assert_ledgers_identical(batched: CostLedger,
                             scalar: CostLedger) -> None:
    assert batched.attribution_ops == scalar.attribution_ops
    assert batched.tree_maintenance_ops == scalar.tree_maintenance_ops


class TestBatchedMatchesScalar:
    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_list_attribution(self, seed):
        rng = np.random.default_rng(seed)
        registry = random_registry(rng)
        pcs = random_pcs(rng)
        batched_ledger, scalar_ledger = CostLedger(), CostLedger()
        batched = make_attributor("list", registry, batched_ledger)
        scalar = make_attributor("list-scalar", registry, scalar_ledger)
        assert_results_identical(batched.attribute(pcs),
                                 scalar.attribute(pcs))
        assert_ledgers_identical(batched_ledger, scalar_ledger)

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_tree_attribution(self, seed):
        rng = np.random.default_rng(seed)
        registry = random_registry(rng)
        pcs = random_pcs(rng)
        batched_ledger, scalar_ledger = CostLedger(), CostLedger()
        batched = make_attributor("tree", registry, batched_ledger)
        scalar = make_attributor("tree-scalar", registry, scalar_ledger)
        assert_results_identical(batched.attribute(pcs),
                                 scalar.attribute(pcs))
        assert_ledgers_identical(batched_ledger, scalar_ledger)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_registry_growth_between_intervals(self, seed):
        # The monitor's real access pattern: attribute, form new regions,
        # attribute again (tree rebuild path included).
        rng = np.random.default_rng(seed)
        registry = random_registry(rng, max_regions=6)
        batched_ledger, scalar_ledger = CostLedger(), CostLedger()
        batched = make_attributor("tree", registry, batched_ledger)
        scalar = make_attributor("tree-scalar", registry, scalar_ledger)
        for _ in range(3):
            pcs = random_pcs(rng)
            assert_results_identical(batched.attribute(pcs),
                                     scalar.attribute(pcs))
            start = int(rng.integers(0x5000, 0x6000)) & ~0x3
            if not registry.has_span(start, start + 0x40):
                registry.add(start, start + 0x40)
        assert_ledgers_identical(batched_ledger, scalar_ledger)


def monitor_pipeline(seed: int, attribution: str) -> RegionMonitor:
    program = random_program(seed, duration_cycles=5_000_000)
    stream = simulate_sampling(program.regions, program.workload, 25_000,
                               seed=seed)
    monitor = RegionMonitor(program.binary,
                            MonitorThresholds(buffer_size=256),
                            attribution=attribution)
    monitor.process_stream(stream)
    return monitor


def assert_monitors_identical(batched: RegionMonitor,
                              scalar: RegionMonitor) -> None:
    assert batched.intervals_processed == scalar.intervals_processed
    assert batched.phase_change_counts() == scalar.phase_change_counts()
    assert batched.stable_time_fractions() == scalar.stable_time_fractions()
    for mine, reference in zip(batched.reports, scalar.reports):
        assert mine.region_samples == reference.region_samples
        assert mine.ucr_fraction == reference.ucr_fraction
    assert_ledgers_identical(batched.ledger, scalar.ledger)


class TestMonitorPipelineEquivalence:
    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_list_pipeline(self, seed):
        assert_monitors_identical(monitor_pipeline(seed, "list"),
                                  monitor_pipeline(seed, "list-scalar"))

    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_tree_pipeline(self, seed):
        assert_monitors_identical(monitor_pipeline(seed, "tree"),
                                  monitor_pipeline(seed, "tree-scalar"))


class TestCachedMatchesFresh:
    @given(st.sampled_from(("181.mcf", "254.gap", "164.gzip")), seeds)
    @settings(max_examples=6, deadline=None)
    def test_cached_monitored_run(self, name, seed):
        config = ExperimentConfig(scale=0.02, seed=seed % 100)
        model = benchmark_for(name, config)
        store = cache_module.get_cache()
        store.clear()
        try:
            cached = monitored_run(model, 45_000, config)
            assert monitored_run(model, 45_000, config) is cached
            with cache_module.cache_disabled():
                fresh = monitored_run(model, 45_000, config)
            assert fresh is not cached
            assert_monitors_identical(cached, fresh)
        finally:
            store.clear()
