"""Watchdog tests: starvation/stuck-region degradation and recovery."""

import numpy as np
import pytest

from repro.core import MonitorThresholds
from repro.errors import ConfigError
from repro.monitor import (OnlineSession, RegionMonitor, RegionWatchdog,
                           WatchdogAction, WatchdogConfig)
from repro.program.binary import BinaryBuilder, loop, straight


def tiny_binary():
    builder = BinaryBuilder(base=0x10000)
    builder.procedure("p", [loop("l", body=12), straight(4)], at=0x20000)
    return builder.build()


def make_monitor(buffer_size=8):
    binary = tiny_binary()
    return binary, RegionMonitor(binary,
                                 MonitorThresholds(buffer_size=buffer_size))


def hot_pcs(binary, size=8, seed=0):
    span = binary.loop_span("l")
    rng = np.random.default_rng(seed)
    return (span[0] + 4 * rng.integers(0, 12, size=size)).astype(np.int64)


EMPTY = np.array([], dtype=np.int64)


class TestWatchdogConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            WatchdogConfig(starvation_intervals=0)
        with pytest.raises(ConfigError):
            WatchdogConfig(stuck_unstable_intervals=0)
        with pytest.raises(ConfigError):
            WatchdogConfig(retry_budget=0)
        with pytest.raises(ConfigError):
            WatchdogConfig(backoff_intervals=0)
        with pytest.raises(ConfigError):
            WatchdogConfig(backoff_factor=0.5)

    def test_needs_a_monitor(self):
        watchdog = RegionWatchdog(WatchdogConfig())
        with pytest.raises(ConfigError):
            watchdog.observe_interval(object())


class TestStarvation:
    def form_then_starve(self, config, n_starved):
        binary, monitor = make_monitor()
        watchdog = RegionWatchdog(config, monitor)
        hot = hot_pcs(binary)
        events = []
        index = 0
        report = monitor.process_interval(hot, index)
        events += watchdog.observe_interval(report)
        rid = monitor.live_regions()[0].rid
        for _ in range(n_starved):
            index += 1
            report = monitor.process_interval(EMPTY, index)
            events += watchdog.observe_interval(report)
        return monitor, watchdog, rid, events, index

    def test_trips_after_streak(self):
        config = WatchdogConfig(starvation_intervals=3,
                                backoff_intervals=100)
        monitor, watchdog, rid, events, _ = self.form_then_starve(config, 3)
        assert [e.action for e in events] == [WatchdogAction.DEOPTIMIZE]
        assert events[0].rid == rid
        assert events[0].reason == "starved"
        assert watchdog.trip_count(rid) == 1
        assert not watchdog.allows_deploy(rid)
        # Quarantined: out of the live set but still fully queryable.
        assert monitor.live_regions() == []
        assert monitor.region_record(rid).rid == rid
        assert not monitor.detector(rid).in_stable_phase

    def test_no_trip_below_streak(self):
        config = WatchdogConfig(starvation_intervals=4)
        _, watchdog, rid, events, _ = self.form_then_starve(config, 3)
        assert events == []
        assert watchdog.allows_deploy(rid)

    def test_retry_after_backoff_restores_region(self):
        config = WatchdogConfig(starvation_intervals=2,
                                backoff_intervals=3, retry_budget=5)
        monitor, watchdog, rid, events, index = self.form_then_starve(
            config, 2)
        assert monitor.live_regions() == []
        retried = []
        for _ in range(4):
            index += 1
            report = monitor.process_interval(EMPTY, index)
            retried += watchdog.observe_interval(report)
        assert [e.action for e in retried] == [WatchdogAction.RETRY]
        assert monitor.live_regions()[0].rid == rid
        assert watchdog.allows_deploy(rid)

    def test_backoff_grows_exponentially(self):
        config = WatchdogConfig(starvation_intervals=2,
                                backoff_intervals=2, backoff_factor=2.0,
                                retry_budget=10)
        monitor, watchdog, rid, events, index = self.form_then_starve(
            config, 40)
        deopts = [e for e in watchdog.events
                  if e.action is WatchdogAction.DEOPTIMIZE]
        retries = [e for e in watchdog.events
                   if e.action is WatchdogAction.RETRY]
        assert len(deopts) >= 3
        # Gap between trip k and its retry: 2 * 2**(k-1) intervals.
        gaps = [r.interval_index - d.interval_index
                for d, r in zip(deopts, retries)]
        assert gaps[0] < gaps[1] < gaps[2]

    def test_quarantine_false_keeps_region_live(self):
        config = WatchdogConfig(starvation_intervals=2,
                                backoff_intervals=100, quarantine=False)
        monitor, watchdog, rid, events, _ = self.form_then_starve(config, 2)
        assert [e.action for e in events] == [WatchdogAction.DEOPTIMIZE]
        assert monitor.live_regions()[0].rid == rid  # still monitored
        assert not watchdog.allows_deploy(rid)       # but not deployable


class TestStuckUnstableIntegration:
    """A region that keeps sampling but never stabilizes must burn
    through the whole retry budget and end blacklisted."""

    def run_flapping(self, config, n_intervals=120):
        binary, monitor = make_monitor(buffer_size=8)
        watchdog = RegionWatchdog(config, monitor)
        span = binary.loop_span("l")
        # Alternating single-slot histograms: consecutive intervals never
        # correlate, so the detector can never leave UNSTABLE.
        slot_a = np.full(8, span[0] + 0, dtype=np.int64)
        slot_b = np.full(8, span[0] + 4 * 9, dtype=np.int64)
        for index in range(n_intervals):
            pcs = slot_a if index % 2 == 0 else slot_b
            report = monitor.process_interval(pcs, index)
            watchdog.observe_interval(report)
        return monitor, watchdog

    def test_retry_budget_exhausted(self):
        config = WatchdogConfig(starvation_intervals=50,
                                stuck_unstable_intervals=5,
                                retry_budget=3, backoff_intervals=2,
                                backoff_factor=2.0)
        monitor, watchdog = self.run_flapping(config)
        actions = [e.action for e in watchdog.events]
        assert actions.count(WatchdogAction.DEOPTIMIZE) == 2
        assert actions.count(WatchdogAction.RETRY) == 2
        assert actions.count(WatchdogAction.GIVE_UP) == 1
        # Trip order: deopt, retry, deopt, retry, give up.
        assert actions[-1] is WatchdogAction.GIVE_UP
        rid = watchdog.events[-1].rid
        assert watchdog.is_blacklisted(rid)
        assert watchdog.trip_count(rid) == 3
        assert not watchdog.allows_deploy(rid)
        # Blacklisted and quarantined for good: the formation veto keeps
        # the span from re-forming even though its samples stay hot.
        assert monitor.live_regions() == []
        summary = watchdog.summary()
        assert summary["blacklisted"] == 1
        assert summary["deoptimizations"] == 2
        assert summary["retries"] == 2

    def test_stable_region_never_trips(self):
        binary, monitor = make_monitor(buffer_size=8)
        config = WatchdogConfig(stuck_unstable_intervals=3,
                                starvation_intervals=3)
        watchdog = RegionWatchdog(config, monitor)
        hot = hot_pcs(binary)
        for index in range(30):
            report = monitor.process_interval(hot, index)
            watchdog.observe_interval(report)
        assert watchdog.events == []
        assert monitor.live_regions()


class TestOnlineSessionIntegration:
    def test_session_records_watchdog_events(self):
        binary = tiny_binary()
        session = OnlineSession(
            binary=binary, run_gpd=False,
            monitor_thresholds=MonitorThresholds(buffer_size=8),
            watchdog=WatchdogConfig(starvation_intervals=2,
                                    backoff_intervals=2, retry_budget=2))
        hot = hot_pcs(binary, size=8)
        session.feed_many(hot)  # forms the region
        cold = np.full(8 * 12, 0x9000000, dtype=np.int64)
        session.feed_many(cold)  # starves it
        actions = [e.action for e in session.watchdog_events]
        assert WatchdogAction.DEOPTIMIZE in actions
        assert "watchdog" in session.summary()

    def test_session_without_watchdog_has_no_summary_key(self):
        binary = tiny_binary()
        session = OnlineSession(
            binary=binary, run_gpd=False,
            monitor_thresholds=MonitorThresholds(buffer_size=8))
        session.feed_many(hot_pcs(binary))
        assert session.watchdog is None
        assert "watchdog" not in session.summary()


class TestRtoIntegration:
    def test_watchdog_run_completes_and_counts_deopts(self):
        from repro.faults import FaultPlan, SampleDrop
        from repro.optimizer import compare_policies
        from repro.program.spec2000 import get_benchmark

        model = get_benchmark("164.gzip", scale=0.05)
        orig, lpd, speedup = compare_policies(
            model.binary, model.regions, model.workload, 45_000, seed=7,
            config_overrides={"watchdog": WatchdogConfig(
                starvation_intervals=4, retry_budget=2,
                backoff_intervals=4)},
            fault_plan=FaultPlan((SampleDrop(rate=0.2, burst_mean=4.0),)))
        assert lpd.n_watchdog_deopts >= 0
        assert orig.n_watchdog_deopts == 0  # orig policy has no watchdog
        assert np.isfinite(speedup)
