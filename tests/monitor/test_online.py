"""Tests for the online phase-detection session."""

import numpy as np
import pytest

from repro.core import GlobalPhaseDetector, MonitorThresholds
from repro.monitor import RegionMonitor
from repro.monitor.online import OnlineSession
from repro.program.behavior import RegionSpec, bottleneck_profile
from repro.program.binary import BinaryBuilder, loop
from repro.program.workload import Steady, WorkloadScript, mixture
from repro.sampling import simulate_sampling

BUFFER = 256


def build_setup():
    builder = BinaryBuilder(base=0x10000)
    builder.procedure("p_a", [loop("a", body=12)], at=0x20000)
    builder.procedure("p_b", [loop("b", body=12)], at=0x80000)
    binary = builder.build()
    regions = {
        "a": RegionSpec("a", *binary.loop_span("a"),
                        profiles={"main": bottleneck_profile(16, {4: 90.0})}),
        "b": RegionSpec("b", *binary.loop_span("b"),
                        profiles={"main": bottleneck_profile(16, {9: 90.0})}),
    }
    workload = WorkloadScript([
        Steady(15_000_000, mixture(("a", 0.8), ("b", 0.2))),
        Steady(15_000_000, mixture(("a", 0.2), ("b", 0.8))),
    ])
    stream = simulate_sampling(regions, workload, 2000, seed=9)
    return binary, stream


def thresholds():
    return MonitorThresholds(buffer_size=BUFFER)


class TestEquivalenceWithBatch:
    def test_sample_at_a_time_matches_batch_monitor(self):
        binary, stream = build_setup()
        session = OnlineSession(binary, thresholds(), run_gpd=False)
        for pc in stream.pcs:
            session.feed(int(pc))

        batch = RegionMonitor(binary, thresholds())
        batch.process_stream(stream)
        assert session.monitor.phase_change_counts() \
            == batch.phase_change_counts()
        assert session.monitor.ucr.history == batch.ucr.history
        assert len(session.reports) == batch.intervals_processed

    def test_feed_many_matches_feed(self):
        binary, stream = build_setup()
        one_by_one = OnlineSession(binary, thresholds(), run_gpd=False)
        for pc in stream.pcs:
            one_by_one.feed(int(pc))
        batched = OnlineSession(binary, thresholds(), run_gpd=False)
        batched.feed_many(stream.pcs)
        assert one_by_one.summary() == batched.summary()

    def test_gpd_channel_matches_standalone(self):
        binary, stream = build_setup()
        session = OnlineSession(binary, thresholds())
        session.feed_stream(stream)

        standalone = GlobalPhaseDetector()
        for value in stream.centroids(BUFFER):
            standalone.observe_centroid(float(value))
        assert len(session.gpd.events) == len(standalone.events)
        assert session.gpd.state is standalone.state


class TestCallbacks:
    def test_global_and_local_callbacks_fire(self):
        binary, stream = build_setup()
        session = OnlineSession(binary, thresholds())
        global_seen = []
        local_seen = []
        session.on_global_change(lambda e: global_seen.append(e))
        session.on_local_change(lambda rid, e: local_seen.append((rid, e)))
        session.feed_stream(stream)
        assert len(global_seen) == session.stats.global_events
        assert len(local_seen) == session.stats.local_events
        assert local_seen, "regions should have stabilized at least once"

    def test_callbacks_receive_events_in_order(self):
        binary, stream = build_setup()
        session = OnlineSession(binary, thresholds(), run_gpd=False)
        intervals = []
        session.on_local_change(
            lambda rid, e: intervals.append(e.interval_index))
        session.feed_stream(stream)
        assert intervals == sorted(intervals)


class TestConfiguration:
    def test_gpd_only_session(self):
        _binary, stream = build_setup()
        session = OnlineSession(None, thresholds(), run_gpd=True)
        session.feed_stream(stream)
        assert session.monitor is None
        assert session.stats.intervals > 0
        assert "monitored_regions" not in session.summary()

    def test_nothing_enabled_rejected(self):
        with pytest.raises(ValueError):
            OnlineSession(None, run_gpd=False)

    def test_pending_samples_tracked(self):
        binary, _stream = build_setup()
        session = OnlineSession(binary, thresholds(), run_gpd=False)
        session.feed_many(np.full(BUFFER + 10, 0x20010, dtype=np.int64))
        assert session.pending_samples == 10
        assert session.stats.intervals == 1

    def test_summary_fields(self):
        binary, stream = build_setup()
        session = OnlineSession(binary, thresholds())
        session.feed_stream(stream)
        summary = session.summary()
        assert summary["samples"] == stream.n_samples
        assert summary["intervals"] == stream.n_intervals(BUFFER)
        assert "gpd_stable" in summary
        assert summary["monitored_regions"] >= 2

    def test_monitor_kwargs_forwarded(self):
        binary, stream = build_setup()
        session = OnlineSession(binary, thresholds(), run_gpd=False,
                                attribution="tree")
        session.feed_stream(stream)
        assert session.monitor.ledger.tree_maintenance_ops > 0


class TestFeedValidation:
    def test_feed_many_rejects_2d(self):
        from repro.errors import SamplingError

        binary, _ = build_setup()
        session = OnlineSession(binary, thresholds(), run_gpd=False)
        with pytest.raises(SamplingError):
            session.feed_many(np.zeros((4, 4), dtype=np.int64))

    def test_feed_many_rejects_empty(self):
        from repro.errors import SamplingError

        binary, _ = build_setup()
        session = OnlineSession(binary, thresholds(), run_gpd=False)
        with pytest.raises(SamplingError):
            session.feed_many(np.array([], dtype=np.int64))

    def test_feed_many_rejects_float_pcs(self):
        from repro.errors import SamplingError

        binary, _ = build_setup()
        session = OnlineSession(binary, thresholds(), run_gpd=False)
        with pytest.raises(SamplingError):
            session.feed_many(np.array([1.5, 2.5]))

    def test_feed_many_accepts_any_int_dtype(self):
        binary, _ = build_setup()
        session = OnlineSession(binary, thresholds(), run_gpd=False)
        session.feed_many(np.full(4, 0x20010, dtype=np.int32))
        assert session.stats.samples == 4

    def test_feed_stream_rejects_non_stream(self):
        from repro.errors import SamplingError

        binary, _ = build_setup()
        session = OnlineSession(binary, thresholds(), run_gpd=False)
        with pytest.raises(SamplingError):
            session.feed_stream(np.full(4, 0x20010, dtype=np.int64))

    def test_feed_stream_rejects_empty_stream(self):
        from repro.errors import SamplingError
        from repro.sampling.events import SampleStream

        binary, stream = build_setup()
        empty = SampleStream(
            pcs=np.array([], dtype=np.int64),
            cycles=np.array([], dtype=np.int64),
            dcache_miss=np.array([], dtype=np.float64),
            region_ids=np.array([], dtype=np.int64),
            region_names=stream.region_names,
            sampling_period=stream.sampling_period, total_cycles=0)
        session = OnlineSession(binary, thresholds(), run_gpd=False)
        with pytest.raises(SamplingError):
            session.feed_stream(empty)
