"""Tests for per-region miss-rate tracking in the monitor.

This is the data path behind self-monitoring: the monitor records each
region's data-cache miss rate per interval, which feeds the
benefit-verification feedback loop.
"""

import numpy as np
import pytest

from repro.core import MonitorThresholds
from repro.errors import RegionError
from repro.monitor import RegionMonitor, SelfMonitor, Verdict
from repro.program.behavior import RegionSpec, bottleneck_profile
from repro.program.binary import BinaryBuilder, loop
from repro.program.workload import Steady, WorkloadScript, mixture
from repro.sampling import simulate_sampling


def build_setup(dpi_a=0.20, dpi_b=0.01):
    builder = BinaryBuilder(base=0x10000)
    builder.procedure("p_a", [loop("a", body=12)], at=0x20000)
    builder.procedure("p_b", [loop("b", body=12)], at=0x40000)
    binary = builder.build()
    regions = {
        "a": RegionSpec("a", *binary.loop_span("a"),
                        profiles={"main": bottleneck_profile(16, {4: 90.0})},
                        dpi=dpi_a),
        "b": RegionSpec("b", *binary.loop_span("b"),
                        profiles={"main": bottleneck_profile(16, {9: 90.0})},
                        dpi=dpi_b),
    }
    workload = WorkloadScript([
        Steady(40_000_000, mixture(("a", 0.6), ("b", 0.4))),
    ])
    stream = simulate_sampling(regions, workload, 2000, seed=4)
    return binary, regions, stream


class TestMissTracking:
    def test_rates_recorded_per_region(self):
        binary, regions, stream = build_setup()
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=512))
        monitor.process_stream(stream, track_misses=True)
        region_a = monitor.region_by_name(
            f"{regions['a'].start:x}-{regions['a'].end:x}")
        rates = monitor.region_miss_rates(region_a.rid)
        assert rates, "expected miss-rate observations"
        values = np.array([rate for _interval, rate in rates])
        assert values.mean() == pytest.approx(0.20, abs=0.03)

    def test_rates_distinguish_regions(self):
        binary, regions, stream = build_setup(dpi_a=0.25, dpi_b=0.02)
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=512))
        monitor.process_stream(stream, track_misses=True)
        rate_of = {}
        for name in ("a", "b"):
            region = monitor.region_by_name(
                f"{regions[name].start:x}-{regions[name].end:x}")
            values = [r for _i, r in monitor.region_miss_rates(region.rid)]
            rate_of[name] = float(np.mean(values))
        assert rate_of["a"] > 5 * rate_of["b"]

    def test_disabled_by_default(self):
        binary, regions, stream = build_setup()
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=512))
        monitor.process_stream(stream)
        region = monitor.live_regions()[0]
        assert monitor.region_miss_rates(region.rid) == []

    def test_unknown_region_rejected(self):
        binary, _regions, _stream = build_setup()
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=512))
        with pytest.raises(RegionError):
            monitor.region_miss_rates(99)

    def test_flag_length_validated(self):
        binary, _regions, stream = build_setup()
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=512))
        with pytest.raises(RegionError, match="miss_flags"):
            monitor.process_interval(stream.pcs[:512],
                                     miss_flags=np.zeros(100, dtype=bool))

    def test_interval_indices_monotonic(self):
        binary, regions, stream = build_setup()
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=512))
        monitor.process_stream(stream, track_misses=True)
        region = monitor.live_regions()[0]
        indices = [i for i, _r in monitor.region_miss_rates(region.rid)]
        assert indices == sorted(indices)


class TestFeedIntoSelfMonitor:
    def test_monitored_rates_drive_verdicts(self):
        """Wire real monitor miss rates into the self-monitor: a genuine
        DPI improvement must come out BENEFICIAL."""
        binary, regions, stream = build_setup(dpi_a=0.20)
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=512))
        monitor.process_stream(stream, track_misses=True)
        region = monitor.region_by_name(
            f"{regions['a'].start:x}-{regions['a'].end:x}")
        rates = [r for _i, r in monitor.region_miss_rates(region.rid)]
        assert len(rates) >= 8

        self_monitor = SelfMonitor(verify_intervals=3, tolerance=0.10)
        for rate in rates[:5]:
            self_monitor.observe(region.rid, rate)   # baseline
        self_monitor.mark_deployed(region.rid)
        for rate in rates[5:]:
            # A working prefetch halves the observed miss rate.
            self_monitor.observe(region.rid, rate * 0.5)
        assert self_monitor.verdict(region.rid) is Verdict.BENEFICIAL
