"""Robustness tests: the monitor under degenerate and adversarial input."""

import numpy as np

from repro.core import MonitorThresholds
from repro.monitor import RegionMonitor
from repro.program.binary import BinaryBuilder, loop, straight


def tiny_binary():
    builder = BinaryBuilder(base=0x10000)
    builder.procedure("p", [loop("l", body=12), straight(4)], at=0x20000)
    return builder.build()


class TestDegenerateInput:
    def test_empty_interval(self):
        monitor = RegionMonitor(tiny_binary(),
                                MonitorThresholds(buffer_size=16))
        report = monitor.process_interval(np.array([], dtype=np.int64))
        assert report.ucr_fraction == 0.0
        assert report.formation is None
        assert monitor.intervals_processed == 1

    def test_all_samples_outside_binary(self):
        # Hot code the binary has no description of (JITed code, another
        # DSO): formation fails every interval, nothing crashes.
        monitor = RegionMonitor(tiny_binary(),
                                MonitorThresholds(buffer_size=16))
        pcs = np.full(16, 0x9000000, dtype=np.int64)
        for _ in range(4):
            report = monitor.process_interval(pcs)
        assert report.ucr_fraction == 1.0
        assert monitor.ucr.n_triggers == 4
        assert monitor.live_regions() == []
        assert report.formation.seeds_failed >= 1

    def test_single_constant_pc(self):
        binary = tiny_binary()
        span = binary.loop_span("l")
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=16))
        pcs = np.full(16, span[0] + 8, dtype=np.int64)
        for index in range(6):
            monitor.process_interval(pcs, index)
        region = monitor.live_regions()[0]
        detector = monitor.detector(region.rid)
        # A single-instruction histogram is degenerate for Pearson but
        # resolves as "same behavior" — the region stabilizes.
        assert detector.in_stable_phase

    def test_minimum_buffer_size(self):
        binary = tiny_binary()
        span = binary.loop_span("l")
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=2))
        for index in range(10):
            monitor.process_interval(
                np.array([span[0], span[0] + 8], dtype=np.int64), index)
        assert monitor.intervals_processed == 10

    def test_alternating_empty_and_full_intervals(self):
        binary = tiny_binary()
        span = binary.loop_span("l")
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=8))
        rng = np.random.default_rng(0)
        hot = (span[0] + 4 * rng.integers(0, 14, size=8)).astype(np.int64)
        empty = np.array([], dtype=np.int64)
        for index in range(12):
            monitor.process_interval(hot if index % 2 == 0 else empty,
                                     index)
        region = monitor.live_regions()[0]
        detector = monitor.detector(region.rid)
        # Empty intervals are no-sample observations: the state holds.
        assert detector.active_intervals == 5  # formed at 0, active 2,4,..

    def test_interval_indices_can_be_sparse(self):
        binary = tiny_binary()
        span = binary.loop_span("l")
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=8))
        pcs = np.full(8, span[0] + 8, dtype=np.int64)
        for index in (0, 10, 20, 30):
            report = monitor.process_interval(pcs, index)
            assert report.interval_index == index

    def test_unaligned_pcs_attributed(self):
        # PMU skid can deliver mid-instruction byte addresses.
        binary = tiny_binary()
        span = binary.loop_span("l")
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=8))
        pcs = np.full(8, span[0] + 9, dtype=np.int64)  # off by one byte
        for index in range(4):
            monitor.process_interval(pcs, index)
        assert monitor.live_regions(), "skidded samples still form regions"


class TestAdversarialPatterns:
    def test_region_churn_with_pruning_and_reformation(self):
        """Regions that keep dying and coming back must not leak state."""
        from repro.regions.pruning import PruningPolicy

        binary = tiny_binary()
        span = binary.loop_span("l")
        monitor = RegionMonitor(
            binary, MonitorThresholds(buffer_size=8),
            pruning=PruningPolicy(max_idle_intervals=2, grace_intervals=1))
        rng = np.random.default_rng(1)
        hot = (span[0] + 4 * rng.integers(0, 14, size=8)).astype(np.int64)
        cold = np.full(8, 0x9000000, dtype=np.int64)
        for cycle in range(5):
            base = cycle * 8
            for offset in range(2):
                monitor.process_interval(hot, base + offset)
            for offset in range(2, 8):
                monitor.process_interval(cold, base + offset)
        # The loop's span was pruned and re-formed repeatedly; ids differ
        # but every retired detector stays queryable.
        all_regions = monitor.all_regions()
        assert len(all_regions) >= 2
        for region in all_regions:
            monitor.detector(region.rid)

    def test_interleaved_histogram_shapes_never_crash(self):
        binary = tiny_binary()
        span = binary.loop_span("l")
        monitor = RegionMonitor(binary, MonitorThresholds(buffer_size=32))
        rng = np.random.default_rng(2)
        for index in range(30):
            slot = int(rng.integers(0, 14))
            pcs = np.full(32, span[0] + 4 * slot, dtype=np.int64)
            monitor.process_interval(pcs, index)
        region = monitor.live_regions()[0]
        detector = monitor.detector(region.rid)
        # Wildly jumping single-slot histograms: lots of phase changes,
        # but the accounting stays consistent.
        assert detector.active_intervals == 30 - 1  # formed at interval 0
        assert detector.stable_intervals <= detector.active_intervals
