"""Unit and integration tests for the RegionMonitor framework."""

import numpy as np
import pytest

from repro.core import MonitorThresholds
from repro.core.states import PhaseEventKind
from repro.core.thresholds import LpdThresholds
from repro.errors import RegionError
from repro.program.behavior import RegionSpec, bottleneck_profile
from repro.program.binary import BinaryBuilder, call, loop, straight
from repro.program.workload import Steady, WorkloadScript, mixture
from repro.regions.pruning import PruningPolicy
from repro.regions.region import RegionKind
from repro.sampling import simulate_sampling
from repro.monitor import RegionMonitor


def build_binary():
    b = BinaryBuilder(base=0x10000)
    b.procedure("callee", [straight(40)])
    b.procedure("main", [
        straight(8),
        loop("hot1", body=28),
        loop("hot2", body=60),
        loop("call_loop", body=[straight(2), call("callee")]),
        straight(4),
    ])
    return b.build()


BINARY = build_binary()
HOT1 = BINARY.loop_span("hot1")
HOT2 = BINARY.loop_span("hot2")

REGIONS = {
    "hot1": RegionSpec("hot1", *HOT1,
                       profiles={"main": bottleneck_profile(32, {10: 200.0})}),
    "hot2": RegionSpec("hot2", *HOT2,
                       profiles={"main": bottleneck_profile(
                           64, {5: 100.0, 40: 150.0})}),
    "callee_code": RegionSpec(
        "callee_code", BINARY.procedure("callee").start,
        BINARY.procedure("callee").end, is_loop=False,
        profiles={"main": bottleneck_profile(40, {7: 120.0})}),
}


def steady_stream(ucr_weight=0.10, duration=400_000_000, seed=3):
    weights = {"hot1": (1.0 - ucr_weight) * 0.6,
               "hot2": (1.0 - ucr_weight) * 0.4,
               "callee_code": ucr_weight}
    script = WorkloadScript([Steady(duration, mixture(
        *[(name, w) for name, w in weights.items() if w > 0]))])
    return simulate_sampling(REGIONS, script, 45_000, seed=seed)


def small_thresholds(**kwargs):
    return MonitorThresholds(buffer_size=512, **kwargs)


class TestFormationIntegration:
    def test_first_interval_forms_hot_loops(self):
        monitor = RegionMonitor(BINARY, small_thresholds())
        stream = steady_stream()
        monitor.process_stream(stream)
        spans = {(r.start, r.end) for r in monitor.live_regions()}
        assert HOT1 in spans
        assert HOT2 in spans
        first = monitor.reports[0]
        assert first.ucr_fraction == 1.0
        assert first.formation is not None and first.formation.formed_any

    def test_ucr_settles_below_threshold(self):
        monitor = RegionMonitor(BINARY, small_thresholds())
        monitor.process_stream(steady_stream(ucr_weight=0.10))
        assert monitor.ucr.history[-1] < 0.30
        assert monitor.ucr.median() == pytest.approx(0.10, abs=0.05)
        assert monitor.ucr.n_triggers == 1  # only the cold start

    def test_persistent_high_ucr_keeps_triggering(self):
        # The 254.gap pathology: hot non-loop code keeps UCR above the
        # threshold; formation fires every interval but cannot help.
        monitor = RegionMonitor(BINARY, small_thresholds())
        stream = steady_stream(ucr_weight=0.45)
        monitor.process_stream(stream)
        n = monitor.intervals_processed
        assert monitor.ucr.n_triggers == n
        assert monitor.ucr.median() > 0.30

    def test_interprocedural_mode_resolves_high_ucr(self):
        monitor = RegionMonitor(BINARY, small_thresholds(),
                                interprocedural=True)
        monitor.process_stream(steady_stream(ucr_weight=0.45))
        kinds = {r.kind for r in monitor.live_regions()}
        assert RegionKind.INTERPROCEDURAL in kinds
        assert monitor.ucr.history[-1] < 0.05


class TestLocalDetection:
    def test_stable_workload_stabilizes_all_regions(self):
        monitor = RegionMonitor(BINARY, small_thresholds())
        monitor.process_stream(steady_stream())
        fractions = monitor.stable_time_fractions()
        assert fractions, "expected monitored regions"
        for fraction in fractions.values():
            assert fraction > 0.5
        for count in monitor.phase_change_counts().values():
            assert count == 1  # single stabilization each

    def test_events_reported_per_region(self):
        monitor = RegionMonitor(BINARY, small_thresholds())
        monitor.process_stream(steady_stream())
        all_events = [event for report in monitor.reports
                      for _, event in report.events]
        assert all(e.kind is PhaseEventKind.BECAME_STABLE
                   for e in all_events)
        assert monitor.total_events() == len(all_events)

    def test_region_by_name(self):
        monitor = RegionMonitor(BINARY, small_thresholds())
        monitor.process_stream(steady_stream())
        name = f"{HOT1[0]:x}-{HOT1[1]:x}"
        region = monitor.region_by_name(name)
        assert (region.start, region.end) == HOT1
        with pytest.raises(RegionError):
            monitor.region_by_name("dead-beef")

    def test_detector_lookup_unknown_rid(self):
        monitor = RegionMonitor(BINARY, small_thresholds())
        with pytest.raises(RegionError):
            monitor.detector(99)

    def test_custom_lpd_thresholds_propagate(self):
        thresholds = MonitorThresholds(
            buffer_size=512, lpd=LpdThresholds(r_threshold=0.95))
        monitor = RegionMonitor(BINARY, thresholds)
        monitor.process_stream(steady_stream())
        for region in monitor.live_regions():
            assert monitor.detector(region.rid).effective_threshold \
                == pytest.approx(0.95)


class TestManualRegions:
    def test_add_region_and_observe(self):
        monitor = RegionMonitor(BINARY, small_thresholds())
        region = monitor.add_region(*HOT1)
        assert region.kind is RegionKind.MANUAL
        stream = steady_stream()
        monitor.process_stream(stream)
        assert monitor.detector(region.rid).active_intervals > 0


class TestPruning:
    def test_cold_region_pruned_and_retired(self):
        monitor = RegionMonitor(
            BINARY, small_thresholds(),
            pruning=PruningPolicy(max_idle_intervals=3, grace_intervals=2))
        ghost = monitor.add_region(0x90000 & ~0x3, 0x90040)
        monitor.process_stream(steady_stream())
        live_ids = {r.rid for r in monitor.live_regions()}
        assert ghost.rid not in live_ids
        # Retired regions remain inspectable.
        assert monitor.detector(ghost.rid).active_intervals == 0
        pruned = [rid for report in monitor.reports
                  for rid in report.pruned]
        assert ghost.rid in pruned

    def test_active_regions_survive_pruning(self):
        monitor = RegionMonitor(
            BINARY, small_thresholds(),
            pruning=PruningPolicy(max_idle_intervals=3, grace_intervals=2))
        monitor.process_stream(steady_stream())
        spans = {(r.start, r.end) for r in monitor.live_regions()}
        assert HOT1 in spans and HOT2 in spans


class TestAccounting:
    def test_report_sample_totals_conserved(self):
        monitor = RegionMonitor(BINARY, small_thresholds())
        stream = steady_stream()
        monitor.process_stream(stream)
        for report in monitor.reports[1:]:
            attributed = sum(report.region_samples.values())
            ucr = round(report.ucr_fraction * 512)
            # No overlapping regions here, so attribution partitions the
            # buffer exactly.
            assert attributed + ucr == 512

    def test_sample_matrix_shape(self):
        monitor = RegionMonitor(BINARY, small_thresholds())
        stream = steady_stream()
        monitor.process_stream(stream)
        regions, matrix = monitor.region_sample_matrix()
        assert matrix.shape == (monitor.intervals_processed, len(regions))
        assert matrix.sum() > 0

    def test_cost_ledger_charged(self):
        monitor = RegionMonitor(BINARY, small_thresholds())
        monitor.process_stream(steady_stream())
        assert monitor.ledger.attribution_ops > 0
        assert monitor.ledger.similarity_ops > 0
        assert monitor.ledger.lpd_state_ops > 0
        assert monitor.ledger.gpd_ops == 0  # the monitor is LPD-only

    def test_tree_attribution_charges_tree_costs(self):
        monitor = RegionMonitor(BINARY, small_thresholds(),
                                attribution="tree")
        monitor.process_stream(steady_stream())
        assert monitor.ledger.tree_maintenance_ops > 0

    def test_list_and_tree_monitors_agree_on_everything_but_cost(self):
        list_monitor = RegionMonitor(BINARY, small_thresholds())
        tree_monitor = RegionMonitor(BINARY, small_thresholds(),
                                     attribution="tree")
        stream = steady_stream()
        list_monitor.process_stream(stream)
        tree_monitor.process_stream(stream)
        assert list_monitor.phase_change_counts() \
            == tree_monitor.phase_change_counts()
        assert list_monitor.ucr.history == tree_monitor.ucr.history
