"""Unit tests for self-monitoring of deployed optimizations."""

import pytest

from repro.monitor.self_monitoring import SelfMonitor, Verdict


def feed(monitor, rid, values, deployed=False):
    if deployed:
        monitor.mark_deployed(rid)
    for value in values:
        monitor.observe(rid, value)


class TestLifecycle:
    def test_undecided_without_baseline(self):
        monitor = SelfMonitor(verify_intervals=2)
        monitor.mark_deployed(0)
        feed(monitor, 0, [0.1, 0.1])
        assert monitor.verdict(0) is Verdict.UNDECIDED

    def test_undecided_before_enough_post_observations(self):
        monitor = SelfMonitor(verify_intervals=4)
        feed(monitor, 0, [0.2, 0.2])
        monitor.mark_deployed(0)
        feed(monitor, 0, [0.1, 0.1])
        assert monitor.verdict(0) is Verdict.UNDECIDED

    def test_undecided_when_never_deployed(self):
        monitor = SelfMonitor()
        feed(monitor, 0, [0.2] * 10)
        assert monitor.verdict(0) is Verdict.UNDECIDED
        assert monitor.verdict(99) is Verdict.UNDECIDED


class TestVerdicts:
    def monitor_with_baseline(self, baseline=0.2):
        monitor = SelfMonitor(verify_intervals=3, tolerance=0.10)
        feed(monitor, 0, [baseline] * 5)
        monitor.mark_deployed(0)
        return monitor

    def test_beneficial_when_metric_drops(self):
        monitor = self.monitor_with_baseline()
        feed(monitor, 0, [0.05, 0.05, 0.05])
        assert monitor.verdict(0) is Verdict.BENEFICIAL
        assert not monitor.should_undo(0)

    def test_harmful_when_metric_rises(self):
        # The speculative-prefetch-gone-wrong case the paper motivates.
        monitor = self.monitor_with_baseline()
        feed(monitor, 0, [0.35, 0.35, 0.35])
        assert monitor.verdict(0) is Verdict.HARMFUL
        assert monitor.should_undo(0)

    def test_neutral_within_tolerance(self):
        monitor = self.monitor_with_baseline()
        feed(monitor, 0, [0.21, 0.19, 0.20])
        assert monitor.verdict(0) is Verdict.NEUTRAL

    def test_zero_baseline(self):
        monitor = SelfMonitor(verify_intervals=2)
        feed(monitor, 0, [0.0, 0.0])
        monitor.mark_deployed(0)
        feed(monitor, 0, [0.0, 0.0])
        assert monitor.verdict(0) is Verdict.NEUTRAL
        monitor.mark_deployed(1)
        feed(monitor, 1, [0.0])  # baseline for rid 1 via separate path
        monitor.mark_unpatched(1)
        feed(monitor, 1, [0.0])
        monitor.mark_deployed(1)
        feed(monitor, 1, [0.1, 0.1])
        assert monitor.verdict(1) is Verdict.HARMFUL

    def test_unpatch_resets_to_baseline_mode(self):
        monitor = self.monitor_with_baseline()
        feed(monitor, 0, [0.35, 0.35, 0.35])
        assert monitor.should_undo(0)
        monitor.mark_unpatched(0)
        assert monitor.verdict(0) is Verdict.UNDECIDED
        # Post-unpatch observations feed the baseline again.
        feed(monitor, 0, [0.25])
        assert monitor.baseline_of(0) == pytest.approx(
            (0.2 * 5 + 0.25) / 6)

    def test_verdict_uses_recent_window(self):
        monitor = self.monitor_with_baseline()
        # Early bad intervals followed by genuinely better ones: verdict
        # follows the last verify_intervals observations.
        feed(monitor, 0, [0.4, 0.4, 0.4, 0.05, 0.05, 0.05])
        assert monitor.verdict(0) is Verdict.BENEFICIAL


    def test_tolerance_boundary_is_inclusive(self):
        # dyadic values so the relative change is float-exact
        monitor = SelfMonitor(verify_intervals=1, tolerance=0.125)
        feed(monitor, 0, [1.0])
        monitor.mark_deployed(0)
        feed(monitor, 0, [0.875])  # exactly -12.5%: beneficial, not neutral
        assert monitor.verdict(0) is Verdict.BENEFICIAL
        monitor = SelfMonitor(verify_intervals=1, tolerance=0.125)
        feed(monitor, 1, [1.0])
        monitor.mark_deployed(1)
        feed(monitor, 1, [1.125])  # exactly +12.5%: harmful
        assert monitor.verdict(1) is Verdict.HARMFUL

    def test_redeploy_clears_stale_window(self):
        monitor = self.monitor_with_baseline()
        feed(monitor, 0, [0.05, 0.05, 0.05])
        assert monitor.verdict(0) is Verdict.BENEFICIAL
        monitor.mark_deployed(0)  # a new optimization: fresh verification
        assert monitor.verdict(0) is Verdict.UNDECIDED

    def test_regions_are_independent(self):
        monitor = SelfMonitor(verify_intervals=1)
        for rid, (before, after) in {0: (1.0, 0.5), 1: (0.5, 1.0)}.items():
            feed(monitor, rid, [before])
            monitor.mark_deployed(rid)
            feed(monitor, rid, [after])
        assert monitor.verdict(0) is Verdict.BENEFICIAL
        assert monitor.verdict(1) is Verdict.HARMFUL


class TestBookkeeping:
    def test_baseline_window_bounded(self):
        monitor = SelfMonitor(baseline_window=4)
        feed(monitor, 0, [1.0] * 10 + [0.0] * 4)
        assert monitor.baseline_of(0) == pytest.approx(0.0)

    def test_baseline_of_unknown_region(self):
        assert SelfMonitor().baseline_of(7) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SelfMonitor(verify_intervals=0)
        with pytest.raises(ValueError):
            SelfMonitor(tolerance=-0.1)
        with pytest.raises(ValueError):
            SelfMonitor(baseline_window=0)
        monitor = SelfMonitor()
        with pytest.raises(ValueError):
            monitor.observe(0, -1.0)
