"""Unit tests for the cost ledger."""

import pytest

from repro.costs import (CENTROID_OPS_PER_SAMPLE, GPD_STATE_OPS_PER_INTERVAL,
                         HIT_OPS, LIST_OPS_PER_CHECK, PEARSON_OPS_PER_SLOT,
                         CostLedger)


class TestCharging:
    def test_gpd_interval(self):
        ledger = CostLedger()
        ledger.charge_gpd_interval(2032)
        assert ledger.gpd_ops == (2032 * CENTROID_OPS_PER_SAMPLE
                                  + GPD_STATE_OPS_PER_INTERVAL)
        assert ledger.monitor_ops == 0

    def test_list_attribution(self):
        ledger = CostLedger()
        ledger.charge_list_attribution(n_samples=100, n_regions=5,
                                       n_hits=80)
        assert ledger.attribution_ops == (100 * 5 * LIST_OPS_PER_CHECK
                                          + 80 * HIT_OPS)

    def test_similarity(self):
        ledger = CostLedger()
        ledger.charge_similarity(64)
        assert ledger.similarity_ops == 64 * PEARSON_OPS_PER_SLOT

    def test_tree_build_log_factor(self):
        ledger = CostLedger()
        ledger.charge_tree_build(0)
        assert ledger.tree_maintenance_ops == 0
        ledger.charge_tree_build(16)
        small = ledger.tree_maintenance_ops
        ledger2 = CostLedger()
        ledger2.charge_tree_build(1024)
        assert ledger2.tree_maintenance_ops > small
        # n log n, not n^2: 64x regions costs ~160x, far below 4096x.
        assert ledger2.tree_maintenance_ops < small * 64 * 4


class TestAggregation:
    def test_totals(self):
        ledger = CostLedger()
        ledger.charge_gpd_interval(100)
        ledger.charge_list_attribution(100, 2, 90)
        ledger.charge_similarity(10)
        ledger.charge_lpd_state()
        assert ledger.total_ops == ledger.gpd_ops + ledger.monitor_ops
        assert ledger.monitor_ops == (ledger.attribution_ops
                                      + ledger.similarity_ops
                                      + ledger.lpd_state_ops)

    def test_overhead_fraction(self):
        ledger = CostLedger()
        ledger.charge_gpd_interval(100)
        total = ledger.total_ops
        assert ledger.overhead_fraction(10_000) == pytest.approx(
            total / 10_000)
        assert ledger.overhead_fraction(10_000, ops=50) == pytest.approx(
            0.005)
        with pytest.raises(ValueError):
            ledger.overhead_fraction(0)

    def test_merged_with(self):
        a = CostLedger()
        a.charge_gpd_interval(10)
        b = CostLedger()
        b.charge_similarity(8)
        merged = a.merged_with(b)
        assert merged.gpd_ops == a.gpd_ops
        assert merged.similarity_ops == b.similarity_ops
        # Originals untouched.
        assert a.similarity_ops == 0
