"""CpdThresholds validation and cache-token discipline."""

from dataclasses import fields

import pytest

from repro.cpd import CpdThresholds
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_construct(self):
        CpdThresholds()

    @pytest.mark.parametrize("kwargs", [
        {"min_segment": 1},
        {"window": 9, "min_segment": 5},
        {"n_permutations": 0},
        {"p_threshold": 0.0},
        {"p_threshold": 1.0},
        {"p_threshold": -0.2},
        {"min_effect": -0.1},
        {"seed": -1},
        {"stabilize_intervals": 0},
        {"min_interval_samples": 0},
        {"cusum_baseline": 1},
        {"cusum_drift": -1.0},
        {"cusum_threshold": 0.0},
    ])
    def test_bad_knobs_raise(self, kwargs):
        with pytest.raises(ConfigError):
            CpdThresholds(**kwargs)

    def test_unreachable_p_threshold_raises(self):
        # 19 permutations can't produce p < 0.05 (floor is 1/20).
        with pytest.raises(ConfigError, match="unreachable"):
            CpdThresholds(n_permutations=19, p_threshold=0.05)
        CpdThresholds(n_permutations=19, p_threshold=0.06)


class TestToken:
    def test_token_covers_every_field(self):
        cpd = CpdThresholds()
        token = cpd.token()
        assert token[0] == "cpd"
        named = dict(token[1:])
        for field in fields(cpd):
            assert named[field.name] == getattr(cpd, field.name)

    def test_every_knob_changes_the_token(self):
        base = CpdThresholds()
        tokens = {base.token()}
        variants = {
            "window": 64, "min_segment": 6, "n_permutations": 299,
            "p_threshold": 0.02, "min_effect": 0.05, "seed": 11,
            "stabilize_intervals": 3, "min_interval_samples": 2,
            "cusum_baseline": 12, "cusum_drift": 0.5,
            "cusum_threshold": 6.0,
        }
        assert set(variants) == {f.name for f in fields(base)}
        for name, value in variants.items():
            tokens.add(CpdThresholds(**{name: value}).token())
        assert len(tokens) == len(variants) + 1

    def test_token_is_hashable_and_stable(self):
        assert CpdThresholds().token() == CpdThresholds().token()
        assert hash(CpdThresholds().token()) == hash(CpdThresholds().token())
