"""CPD detectors inside the online pipeline (acceptance scenario).

The issue's integration criterion: a CPD detector family member runs in
an :class:`OnlineSession` behind the region monitor's
``detector_factory`` hook, alongside the watchdog and telemetry, with no
new plumbing — and telemetry stays result-inert.
"""

import pytest

from repro.core import MonitorThresholds
from repro.cpd import CpdThresholds, cpd_detector_factory
from repro.cpd.detectors import ChangePointDetector
from repro.monitor.online import OnlineSession
from repro.monitor.watchdog import WatchdogConfig
from repro.program.behavior import RegionSpec, bottleneck_profile
from repro.program.binary import BinaryBuilder, loop
from repro.program.workload import Steady, WorkloadScript, mixture
from repro.sampling import simulate_sampling
from repro.telemetry.bus import EventBus, capture
from repro.telemetry.events import PhaseChange, StateTransition
from repro.telemetry.sinks import InMemorySink

BUFFER = 256


def build_setup():
    """Two-region binary whose regions trade places mid-run."""
    builder = BinaryBuilder(base=0x10000)
    builder.procedure("p_a", [loop("a", body=12)], at=0x20000)
    builder.procedure("p_b", [loop("b", body=12)], at=0x80000)
    binary = builder.build()
    regions = {
        "a": RegionSpec("a", *binary.loop_span("a"),
                        profiles={"main": bottleneck_profile(16, {4: 90.0})}),
        "b": RegionSpec("b", *binary.loop_span("b"),
                        profiles={"main": bottleneck_profile(16, {9: 90.0})}),
    }
    workload = WorkloadScript([
        Steady(15_000_000, mixture(("a", 0.8), ("b", 0.2))),
        Steady(15_000_000, mixture(("a", 0.2), ("b", 0.8))),
    ])
    stream = simulate_sampling(regions, workload, 2000, seed=9)
    return binary, stream


def run_session(kind, telemetry=None, watchdog=None):
    binary, stream = build_setup()
    session = OnlineSession(
        binary, MonitorThresholds(buffer_size=BUFFER), run_gpd=False,
        watchdog=watchdog, telemetry=telemetry,
        detector_factory=cpd_detector_factory(
            kind, cpd=CpdThresholds(stabilize_intervals=2)))
    session.feed_stream(stream)
    return session


def monitor_state(session):
    """Everything downstream consumers read off a finished session."""
    monitor = session.monitor
    detectors = monitor._detectors
    return {
        "fractions": monitor.stable_time_fractions(),
        "counts": monitor.phase_change_counts(),
        "ucr": monitor.ucr.history,
        "events": [(rid, e.interval_index, e.kind)
                   for report in session.reports
                   for rid, e in report.events],
        "changes": {rid: list(d.change_points)
                    for rid, d in detectors.items()
                    if isinstance(d, ChangePointDetector)},
    }


@pytest.mark.parametrize("kind", ["edivisive", "cusum"])
class TestSessionIntegration:
    def test_session_runs_with_watchdog_and_telemetry(self, kind):
        bus = EventBus()
        with capture(InMemorySink(), bus=bus) as sink:
            session = run_session(kind, telemetry=bus,
                                  watchdog=WatchdogConfig())
        assert session.stats.intervals > 0
        assert session.watchdog is not None
        # Both regions ran CPD detectors; every region detector is ours.
        for detector in session.monitor._detectors.values():
            assert isinstance(detector, ChangePointDetector)
        transitions = sink.by_type(StateTransition)
        assert transitions
        assert {e.detector for e in transitions} == {kind}
        changes = sink.by_type(PhaseChange)
        assert changes
        assert {e.detector for e in changes} == {kind}

    def test_local_callbacks_fire_on_cpd_events(self, kind):
        binary, stream = build_setup()
        session = OnlineSession(
            binary, MonitorThresholds(buffer_size=BUFFER), run_gpd=False,
            detector_factory=cpd_detector_factory(
                kind, cpd=CpdThresholds(stabilize_intervals=2)))
        seen = []
        session.on_local_change(lambda rid, event: seen.append((rid, event)))
        session.feed_stream(stream)
        assert seen
        assert all(event.detail.startswith(kind) for _, event in seen)
        assert session.stats.local_events == len(seen)

    def test_telemetry_is_result_inert(self, kind):
        silent = run_session(kind, telemetry=EventBus(),
                             watchdog=WatchdogConfig())
        bus = EventBus()
        with capture(InMemorySink(), bus=bus) as sink:
            loud = run_session(kind, telemetry=bus,
                               watchdog=WatchdogConfig())
        assert sink.events  # instrumentation actually recorded
        a, b = monitor_state(silent), monitor_state(loud)
        assert a["fractions"] == b["fractions"]
        assert a["counts"] == b["counts"]
        assert a["ucr"] == b["ucr"]
        assert a["events"] == b["events"]
        assert a["changes"] == b["changes"]
        assert [(e.action, e.rid, e.interval_index)
                for e in silent.watchdog_events] \
            == [(e.action, e.rid, e.interval_index)
                for e in loud.watchdog_events]

    def test_watchdog_can_reset_a_cpd_detector(self, kind):
        # A region that goes quiet long enough trips starvation; the
        # watchdog's deoptimize path calls detector.reset(), which the
        # CPD contract supports (records survive, state re-enters
        # UNSTABLE).  Exercised indirectly: the session must complete
        # with a tight starvation budget without raising.
        binary, stream = build_setup()
        session = OnlineSession(
            binary, MonitorThresholds(buffer_size=BUFFER), run_gpd=False,
            watchdog=WatchdogConfig(starvation_intervals=2,
                                    stuck_unstable_intervals=4),
            detector_factory=cpd_detector_factory(kind))
        session.feed_stream(stream)
        assert session.stats.intervals > 0
