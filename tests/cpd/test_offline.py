"""Offline (hierarchical) E-divisive over scalar series."""

import numpy as np
import pytest

from repro.cpd import ChangePoint, e_divisive


class TestSingleStep:
    def test_step_is_found_at_the_exact_index(self):
        series = [1.0] * 6 + [2.0] * 6
        changes = e_divisive(series)
        assert len(changes) == 1
        change = changes[0]
        assert change.index == 6
        assert change.before_mean == pytest.approx(1.0)
        assert change.after_mean == pytest.approx(2.0)
        assert change.delta_pct == pytest.approx(100.0)
        assert change.p_value < 0.05
        assert change.confidence == pytest.approx(1.0 - change.p_value)

    def test_flat_series_yields_nothing(self):
        assert e_divisive([3.0] * 12) == []

    def test_noisy_flat_series_yields_nothing(self):
        rng = np.random.default_rng(2)
        series = 5.0 + 0.01 * rng.standard_normal(16)
        assert e_divisive(series, p_threshold=0.01) == []

    def test_too_short_series_yields_nothing(self):
        assert e_divisive([1.0, 9.0, 1.0, 9.0, 1.0], min_segment=3) == []


class TestRecursion:
    def test_two_steps_are_both_found_with_adjacent_segment_means(self):
        series = [1.0] * 6 + [4.0] * 6 + [2.0] * 6
        changes = e_divisive(series)
        assert [c.index for c in changes] == [6, 12]
        first, second = changes
        assert first.before_mean == pytest.approx(1.0)
        assert first.after_mean == pytest.approx(4.0)
        assert second.before_mean == pytest.approx(4.0)
        assert second.after_mean == pytest.approx(2.0)
        assert second.delta_pct == pytest.approx(-50.0)

    def test_zero_before_mean_reports_infinite_delta(self):
        changes = e_divisive([0.0] * 6 + [1.0] * 6)
        assert len(changes) == 1
        assert changes[0].delta_pct == float("inf")


class TestDeterminism:
    def test_same_inputs_same_report(self):
        rng = np.random.default_rng(4)
        series = np.concatenate([rng.normal(1.0, 0.05, 10),
                                 rng.normal(1.6, 0.05, 10)])
        assert e_divisive(series, seed=13) == e_divisive(series, seed=13)

    def test_changepoint_is_a_frozen_value_object(self):
        change = ChangePoint(index=3, p_value=0.01, before_mean=1.0,
                             after_mean=2.0, delta_pct=100.0)
        with pytest.raises(AttributeError):
            change.index = 4
