"""The `cpd` scoreboard experiment: ground truth, scoring, acceptance."""

import math

import numpy as np
import pytest

from repro.experiments.config import BASE_PERIOD, ExperimentConfig
from repro.experiments.extra_cpd import (SCENARIOS, ground_truth_changes,
                                         interval_histograms, run,
                                         score_detections, truth_for_stream,
                                         warm_targets)

CONFIG = ExperimentConfig(scale=0.05)


@pytest.fixture(scope="module")
def result():
    return run(CONFIG)


class TestScoring:
    def test_greedy_in_order_matching(self):
        metrics = score_detections([5, 30], [4, 20], n_intervals=100,
                                   tolerance=8)
        assert metrics["matched"] == 1
        assert metrics["mean_lag"] == pytest.approx(1.0)
        assert metrics["spurious"] == 1
        assert metrics["spurious_per_100"] == pytest.approx(1.0)
        assert metrics["missed_pct"] == pytest.approx(50.0)

    def test_each_detection_matches_at_most_one_truth(self):
        # One detection can't satisfy two nearby true changes.
        metrics = score_detections([6], [4, 6], n_intervals=50, tolerance=8)
        assert metrics["matched"] == 1
        assert metrics["missed_pct"] == pytest.approx(50.0)

    def test_detections_before_a_change_are_spurious(self):
        metrics = score_detections([3], [4], n_intervals=50, tolerance=8)
        assert metrics["matched"] == 0
        assert metrics["spurious"] == 1

    def test_empty_cases(self):
        clean = score_detections([], [], n_intervals=10)
        assert clean["missed_pct"] == 0.0
        assert math.isnan(clean["mean_lag"])
        assert clean["spurious_per_100"] == 0.0


class TestGroundTruth:
    def test_applu_has_its_two_phase_boundaries(self):
        from repro.experiments.base import benchmark_for
        model = benchmark_for("173.applu", CONFIG)
        pieces = model.workload.compile()
        n_intervals = pieces[-1].end // (CONFIG.buffer_size * BASE_PERIOD)
        changes = ground_truth_changes(model, BASE_PERIOD,
                                       CONFIG.buffer_size, n_intervals)
        # Three explicit phases -> two boundaries (each may cluster to
        # a single interval), strictly increasing, interior indexes.
        assert len(changes) == 2
        assert all(0 < c < n_intervals for c in changes)
        assert changes == sorted(changes)

    def test_no_change_workload_has_empty_truth(self):
        from repro.experiments.base import benchmark_for
        model = benchmark_for("171.swim", CONFIG)
        pieces = model.workload.compile()
        n_intervals = pieces[-1].end // (CONFIG.buffer_size * BASE_PERIOD)
        assert ground_truth_changes(model, BASE_PERIOD, CONFIG.buffer_size,
                                    n_intervals) == []

    def test_faulted_stream_truth_maps_through_surviving_samples(self):
        from repro.experiments.base import benchmark_for, stream_for
        from repro.experiments.extra_fault_sweep import PLANS
        model = benchmark_for("173.applu", CONFIG)
        plans = dict(PLANS)
        clean = stream_for(model, BASE_PERIOD, CONFIG, None)
        faulted = stream_for(model, BASE_PERIOD, CONFIG, plans["drop20"])
        truth_clean = truth_for_stream(model, BASE_PERIOD,
                                       CONFIG.buffer_size, clean)
        truth_faulted = truth_for_stream(model, BASE_PERIOD,
                                         CONFIG.buffer_size, faulted)
        assert len(truth_clean) == len(truth_faulted) == 2
        # Dropping samples compresses the timeline: every faulted-truth
        # index lands at or before its clean counterpart.
        assert all(f <= c for f, c in zip(truth_faulted, truth_clean))
        assert truth_faulted[-1] < faulted.n_intervals(CONFIG.buffer_size)

    def test_interval_histograms_shape_and_mass(self):
        from repro.experiments.base import benchmark_for, stream_for
        model = benchmark_for("171.swim", CONFIG)
        stream = stream_for(model, BASE_PERIOD, CONFIG, None)
        histograms = interval_histograms(stream, CONFIG.buffer_size)
        n_intervals = stream.n_intervals(CONFIG.buffer_size)
        assert histograms.shape == (n_intervals, 64)
        assert np.all(histograms.sum(axis=1) == CONFIG.buffer_size)


class TestScoreboard:
    def test_every_scenario_and_detector_is_scored(self, result):
        scoreboard = result.extras["scoreboard"]
        assert set(scoreboard) == {label for label, _, _ in SCENARIOS}
        for per_detector in scoreboard.values():
            assert set(per_detector) == {"lpd", "gpd", "edivisive", "cusum"}
        assert len(result.rows) == len(SCENARIOS) * 4

    def test_acceptance_edivisive_spurious_at_most_lpd_on_clean_rung(
            self, result):
        clean = result.extras["scoreboard"]["173.applu/clean"]
        assert clean["edivisive"]["spurious"] <= clean["lpd"]["spurious"]

    def test_edivisive_finds_every_applu_change_cleanly(self, result):
        clean = result.extras["scoreboard"]["173.applu/clean"]["edivisive"]
        assert clean["truth"] == 2
        assert clean["matched"] == clean["truth"]
        assert clean["spurious"] == 0
        assert clean["missed_pct"] == 0.0

    def test_no_change_control_is_quiet_for_cpd_detectors(self, result):
        swim = result.extras["scoreboard"]["171.swim/clean"]
        for detector in ("edivisive", "cusum"):
            assert swim[detector]["detected"] == 0
            assert swim[detector]["spurious_per_100"] == 0.0

    def test_warm_targets_cover_every_scenario(self):
        tasks = warm_targets(CONFIG)
        assert len(tasks) == len(SCENARIOS)
        assert {task.benchmark for task in tasks} \
            == {name for _, name, _ in SCENARIOS}
