"""Energy-statistic machinery: split scan, tie-breaks, permutation test."""

import numpy as np
import pytest

from repro.cpd.energy import (best_split, pairwise_distances,
                              permutation_pvalue, split_statistics)


def brute_force_q(points: np.ndarray, tau: int) -> float:
    """O(n^2) textbook evaluation of Q(tau), independent of the scan."""
    a, b = points[:tau], points[tau:]
    n, m = len(a), len(b)
    cross = np.mean([np.linalg.norm(x - y) for x in a for y in b])
    within_a = (sum(np.linalg.norm(a[i] - a[j])
                    for i in range(n) for j in range(n) if i != j)
                / (n * (n - 1)))
    within_b = (sum(np.linalg.norm(b[i] - b[j])
                    for i in range(m) for j in range(m) if i != j)
                / (m * (m - 1)))
    return (n * m) / (n + m) * (2 * cross - within_a - within_b)


class TestPairwiseDistances:
    def test_scalar_series_is_absolute_difference(self):
        dist = pairwise_distances(np.array([0.0, 3.0, 5.0]))
        expected = np.array([[0, 3, 5], [3, 0, 2], [5, 2, 0]], dtype=float)
        assert np.allclose(dist, expected)

    def test_vector_rows_are_euclidean(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        dist = pairwise_distances(points)
        assert dist[0, 1] == pytest.approx(5.0)
        assert np.allclose(dist, dist.T)
        assert np.allclose(np.diag(dist), 0.0)


class TestSplitStatistics:
    def test_hand_computed_two_clusters(self):
        # A = [0, 0], B = [10, 10]: within means are 0, cross mean is 10,
        # so e = 20 and Q = (2*2/4) * 20 = 20 at the only admissible split.
        dist = pairwise_distances(np.array([0.0, 0.0, 10.0, 10.0]))
        stats = split_statistics(dist, min_segment=2)
        assert stats.shape == (1,)
        assert stats[0] == pytest.approx(20.0)

    def test_matches_brute_force_on_random_points(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(12, 3))
        dist = pairwise_distances(points)
        stats = split_statistics(dist, min_segment=3)
        for offset, tau in enumerate(range(3, 10)):
            assert stats[offset] == pytest.approx(
                brute_force_q(points, tau), rel=1e-9)

    def test_too_short_sequence_yields_empty(self):
        dist = pairwise_distances(np.arange(3, dtype=float))
        assert split_statistics(dist, min_segment=2).size == 0


class TestBestSplit:
    def test_finds_the_true_boundary(self):
        series = np.array([0.0] * 6 + [5.0] * 6)
        tau, q = best_split(pairwise_distances(series), min_segment=2)
        assert tau == 6
        assert q > 0

    def test_ties_break_to_the_earliest_split(self):
        # A constant series scores identically (zero) at every split.
        dist = pairwise_distances(np.ones(8))
        tau, q = best_split(dist, min_segment=2)
        assert tau == 2
        assert q == pytest.approx(0.0)

    def test_inadmissible_returns_sentinel(self):
        dist = pairwise_distances(np.arange(3, dtype=float))
        assert best_split(dist, min_segment=2) == (0, float("-inf"))


class TestPermutationPvalue:
    def test_bounds_and_floor(self):
        series = np.array([0.0] * 8 + [50.0] * 8)
        dist = pairwise_distances(series)
        _, q = best_split(dist, min_segment=3)
        p = permutation_pvalue(dist, q, 3, 99,
                               np.random.default_rng(0))
        # Add-one estimator: p can never be 0 and never exceeds 1.
        assert 1.0 / 100 <= p <= 1.0
        assert p < 0.05

    def test_noise_split_is_not_significant(self):
        series = np.random.default_rng(5).normal(size=20)
        dist = pairwise_distances(series)
        _, q = best_split(dist, min_segment=4)
        p = permutation_pvalue(dist, q, 4, 199,
                               np.random.default_rng(1))
        assert p > 0.01

    def test_deterministic_under_a_fixed_generator(self):
        series = np.array([0.0, 1.0, 0.5, 4.0, 5.0, 4.5, 0.2, 4.8])
        dist = pairwise_distances(series)
        _, q = best_split(dist, min_segment=2)
        p1 = permutation_pvalue(dist, q, 2, 49, np.random.default_rng(9))
        p2 = permutation_pvalue(dist, q, 2, 49, np.random.default_rng(9))
        assert p1 == p2
