"""`repro-bench hunt`: regression hunting over BENCH_*.json history.

Includes the issue's acceptance scenario: a synthetic history with one
injected step change is flagged at exactly that snapshot — and a
no-change history produces no findings at all.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.cpd.hunt import (benchmark_series, hunt_report, load_snapshots,
                            machine_fingerprint, main, render_text)

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Deterministic "measurement noise" (relative), far below the step.
JITTER = (1.000, 0.998, 1.003, 0.999, 1.002, 0.997,
          1.001, 1.004, 0.996, 1.000, 1.002, 0.998)


def snapshot(stamp, medians, machine="ci-runner", cpus=8):
    """A minimal pytest-benchmark trajectory snapshot payload."""
    return {
        "datetime": stamp,
        "cpu_count": cpus,
        "git_rev": f"rev-{stamp}",
        "machine_info": {"node": machine, "machine": "x86_64",
                         "processor": "x86_64", "cpu": f"{machine}-cpu"},
        "benchmarks": {name: {"median": value}
                       for name, value in medians.items()},
    }


def history(step_at=None, step_factor=1.5, n=12, base=2.0e-3,
            machine="ci-runner"):
    """n snapshots of one benchmark; optional step injected at step_at."""
    out = []
    for i in range(n):
        value = base * JITTER[i % len(JITTER)]
        if step_at is not None and i >= step_at:
            value *= step_factor
        out.append((f"2026-01-{i + 1:02d}",
                    snapshot(f"2026-01-{i + 1:02d}",
                             {"test_bench": value}, machine=machine)))
    return out


class TestAcceptance:
    def test_injected_step_is_flagged_at_exactly_that_snapshot(self):
        report = hunt_report(history(step_at=6))
        assert report["series_tested"] == 1
        assert len(report["findings"]) == 1
        finding = report["findings"][0]
        assert finding["benchmark"] == "test_bench"
        assert finding["direction"] == "regression"
        assert finding["index"] == 6
        assert finding["at"] == "2026-01-07"
        assert finding["delta_pct"] == pytest.approx(50.0, abs=2.0)
        assert finding["confidence"] > 0.95

    def test_no_change_history_is_quiet(self):
        report = hunt_report(history(step_at=None))
        assert report["series_tested"] == 1
        assert report["findings"] == []

    def test_improvement_direction(self):
        report = hunt_report(history(step_at=6, step_factor=0.5))
        assert [f["direction"] for f in report["findings"]] == ["improvement"]


class TestMachineFingerprint:
    def test_fingerprint_combines_hardware_identity(self):
        fp = machine_fingerprint(snapshot("s", {}, machine="host-a", cpus=4))
        assert "host-a" in fp
        assert "cpus=4" in fp

    def test_missing_machine_info_collapses_to_unknown(self):
        assert machine_fingerprint({}) == "unknown"

    def test_series_segment_by_machine(self):
        # The same benchmark value-steps only across the machine change;
        # per-machine series are flat, so nothing may be flagged.
        snaps = history(step_at=None, n=8, machine="host-a") \
            + [(label, payload) for label, payload in
               ((f"2026-02-{i + 1:02d}",
                 snapshot(f"2026-02-{i + 1:02d}",
                          {"test_bench": 4.0e-3 * JITTER[i]},
                          machine="host-b")) for i in range(8))]
        series = benchmark_series(snaps)
        assert len(series) == 2
        report = hunt_report(snaps)
        assert report["findings"] == []

    def test_step_on_one_machine_is_attributed_to_it(self):
        snaps = history(step_at=4, n=12, machine="host-a") \
            + history(step_at=None, n=12, machine="host-b")
        report = hunt_report(snaps)
        assert len(report["findings"]) == 1
        assert "host-a" in report["findings"][0]["machine"]


class TestLoading:
    def test_snapshots_order_by_datetime_not_filename(self, tmp_path):
        newer = tmp_path / "BENCH_a.json"
        older = tmp_path / "BENCH_z.json"
        newer.write_text(json.dumps(snapshot("2026-05-02", {"b": 2.0})))
        older.write_text(json.dumps(snapshot("2026-05-01", {"b": 1.0})))
        loaded = load_snapshots([newer, older])
        assert [name for name, _ in loaded] \
            == ["BENCH_z.json", "BENCH_a.json"]

    def test_unreadable_files_are_skipped_with_a_warning(self, tmp_path,
                                                         capsys):
        good = tmp_path / "BENCH_good.json"
        good.write_text(json.dumps(snapshot("2026-05-01", {"b": 1.0})))
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        loaded = load_snapshots([bad, good, tmp_path / "BENCH_missing.json"])
        assert [name for name, _ in loaded] == ["BENCH_good.json"]
        err = capsys.readouterr().err
        assert "BENCH_bad.json" in err and "BENCH_missing.json" in err

    def test_benchmarks_without_medians_are_ignored(self):
        payload = snapshot("2026-05-01", {"kept": 1.0})
        payload["benchmarks"]["broken"] = {"mean": 2.0}
        series = benchmark_series([("s", payload)])
        assert set(series) == {("kept", machine_fingerprint(payload))}


class TestCli:
    def write_history(self, tmp_path, step_at):
        paths = []
        for label, payload in history(step_at=step_at):
            path = tmp_path / f"BENCH_{label}.json"
            path.write_text(json.dumps(payload))
            paths.append(str(path))
        return paths

    def test_text_report_on_a_regression(self, tmp_path, capsys):
        paths = self.write_history(tmp_path, step_at=6)
        assert main(["hunt", *paths]) == 0
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "test_bench" in out

    def test_strict_exits_nonzero_on_regression_only(self, tmp_path, capsys):
        paths = self.write_history(tmp_path, step_at=6)
        assert main(["hunt", "--strict", *paths]) == 1
        capsys.readouterr()
        clean_dir = tmp_path / "clean"
        clean_dir.mkdir()
        clean_paths = []
        for label, payload in history(step_at=None):
            path = clean_dir / f"BENCH_{label}.json"
            path.write_text(json.dumps(payload))
            clean_paths.append(str(path))
        assert main(["hunt", "--strict", *clean_paths]) == 0

    def test_json_format_round_trips(self, tmp_path, capsys):
        paths = self.write_history(tmp_path, step_at=6)
        assert main(["hunt", "--format", "json", *paths]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["series_tested"] == 1
        assert len(report["findings"]) == 1

    def test_empty_history_reports_and_exits_zero(self, capsys):
        assert main(["hunt", "--strict", "/nonexistent/BENCH_x.json"]) == 0
        out = capsys.readouterr().out
        assert "0 series tested" in out

    def test_render_text_quiet_history(self):
        text = render_text(hunt_report(history(step_at=None)))
        assert "no statistically significant changes" in text


class TestBenchCompareGuard:
    def test_bench_compare_shares_the_fingerprint_implementation(self):
        # Satellite (f): the pairwise gate's cross-machine warning and
        # hunt's per-machine series segmentation must agree on what "a
        # machine" is — bench_compare imports the function from here.
        scripts = str(REPO_ROOT / "scripts")
        if scripts not in sys.path:
            sys.path.insert(0, scripts)
        try:
            import bench_compare
        finally:
            sys.path.remove(scripts)
        assert bench_compare.machine_fingerprint is machine_fingerprint
