"""Online CPD detectors: contract compliance, detection, telemetry tags."""

import numpy as np
import pytest

from repro.core.histogram import RegionHistogram
from repro.core.states import PhaseEventKind, PhaseState
from repro.cpd import (ChangePointDetector, CpdThresholds, CusumDetector,
                       EDivisiveDetector, cpd_detector_factory)
from repro.telemetry.bus import EventBus, capture
from repro.telemetry.events import PhaseChange, StateTransition
from repro.telemetry.sinks import InMemorySink

N_BINS = 8

#: Two clearly separated count patterns over N_BINS slots.
PATTERN_A = np.array([100, 40, 5, 5, 0, 0, 0, 0], dtype=float)
PATTERN_B = np.array([0, 0, 0, 5, 5, 40, 100, 0], dtype=float)


def jittered(pattern, n, seed):
    """n noisy copies of a count pattern (jitter far below min_effect)."""
    rng = np.random.default_rng(seed)
    return [np.maximum(pattern + rng.integers(-2, 3, size=pattern.size), 0)
            for _ in range(n)]


def feed(detector, sequences, start=0):
    index = start
    for counts in sequences:
        detector.observe(counts, index)
        index += 1
    return index


class TestEDivisiveDetection:
    def test_detects_an_injected_shift_once(self):
        detector = EDivisiveDetector(N_BINS)
        feed(detector, jittered(PATTERN_A, 30, seed=1))
        feed(detector, jittered(PATTERN_B, 30, seed=2), start=30)
        assert len(detector.change_points) == 1
        change = detector.change_points[0]
        # First testable window containing >= min_segment post-change
        # points sits a few intervals after the true boundary at 30.
        assert 30 <= change <= 30 + 2 * detector.cpd.min_segment
        assert detector.change_scores[0] < detector.cpd.p_threshold

    def test_no_change_series_stays_quiet_and_stabilizes(self):
        detector = EDivisiveDetector(N_BINS)
        feed(detector, jittered(PATTERN_A, 40, seed=3))
        assert detector.change_points == []
        assert detector.in_stable_phase
        kinds = [event.kind for event in detector.events]
        assert kinds == [PhaseEventKind.BECAME_STABLE]

    def test_boundary_crossings_bracket_the_change(self):
        detector = EDivisiveDetector(N_BINS)
        feed(detector, jittered(PATTERN_A, 30, seed=1))
        feed(detector, jittered(PATTERN_B, 30, seed=2), start=30)
        kinds = [event.kind for event in detector.events]
        assert kinds == [PhaseEventKind.BECAME_STABLE,
                         PhaseEventKind.BECAME_UNSTABLE,
                         PhaseEventKind.BECAME_STABLE]
        assert detector.phase_change_count() == 3
        assert detector.events[1].detail.startswith("edivisive ")

    def test_trajectory_is_deterministic(self):
        def run():
            detector = EDivisiveDetector(N_BINS, cpd=CpdThresholds(seed=11))
            feed(detector, jittered(PATTERN_A, 25, seed=4))
            feed(detector, jittered(PATTERN_B, 25, seed=5), start=25)
            return (detector.change_points, detector.change_scores,
                    [o.statistic for o in detector.observations])
        assert run() == run()


class TestCusumHandComputed:
    def test_z_scored_accumulation_matches_hand_arithmetic(self):
        # Baseline of 4 distributions: [1,0] x3 and [0.9,0.1].
        #   center       = [0.975, 0.025]
        #   deviations   = 0.025*sqrt(2) x3, 0.075*sqrt(2)
        #   noise_mean   = 0.0530330
        #   noise_scale  = std = 0.0306186  (above the 0.25*mean floor)
        # The shifted interval [0,1] deviates by 0.975*sqrt(2), i.e.
        # z = 43.3013; minus drift 1.0 the statistic lands at 42.3013,
        # far over h = 8, so it fires immediately with score z'/h.
        cpd = CpdThresholds(cusum_baseline=4)
        detector = CusumDetector(2, cpd=cpd)
        for index, counts in enumerate([[10, 0], [10, 0], [10, 0], [9, 1]]):
            detector.observe(np.array(counts, dtype=float), index)
        assert detector.change_points == []
        detector.observe(np.array([0.0, 10.0]), 4)
        assert detector.change_points == [4]
        assert detector.change_scores[0] == pytest.approx(42.3013 / 8.0,
                                                          rel=1e-4)

    def test_baseline_like_intervals_never_fire(self):
        detector = CusumDetector(2)
        rng = np.random.default_rng(6)
        for index in range(40):
            counts = np.array([100 + rng.integers(-3, 4),
                               10 + rng.integers(-3, 4)], dtype=float)
            detector.observe(counts, index)
        assert detector.change_points == []
        assert detector.in_stable_phase

    def test_relearns_baseline_after_a_change(self):
        detector = CusumDetector(N_BINS)
        feed(detector, jittered(PATTERN_A, 12, seed=7))
        feed(detector, jittered(PATTERN_B, 20, seed=8), start=12)
        assert detector.change_points == [12]
        # Post-change: baseline relearned from B intervals, stable again.
        assert detector.in_stable_phase


class TestObserveContract:
    @pytest.mark.parametrize("cls", [EDivisiveDetector, CusumDetector])
    def test_none_empty_and_starved_intervals_hold(self, cls):
        cpd = CpdThresholds(min_interval_samples=50)
        detector = cls(N_BINS, cpd=cpd)
        feed(detector, jittered(PATTERN_A, 15, seed=9))
        state = detector.state
        statistic = detector.last_statistic
        active = detector.active_intervals
        assert detector.observe(None, 15) is None
        assert detector.observe(np.zeros(N_BINS), 16) is None
        starved = np.zeros(N_BINS)
        starved[0] = 10  # below min_interval_samples
        assert detector.observe(starved, 17) is None
        assert detector.state is state
        assert detector.last_statistic == statistic
        assert detector.active_intervals == active
        held = detector.observations[-3:]
        assert [o.had_samples for o in held] == [False, False, False]
        assert all(o.statistic == statistic for o in held)

    def test_region_histogram_input_is_accepted(self):
        detector = EDivisiveDetector(4)
        histogram = RegionHistogram.from_counts(0x1000, [5, 10, 2, 3])
        detector.observe(histogram, 0)
        assert detector.active_intervals == 1
        empty = RegionHistogram(0x1000, 0x1000 + 4 * 4)
        detector.observe(empty, 1)
        assert detector.active_intervals == 1

    def test_wrong_histogram_width_raises(self):
        detector = EDivisiveDetector(N_BINS)
        with pytest.raises(ValueError, match="slots"):
            detector.observe(np.ones(N_BINS + 1), 0)

    def test_invalid_region_size_raises(self):
        with pytest.raises(ValueError):
            EDivisiveDetector(0)

    def test_reset_keeps_records_and_reenters_unstable(self):
        detector = EDivisiveDetector(N_BINS)
        feed(detector, jittered(PATTERN_A, 30, seed=1))
        feed(detector, jittered(PATTERN_B, 10, seed=2), start=30)
        events = list(detector.events)
        observations = len(detector.observations)
        changes = list(detector.change_points)
        assert changes
        detector.reset()
        assert detector.state is PhaseState.UNSTABLE
        assert not detector.in_stable_phase
        assert detector.last_statistic == 0.0
        assert detector.events == events
        assert len(detector.observations) == observations
        assert detector.change_points == changes

    def test_activity_statistics(self):
        detector = EDivisiveDetector(N_BINS)
        assert detector.stable_time_fraction() == 0.0
        feed(detector, jittered(PATTERN_A, 20, seed=3))
        assert detector.active_intervals == 20
        assert 0.0 < detector.stable_time_fraction() <= 1.0
        assert detector.stable_intervals \
            == round(detector.stable_time_fraction() * 20)


class TestFactory:
    def test_builders_accept_the_lpd_keyword_surface(self):
        for kind, cls in (("edivisive", EDivisiveDetector),
                          ("cusum", CusumDetector)):
            build = cpd_detector_factory(kind)
            detector = build(n_instructions=N_BINS, thresholds=None,
                             measure=None, telemetry=EventBus(),
                             region_id=3)
            assert isinstance(detector, cls)
            assert isinstance(detector, ChangePointDetector)
            assert detector.n_instructions == N_BINS

    def test_closed_over_thresholds_reach_the_detector(self):
        cpd = CpdThresholds(window=20, seed=19)
        build = cpd_detector_factory("edivisive", cpd=cpd)
        assert build(n_instructions=4).cpd is cpd

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown CPD detector"):
            cpd_detector_factory("prophet")


class TestTelemetryTags:
    @pytest.mark.parametrize("cls,tag", [(EDivisiveDetector, "edivisive"),
                                         (CusumDetector, "cusum")])
    def test_events_carry_the_detector_tag(self, cls, tag):
        bus = EventBus()
        detector = cls(N_BINS, telemetry=bus, region_id=5)
        with capture(InMemorySink(), bus=bus) as sink:
            feed(detector, jittered(PATTERN_A, 30, seed=1))
            feed(detector, jittered(PATTERN_B, 10, seed=2), start=30)
        transitions = [e for e in sink.events
                       if isinstance(e, StateTransition)]
        changes = [e for e in sink.events if isinstance(e, PhaseChange)]
        assert transitions and changes
        assert {e.detector for e in transitions} == {tag}
        assert {e.detector for e in changes} == {tag}
        assert {e.rid for e in transitions} == {5}
        # One transition per sampled interval, one change per boundary.
        assert len(transitions) == detector.active_intervals
        assert len(changes) == detector.phase_change_count()
