"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without also catching programming errors
such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object was constructed with invalid values."""


class AddressError(ReproError):
    """An address or address range was malformed (e.g. end before start)."""


class RegionError(ReproError):
    """A region operation failed (unknown region, overlapping id, ...)."""


class FormationError(RegionError):
    """Region formation could not build a region for a hot address."""


class WorkloadError(ReproError):
    """A workload script is malformed (empty mixture, negative duration)."""


class SamplingError(ReproError):
    """The PMU simulator was driven with invalid parameters."""


class FaultError(ReproError):
    """A fault plan could not be applied to a sample stream."""


class IngestError(ReproError):
    """A recorded trace could not be parsed, converted or replayed."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with an unknown or bad target."""


class ServeError(ReproError):
    """The fleet serving layer was misconfigured or misdriven."""


class SnapshotError(ServeError):
    """A worker snapshot could not be encoded, written or restored."""
