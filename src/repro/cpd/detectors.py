"""Online change-point detectors honoring the LPD observe contract.

Two detectors, one contract.  Both classes implement the full
:class:`~repro.core.lpd.LocalPhaseDetector` surface — ``observe()``,
``reset()``, ``state`` / ``in_stable_phase``, ``events`` /
``observations``, the activity counters and the Figure 13/14 statistics
— so they drop into :class:`~repro.monitor.region_monitor.RegionMonitor`
(via its ``detector_factory`` hook), :class:`~repro.monitor.online.
OnlineSession` and the :class:`~repro.monitor.watchdog.RegionWatchdog`
with no new plumbing, and emit the same telemetry taxonomy with their
own ``detector=`` tags (``"edivisive"`` / ``"cusum"``).

Where LPD is a hand-tuned FSM over a similarity score, these are
statistical tests over the recent interval history:

``EDivisiveDetector``
    Keeps a sliding window of per-interval feature distributions,
    scans every admissible split for the maximum energy statistic
    (:mod:`repro.cpd.energy`), and gates each candidate through a
    seeded permutation test.  A significant split is a *change point*:
    the window is truncated to the post-change suffix and the phase
    reads unstable until enough change-free intervals accumulate.

``CusumDetector``
    The classic cheap baseline: estimate a baseline distribution from
    the first intervals, then accumulate standardized deviations of
    each interval's distance-to-baseline with drift ``k`` and declare a
    change when the accumulated statistic crosses ``h``.

Phase semantics differ deliberately from LPD: a CPD phase is "no
statistically significant change recently", so both detectors also keep
``change_points`` — every significant detection, including ones fired
while already unstable — which is what the ``cpd`` scoring experiment
and `repro-bench hunt` consume.  ``events`` stays the LPD-contract list
of stable/unstable *boundary crossings* only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar

import numpy as np

from repro.core.histogram import RegionHistogram
from repro.core.states import (PhaseEvent, PhaseEventKind, PhaseState,
                               is_stable_state)
from repro.cpd.config import CpdThresholds
from repro.cpd.energy import best_split, pairwise_distances, permutation_pvalue
from repro.telemetry.bus import EventBus, get_bus
from repro.telemetry.events import PhaseChange, StateTransition

__all__ = ["CpdObservation", "ChangePointDetector", "EDivisiveDetector",
           "CusumDetector", "cpd_detector_factory"]


@dataclass(frozen=True, slots=True)
class CpdObservation:
    """Diagnostic record of one interval processed by a CPD detector.

    Mirrors :class:`~repro.core.lpd.LpdObservation`; ``statistic`` is
    the detector's test statistic (best-split energy ``Q`` for
    E-divisive, the accumulated CUSUM score) and holds its previous
    value across sample-starved intervals, like LPD's r-value.
    """

    interval_index: int
    statistic: float
    had_samples: bool
    state: PhaseState
    event: PhaseEvent | None


class ChangePointDetector:
    """Shared LPD-contract scaffolding of the CPD detector family.

    Subclasses implement :meth:`_ingest` — consume one normalized
    feature distribution, update the test statistic, and report whether
    a change point fired — and the base class runs the two-state
    stable/unstable machine, the starvation gate, the bookkeeping and
    the telemetry emission.

    Parameters mirror :class:`~repro.core.lpd.LocalPhaseDetector` so the
    region monitor's ``detector_factory`` hook can build either family;
    the LPD-specific ``thresholds``/``measure`` arguments are accepted
    and ignored (CPD knobs arrive via ``cpd``).
    """

    #: Telemetry tag (the ``detector=`` field of emitted events).
    detector_name: ClassVar[str] = ""

    def __init__(self, n_instructions: int,
                 cpd: CpdThresholds | None = None,
                 telemetry: EventBus | None = None,
                 region_id: int = -1) -> None:
        if n_instructions < 1:
            raise ValueError("a region must contain at least one instruction")
        self.n_instructions = n_instructions
        self.cpd = cpd or CpdThresholds()
        self._telemetry = telemetry if telemetry is not None else get_bus()
        self._rid = region_id
        # Seeded, region-salted generator: the subsystem's only RNG.
        # Draw count is a pure function of the observation sequence and
        # reset() leaves the stream position alone, so trajectories stay
        # deterministic (and telemetry never draws: result-inertness).
        self._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.cpd.seed,
                                   spawn_key=(region_id + 1,)))
        self._state = PhaseState.UNSTABLE
        self._statistic = 0.0
        self._calm_streak = 0
        self.events: list[PhaseEvent] = []
        self.observations: list[CpdObservation] = []
        #: Interval index of every statistically significant change,
        #: including ones detected while already unstable.
        self.change_points: list[int] = []
        #: p-value (E-divisive) or threshold-relative score (CUSUM) of
        #: each entry in :attr:`change_points`.
        self.change_scores: list[float] = []
        #: Intervals in which the region executed.
        self.active_intervals = 0
        #: Active intervals that ended on the stable side of the machine.
        self.stable_intervals = 0

    # -- public surface (LocalPhaseDetector contract) ---------------------

    @property
    def state(self) -> PhaseState:
        """Current machine state (two-state: UNSTABLE / STABLE)."""
        return self._state

    @property
    def in_stable_phase(self) -> bool:
        """Whether no significant change has been seen recently."""
        return is_stable_state(self._state)

    @property
    def last_statistic(self) -> float:
        """Most recent test statistic (0 before any execution)."""
        return self._statistic

    def observe(self,
                histogram: RegionHistogram | np.ndarray | None,
                interval_index: int) -> PhaseEvent | None:
        """Process one interval's histogram for this region.

        ``None`` / empty / starved intervals hold the statistic and
        leave the state untouched, exactly like LPD's no-sample rule.
        Returns the phase change emitted, if any.
        """
        counts = self._extract_counts(histogram)
        if counts is None:
            self.observations.append(CpdObservation(
                interval_index=interval_index,
                statistic=self._statistic,
                had_samples=False,
                state=self._state,
                event=None,
            ))
            return None

        self.active_intervals += 1
        feature = counts / counts.sum()
        before = self._state
        changed = self._ingest(feature, interval_index)

        if changed:
            self._calm_streak = 0
            self._state = PhaseState.UNSTABLE
        else:
            self._calm_streak += 1
            if (self._state is PhaseState.UNSTABLE
                    and self._calm_streak >= self.cpd.stabilize_intervals
                    and self._testable()):
                self._state = PhaseState.STABLE

        event: PhaseEvent | None = None
        if is_stable_state(before) != is_stable_state(self._state):
            kind = (PhaseEventKind.BECAME_STABLE
                    if is_stable_state(self._state)
                    else PhaseEventKind.BECAME_UNSTABLE)
            event = PhaseEvent(
                interval_index=interval_index,
                kind=kind,
                state_from=before,
                state_to=self._state,
                detail=f"{self.detector_name} stat={self._statistic:.4f}",
            )

        if is_stable_state(self._state):
            self.stable_intervals += 1
        self.observations.append(CpdObservation(
            interval_index=interval_index,
            statistic=self._statistic,
            had_samples=True,
            state=self._state,
            event=event,
        ))
        if event is not None:
            self.events.append(event)

        bus = self._telemetry
        if bus.enabled:
            bus.emit(StateTransition(
                interval_index=interval_index, detector=self.detector_name,
                rid=self._rid, state_from=before.value,
                state_to=self._state.value, metric=self._statistic))
            if event is not None:
                bus.emit(PhaseChange(
                    interval_index=interval_index,
                    detector=self.detector_name,
                    rid=self._rid, kind=event.kind.value,
                    state_from=before.value, state_to=self._state.value,
                    detail=event.detail))
        return event

    def reset(self) -> None:
        """Re-enter the initial unstable state, dropping the history.

        Used by the watchdog's graceful-degradation path.  Cumulative
        records (``events``/``observations``/``change_points``) survive,
        like :meth:`LocalPhaseDetector.reset`; the permutation generator
        keeps its stream position so a run stays deterministic.
        """
        self._state = PhaseState.UNSTABLE
        self._statistic = 0.0
        self._calm_streak = 0
        self._reset_model()

    def stable_time_fraction(self) -> float:
        """Fraction of the region's active intervals spent stable."""
        if self.active_intervals == 0:
            return 0.0
        return self.stable_intervals / self.active_intervals

    def phase_change_count(self) -> int:
        """Number of stable/unstable boundary crossings so far."""
        return len(self.events)

    # -- subclass hooks ----------------------------------------------------

    def _ingest(self, feature: np.ndarray, interval_index: int) -> bool:
        """Consume one feature distribution; return True on a change."""
        raise NotImplementedError

    def _reset_model(self) -> None:
        """Drop subclass model state (window / baseline)."""
        raise NotImplementedError

    def _testable(self) -> bool:
        """Whether the detector has enough history to have tested."""
        raise NotImplementedError

    # -- internals -----------------------------------------------------------

    def _extract_counts(
            self,
            histogram: RegionHistogram | np.ndarray | None) -> np.ndarray | None:
        if histogram is None:
            return None
        if isinstance(histogram, RegionHistogram):
            if histogram.is_empty():
                return None
            counts = np.asarray(histogram.counts, dtype=np.float64)
        else:
            counts = np.asarray(histogram, dtype=np.float64)
            if counts.sum() == 0:
                return None
        if counts.size != self.n_instructions:
            raise ValueError(
                f"histogram has {counts.size} slots, detector expects "
                f"{self.n_instructions}")
        if counts.sum() < self.cpd.min_interval_samples:
            return None
        return counts.astype(np.float64, copy=True)


class EDivisiveDetector(ChangePointDetector):
    """Streaming E-divisive-means detector with permutation gating."""

    detector_name: ClassVar[str] = "edivisive"

    def __init__(self, n_instructions: int,
                 cpd: CpdThresholds | None = None,
                 telemetry: EventBus | None = None,
                 region_id: int = -1) -> None:
        super().__init__(n_instructions, cpd, telemetry, region_id)
        self._window: list[np.ndarray] = []

    def _ingest(self, feature: np.ndarray, interval_index: int) -> bool:
        cfg = self.cpd
        self._window.append(feature)
        if len(self._window) > cfg.window:
            del self._window[0]
        if len(self._window) < 2 * cfg.min_segment:
            return False

        dist = pairwise_distances(np.vstack(self._window))
        tau, q = best_split(dist, cfg.min_segment)
        self._statistic = max(q, 0.0)
        n = float(tau)
        m = float(len(self._window) - tau)
        effect = q / (n * m / (n + m)) if q > 0.0 else 0.0
        if effect < cfg.min_effect:
            # Negligible (or zero) divergence at every split: skip the
            # permutation draw.  The skip is itself a deterministic
            # function of the data, so trajectories stay reproducible.
            return False
        p_value = permutation_pvalue(dist, q, cfg.min_segment,
                                     cfg.n_permutations, self._rng)
        if p_value >= cfg.p_threshold:
            return False
        self.change_points.append(interval_index)
        self.change_scores.append(p_value)
        # Restart the window from scratch: the best split can sit within
        # min_segment of the window edge, so the post-split suffix may
        # still straddle the boundary and would re-detect it.  A clean
        # restart costs 2 * min_segment intervals of warm-up instead.
        self._window.clear()
        return True

    def _reset_model(self) -> None:
        self._window.clear()

    def _testable(self) -> bool:
        return len(self._window) >= 2 * self.cpd.min_segment


class CusumDetector(ChangePointDetector):
    """Tabular CUSUM over distance-to-baseline, the cheap comparison rung."""

    detector_name: ClassVar[str] = "cusum"

    def __init__(self, n_instructions: int,
                 cpd: CpdThresholds | None = None,
                 telemetry: EventBus | None = None,
                 region_id: int = -1) -> None:
        super().__init__(n_instructions, cpd, telemetry, region_id)
        self._baseline: list[np.ndarray] = []
        self._center: np.ndarray | None = None
        self._noise_mean = 0.0
        self._noise_scale = 1.0

    def _ingest(self, feature: np.ndarray, interval_index: int) -> bool:
        cfg = self.cpd
        if self._center is None:
            self._baseline.append(feature)
            if len(self._baseline) < cfg.cusum_baseline:
                return False
            stacked = np.vstack(self._baseline)
            self._center = stacked.mean(axis=0)
            deviations = np.sqrt(
                ((stacked - self._center) ** 2).sum(axis=1))
            self._noise_mean = float(deviations.mean())
            # The scale estimate from a handful of baseline intervals is
            # noisy-low, which would let ordinary sampling noise rack up
            # huge z-values; floor it at a fraction of the mean deviation
            # (a coefficient-of-variation floor).  Noise-free baselines
            # keep a tiny positive scale so any real deviation registers
            # while an identical interval still standardizes to zero.
            self._noise_scale = max(float(deviations.std()),
                                    0.25 * self._noise_mean, 1e-12)
            self._baseline.clear()
            return False

        deviation = float(np.sqrt(((feature - self._center) ** 2).sum()))
        z = (deviation - self._noise_mean) / self._noise_scale
        self._statistic = max(0.0, self._statistic + z - cfg.cusum_drift)
        if self._statistic <= cfg.cusum_threshold:
            return False
        self.change_points.append(interval_index)
        self.change_scores.append(self._statistic / cfg.cusum_threshold)
        # Re-learn the baseline from post-change intervals.
        self._center = None
        self._statistic = 0.0
        return True

    def _reset_model(self) -> None:
        self._baseline.clear()
        self._center = None
        self._noise_mean = 0.0
        self._noise_scale = 1.0

    def _testable(self) -> bool:
        return self._center is not None


def cpd_detector_factory(
        kind: str,
        cpd: CpdThresholds | None = None) -> Callable[..., ChangePointDetector]:
    """Build a ``RegionMonitor``-compatible detector factory.

    The monitor calls its factory with ``LocalPhaseDetector``'s keyword
    arguments (``n_instructions``/``thresholds``/``measure``/
    ``telemetry``/``region_id``); the returned builder accepts them,
    ignores the LPD-only knobs and constructs the requested CPD
    detector with the closed-over ``cpd`` thresholds::

        OnlineSession(binary,
                      detector_factory=cpd_detector_factory("edivisive"))
    """
    try:
        detector_cls = {"edivisive": EDivisiveDetector,
                        "cusum": CusumDetector}[kind]
    except KeyError:
        raise ValueError(f"unknown CPD detector kind: {kind!r}") from None

    def build(n_instructions: int, thresholds=None, measure=None,
              telemetry: EventBus | None = None,
              region_id: int = -1) -> ChangePointDetector:
        del thresholds, measure  # LPD-only knobs
        return detector_cls(n_instructions, cpd=cpd,
                            telemetry=telemetry, region_id=region_id)

    return build
