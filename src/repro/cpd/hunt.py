"""`repro-bench hunt`: E-divisive regression hunting over BENCH history.

The repo commits a ``BENCH_*.json`` trajectory snapshot per PR
(:mod:`scripts.bench_compare`).  ``bench_compare`` gates each new run
against the latest snapshot with fixed thresholds; this CLI closes the
Hunter-style loop instead: load the *whole* committed history, run the
offline E-divisive detector (:mod:`repro.cpd.offline`) over every
benchmark's median series, and report the statistically significant
regressions and improvements with confidence levels.

Series are segmented by machine fingerprint (``machine_info`` +
``cpu_count``) before detection, so a hardware change between snapshots
starts a fresh series instead of being flagged as a performance change
— the same guard ``bench_compare`` applies pairwise.

The CLI is a *non-blocking* CI report step: without ``--strict`` it
always exits 0, and with an empty or too-short history it reports what
it skipped rather than failing.
"""

from __future__ import annotations

import argparse
import glob
import json
import sys
from pathlib import Path
from typing import Any, Iterable

from repro.cpd.offline import ChangePoint, e_divisive

__all__ = ["machine_fingerprint", "load_snapshots", "benchmark_series",
           "hunt_report", "render_text", "main"]

#: Fields of ``machine_info`` that identify comparable hardware.
_MACHINE_KEYS = ("node", "machine", "processor", "cpu")


def machine_fingerprint(snapshot: dict[str, Any]) -> str:
    """Stable identity of the machine a snapshot was recorded on.

    Built from the pytest-benchmark ``machine_info`` block plus
    ``cpu_count``; snapshots missing both collapse to ``"unknown"`` (and
    therefore compare against each other, the pre-guard behavior).
    """
    info = snapshot.get("machine_info") or {}
    parts = [str(info[key]) for key in _MACHINE_KEYS if info.get(key)]
    cpu_count = snapshot.get("cpu_count")
    if cpu_count is not None:
        parts.append(f"cpus={cpu_count}")
    return "/".join(parts) if parts else "unknown"


def load_snapshots(paths: Iterable[str | Path]) -> list[tuple[str, dict]]:
    """Load snapshots as ``(label, payload)``, oldest first.

    Ordering key is the recorded ``datetime`` string (falling back to
    the filename, which embeds the same timestamp) — a pure function of
    the committed files.  Unreadable files are skipped with a warning on
    stderr rather than failing the report.
    """
    loaded: list[tuple[str, str, dict]] = []
    for path in paths:
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"hunt: skipping {path}: {exc}", file=sys.stderr)
            continue
        order_key = str(payload.get("datetime") or path.name)
        loaded.append((order_key, path.name, payload))
    loaded.sort(key=lambda item: (item[0], item[1]))
    return [(name, payload) for _, name, payload in loaded]


def benchmark_series(
        snapshots: list[tuple[str, dict]],
) -> dict[tuple[str, str], tuple[list[str], list[float]]]:
    """Per-(benchmark, machine) median series in snapshot order.

    Returns ``{(benchmark, machine_fingerprint): (labels, medians)}``
    where ``labels`` are the contributing snapshot names.  A benchmark
    absent from a snapshot simply skips that position (membership churn
    is not a change point).
    """
    series: dict[tuple[str, str], tuple[list[str], list[float]]] = {}
    for label, payload in snapshots:
        machine = machine_fingerprint(payload)
        for name, record in sorted((payload.get("benchmarks") or {}).items()):
            median = record.get("median")
            if median is None:
                continue
            labels, values = series.setdefault((name, machine), ([], []))
            labels.append(label)
            values.append(float(median))
    return series


def hunt_report(snapshots: list[tuple[str, dict]], *,
                min_segment: int = 3, n_permutations: int = 199,
                p_threshold: float = 0.05, seed: int = 7) -> dict[str, Any]:
    """Run offline E-divisive over every series; return the report.

    ``findings`` holds one entry per significant change point with its
    direction (``regression`` = median went up, ``improvement`` = down),
    the snapshot label where the new regime starts, and the confidence
    level; ``skipped`` counts the series too short to test.
    """
    findings: list[dict[str, Any]] = []
    skipped = 0
    series = benchmark_series(snapshots)
    for (benchmark, machine), (labels, values) in sorted(series.items()):
        if len(values) < 2 * min_segment:
            skipped += 1
            continue
        changes: list[ChangePoint] = e_divisive(
            values, min_segment=min_segment, n_permutations=n_permutations,
            p_threshold=p_threshold, seed=seed)
        for change in changes:
            findings.append({
                "benchmark": benchmark,
                "machine": machine,
                "direction": ("regression"
                              if change.after_mean > change.before_mean
                              else "improvement"),
                "at": labels[change.index],
                "index": change.index,
                "before_mean": change.before_mean,
                "after_mean": change.after_mean,
                "delta_pct": change.delta_pct,
                "p_value": change.p_value,
                "confidence": change.confidence,
            })
    return {
        "snapshots": [label for label, _ in snapshots],
        "series_tested": len(series) - skipped,
        "series_skipped_short": skipped,
        "findings": findings,
        "params": {
            "min_segment": min_segment,
            "n_permutations": n_permutations,
            "p_threshold": p_threshold,
            "seed": seed,
        },
    }


def render_text(report: dict[str, Any]) -> str:
    """Human-readable rendering of :func:`hunt_report`'s payload."""
    lines = [
        f"hunt: {len(report['snapshots'])} snapshot(s), "
        f"{report['series_tested']} series tested, "
        f"{report['series_skipped_short']} skipped (too short)",
    ]
    findings = report["findings"]
    if not findings:
        lines.append("hunt: no statistically significant changes")
        return "\n".join(lines)
    regressions = [f for f in findings if f["direction"] == "regression"]
    improvements = [f for f in findings if f["direction"] == "improvement"]
    lines.append(f"hunt: {len(regressions)} regression(s), "
                 f"{len(improvements)} improvement(s)")
    for finding in findings:
        marker = "REGRESSION " if finding["direction"] == "regression" \
            else "improvement"
        lines.append(
            f"  {marker} {finding['benchmark']} @ {finding['at']}: "
            f"{finding['before_mean']:.6g} -> {finding['after_mean']:.6g} "
            f"({finding['delta_pct']:+.1f}%, "
            f"confidence {finding['confidence']:.3f}) "
            f"[machine {finding['machine']}]")
    return "\n".join(lines)


def _default_paths() -> list[str]:
    return sorted(glob.glob("BENCH_*.json"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Statistical analysis over committed BENCH_*.json "
                    "benchmark history.")
    sub = parser.add_subparsers(dest="command", required=True)
    hunt = sub.add_parser(
        "hunt",
        help="E-divisive change-point hunt over benchmark median series")
    hunt.add_argument("paths", nargs="*",
                      help="snapshot files (default: ./BENCH_*.json)")
    hunt.add_argument("--min-segment", type=int, default=3,
                      help="minimum points per segment side (default 3)")
    hunt.add_argument("--permutations", type=int, default=199,
                      help="permutations per significance test (default 199)")
    hunt.add_argument("--p-threshold", type=float, default=0.05,
                      help="significance level (default 0.05)")
    hunt.add_argument("--seed", type=int, default=7,
                      help="permutation-test seed (default 7)")
    hunt.add_argument("--format", choices=("text", "json"), default="text")
    hunt.add_argument("--strict", action="store_true",
                      help="exit 1 when a regression is flagged "
                           "(default: always exit 0 — non-blocking report)")
    args = parser.parse_args(argv)

    paths = args.paths or _default_paths()
    snapshots = load_snapshots(paths)
    report = hunt_report(
        snapshots, min_segment=args.min_segment,
        n_permutations=args.permutations, p_threshold=args.p_threshold,
        seed=args.seed)
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_text(report))
    if args.strict and any(f["direction"] == "regression"
                           for f in report["findings"]):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
