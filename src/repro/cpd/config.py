"""Threshold configuration for the change-point-detection subsystem.

One frozen dataclass carries every knob of both online detectors
(:class:`~repro.cpd.detectors.EDivisiveDetector`,
:class:`~repro.cpd.detectors.CusumDetector`) plus the permutation-test
seed.  The same cache-key discipline as
:class:`~repro.faults.model.FaultSpec` applies: :meth:`token` enumerates
``fields(self)`` so any two configurations that could produce different
detector behavior produce different tokens, and the ``cpd-token``
rules in :mod:`repro.checks.cachekeys` audit that statically.

Determinism
-----------
The permutation test is the only randomized computation in the
subsystem.  Its generator is constructed from ``seed`` (salted with the
owning region id) via :func:`numpy.random.SeedSequence` — never from OS
entropy — so a detector's full trajectory is a pure function of
``(thresholds, observation sequence)``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ConfigError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True, slots=True)
class CpdThresholds:
    """Knobs of the E-divisive and CUSUM change-point detectors.

    Attributes
    ----------
    window:
        Maximum number of recent interval feature vectors the online
        E-divisive detector keeps.  The split search runs over this
        window each interval; after a detected change the window is
        truncated to the post-change suffix.
    min_segment:
        Minimum points on each side of a candidate split (the energy
        statistic needs at least two points per side to form within-
        segment distances, so this must be >= 2).
    n_permutations:
        Permutations drawn per significance test.  The smallest
        achievable p-value is ``1 / (n_permutations + 1)``, so
        ``p_threshold`` must stay above that to be reachable.
    p_threshold:
        Significance level: a split is declared a change point only when
        its permutation p-value falls strictly below this.
    min_effect:
        Minimum energy divergence ``e(A, B)`` at the best split for the
        permutation test to even run.  Guards long no-change runs
        against statistically-significant-but-negligible noise splits
        (the same role magnitude filters play in industrial CPD
        systems); measured empirically, true phase boundaries in the
        suite score >= 0.06 while sampling-noise splits stay <= 0.02.
    seed:
        Seed for the permutation generator (see module docstring).
    stabilize_intervals:
        Consecutive change-free sampled intervals (with a testable
        window) required before the detector reports a stable phase.
    min_interval_samples:
        Starvation gate, mirroring
        :attr:`~repro.core.thresholds.LpdThresholds.min_interval_samples`:
        intervals with fewer samples hold the detector.
    cusum_baseline:
        Sampled intervals the CUSUM detector collects to estimate its
        baseline mean feature and noise scale before testing begins.
    cusum_drift:
        The CUSUM slack ``k`` (in baseline noise units) subtracted from
        each standardized deviation before accumulation; deviations
        below it decay the statistic instead of growing it.
    cusum_threshold:
        The CUSUM decision threshold ``h`` (in baseline noise units):
        the accumulated statistic crossing it declares a change.
    """

    window: int = 32
    min_segment: int = 5
    n_permutations: int = 199
    p_threshold: float = 0.01
    min_effect: float = 0.03
    seed: int = 7
    stabilize_intervals: int = 4
    min_interval_samples: int = 1
    cusum_baseline: int = 8
    cusum_drift: float = 1.0
    cusum_threshold: float = 8.0

    def __post_init__(self) -> None:
        _require(self.min_segment >= 2,
                 "min_segment must be at least 2")
        _require(self.window >= 2 * self.min_segment,
                 "window must hold at least 2 * min_segment points")
        _require(self.n_permutations >= 1,
                 "n_permutations must be at least 1")
        _require(0.0 < self.p_threshold < 1.0,
                 "p_threshold must lie in (0, 1)")
        _require(self.p_threshold > 1.0 / (self.n_permutations + 1),
                 "p_threshold is unreachable: it must exceed "
                 "1 / (n_permutations + 1)")
        _require(self.min_effect >= 0.0,
                 "min_effect must be non-negative")
        _require(self.seed >= 0, "seed must be non-negative")
        _require(self.stabilize_intervals >= 1,
                 "stabilize_intervals must be at least 1")
        _require(self.min_interval_samples >= 1,
                 "min_interval_samples must be at least 1")
        _require(self.cusum_baseline >= 2,
                 "cusum_baseline must be at least 2")
        _require(self.cusum_drift >= 0.0,
                 "cusum_drift must be non-negative")
        _require(self.cusum_threshold > 0.0,
                 "cusum_threshold must be positive")

    def token(self) -> tuple:
        """Hashable, order-stable encoding of every knob.

        Enumerates ``fields(self)`` so a newly added knob can never be
        silently omitted — the same discipline as
        :meth:`repro.faults.model.FaultSpec.token`, audited by the
        ``cpd-token-incomplete`` rule.
        """
        return ("cpd",) + tuple(
            (f.name, getattr(self, f.name)) for f in fields(self))
