"""Offline E-divisive change-point detection for scalar series.

This is the Hunter/MongoDB formulation: given a complete ordered series
(benchmark medians over commits, in our case), recursively bisect it at
the most divergent split, keep the split only if a permutation test
calls it significant, and recurse into both halves.  The result is the
set of statistically significant change points with their effect sizes.

Everything is deterministic: one seeded generator drives every
permutation test and the recursion order is fixed (left half first), so
a given ``(series, knobs)`` pair always yields the same report — the
property `repro-bench hunt` relies on to be a reproducible CI step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpd.energy import best_split, pairwise_distances, permutation_pvalue

__all__ = ["ChangePoint", "e_divisive"]


@dataclass(frozen=True, slots=True)
class ChangePoint:
    """One significant change detected in a scalar series.

    Attributes
    ----------
    index:
        Position of the first observation of the *new* regime.
    p_value:
        Permutation p-value of the split (within its segment).
    before_mean / after_mean:
        Segment means immediately around the split.
    delta_pct:
        Relative change in percent (``after/before - 1``); ``inf`` when
        the before-mean is zero and the after-mean is not.
    """

    index: int
    p_value: float
    before_mean: float
    after_mean: float
    delta_pct: float

    @property
    def confidence(self) -> float:
        """``1 - p_value``: the report's "confidence" column."""
        return 1.0 - self.p_value


def _segment_split(points: np.ndarray, lo: int, hi: int,
                   min_segment: int, n_permutations: int,
                   p_threshold: float,
                   rng: np.random.Generator) -> tuple[int, float] | None:
    segment = points[lo:hi]
    if segment.shape[0] < 2 * min_segment:
        return None
    dist = pairwise_distances(segment)
    tau, q = best_split(dist, min_segment)
    if q <= 0.0:
        return None
    p_value = permutation_pvalue(dist, q, min_segment, n_permutations, rng)
    if p_value >= p_threshold:
        return None
    return lo + tau, p_value


def e_divisive(series: np.ndarray | list[float], *,
               min_segment: int = 3,
               n_permutations: int = 199,
               p_threshold: float = 0.05,
               seed: int = 7) -> list[ChangePoint]:
    """All significant change points of a scalar series, in index order.

    Hierarchical bisection: find the best split of the whole series,
    gate it through a permutation test, then recurse into each half
    until no segment yields a significant split.
    """
    points = np.asarray(series, dtype=np.float64).reshape(-1, 1)
    rng = np.random.default_rng(seed)
    found: list[tuple[int, float]] = []

    def bisect(lo: int, hi: int) -> None:
        hit = _segment_split(points, lo, hi, min_segment,
                             n_permutations, p_threshold, rng)
        if hit is None:
            return
        split, p_value = hit
        found.append((split, p_value))
        bisect(lo, split)
        bisect(split, hi)

    bisect(0, points.shape[0])
    found.sort()

    flat = points.ravel()
    boundaries = [0] + [idx for idx, _ in found] + [flat.size]
    changes: list[ChangePoint] = []
    for position, (idx, p_value) in enumerate(found):
        before = float(flat[boundaries[position]:idx].mean())
        after = float(flat[idx:boundaries[position + 2]].mean())
        if before != 0.0:
            delta_pct = (after / before - 1.0) * 100.0
        else:
            delta_pct = float("inf") if after != 0.0 else 0.0
        changes.append(ChangePoint(index=idx, p_value=p_value,
                                   before_mean=before, after_mean=after,
                                   delta_pct=delta_pct))
    return changes
