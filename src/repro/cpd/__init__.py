"""Change-point-detection subsystem (ROADMAP item 3).

The modern statistical counterpart to the paper's LPD/GPD detectors:

* :mod:`repro.cpd.detectors` — online E-divisive-means and CUSUM
  detectors implementing the ``LocalPhaseDetector`` observe contract,
  so they plug into the region monitor, ``OnlineSession``, the watchdog
  and telemetry via the existing ``detector_factory`` hook;
* :mod:`repro.cpd.energy` — the energy-statistic split scan and
  permutation test shared by the online and offline detectors;
* :mod:`repro.cpd.offline` — hierarchical offline E-divisive for
  complete scalar series;
* :mod:`repro.cpd.hunt` — the `repro-bench hunt` CLI: Hunter-style
  regression detection over the repo's committed ``BENCH_*.json``
  benchmark trajectory, segmented by machine.

The head-to-head scoring against LPD/GPD lives in
:mod:`repro.experiments.extra_cpd` (``repro-experiments cpd``).
"""

from repro.cpd.config import CpdThresholds
from repro.cpd.detectors import (ChangePointDetector, CpdObservation,
                                 CusumDetector, EDivisiveDetector,
                                 cpd_detector_factory)
from repro.cpd.energy import (best_split, pairwise_distances,
                              permutation_pvalue, split_statistics)
from repro.cpd.hunt import hunt_report, machine_fingerprint
from repro.cpd.offline import ChangePoint, e_divisive

__all__ = [
    "CpdThresholds",
    "ChangePointDetector", "CpdObservation", "EDivisiveDetector",
    "CusumDetector", "cpd_detector_factory",
    "pairwise_distances", "split_statistics", "best_split",
    "permutation_pvalue",
    "ChangePoint", "e_divisive",
    "hunt_report", "machine_fingerprint",
]
