"""Energy-statistic machinery for E-divisive change-point detection.

The divergence measure is the sample energy statistic of Szekely &
Rizzo, as used by Matteson & James' E-divisive and its industrial
descendants (DataStax Hunter, MongoDB's change-point system).  For a
candidate split of ``n + m`` ordered points into a prefix ``A`` (size
``n``) and suffix ``B`` (size ``m``)::

    e(A, B) = 2 * mean ||a - b||            (cross pairs)
              -   mean ||a - a'||           (within A, unordered pairs)
              -   mean ||b - b'||           (within B, unordered pairs)

    Q(tau)  = (n * m) / (n + m) * e(A, B)

``Q`` is zero in expectation when both sides share a distribution and
grows with both separation and segment size.  Significance is assessed
with a permutation test: the pairwise-distance matrix is re-indexed
under random permutations and the best-split statistic of each shuffle
is compared against the observed one.

Everything here is pure NumPy over a precomputed distance matrix; the
split scan uses 2-D prefix sums so evaluating all candidate splits of a
window of ``w`` points costs O(w^2) total, and each permutation reuses
the same matrix (no distance recomputation).
"""

from __future__ import annotations

import numpy as np

__all__ = ["pairwise_distances", "split_statistics", "best_split",
           "permutation_pvalue"]


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix of a ``(n, d)`` point array.

    A 1-D array is treated as ``n`` scalar observations.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim == 1:
        pts = pts[:, None]
    diffs = pts[:, None, :] - pts[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diffs, diffs))


def split_statistics(dist: np.ndarray, min_segment: int) -> np.ndarray:
    """``Q(tau)`` for every admissible split of an ordered sequence.

    ``dist`` is the full pairwise-distance matrix of the ``n`` ordered
    points; ``tau`` ranges over ``[min_segment, n - min_segment]``
    (prefix length).  Entry ``i`` of the result is the statistic for
    ``tau = min_segment + i``; the array is empty when the sequence is
    too short to split.
    """
    n_total = dist.shape[0]
    taus = np.arange(min_segment, n_total - min_segment + 1)
    if taus.size == 0 or min_segment < 2:
        return np.empty(0, dtype=np.float64)

    # P[i, j] = sum of dist[:i+1, :j+1]; block sums become O(1) reads.
    prefix = dist.cumsum(axis=0).cumsum(axis=1)
    total = prefix[-1, -1]

    within_a = prefix[taus - 1, taus - 1]          # ordered pairs, x2
    cross = prefix[taus - 1, -1] - within_a        # block [0:tau, tau:]
    within_b = total - 2.0 * cross - within_a

    n = taus.astype(np.float64)
    m = n_total - n
    e_hat = (2.0 * cross / (n * m)
             - within_a / (n * (n - 1.0))
             - within_b / (m * (m - 1.0)))
    return (n * m) / (n + m) * e_hat


def best_split(dist: np.ndarray, min_segment: int) -> tuple[int, float]:
    """The admissible split maximizing ``Q``; ties break to the earliest.

    Returns ``(tau, q)`` with ``tau`` the prefix length; ``(0, -inf)``
    when no admissible split exists.
    """
    stats = split_statistics(dist, min_segment)
    if stats.size == 0:
        return 0, float("-inf")
    arg = int(np.argmax(stats))
    return min_segment + arg, float(stats[arg])


def permutation_pvalue(dist: np.ndarray, observed_q: float,
                       min_segment: int, n_permutations: int,
                       rng: np.random.Generator) -> float:
    """Permutation p-value of an observed best-split statistic.

    Each permutation re-indexes the precomputed distance matrix (the
    distances themselves are permutation-invariant) and takes its best
    split.  The add-one estimator ``(1 + #{q_perm >= q_obs}) /
    (1 + n_permutations)`` never returns exactly zero.
    """
    n_total = dist.shape[0]
    exceeded = 0
    for _ in range(n_permutations):
        order = rng.permutation(n_total)
        shuffled = dist[np.ix_(order, order)]
        _, q_perm = best_split(shuffled, min_segment)
        if q_perm >= observed_q:
            exceeded += 1
    return (1 + exceeded) / (1 + n_permutations)
