"""Pluggable similarity measures for local phase detection.

The paper's detector uses Pearson's coefficient of correlation, but its
future-work section asks for "cheaper means of measuring similarity as the
Pearson's metric involves time consuming calculations".  This module makes
the measure a pluggable strategy and provides three cheaper alternatives
with the same interface and the same two required properties (Figure 8):

* a bottleneck shift by one instruction must score as *dissimilar*;
* a uniform scaling of all counts must score as *similar*.

Every measure maps a pair of equal-length count vectors to a score in
[-1, 1] where higher means more similar, so the LPD's ``r >= r_t`` test and
state machine work unchanged.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.core.correlation import pearson_r

__all__ = [
    "SimilarityMeasure",
    "PearsonSimilarity",
    "CosineSimilarity",
    "ManhattanOverlap",
    "TopKJaccard",
    "MEASURES",
    "get_measure",
]


class SimilarityMeasure(Protocol):
    """Strategy interface: score two per-instruction count vectors."""

    #: Short identifier used in configs and experiment output.
    name: str

    def __call__(self, stable: np.ndarray, current: np.ndarray) -> float:
        """Return a similarity score in [-1, 1]; higher is more similar."""
        ...


class PearsonSimilarity:
    """The paper's measure: Pearson's coefficient of correlation.

    Cost per comparison: ~10 multiply-adds per instruction slot plus two
    square roots (see :mod:`repro.core.correlation`).
    """

    name = "pearson"

    def __call__(self, stable: np.ndarray, current: np.ndarray) -> float:
        return pearson_r(stable, current)


class CosineSimilarity:
    """Cosine of the angle between the two count vectors.

    Cheaper than Pearson (no mean subtraction) and naturally invariant to
    uniform scaling.  Because raw counts are non-negative the score lies in
    [0, 1]; a bottleneck shift between disjoint hot slots scores 0.
    """

    name = "cosine"

    def __call__(self, stable: np.ndarray, current: np.ndarray) -> float:
        a = np.asarray(stable, dtype=np.float64)
        b = np.asarray(current, dtype=np.float64)
        norm = float(np.linalg.norm(a) * np.linalg.norm(b))
        if norm == 0.0:
            return 1.0 if a.sum() == b.sum() else 0.0
        return float(np.dot(a, b) / norm)


class ManhattanOverlap:
    """One minus the L1 distance between the *normalized* histograms.

    Equivalent to the histogram-intersection kernel on relative
    frequencies: ``1 - 0.5 * sum(|p_i - q_i|)``.  Costs one pass of adds
    and absolute values — the cheapest dense measure here.
    """

    name = "manhattan"

    def __call__(self, stable: np.ndarray, current: np.ndarray) -> float:
        a = np.asarray(stable, dtype=np.float64)
        b = np.asarray(current, dtype=np.float64)
        total_a = a.sum()
        total_b = b.sum()
        if total_a == 0.0 or total_b == 0.0:
            return 1.0 if total_a == total_b else 0.0
        return float(1.0 - 0.5 * np.abs(a / total_a - b / total_b).sum())


class TopKJaccard:
    """Jaccard similarity of the top-k hot instruction *sets*.

    The sparsest measure: only the identity of the k hottest slots matters,
    not their counts, so it is trivially scale-invariant and extremely
    cheap for large regions (a partial sort).  It is blunter than Pearson —
    redistributions among the same hot slots go unnoticed — which is
    exactly the cost/fidelity trade-off the ablation benchmark quantifies.
    """

    def __init__(self, k: int = 8) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.name = f"topk{k}"

    def _hot_set(self, counts: np.ndarray) -> frozenset[int]:
        nonzero = np.flatnonzero(counts)
        if nonzero.size == 0:
            return frozenset()
        if nonzero.size <= self.k:
            return frozenset(int(i) for i in nonzero)
        order = np.argpartition(counts, -self.k)[-self.k:]
        return frozenset(int(i) for i in order if counts[i] > 0)

    def __call__(self, stable: np.ndarray, current: np.ndarray) -> float:
        a = self._hot_set(np.asarray(stable))
        b = self._hot_set(np.asarray(current))
        if not a and not b:
            return 1.0
        union = len(a | b)
        return len(a & b) / union if union else 1.0


#: Registry of the built-in measures by name.
MEASURES: dict[str, SimilarityMeasure] = {
    "pearson": PearsonSimilarity(),
    "cosine": CosineSimilarity(),
    "manhattan": ManhattanOverlap(),
    "topk8": TopKJaccard(8),
}


def get_measure(name: str) -> SimilarityMeasure:
    """Look up a built-in similarity measure by name."""
    try:
        return MEASURES[name]
    except KeyError:
        known = ", ".join(sorted(MEASURES))
        raise KeyError(f"unknown similarity measure {name!r}; "
                       f"known measures: {known}") from None
