"""The Local Phase Detector (paper Figure 12).

One detector instance is attached to each monitored code region.  Per
interval it receives the region's sample histogram and compares it to the
region's *stable set* (``prev_hist`` in the paper's figure) using Pearson's
coefficient of correlation (or a pluggable cheaper measure).

Behavior fixed by the paper's prose:

* "Initially, a phase starts in the unstable state.  After two intervals,
  an r-value can be computed.  If this value is greater than a threshold
  r_t, then the state changes to less unstable."
* "As long as the phase is unstable or less unstable, the stable set of
  samples is updated to reflect the current set of samples.  Once the phase
  stabilizes, the stable set of samples is frozen till the state moves to
  an unstable state."
* "When no samples are obtained in an interval for a region, the value of
  r returned is the same as during the last interval" — and no state
  update happens (section 3.2.2: "Local phase detection will not try to
  compute region characteristics when no samples are obtained").
* Before any execution, r reads as 0 ("Initially, we see a value of 0 for
  both regions, as these regions do not execute from the start").
* r_t = 0.8.

The machine::

    UNSTABLE      --(r >= r_t)--> LESS_UNSTABLE   (stable set updated)
    UNSTABLE      --(r <  r_t)--> stay            (stable set updated)
    LESS_UNSTABLE --(r >= r_t)--> STABLE          [phase change; set frozen]
    LESS_UNSTABLE --(r <  r_t)--> UNSTABLE        (stable set updated)
    STABLE        --(r >= r_t)--> stay            (set stays frozen)
    STABLE        --(r <  r_t)--> LESS_STABLE     (grace; set stays frozen)
    LESS_STABLE   --(r >= r_t)--> STABLE          (recovery)
    LESS_STABLE   --(r <  r_t)--> UNSTABLE        [phase change; set updated]

``LESS_STABLE`` mirrors ``LESS_UNSTABLE``: one discordant interval does not
immediately revoke a stable phase, two in a row do.  Both phase-change
edges (the paper's dotted lines) are emitted as :class:`PhaseEvent`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.histogram import RegionHistogram
from repro.core.similarity import PearsonSimilarity, SimilarityMeasure
from repro.core.states import (PhaseEvent, PhaseEventKind, PhaseState,
                               is_stable_state)
from repro.core.thresholds import LpdThresholds
from repro.telemetry.bus import EventBus, get_bus
from repro.telemetry.events import (PhaseChange, StableSetFrozen,
                                    StableSetUpdated, StateTransition)

__all__ = ["LocalPhaseDetector", "LpdObservation"]


@dataclass(frozen=True, slots=True)
class LpdObservation:
    """Diagnostic record of one interval processed by a local detector.

    Attributes
    ----------
    interval_index:
        Global interval counter supplied by the caller.
    r_value:
        Similarity score reported for the interval.  Holds the previous
        value when the region received no samples.
    had_samples:
        Whether the region executed during the interval.
    state:
        Machine state after processing.
    event:
        Phase change emitted by this interval, if any.
    """

    interval_index: int
    r_value: float
    had_samples: bool
    state: PhaseState
    event: PhaseEvent | None


class LocalPhaseDetector:
    """Per-region phase detector using histogram similarity (LPD).

    Parameters
    ----------
    n_instructions:
        Number of instruction slots in the monitored region (used by the
        size-adaptive threshold extension).
    thresholds:
        LPD knobs; defaults to the paper's r_t = 0.8, non-adaptive.
    measure:
        Similarity strategy; defaults to the paper's Pearson correlation.
    telemetry:
        Event bus to emit :class:`~repro.telemetry.events.StateTransition`
        / phase-change / stable-set events into; defaults to the
        process-wide bus (disabled unless a sink is attached).
    region_id:
        The monitored region's id, used as the event label (``-1`` for a
        detector running outside a region monitor).
    """

    def __init__(self,
                 n_instructions: int,
                 thresholds: LpdThresholds | None = None,
                 measure: SimilarityMeasure | None = None,
                 telemetry: EventBus | None = None,
                 region_id: int = -1) -> None:
        if n_instructions < 1:
            raise ValueError("a region must contain at least one instruction")
        self.n_instructions = n_instructions
        self.thresholds = thresholds or LpdThresholds()
        self.measure: SimilarityMeasure = measure or PearsonSimilarity()
        self._telemetry = telemetry if telemetry is not None else get_bus()
        self._rid = region_id
        self._state = PhaseState.UNSTABLE
        self._stable_set: np.ndarray | None = None
        self._last_r = 0.0
        self.events: list[PhaseEvent] = []
        self.observations: list[LpdObservation] = []
        #: Intervals in which the region executed.
        self.active_intervals = 0
        #: Active intervals that ended on the stable side of the machine.
        self.stable_intervals = 0

    # -- public surface ---------------------------------------------------

    @property
    def state(self) -> PhaseState:
        """Current machine state."""
        return self._state

    @property
    def in_stable_phase(self) -> bool:
        """Whether the region is currently in a locally stable phase."""
        return is_stable_state(self._state)

    @property
    def last_r(self) -> float:
        """Most recently reported similarity value (0 before execution)."""
        return self._last_r

    @property
    def effective_threshold(self) -> float:
        """The r-threshold in force for this region's size."""
        return self.thresholds.threshold_for_size(self.n_instructions)

    def stable_set(self) -> np.ndarray | None:
        """Copy of the current stable-set histogram, or ``None`` if unset."""
        return None if self._stable_set is None else self._stable_set.copy()

    def observe(self,
                histogram: RegionHistogram | np.ndarray | None,
                interval_index: int) -> PhaseEvent | None:
        """Process one interval's histogram for this region.

        Pass ``None`` (or an all-zero histogram) when the region received
        no samples: the r-value holds and the state is untouched.
        Returns the phase change emitted, if any.
        """
        counts = self._extract_counts(histogram)
        if counts is None:
            self.observations.append(LpdObservation(
                interval_index=interval_index,
                r_value=self._last_r,
                had_samples=False,
                state=self._state,
                event=None,
            ))
            return None

        self.active_intervals += 1
        if self._stable_set is None:
            # First interval with samples: nothing to compare against yet.
            # The paper: "After two intervals, an r-value can be computed."
            self._stable_set = counts
            event = None
            if self._telemetry.enabled:
                self._telemetry.emit(StableSetUpdated(interval_index,
                                                      self._rid))
        else:
            self._last_r = float(self.measure(self._stable_set, counts))
            event = self._step(counts, interval_index)

        if is_stable_state(self._state):
            self.stable_intervals += 1
        self.observations.append(LpdObservation(
            interval_index=interval_index,
            r_value=self._last_r,
            had_samples=True,
            state=self._state,
            event=event,
        ))
        if event is not None:
            self.events.append(event)
        return event

    def reset(self) -> None:
        """Re-enter the initial unstable state, dropping the stable set.

        Used by the watchdog's graceful-degradation path: a deoptimized
        region re-evaluates its phase from scratch, while the cumulative
        ``events``/``observations`` records (figure statistics) survive.
        """
        self._state = PhaseState.UNSTABLE
        self._stable_set = None
        self._last_r = 0.0

    def stable_time_fraction(self) -> float:
        """Fraction of the region's active intervals spent stable (Fig 14)."""
        if self.active_intervals == 0:
            return 0.0
        return self.stable_intervals / self.active_intervals

    def phase_change_count(self) -> int:
        """Number of phase changes emitted so far (Figure 13)."""
        return len(self.events)

    # -- internals ----------------------------------------------------------

    def _extract_counts(
            self,
            histogram: RegionHistogram | np.ndarray | None) -> np.ndarray | None:
        if histogram is None:
            return None
        if isinstance(histogram, RegionHistogram):
            if histogram.is_empty():
                return None
            counts = np.asarray(histogram.counts, dtype=np.float64)
        else:
            counts = np.asarray(histogram, dtype=np.float64)
            if counts.sum() == 0:
                return None
        if counts.size != self.n_instructions:
            raise ValueError(
                f"histogram has {counts.size} slots, detector expects "
                f"{self.n_instructions}")
        if counts.sum() < self.thresholds.min_interval_samples:
            # Starved interval (lost interrupts, dropped samples): too few
            # samples to trust a comparison — insufficient data, hold.
            return None
        return counts.copy()

    def _step(self, counts: np.ndarray, interval_index: int) -> PhaseEvent | None:
        similar = self._last_r >= self.effective_threshold
        before = self._state
        set_updated = False
        set_frozen = False

        if self._state is PhaseState.UNSTABLE:
            self._state = (PhaseState.LESS_UNSTABLE if similar
                           else PhaseState.UNSTABLE)
            self._stable_set = counts
            set_updated = True
        elif self._state is PhaseState.LESS_UNSTABLE:
            if similar:
                self._state = PhaseState.STABLE
                # Stable set frozen from here on.
                set_frozen = True
            else:
                self._state = PhaseState.UNSTABLE
                self._stable_set = counts
                set_updated = True
        elif self._state is PhaseState.STABLE:
            if not similar:
                self._state = PhaseState.LESS_STABLE
        elif self._state is PhaseState.LESS_STABLE:
            if similar:
                self._state = PhaseState.STABLE
            else:
                self._state = PhaseState.UNSTABLE
                self._stable_set = counts
                set_updated = True

        event: PhaseEvent | None = None
        if is_stable_state(before) != is_stable_state(self._state):
            kind = (PhaseEventKind.BECAME_STABLE
                    if is_stable_state(self._state)
                    else PhaseEventKind.BECAME_UNSTABLE)
            event = PhaseEvent(
                interval_index=interval_index,
                kind=kind,
                state_from=before,
                state_to=self._state,
                detail=f"r={self._last_r:.4f}",
            )

        bus = self._telemetry
        if bus.enabled:
            bus.emit(StateTransition(
                interval_index=interval_index, detector="lpd",
                rid=self._rid, state_from=before.value,
                state_to=self._state.value, metric=self._last_r))
            if set_updated:
                bus.emit(StableSetUpdated(interval_index, self._rid))
            if set_frozen:
                bus.emit(StableSetFrozen(interval_index, self._rid))
            if event is not None:
                bus.emit(PhaseChange(
                    interval_index=interval_index, detector="lpd",
                    rid=self._rid, kind=event.kind.value,
                    state_from=before.value, state_to=self._state.value,
                    detail=event.detail))
        return event
