"""Phase states and phase-change events shared by both detectors.

The paper's two detectors (the centroid-based *Global Phase Detector* of
Figure 1 and the Pearson-correlation *Local Phase Detector* of Figure 12)
are both small finite state machines.  Their state sets overlap, so a single
:class:`PhaseState` enum serves both; each detector documents which subset it
uses.

The paper draws "dotted" transitions for the edges that constitute a *phase
change*: crossing the boundary between the stable side of the machine and the
unstable side.  :func:`is_stable_state` defines that boundary and
:class:`PhaseEvent` records each crossing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable


class PhaseState(enum.Enum):
    """States used by the GPD and LPD state machines.

    ``WARMUP`` is GPD-only (not enough centroid history to compute a band of
    stability yet).  The LPD uses ``UNSTABLE``, ``LESS_UNSTABLE``,
    ``LESS_STABLE`` and ``STABLE`` as in Figure 12 of the paper.
    """

    WARMUP = "warmup"
    UNSTABLE = "unstable"
    LESS_UNSTABLE = "less_unstable"
    LESS_STABLE = "less_stable"
    STABLE = "stable"


#: States that count as "in a stable phase" for phase-change accounting.
#:
#: ``LESS_STABLE`` sits on the stable side: it is the grace state entered
#: from ``STABLE`` on a single bad observation, before the detector commits
#: to a phase change.  ``LESS_UNSTABLE`` sits on the unstable side: the
#: detector has seen promising observations but has not yet declared a
#: stable phase.
_STABLE_SIDE = frozenset({PhaseState.STABLE, PhaseState.LESS_STABLE})


def is_stable_state(state: PhaseState) -> bool:
    """Return ``True`` if *state* lies on the stable side of the machine."""
    return state in _STABLE_SIDE


class PhaseEventKind(enum.Enum):
    """The two kinds of phase change (the paper's dotted transitions)."""

    BECAME_STABLE = "became_stable"
    BECAME_UNSTABLE = "became_unstable"


@dataclass(frozen=True, slots=True)
class PhaseEvent:
    """A single phase change emitted by a detector.

    Attributes
    ----------
    interval_index:
        Index of the sample-buffer interval at which the change occurred.
    kind:
        Whether the detector moved into or out of a stable phase.
    state_from, state_to:
        The concrete machine states on either side of the transition.
    detail:
        Free-form diagnostic string (e.g. the drift ratio or r-value that
        triggered the transition).
    """

    interval_index: int
    kind: PhaseEventKind
    state_from: PhaseState
    state_to: PhaseState
    detail: str = ""

    def is_stabilization(self) -> bool:
        """Return ``True`` if this event entered a stable phase."""
        return self.kind is PhaseEventKind.BECAME_STABLE


def count_phase_changes(events: Iterable[PhaseEvent]) -> int:
    """Count phase changes the way the paper's Figures 3 and 13 do.

    Every crossing of the stable/unstable boundary — in either direction —
    is a phase change (the paper: "the dotted lines indicate the state
    transitions that correspond to a phase change (moving from unstable to
    stable or vice versa)").
    """
    return sum(1 for _ in events)


def transition_crosses_boundary(before: PhaseState, after: PhaseState) -> bool:
    """Return ``True`` if moving *before* → *after* is a phase change."""
    return is_stable_state(before) != is_stable_state(after)
