"""Phase states, phase-change events, and declarative machine specs.

The paper's two detectors (the centroid-based *Global Phase Detector* of
Figure 1 and the Pearson-correlation *Local Phase Detector* of Figure 12)
are both small finite state machines.  Their state sets overlap, so a single
:class:`PhaseState` enum serves both; each detector documents which subset it
uses.

The paper draws "dotted" transitions for the edges that constitute a *phase
change*: crossing the boundary between the stable side of the machine and the
unstable side.  :func:`is_stable_state` defines that boundary and
:class:`PhaseEvent` records each crossing.

This module also carries the *declarative* transition tables of both
machines (:func:`lpd_machine_spec`, :func:`gpd_machine_spec`): every
(state, input-class) pair of each machine written out as data.  They are
the single source of truth the ``repro-check`` model checker
(:mod:`repro.checks.statemachine`) verifies the imperative
``LocalPhaseDetector``/``GlobalPhaseDetector`` implementations against —
completeness, determinism, reachability, phase-change labeling, and
step-for-step equivalence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator


class PhaseState(enum.Enum):
    """States used by the GPD and LPD state machines.

    ``WARMUP`` is GPD-only (not enough centroid history to compute a band of
    stability yet).  The LPD uses ``UNSTABLE``, ``LESS_UNSTABLE``,
    ``LESS_STABLE`` and ``STABLE`` as in Figure 12 of the paper.
    """

    WARMUP = "warmup"
    UNSTABLE = "unstable"
    LESS_UNSTABLE = "less_unstable"
    LESS_STABLE = "less_stable"
    STABLE = "stable"


#: States that count as "in a stable phase" for phase-change accounting.
#:
#: ``LESS_STABLE`` sits on the stable side: it is the grace state entered
#: from ``STABLE`` on a single bad observation, before the detector commits
#: to a phase change.  ``LESS_UNSTABLE`` sits on the unstable side: the
#: detector has seen promising observations but has not yet declared a
#: stable phase.
_STABLE_SIDE = frozenset({PhaseState.STABLE, PhaseState.LESS_STABLE})


def is_stable_state(state: PhaseState) -> bool:
    """Return ``True`` if *state* lies on the stable side of the machine."""
    return state in _STABLE_SIDE


class PhaseEventKind(enum.Enum):
    """The two kinds of phase change (the paper's dotted transitions)."""

    BECAME_STABLE = "became_stable"
    BECAME_UNSTABLE = "became_unstable"


@dataclass(frozen=True, slots=True)
class PhaseEvent:
    """A single phase change emitted by a detector.

    Attributes
    ----------
    interval_index:
        Index of the sample-buffer interval at which the change occurred.
    kind:
        Whether the detector moved into or out of a stable phase.
    state_from, state_to:
        The concrete machine states on either side of the transition.
    detail:
        Free-form diagnostic string (e.g. the drift ratio or r-value that
        triggered the transition).
    """

    interval_index: int
    kind: PhaseEventKind
    state_from: PhaseState
    state_to: PhaseState
    detail: str = ""

    def is_stabilization(self) -> bool:
        """Return ``True`` if this event entered a stable phase."""
        return self.kind is PhaseEventKind.BECAME_STABLE


def count_phase_changes(events: Iterable[PhaseEvent]) -> int:
    """Count phase changes the way the paper's Figures 3 and 13 do.

    Every crossing of the stable/unstable boundary — in either direction —
    is a phase change (the paper: "the dotted lines indicate the state
    transitions that correspond to a phase change (moving from unstable to
    stable or vice versa)").
    """
    return sum(1 for _ in events)


def transition_crosses_boundary(before: PhaseState, after: PhaseState) -> bool:
    """Return ``True`` if moving *before* → *after* is a phase change."""
    return is_stable_state(before) != is_stable_state(after)


# ---------------------------------------------------------------------------
# Declarative machine specifications (model-checker ground truth)
# ---------------------------------------------------------------------------

#: LPD input classes: one per interval with samples, after the priming
#: interval.  ``SIMILAR`` means ``r >= r_t``; ``DISSIMILAR`` means
#: ``r < r_t``.  (No-sample and starved intervals do not reach the machine.)
LPD_SIMILAR = "similar"
LPD_DISSIMILAR = "dissimilar"

#: GPD input classes: the drift-ratio bucket relative to TH1..TH4 crossed
#: with the band-thickness predicate ``SD < E / divisor``.  Thickness only
#: matters for leaving the unstable state; enumerating it everywhere lets
#: the model checker prove it is *ignored* everywhere else.  ``NO_BAND`` is
#: the warm-up input (fewer than two centroids in the history).
GPD_NO_BAND = "no_band"
_GPD_BUCKETS = ("tight", "tolerable", "moderate", "large", "collapse")
_GPD_THICKNESS = ("thin", "thick")


@dataclass(frozen=True, slots=True)
class TransitionRule:
    """One declarative edge: ``(state, input) -> next_state``.

    Model-state labels are :class:`PhaseState` values, except the GPD's
    dwell-timer expansion ``less_stable@k`` (k tight intervals still owed
    before the stable declaration).

    Attributes
    ----------
    state, input, next_state:
        The edge, as labels.
    phase_change:
        Whether the paper draws this edge dotted (a stable/unstable
        boundary crossing).  Stored redundantly so the checker can verify
        the labeling against the machine's stable-state set.
    updates_stable_set:
        LPD only: whether the interval's histogram replaces the stable
        set on this edge (the paper's "the stable set of samples is
        updated ... till the state moves to an unstable state").
    reachable:
        ``False`` for pairs the implementation can never present (e.g.
        a non-warm-up GPD state with no band: the centroid history only
        grows).  The table stays total; equivalence driving skips them.
    """

    state: str
    input: str
    next_state: str
    phase_change: bool = False
    updates_stable_set: bool = False
    reachable: bool = True


@dataclass(frozen=True)
class MachineSpec:
    """A complete declarative finite-state machine.

    Attributes
    ----------
    name:
        ``"lpd"`` or ``"gpd"``.
    states:
        All model-state labels, in a canonical order.
    inputs:
        The full input alphabet.
    initial:
        Start state label.
    stable_states:
        Labels on the stable side of the phase boundary (the LPD uses
        :func:`is_stable_state`; the GPD's declared-stable flag is a pure
        function of state: ``{stable, less_unstable}``).
    rules:
        The transition table as written — possibly with authoring
        mistakes, which is exactly what the model checker looks for.
    """

    name: str
    states: tuple[str, ...]
    inputs: tuple[str, ...]
    initial: str
    stable_states: frozenset[str]
    rules: tuple[TransitionRule, ...] = field(default_factory=tuple)

    def table(self) -> dict[tuple[str, str], TransitionRule]:
        """The rules as a ``(state, input) -> rule`` mapping.

        Duplicate pairs keep the *first* rule, mirroring what a
        pattern-matching implementation would do; the model checker's
        determinism pass reports the duplicates themselves.
        """
        mapping: dict[tuple[str, str], TransitionRule] = {}
        for rule in self.rules:
            mapping.setdefault((rule.state, rule.input), rule)
        return mapping

    def next_state(self, state: str, input_class: str) -> str:
        """Follow one edge; raises ``KeyError`` on an incomplete table."""
        return self.table()[(state, input_class)].next_state

    def is_stable(self, state: str) -> bool:
        """Whether *state* sits on the stable side of the boundary."""
        return state in self.stable_states

    def phase_state(self, state: str) -> PhaseState:
        """Map a model-state label to the implementation's PhaseState."""
        return PhaseState(state.split("@", 1)[0])

    def walk(self, inputs: Iterable[str]) -> Iterator[TransitionRule]:
        """Replay an input sequence from the initial state, yielding the
        rule taken at each step (the model checker's trajectory oracle)."""
        state = self.initial
        table = self.table()
        for input_class in inputs:
            rule = table[(state, input_class)]
            yield rule
            state = rule.next_state


def lpd_machine_spec() -> MachineSpec:
    """The paper's Figure 12 machine as a declarative table.

    Four states, two input classes (``r >= r_t`` / ``r < r_t``); both
    dotted edges — declaring a stable phase out of ``LESS_UNSTABLE`` and
    revoking one out of ``LESS_STABLE`` — are marked ``phase_change``.
    """
    U = PhaseState.UNSTABLE.value
    LU = PhaseState.LESS_UNSTABLE.value
    S = PhaseState.STABLE.value
    LS = PhaseState.LESS_STABLE.value
    sim, dis = LPD_SIMILAR, LPD_DISSIMILAR
    return MachineSpec(
        name="lpd",
        states=(U, LU, S, LS),
        inputs=(sim, dis),
        initial=U,
        stable_states=frozenset({S, LS}),
        rules=(
            TransitionRule(U, sim, LU, updates_stable_set=True),
            TransitionRule(U, dis, U, updates_stable_set=True),
            TransitionRule(LU, sim, S, phase_change=True),
            TransitionRule(LU, dis, U, updates_stable_set=True),
            TransitionRule(S, sim, S),
            TransitionRule(S, dis, LS),
            TransitionRule(LS, sim, S),
            TransitionRule(LS, dis, U, phase_change=True,
                           updates_stable_set=True),
        ),
    )


def gpd_input_classes() -> tuple[str, ...]:
    """The GPD input alphabet: ``no_band`` plus bucket × thickness."""
    return (GPD_NO_BAND,) + tuple(
        f"{bucket}_{thickness}"
        for bucket in _GPD_BUCKETS for thickness in _GPD_THICKNESS)


def classify_gpd_input(ratio: float, band_thin: bool,
                       th1: float = 0.01, th2: float = 0.05,
                       th3: float = 0.10, th4: float = 0.67,
                       has_band: bool = True) -> str:
    """Map one observed interval to its declarative input class.

    *ratio* is the drift ratio ``delta / E``; *band_thin* is the paper's
    ``SD < E / 6`` predicate for the interval's band of stability.
    """
    if not has_band:
        return GPD_NO_BAND
    if ratio <= th1:
        bucket = "tight"
    elif ratio <= th2:
        bucket = "tolerable"
    elif ratio <= th3:
        bucket = "moderate"
    elif ratio <= th4:
        bucket = "large"
    else:
        bucket = "collapse"
    return f"{bucket}_{'thin' if band_thin else 'thick'}"


def classify_lpd_input(r_value: float, threshold: float) -> str:
    """Map one LPD interval's similarity score to its input class."""
    return LPD_SIMILAR if r_value >= threshold else LPD_DISSIMILAR


def gpd_machine_spec(dwell_intervals: int = 2) -> MachineSpec:
    """The paper's Figure 1 machine as a declarative table.

    The less-stable dwell timer is expanded into explicit states
    ``less_stable@k`` (k tight intervals still owed), making the machine a
    pure FSM over (state, input-class) that can be enumerated exhaustively.
    ``dwell_intervals`` must match the ``GpdThresholds`` the implementation
    runs with.
    """
    if dwell_intervals < 1:
        raise ValueError("dwell_intervals must be at least 1")
    W = PhaseState.WARMUP.value
    U = PhaseState.UNSTABLE.value
    S = PhaseState.STABLE.value
    LU = PhaseState.LESS_UNSTABLE.value

    def ls(k: int) -> str:
        return f"{PhaseState.LESS_STABLE.value}@{k}"

    dwell_states = tuple(ls(k) for k in range(dwell_intervals, 0, -1))
    inputs = gpd_input_classes()
    rules: list[TransitionRule] = []

    def every(bucket_filter: Callable[[str], bool], state: str,
              next_state: str,
              phase_change: bool = False) -> None:
        """One rule per (bucket, thickness) input matching the filter."""
        for bucket in _GPD_BUCKETS:
            if not bucket_filter(bucket):
                continue
            for thickness in _GPD_THICKNESS:
                rules.append(TransitionRule(
                    state, f"{bucket}_{thickness}", next_state,
                    phase_change=phase_change))

    # WARMUP: the first interval with a band moves to UNSTABLE without
    # consulting the ratio (the implementation's `if band is not None`).
    rules.append(TransitionRule(W, GPD_NO_BAND, W))
    every(lambda b: True, W, U)

    # UNSTABLE: leave only on drift <= TH3 *and* a thin band.
    rules.append(TransitionRule(U, GPD_NO_BAND, U, reachable=False))
    for bucket in ("tight", "tolerable", "moderate"):
        rules.append(TransitionRule(U, f"{bucket}_thin", ls(dwell_intervals)))
        rules.append(TransitionRule(U, f"{bucket}_thick", U))
    every(lambda b: b in ("large", "collapse"), U, U)

    # LESS_STABLE@k: tight drift ticks the timer down; tolerable drift
    # pauses it; anything beyond TH2 falls back to UNSTABLE.
    for k in range(dwell_intervals, 0, -1):
        here = ls(k)
        tick_target = S if k == 1 else ls(k - 1)
        rules.append(TransitionRule(here, GPD_NO_BAND, here, reachable=False))
        every(lambda b: b == "tight", here, tick_target,
              phase_change=(k == 1))
        every(lambda b: b == "tolerable", here, here)
        every(lambda b: b in ("moderate", "large", "collapse"), here, U)

    # STABLE: tolerate up to TH2; grace excursion up to TH4; collapse past.
    rules.append(TransitionRule(S, GPD_NO_BAND, S, reachable=False))
    every(lambda b: b in ("tight", "tolerable"), S, S)
    every(lambda b: b in ("moderate", "large"), S, LU)
    every(lambda b: b == "collapse", S, U, phase_change=True)

    # LESS_UNSTABLE: recover on tight drift, revoke on anything else.
    rules.append(TransitionRule(LU, GPD_NO_BAND, LU, reachable=False))
    every(lambda b: b == "tight", LU, S)
    every(lambda b: b != "tight", LU, U, phase_change=True)

    return MachineSpec(
        name="gpd",
        states=(W, U) + dwell_states + (S, LU),
        inputs=inputs,
        initial=W,
        stable_states=frozenset({S, LU}),
        rules=tuple(rules),
    )
