"""Per-region sample histograms.

The local phase detector compares *sets of samples* for a region between
intervals.  A :class:`RegionHistogram` maps each instruction slot of a code
region (fixed-width instructions, 4 bytes on the paper's SPARC target) to
the number of PC samples that landed on it during one interval.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import AddressError

#: Instruction width in bytes (SPARC V9, the paper's target ISA).
INSTRUCTION_BYTES = 4


class RegionHistogram:
    """Sample counts per instruction slot of an address range.

    Parameters
    ----------
    start, end:
        Half-open byte address range ``[start, end)`` of the region.
        ``end - start`` must be a positive multiple of the instruction
        width.
    """

    __slots__ = ("start", "end", "_counts")

    def __init__(self, start: int, end: int) -> None:
        if start < 0 or end <= start:
            raise AddressError(
                f"invalid region range [{start:#x}, {end:#x})")
        if (end - start) % INSTRUCTION_BYTES != 0:
            raise AddressError(
                f"region size {end - start} is not a multiple of the "
                f"{INSTRUCTION_BYTES}-byte instruction width")
        self.start = start
        self.end = end
        self._counts = np.zeros(
            (end - start) // INSTRUCTION_BYTES, dtype=np.int64)

    # -- construction helpers -------------------------------------------

    @classmethod
    def from_counts(cls, start: int,
                    counts: Iterable[int] | np.ndarray) -> "RegionHistogram":
        """Build a histogram directly from a per-instruction count vector."""
        values = np.asarray(list(counts) if not isinstance(counts, np.ndarray)
                            else counts, dtype=np.int64)
        if values.ndim != 1 or values.size == 0:
            raise AddressError("counts must be a non-empty 1-D vector")
        histogram = cls(start, start + values.size * INSTRUCTION_BYTES)
        histogram._counts[:] = values
        return histogram

    def copy(self) -> "RegionHistogram":
        """Return an independent copy of this histogram."""
        clone = RegionHistogram(self.start, self.end)
        clone._counts[:] = self._counts
        return clone

    # -- mutation ---------------------------------------------------------

    def add_sample(self, pc: int) -> None:
        """Record one PC sample.  The PC must lie inside the region."""
        if not self.start <= pc < self.end:
            raise AddressError(
                f"pc {pc:#x} outside region [{self.start:#x}, {self.end:#x})")
        self._counts[(pc - self.start) // INSTRUCTION_BYTES] += 1

    def add_pcs(self, pcs: np.ndarray) -> int:
        """Record a batch of PC samples, ignoring those outside the region.

        Returns the number of samples that fell inside the region.
        """
        pcs = np.asarray(pcs, dtype=np.int64)
        inside = pcs[(pcs >= self.start) & (pcs < self.end)]
        if inside.size:
            slots = (inside - self.start) // INSTRUCTION_BYTES
            self._counts += np.bincount(slots, minlength=self._counts.size)
        return int(inside.size)

    def clear(self) -> None:
        """Reset all counts to zero."""
        self._counts[:] = 0

    # -- inspection -------------------------------------------------------

    @property
    def counts(self) -> np.ndarray:
        """Read-only view of the per-instruction count vector."""
        view = self._counts.view()
        view.setflags(write=False)
        return view

    @property
    def n_instructions(self) -> int:
        """Number of instruction slots in the region."""
        return int(self._counts.size)

    def total(self) -> int:
        """Total number of samples recorded."""
        return int(self._counts.sum())

    def is_empty(self) -> bool:
        """``True`` if no samples have been recorded."""
        return self.total() == 0

    def hottest(self) -> int:
        """Address of the instruction with the most samples."""
        return self.start + int(self._counts.argmax()) * INSTRUCTION_BYTES

    def __len__(self) -> int:
        return self.n_instructions

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegionHistogram):
            return NotImplemented
        return (self.start == other.start and self.end == other.end
                and bool(np.array_equal(self._counts, other._counts)))

    def __hash__(self) -> int:  # pragma: no cover - hashing not supported
        raise TypeError("RegionHistogram is mutable and unhashable")

    def __repr__(self) -> str:
        return (f"RegionHistogram([{self.start:#x}, {self.end:#x}), "
                f"total={self.total()})")
