"""Phase-detection core: the paper's contribution and its baseline.

Exports the centroid-based Global Phase Detector (GPD, Figure 1), the
per-region Local Phase Detector (LPD, Figure 12), Pearson's correlation and
the alternative similarity measures, sample histograms, and threshold
configuration objects.
"""

from repro.core.baselines import (BasicBlockVectorDetector,
                                  WorkingSetDetector)
from repro.core.centroid import BandOfStability, CentroidHistory, centroid
from repro.core.correlation import pearson_r, pearson_r_pure, pearson_r_strict
from repro.core.gpd import GlobalPhaseDetector, GpdObservation
from repro.core.histogram import INSTRUCTION_BYTES, RegionHistogram
from repro.core.lpd import LocalPhaseDetector, LpdObservation
from repro.core.performance import (PERFORMANCE_CHANNEL_THRESHOLDS,
                                    ChannelEvent, CompositeGlobalDetector)
from repro.core.similarity import (MEASURES, CosineSimilarity,
                                   ManhattanOverlap, PearsonSimilarity,
                                   SimilarityMeasure, TopKJaccard,
                                   get_measure)
from repro.core.states import (MachineSpec, PhaseEvent, PhaseEventKind,
                               PhaseState, TransitionRule,
                               classify_gpd_input, classify_lpd_input,
                               count_phase_changes, gpd_machine_spec,
                               is_stable_state, lpd_machine_spec,
                               transition_crosses_boundary)
from repro.core.thresholds import (DEFAULT_BUFFER_SIZE, DEFAULT_R_THRESHOLD,
                                   DEFAULT_UCR_THRESHOLD, GpdThresholds,
                                   LpdThresholds, MonitorThresholds)

__all__ = [
    "BasicBlockVectorDetector",
    "WorkingSetDetector",
    "BandOfStability",
    "CentroidHistory",
    "centroid",
    "pearson_r",
    "pearson_r_pure",
    "pearson_r_strict",
    "GlobalPhaseDetector",
    "GpdObservation",
    "INSTRUCTION_BYTES",
    "RegionHistogram",
    "LocalPhaseDetector",
    "LpdObservation",
    "PERFORMANCE_CHANNEL_THRESHOLDS",
    "ChannelEvent",
    "CompositeGlobalDetector",
    "MEASURES",
    "CosineSimilarity",
    "ManhattanOverlap",
    "PearsonSimilarity",
    "SimilarityMeasure",
    "TopKJaccard",
    "get_measure",
    "MachineSpec",
    "PhaseEvent",
    "PhaseEventKind",
    "PhaseState",
    "TransitionRule",
    "classify_gpd_input",
    "classify_lpd_input",
    "count_phase_changes",
    "gpd_machine_spec",
    "is_stable_state",
    "lpd_machine_spec",
    "transition_crosses_boundary",
    "DEFAULT_BUFFER_SIZE",
    "DEFAULT_R_THRESHOLD",
    "DEFAULT_UCR_THRESHOLD",
    "GpdThresholds",
    "LpdThresholds",
    "MonitorThresholds",
]
