"""Centroid computation and the Band of Stability (paper section 2.1).

The centroid scheme's premise: "the average value of program counter
obtained by sampling the program counter at periodic time intervals does not
deviate much.  When it does deviate, it often indicates a phase change."

On every buffer overflow the mean (centroid) of the buffered PC samples is
computed.  A history of centroids yields an expectation value ``E`` and a
standard deviation ``SD``; the *Band of Stability* (BOS) spans
``[E - SD, E + SD]``.  The drift ``delta`` of a new centroid is zero inside
the band and the distance to the nearer bound outside it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError


def centroid(pcs: Sequence[int] | np.ndarray) -> float:
    """Mean program-counter value of one interval's samples."""
    array = np.asarray(pcs, dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot compute the centroid of an empty buffer")
    return float(array.mean())


@dataclass(frozen=True, slots=True)
class BandOfStability:
    """The BOS of a centroid history: ``[expectation - sd, expectation + sd]``.

    Attributes
    ----------
    expectation:
        ``E``, the mean of the centroid history.
    sd:
        ``SD``, the standard deviation of the centroid history.
    """

    expectation: float
    sd: float

    @property
    def lower(self) -> float:
        """Lower bound ``E - SD`` of the band."""
        return self.expectation - self.sd

    @property
    def upper(self) -> float:
        """Upper bound ``E + SD`` of the band."""
        return self.expectation + self.sd

    def drift(self, value: float) -> float:
        """The paper's delta: 0 inside the band, distance to it outside."""
        if value < self.lower:
            return self.lower - value
        if value > self.upper:
            return value - self.upper
        return 0.0

    def drift_ratio(self, value: float) -> float:
        """Drift normalized by ``E`` so it can be compared to TH1–TH4.

        The thresholds are percentages; an address-scale drift must be
        normalized by an address-scale quantity, and ``E`` is the natural
        one.  A non-positive expectation (impossible for real text
        addresses) makes the ratio infinite, which keeps the detector
        unstable rather than dividing by zero.
        """
        delta = self.drift(value)
        if self.expectation <= 0.0:
            return float("inf") if delta > 0.0 else 0.0
        return delta / self.expectation

    def is_too_thick(self, divisor: float = 6.0) -> bool:
        """The paper's thickness check: the band is too thick unless
        ``SD < E / divisor``."""
        return not self.sd < self.expectation / divisor


class CentroidHistory:
    """Sliding window of past centroids with BOS computation.

    Parameters
    ----------
    length:
        Maximum number of centroids retained (the detector's memory).
    """

    def __init__(self, length: int = 8) -> None:
        if length < 2:
            raise ConfigError("centroid history length must be at least 2")
        self._values: deque[float] = deque(maxlen=length)

    def push(self, value: float) -> None:
        """Append a new centroid, evicting the oldest beyond the window."""
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> tuple[float, ...]:
        """The retained centroids, oldest first."""
        return tuple(self._values)

    def can_compute_band(self) -> bool:
        """``True`` once at least two centroids are available."""
        return len(self._values) >= 2

    def band(self) -> BandOfStability:
        """Compute the band of stability over the retained centroids."""
        if not self.can_compute_band():
            raise ValueError("need at least two centroids to compute a band")
        array = np.asarray(self._values, dtype=np.float64)
        return BandOfStability(expectation=float(array.mean()),
                               sd=float(array.std()))

    def extend(self, values: Iterable[float]) -> None:
        """Push several centroids in order."""
        for value in values:
            self.push(value)

    def clear(self) -> None:
        """Forget all history (used when the detector resets)."""
        self._values.clear()
