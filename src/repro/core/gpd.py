"""The centroid-based Global Phase Detector (paper Figure 1).

This is the baseline the paper measures against: the phase detector used by
the ADORE-family prototype runtime optimizers.  Aggregate information — the
mean PC of a whole sample buffer — is compared against the Band of Stability
derived from the centroid history.

Reconstruction notes
--------------------
Figure 1 itself is a state diagram whose edge labels do not survive in the
text, but the prose fixes every constraint:

* thresholds TH1=1%, TH2=5%, TH3=10%, TH4=67% (empirical);
* the drift ``delta`` of the current centroid from the BOS drives
  transitions;
* "a timer is associated with the less stable state before transitioning to
  the stable state ... to ensure that the centroid maintains a low delta
  for some time before triggering a stable phase";
* "before transitioning into less stable phase, a check is also made to
  ensure that band of stability is not too thick by ensuring that SD is
  less than 1/6 of E".

We realize those constraints as a five-state machine::

    WARMUP --(history >= 2)--> UNSTABLE

    UNSTABLE      --(ratio <= TH3 and band thin)--> LESS_STABLE (timer reset)
    LESS_STABLE   --(ratio <= TH1, timer-1 == 0)--> STABLE      [phase change]
    LESS_STABLE   --(ratio <= TH2)--------------->  stay (timer pauses)
    LESS_STABLE   --(ratio >  TH2)--------------->  UNSTABLE
    STABLE        --(ratio <= TH2)--------------->  stay
    STABLE        --(TH2 < ratio <= TH4)--------->  LESS_UNSTABLE (grace)
    STABLE        --(ratio >  TH4)--------------->  UNSTABLE    [phase change]
    LESS_UNSTABLE --(ratio <= TH1)--------------->  STABLE      (recovery)
    LESS_UNSTABLE --(ratio >  TH1)--------------->  UNSTABLE    [phase change]

``LESS_UNSTABLE`` is a one-interval grace for moderate drift: a single
out-of-band interval (sampling noise) recovers, a second consecutive one
revokes the stable declaration.  A drift beyond TH4 is a collapse that
skips the grace entirely.

where ``ratio = delta / E``.  The paper's thick phase line is binary
(stable = 0), so the detector surfaces
:attr:`GlobalPhaseDetector.in_stable_phase` as "a stable phase has been
declared and not yet revoked": it turns on when ``STABLE`` is entered,
survives the ``LESS_UNSTABLE`` excursion state, and turns off when the
machine falls back to ``UNSTABLE``.  Phase-change events are emitted exactly
on the declare/revoke edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.centroid import BandOfStability, CentroidHistory, centroid
from repro.core.states import PhaseEvent, PhaseEventKind, PhaseState
from repro.core.thresholds import GpdThresholds
from repro.telemetry.bus import EventBus, get_bus
from repro.telemetry.events import NO_REGION, PhaseChange, StateTransition

__all__ = ["GlobalPhaseDetector", "GpdObservation"]


@dataclass(frozen=True, slots=True)
class GpdObservation:
    """Diagnostic record of one interval processed by the GPD.

    Attributes
    ----------
    interval_index:
        Running interval counter.
    centroid_value:
        Mean PC of the interval's buffer.
    band:
        The band of stability the centroid was compared against, or
        ``None`` while warming up.
    drift_ratio:
        ``delta / E`` for this interval (``inf`` with a degenerate band).
    state:
        Machine state *after* processing the interval.
    event:
        The phase change emitted by this interval, if any.
    """

    interval_index: int
    centroid_value: float
    band: BandOfStability | None
    drift_ratio: float
    state: PhaseState
    event: PhaseEvent | None


class GlobalPhaseDetector:
    """Centroid-based global phase detection (the paper's GPD baseline).

    Feed one buffer of PC samples per interval via :meth:`observe_buffer`
    (or a precomputed centroid via :meth:`observe_centroid`); read back the
    current :attr:`state`, :attr:`in_stable_phase`, and the accumulated
    :attr:`events` and :attr:`observations`.
    """

    def __init__(self, thresholds: GpdThresholds | None = None,
                 telemetry: EventBus | None = None) -> None:
        self.thresholds = thresholds or GpdThresholds()
        self._telemetry = telemetry if telemetry is not None else get_bus()
        self._history = CentroidHistory(self.thresholds.history_length)
        self._state = PhaseState.WARMUP
        self._declared_stable = False
        self._timer = self.thresholds.dwell_intervals
        self._interval_index = -1
        self.events: list[PhaseEvent] = []
        self.observations: list[GpdObservation] = []

    # -- public surface --------------------------------------------------

    @property
    def state(self) -> PhaseState:
        """Current machine state."""
        return self._state

    @property
    def in_stable_phase(self) -> bool:
        """Whether the detector currently declares a stable phase.

        True from the moment STABLE is first entered until the machine
        falls back to UNSTABLE — LESS_UNSTABLE keeps the declaration alive,
        matching the paper's binary stable/unstable trace line.
        """
        return self._declared_stable

    @property
    def intervals_seen(self) -> int:
        """Number of intervals processed so far."""
        return self._interval_index + 1

    def observe_buffer(self, pcs: Sequence[int] | np.ndarray) -> PhaseEvent | None:
        """Process one full sample buffer; return the phase change, if any.

        A starved buffer (fewer samples than the ``min_buffer_samples``
        threshold, including an empty one) is insufficient data: the
        interval is recorded, the state and centroid history hold, and no
        event fires — degraded sampling must not flap the machine.
        """
        buffer = np.asarray(pcs)
        if buffer.size < self.thresholds.min_buffer_samples:
            return self._observe_starved()
        return self.observe_centroid(centroid(buffer))

    def observe_centroid(self, value: float) -> PhaseEvent | None:
        """Process one interval given its precomputed centroid.

        A non-finite centroid (corrupted samples upstream) is treated as
        insufficient data, like a starved buffer.
        """
        if not np.isfinite(value):
            return self._observe_starved()
        self._interval_index += 1
        band: BandOfStability | None = None
        ratio = float("inf")
        if self._history.can_compute_band():
            band = self._history.band()
            ratio = band.drift_ratio(value)
        event = self._step(band, ratio)
        self._history.push(value)
        self.observations.append(GpdObservation(
            interval_index=self._interval_index,
            centroid_value=value,
            band=band,
            drift_ratio=ratio,
            state=self._state,
            event=event,
        ))
        if event is not None:
            self.events.append(event)
        return event

    def _observe_starved(self) -> None:
        """Record an insufficient-data interval: state and history hold."""
        self._interval_index += 1
        self.observations.append(GpdObservation(
            interval_index=self._interval_index,
            centroid_value=float("nan"),
            band=None,
            drift_ratio=float("inf"),
            state=self._state,
            event=None,
        ))
        return None

    def stable_interval_count(self) -> int:
        """Number of processed intervals that ended in a declared-stable phase."""
        stable_states = (PhaseState.STABLE, PhaseState.LESS_UNSTABLE)
        return sum(1 for obs in self.observations if obs.state in stable_states)

    def stable_time_fraction(self) -> float:
        """Fraction of intervals spent in a declared-stable phase (Figure 4)."""
        if not self.observations:
            return 0.0
        return self.stable_interval_count() / len(self.observations)

    # -- state machine ----------------------------------------------------

    def _step(self, band: BandOfStability | None, ratio: float) -> PhaseEvent | None:
        th = self.thresholds
        before = self._state
        before_declared = self._declared_stable

        if self._state is PhaseState.WARMUP:
            if band is not None:
                self._state = PhaseState.UNSTABLE
        elif self._state is PhaseState.UNSTABLE:
            assert band is not None
            band_ok = not band.is_too_thick(th.thickness_divisor)
            if ratio <= th.th3 and band_ok:
                self._state = PhaseState.LESS_STABLE
                self._timer = th.dwell_intervals
        elif self._state is PhaseState.LESS_STABLE:
            if ratio <= th.th1:
                self._timer -= 1
                if self._timer <= 0:
                    self._state = PhaseState.STABLE
                    self._declared_stable = True
            elif ratio <= th.th2:
                pass  # tolerable drift: hold the state, timer pauses
            else:
                self._state = PhaseState.UNSTABLE
        elif self._state is PhaseState.STABLE:
            if ratio <= th.th2:
                pass
            elif ratio <= th.th4:
                self._state = PhaseState.LESS_UNSTABLE
            else:
                self._state = PhaseState.UNSTABLE
                self._declared_stable = False
        elif self._state is PhaseState.LESS_UNSTABLE:
            if ratio <= th.th1:
                self._state = PhaseState.STABLE
            else:
                # Second consecutive drifting interval: revoke.
                self._state = PhaseState.UNSTABLE
                self._declared_stable = False

        event: PhaseEvent | None = None
        if self._declared_stable != before_declared:
            kind = (PhaseEventKind.BECAME_STABLE if self._declared_stable
                    else PhaseEventKind.BECAME_UNSTABLE)
            event = PhaseEvent(
                interval_index=self._interval_index,
                kind=kind,
                state_from=before,
                state_to=self._state,
                detail=f"drift_ratio={ratio:.4g}",
            )

        bus = self._telemetry
        if bus.enabled:
            # JSON traces carry finite numbers only; an infinite drift
            # ratio (warm-up, degenerate band) travels as -1.0.
            metric = ratio if np.isfinite(ratio) else -1.0
            bus.emit(StateTransition(
                interval_index=self._interval_index, detector="gpd",
                rid=NO_REGION, state_from=before.value,
                state_to=self._state.value, metric=metric))
            if event is not None:
                bus.emit(PhaseChange(
                    interval_index=self._interval_index, detector="gpd",
                    rid=NO_REGION, kind=event.kind.value,
                    state_from=before.value, state_to=self._state.value,
                    detail=event.detail))
        return event
