"""Multi-metric global phase detection: centroid + CPI + DPI channels.

The paper (sections 1-2) describes the full GPD of the prototype systems:
"global metrics like average program counter value are used to find new
code regions, and other metrics of performance, such as CPI and DPI (Data
Cache Misses per Instruction), are used to determine if the program
performance characteristics have changed", all "compar[ing] aggregate
metrics ... over fixed time intervals".

Each metric channel reuses the centroid detector's Band-of-Stability
machinery (:class:`~repro.core.gpd.GlobalPhaseDetector` operates on any
scalar series).  The composite detector declares the program phase stable
only while *every* channel is stable, and reports a phase change whenever
the conjunction flips — so a CPI regression with an unchanged working set
(or vice versa) is still a phase change, exactly the behavior the paper
attributes to the prototype systems.

The paper does not publish CPI/DPI threshold values; the performance
channels default to a relaxed threshold set (performance metrics are
noisier relative to their mean than text-address centroids) and both are
overridable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.gpd import GlobalPhaseDetector
from repro.core.states import PhaseEvent, PhaseEventKind, PhaseState
from repro.core.thresholds import GpdThresholds
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps core below
    from repro.sampling.events import SampleStream  # sampling in layering

__all__ = ["PERFORMANCE_CHANNEL_THRESHOLDS", "ChannelEvent",
           "CompositeGlobalDetector"]

#: Default thresholds for the CPI and DPI channels (relaxed relative to
#: the centroid channel; reconstructed, see module docstring).
PERFORMANCE_CHANNEL_THRESHOLDS = GpdThresholds(
    th1=0.03, th2=0.10, th3=0.20, th4=0.80, thickness_divisor=3.0)


@dataclass(frozen=True, slots=True)
class ChannelEvent:
    """A phase change on one metric channel."""

    channel: str
    event: PhaseEvent


class CompositeGlobalDetector:
    """GPD over multiple aggregate metrics (centroid, CPI, DPI).

    Parameters
    ----------
    centroid_thresholds:
        Thresholds for the PC-centroid channel (defaults to the paper's
        TH1-TH4).
    performance_thresholds:
        Thresholds shared by the CPI and DPI channels.
    channels:
        Which channels to run; any subset of {"centroid", "cpi", "dpi"}.
    performance_smoothing:
        EWMA factor applied to the CPI/DPI series before detection
        (``smoothed = a*value + (1-a)*previous``).  Per-interval
        performance metrics carry multinomial sampling noise far larger
        (relative to their mean) than PC centroids — DPI especially, for
        low-miss programs — so the prototype-style detectors smooth them.
        1.0 disables smoothing.
    """

    CHANNELS = ("centroid", "cpi", "dpi")

    def __init__(self,
                 centroid_thresholds: GpdThresholds | None = None,
                 performance_thresholds: GpdThresholds | None = None,
                 channels: tuple[str, ...] = CHANNELS,
                 performance_smoothing: float = 0.25) -> None:
        if not channels:
            raise ConfigError("need at least one metric channel")
        unknown = set(channels) - set(self.CHANNELS)
        if unknown:
            raise ConfigError(f"unknown channels {sorted(unknown)}; "
                              f"known: {self.CHANNELS}")
        if not 0.0 < performance_smoothing <= 1.0:
            raise ConfigError("performance_smoothing must lie in (0, 1]")
        self.performance_smoothing = performance_smoothing
        self._smoothed: dict[str, float] = {}
        performance = (performance_thresholds
                       or PERFORMANCE_CHANNEL_THRESHOLDS)
        self._detectors: dict[str, GlobalPhaseDetector] = {}
        for channel in channels:
            thresholds = (centroid_thresholds if channel == "centroid"
                          else performance)
            self._detectors[channel] = GlobalPhaseDetector(thresholds)
        self._interval_index = -1
        self._declared_stable = False
        self.channel_events: list[ChannelEvent] = []
        #: Composite phase changes: flips of the all-channels-stable
        #: conjunction.
        self.events: list[PhaseEvent] = []
        self._stable_intervals = 0

    # -- public surface ------------------------------------------------------

    @property
    def channels(self) -> tuple[str, ...]:
        """Active channel names."""
        return tuple(self._detectors)

    def detector(self, channel: str) -> GlobalPhaseDetector:
        """The underlying per-channel detector."""
        try:
            return self._detectors[channel]
        except KeyError:
            raise ConfigError(f"no channel {channel!r}; active: "
                              f"{self.channels}") from None

    @property
    def in_stable_phase(self) -> bool:
        """Stable only while *every* channel declares stability."""
        return self._declared_stable

    @property
    def intervals_seen(self) -> int:
        """Intervals processed so far."""
        return self._interval_index + 1

    def observe_interval(self, centroid: float | None = None,
                         cpi: float | None = None,
                         dpi: float | None = None) -> list[ChannelEvent]:
        """Process one interval's metric values.

        Every active channel must receive its value.  Returns the channel
        events emitted this interval; composite flips are appended to
        :attr:`events`.
        """
        self._interval_index += 1
        values = {"centroid": centroid, "cpi": cpi, "dpi": dpi}
        emitted: list[ChannelEvent] = []
        for channel, detector in self._detectors.items():
            value = values[channel]
            if value is None:
                raise ConfigError(
                    f"channel {channel!r} is active but received no value")
            value = float(value)
            if channel != "centroid" and self.performance_smoothing < 1.0:
                alpha = self.performance_smoothing
                previous = self._smoothed.get(channel, value)
                value = alpha * value + (1.0 - alpha) * previous
                self._smoothed[channel] = value
            event = detector.observe_centroid(value)
            if event is not None:
                channel_event = ChannelEvent(channel, event)
                emitted.append(channel_event)
                self.channel_events.append(channel_event)
        now_stable = all(d.in_stable_phase
                         for d in self._detectors.values())
        if now_stable != self._declared_stable:
            kind = (PhaseEventKind.BECAME_STABLE if now_stable
                    else PhaseEventKind.BECAME_UNSTABLE)
            blamed = ",".join(ce.channel for ce in emitted) or "composite"
            self.events.append(PhaseEvent(
                interval_index=self._interval_index, kind=kind,
                state_from=PhaseState.STABLE if self._declared_stable
                else PhaseState.UNSTABLE,
                state_to=PhaseState.STABLE if now_stable
                else PhaseState.UNSTABLE,
                detail=f"channels={blamed}"))
            self._declared_stable = now_stable
        if self._declared_stable:
            self._stable_intervals += 1
        return emitted

    def process_stream(self, stream: "SampleStream",
                       buffer_size: int) -> "CompositeGlobalDetector":
        """Feed a whole sample stream, one interval at a time."""
        centroids = stream.centroids(buffer_size)
        cpis = stream.interval_cpi(buffer_size)
        dpis = stream.interval_dpi(buffer_size)
        for index in range(centroids.size):
            self.observe_interval(
                centroid=float(centroids[index])
                if "centroid" in self._detectors else None,
                cpi=float(cpis[index]) if "cpi" in self._detectors
                else None,
                dpi=float(dpis[index]) if "dpi" in self._detectors
                else None)
        return self

    def stable_time_fraction(self) -> float:
        """Fraction of intervals with every channel stable."""
        if self.intervals_seen == 0:
            return 0.0
        return self._stable_intervals / self.intervals_seen

    def phase_change_count(self) -> int:
        """Composite phase changes (conjunction flips)."""
        return len(self.events)
