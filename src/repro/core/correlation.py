"""Pearson's coefficient of correlation, the paper's similarity measure.

Section 3.2.1 defines local phase similarity as Pearson's r between the
*stable set* of samples and the *current set* of samples for a region, both
expressed as per-instruction histograms::

            sum(x_i y_i) - (1/n) sum(x_i) sum(y_i)
    r = ---------------------------------------------
        sqrt(sum(x_i^2) - (1/n)(sum x_i)^2) *
        sqrt(sum(y_i^2) - (1/n)(sum y_i)^2)

Two properties the paper highlights (Figure 8) and that the tests pin down:

* shifting the bottleneck by one instruction drives r toward 0 (they
  measure -0.056), so bottleneck shifts are detected quickly;
* multiplying all counts by a constant (more samples, same relative
  frequencies) keeps r ≈ 1 (they measure 0.998), so sampling-rate
  variations do not masquerade as phase changes.

Pearson's r is undefined when either vector has zero variance.  For the
detector's purpose the right reading of that degenerate case is: a flat
histogram compared against a proportional flat histogram is *the same
behavior* (r := 1.0), while anything else is *different* (r := 0.0).
:func:`pearson_r` implements that convention; :func:`pearson_r_strict`
returns ``None`` instead for callers that want to handle it themselves.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "pearson_r",
    "pearson_r_strict",
    "pearson_r_pure",
]

#: Relative tolerance for the proportionality test in the degenerate case.
_PROPORTIONAL_RTOL = 1e-9


def _as_float_array(values: Sequence[float] | np.ndarray) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {array.shape}")
    return array


def _degenerate_r(x: np.ndarray, y: np.ndarray) -> float:
    """Resolve r for vectors where at least one side has zero variance.

    Both-flat vectors that are proportional (including both all-zero) count
    as perfectly correlated behavior; any other combination counts as a
    change of behavior.
    """
    x_flat = bool(np.allclose(x, x[0]))
    y_flat = bool(np.allclose(y, y[0]))
    if x_flat and y_flat:
        return 1.0
    return 0.0


def pearson_r(x: Sequence[float] | np.ndarray,
              y: Sequence[float] | np.ndarray) -> float:
    """Pearson's r with the detector's degenerate-case convention.

    Parameters
    ----------
    x, y:
        Equal-length vectors of per-instruction sample counts.

    Returns
    -------
    float
        A value in [-1.0, 1.0].  Zero-variance inputs resolve per the
        module docstring instead of raising.
    """
    strict = pearson_r_strict(x, y)
    if strict is not None:
        return strict
    return _degenerate_r(_as_float_array(x), _as_float_array(y))


def pearson_r_strict(x: Sequence[float] | np.ndarray,
                     y: Sequence[float] | np.ndarray) -> float | None:
    """Pearson's r, or ``None`` when it is mathematically undefined."""
    xa = _as_float_array(x)
    ya = _as_float_array(y)
    if xa.shape != ya.shape:
        raise ValueError(
            f"vectors must have equal length, got {xa.size} and {ya.size}")
    if xa.size < 2:
        return None
    n = xa.size
    sum_x = float(xa.sum())
    sum_y = float(ya.sum())
    sum_xy = float((xa * ya).sum())
    sum_x2 = float((xa * xa).sum())
    sum_y2 = float((ya * ya).sum())
    var_x = sum_x2 - (sum_x * sum_x) / n
    var_y = sum_y2 - (sum_y * sum_y) / n
    if not (math.isfinite(var_x) and math.isfinite(var_y)):
        # NaN/inf contamination (corrupted counts): undefined, never NaN out.
        return None
    if var_x <= 0.0 or var_y <= 0.0:
        return None
    numerator = sum_xy - (sum_x * sum_y) / n
    r = numerator / math.sqrt(var_x * var_y)
    # Floating-point roundoff can push |r| epsilon past 1; clamp.
    return max(-1.0, min(1.0, r))


def pearson_r_pure(x: Sequence[float], y: Sequence[float]) -> float:
    """Pure-Python reference implementation of :func:`pearson_r`.

    Follows the paper's formula term by term.  Used by the tests as an
    oracle for the vectorized implementation and by the cost model to count
    the arithmetic operations a runtime optimizer would pay per region.
    """
    xs = [float(v) for v in x]
    ys = [float(v) for v in y]
    if len(xs) != len(ys):
        raise ValueError(
            f"vectors must have equal length, got {len(xs)} and {len(ys)}")
    n = len(xs)
    if n < 2:
        return _degenerate_r(np.asarray(xs or [0.0]), np.asarray(ys or [0.0]))
    sum_x = sum(xs)
    sum_y = sum(ys)
    sum_xy = sum(a * b for a, b in zip(xs, ys))
    sum_x2 = sum(a * a for a in xs)
    sum_y2 = sum(b * b for b in ys)
    var_x = sum_x2 - (sum_x * sum_x) / n
    var_y = sum_y2 - (sum_y * sum_y) / n
    if var_x <= 0.0 or var_y <= 0.0:
        return _degenerate_r(np.asarray(xs), np.asarray(ys))
    numerator = sum_xy - (sum_x * sum_y) / n
    r = numerator / math.sqrt(var_x * var_y)
    return max(-1.0, min(1.0, r))
