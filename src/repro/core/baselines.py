"""Related-work phase detectors: BBV similarity and working-set analysis.

The paper's related-work section (§4) positions local phase detection
against two established *global* techniques, both implemented here so the
repository can compare all three on identical sample streams:

* **Basic-block-vector (BBV) similarity** — Sherwood et al. [4][5][6]:
  summarize each interval as a vector of per-code-unit execution
  frequencies and compare consecutive intervals' (normalized) vectors by
  Manhattan distance.  "Their scheme ... takes into account the
  frequencies of execution."
* **Working-set signatures** — Dhodapkar & Smith [1][8]: summarize each
  interval as the *set* of code units touched; a phase change is a large
  relative set difference.  "The earlier scheme only determines if the
  instruction/branch/procedure was executed in the current interval."

Our code units are fixed-size address chunks (a software analogue of the
hardware accumulator tables those papers propose), so both detectors run
straight off PC sample buffers.  Both remain *global* detectors — one
verdict per interval for the whole program — which is exactly the
contrast with per-region LPD the comparison experiments exercise.
"""

from __future__ import annotations

import numpy as np

from repro.core.states import (PhaseEvent, PhaseEventKind, PhaseState,
                               is_stable_state)
from repro.errors import ConfigError

__all__ = ["BasicBlockVectorDetector", "WorkingSetDetector"]

#: Default code-unit granularity: 32 instructions (128 bytes), the scale
#: of a small basic block region.
DEFAULT_CHUNK_BYTES = 128


class _ChunkedIntervalDetector:
    """Shared machinery: chunk PC buffers, compare consecutive summaries.

    Subclasses implement :meth:`_difference` over two chunk-count
    dictionaries, returning a dissimilarity in [0, 1].  The state machine
    follows the literature these schemes come from: one dissimilar pair
    of consecutive intervals *is* a phase boundary (no grace), while
    declaring a stable phase takes two consecutive similar comparisons.
    This immediate-flip behavior is part of why global interval-pair
    schemes are sampling-sensitive — the contrast the comparison tests
    draw against the LPD.
    """

    def __init__(self, threshold: float,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> None:
        if not 0.0 < threshold < 1.0:
            raise ConfigError("threshold must lie in (0, 1)")
        if chunk_bytes < 4:
            raise ConfigError("chunk_bytes must be at least 4")
        self.threshold = threshold
        self.chunk_bytes = chunk_bytes
        self._previous: dict[int, int] | None = None
        self._state = PhaseState.UNSTABLE
        self._interval_index = -1
        self.events: list[PhaseEvent] = []
        self.dissimilarities: list[float] = []
        self._stable_intervals = 0

    # -- subclass hook ---------------------------------------------------

    def _difference(self, previous: dict[int, int],
                    current: dict[int, int]) -> float:
        raise NotImplementedError

    # -- public surface -----------------------------------------------------

    @property
    def state(self) -> PhaseState:
        """Current machine state."""
        return self._state

    @property
    def in_stable_phase(self) -> bool:
        """Whether the detector currently declares a stable phase."""
        return is_stable_state(self._state)

    def _chunks(self, pcs: np.ndarray) -> dict[int, int]:
        chunk_ids, counts = np.unique(
            np.asarray(pcs, dtype=np.int64) // self.chunk_bytes,
            return_counts=True)
        return dict(zip((int(c) for c in chunk_ids),
                        (int(n) for n in counts)))

    def observe_buffer(self, pcs: np.ndarray) -> PhaseEvent | None:
        """Process one interval's PC buffer; returns any phase change."""
        self._interval_index += 1
        current = self._chunks(pcs)
        if self._previous is None:
            dissimilarity = 1.0
        else:
            dissimilarity = self._difference(self._previous, current)
        self.dissimilarities.append(dissimilarity)
        self._previous = current
        event = self._step(dissimilarity)
        if is_stable_state(self._state):
            self._stable_intervals += 1
        if event is not None:
            self.events.append(event)
        return event

    def _step(self, dissimilarity: float) -> PhaseEvent | None:
        similar = dissimilarity <= self.threshold
        before = self._state
        if self._state is PhaseState.UNSTABLE:
            if similar:
                self._state = PhaseState.LESS_UNSTABLE
        elif self._state is PhaseState.LESS_UNSTABLE:
            self._state = (PhaseState.STABLE if similar
                           else PhaseState.UNSTABLE)
        elif self._state is PhaseState.STABLE:
            if not similar:
                self._state = PhaseState.UNSTABLE
        if is_stable_state(before) != is_stable_state(self._state):
            kind = (PhaseEventKind.BECAME_STABLE
                    if is_stable_state(self._state)
                    else PhaseEventKind.BECAME_UNSTABLE)
            return PhaseEvent(interval_index=self._interval_index,
                              kind=kind, state_from=before,
                              state_to=self._state,
                              detail=f"diff={dissimilarity:.3f}")
        return None

    def stable_time_fraction(self) -> float:
        """Fraction of intervals on the stable side."""
        if self._interval_index < 0:
            return 0.0
        return self._stable_intervals / (self._interval_index + 1)

    def phase_change_count(self) -> int:
        """Phase changes emitted so far."""
        return len(self.events)


class BasicBlockVectorDetector(_ChunkedIntervalDetector):
    """Sherwood-style BBV similarity over consecutive intervals.

    Dissimilarity is half the Manhattan distance between the two
    intervals' *normalized* chunk-frequency vectors — 0 for identical
    distributions, 1 for disjoint working sets.  The default threshold
    (0.25) is in the range the SimPoint literature uses for interval
    classification.
    """

    def __init__(self, threshold: float = 0.25,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> None:
        super().__init__(threshold, chunk_bytes)

    def _difference(self, previous: dict[int, int],
                    current: dict[int, int]) -> float:
        total_prev = sum(previous.values()) or 1
        total_curr = sum(current.values()) or 1
        distance = 0.0
        # Sorted so the float accumulation order (and thus the exact
        # distance) never depends on set hash order.
        for chunk in sorted(previous.keys() | current.keys()):
            distance += abs(previous.get(chunk, 0) / total_prev
                            - current.get(chunk, 0) / total_curr)
        return 0.5 * distance


class WorkingSetDetector(_ChunkedIntervalDetector):
    """Dhodapkar-style working-set signatures over consecutive intervals.

    Dissimilarity is the *relative working-set distance*
    ``|A Δ B| / |A ∪ B|`` over the sets of touched chunks — execution
    frequencies are deliberately ignored, the defining difference from
    the BBV scheme that the paper's related-work section points out.
    """

    def __init__(self, threshold: float = 0.5,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> None:
        super().__init__(threshold, chunk_bytes)

    def _difference(self, previous: dict[int, int],
                    current: dict[int, int]) -> float:
        set_prev = set(previous)
        set_curr = set(current)
        union = len(set_prev | set_curr)
        if union == 0:
            return 0.0
        return len(set_prev ^ set_curr) / union
