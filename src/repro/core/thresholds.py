"""Threshold configuration objects for the two phase detectors.

The paper gives concrete values for every knob:

* GPD (section 2.1): thresholds TH1–TH4 "have been determined empirically as
  1%, 5%, 10% and 67% respectively"; the band of stability must satisfy
  ``SD < E / 6`` before the detector may leave the unstable state; a timer
  is associated with the less-stable state before the stable state is
  entered.
* LPD (section 3.2.1): the correlation threshold ``r_t`` is 0.8.
* Region monitoring (section 3.1 / Figure 6): region formation triggers when
  more than 30% of an interval's samples fall in the unmonitored code
  region.
* The sample buffer holds 2032 samples (section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Default size of the user sample buffer (paper section 2.2).
DEFAULT_BUFFER_SIZE = 2032

#: Default UCR percentage above which region formation triggers (Figure 6).
DEFAULT_UCR_THRESHOLD = 0.30

#: Default Pearson correlation threshold r_t (section 3.2.1).
DEFAULT_R_THRESHOLD = 0.8


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True, slots=True)
class GpdThresholds:
    """Knobs of the centroid-based global phase detector (Figure 1).

    All of ``th1``–``th4`` are expressed as fractions of the expectation
    value ``E`` of the centroid history: the drift ``delta`` of the current
    centroid outside the band of stability is compared against
    ``thN * E``.

    Attributes
    ----------
    th1:
        Tight-drift threshold: below it the less-stable dwell timer ticks
        and a wandering less-unstable detector may recover to stable.
    th2:
        Stable-tolerance threshold: a stable phase survives drift up to it.
    th3:
        Unstable-exit threshold: the unstable state may be left only while
        drift is below it (and the band is not too thick).
    th4:
        Collapse threshold: drift beyond it throws any state straight back
        to unstable.
    thickness_divisor:
        The band-of-stability thickness check: require ``SD < E / divisor``
        (the paper uses 6) before leaving the unstable state.
    dwell_intervals:
        Number of consecutive tight-drift intervals required in the
        less-stable state before declaring a stable phase (the paper's
        "timer"; the exact duration is not given — we default to 2).
    history_length:
        Number of past centroids kept for computing ``E`` and ``SD``.
    min_buffer_samples:
        Minimum samples a delivered buffer needs before its centroid is
        trusted; starved buffers (fault injection, lost interrupts) hold
        the detector instead of feeding it a noise centroid.  The default
        of 1 preserves the paper's behavior on ideal streams.
    """

    th1: float = 0.01
    th2: float = 0.05
    th3: float = 0.10
    th4: float = 0.67
    thickness_divisor: float = 6.0
    dwell_intervals: int = 2
    history_length: int = 8
    min_buffer_samples: int = 1

    def __post_init__(self) -> None:
        _require(0.0 < self.th1 <= self.th2 <= self.th3 <= self.th4,
                 "GPD thresholds must satisfy 0 < th1 <= th2 <= th3 <= th4")
        _require(self.thickness_divisor > 0.0,
                 "thickness_divisor must be positive")
        _require(self.dwell_intervals >= 1,
                 "dwell_intervals must be at least 1")
        _require(self.history_length >= 2,
                 "history_length must be at least 2")
        _require(self.min_buffer_samples >= 1,
                 "min_buffer_samples must be at least 1")


@dataclass(frozen=True, slots=True)
class LpdThresholds:
    """Knobs of the Pearson-correlation local phase detector (Figure 12).

    Attributes
    ----------
    r_threshold:
        Correlation value at or above which two intervals are "similar"
        (the paper's r_t = 0.8).
    adaptive:
        Enable the size-adaptive threshold the paper sketches in section
        3.2.2 ("we are investigating the use of a threshold based on the
        size of region"): large regions get a relaxed threshold because the
        granularity assumption breaks down for them (the 188.ammp
        aberration).
    adaptive_reference_size:
        Region size (in instructions) at which the adaptive threshold
        equals ``r_threshold``; larger regions relax linearly down to
        ``adaptive_floor``.
    adaptive_floor:
        Lower bound of the adaptive threshold.
    min_interval_samples:
        Minimum samples a region must receive in an interval before the
        interval is compared against the stable set; starved intervals
        (fault injection, lost interrupts) count as "insufficient data"
        and hold the r-value, exactly like the paper's no-sample rule.
        The default of 1 preserves the paper's behavior.
    """

    r_threshold: float = DEFAULT_R_THRESHOLD
    adaptive: bool = False
    adaptive_reference_size: int = 256
    adaptive_floor: float = 0.6
    min_interval_samples: int = 1

    def __post_init__(self) -> None:
        _require(-1.0 < self.r_threshold <= 1.0,
                 "r_threshold must lie in (-1, 1]")
        _require(self.adaptive_reference_size >= 1,
                 "adaptive_reference_size must be positive")
        _require(self.min_interval_samples >= 1,
                 "min_interval_samples must be at least 1")
        if self.adaptive:
            _require(-1.0 < self.adaptive_floor <= self.r_threshold,
                     "adaptive_floor must lie in (-1, r_threshold]")

    def threshold_for_size(self, n_instructions: int) -> float:
        """Return the effective r-threshold for a region of the given size.

        With ``adaptive`` off this is always ``r_threshold``.  With it on,
        regions up to ``adaptive_reference_size`` instructions use
        ``r_threshold`` and larger regions relax toward ``adaptive_floor``
        proportionally to ``log2(size / reference)``.
        """
        if not self.adaptive or n_instructions <= self.adaptive_reference_size:
            return self.r_threshold
        import math

        excess = math.log2(n_instructions / self.adaptive_reference_size)
        relaxed = self.r_threshold - 0.1 * excess
        return max(self.adaptive_floor, relaxed)


@dataclass(frozen=True, slots=True)
class MonitorThresholds:
    """Knobs of the region-monitoring framework (section 3.1).

    Attributes
    ----------
    buffer_size:
        Number of samples per interval (buffer overflow granularity).
    ucr_threshold:
        Fraction of samples in the unmonitored code region above which
        region formation triggers.
    formation_hot_fraction:
        During formation, addresses accounting for at least this fraction
        of UCR samples are considered hot seeds.
    formation_max_seeds:
        Upper bound on seeds examined per formation trigger.
    lpd: LpdThresholds
        Per-region phase-detector thresholds.
    """

    buffer_size: int = DEFAULT_BUFFER_SIZE
    ucr_threshold: float = DEFAULT_UCR_THRESHOLD
    formation_hot_fraction: float = 0.001
    formation_max_seeds: int = 128
    lpd: LpdThresholds = field(default_factory=LpdThresholds)

    def __post_init__(self) -> None:
        _require(self.buffer_size >= 2, "buffer_size must be at least 2")
        _require(0.0 < self.ucr_threshold < 1.0,
                 "ucr_threshold must lie in (0, 1)")
        _require(0.0 < self.formation_hot_fraction <= 1.0,
                 "formation_hot_fraction must lie in (0, 1]")
        _require(self.formation_max_seeds >= 1,
                 "formation_max_seeds must be positive")
