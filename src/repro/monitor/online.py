"""Online phase-detection session: buffer-overflow-driven, as deployed.

The batch APIs (:meth:`RegionMonitor.process_stream`) are convenient for
experiments, but the paper's system is *online*: the PMU driver appends
samples to the user buffer and "whenever the user buffer overflows" the
phase-detection machinery runs on the delivered interval.  This module
wires that pipeline:

    PMU interrupts -> SampleBuffer -> [GPD channels | RegionMonitor]

A session accepts samples one at a time (or in batches, as a real
interrupt handler's ring-buffer drain would), runs the configured
detectors on every overflow, and invokes user callbacks on phase changes
— the hook a runtime optimizer's controller thread would use.  Feeding a
session sample-by-sample is bit-for-bit equivalent to the batch path
(tested in ``tests/monitor/test_online.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.gpd import GlobalPhaseDetector
from repro.core.states import PhaseEvent
from repro.core.thresholds import GpdThresholds, MonitorThresholds
from repro.errors import SamplingError
from repro.monitor.region_monitor import IntervalReport, RegionMonitor
from repro.monitor.watchdog import (RegionWatchdog, WatchdogConfig,
                                    WatchdogEvent)
from repro.program.binary import SyntheticBinary
from repro.sampling.buffer import SampleBuffer
from repro.sampling.events import SampleStream
from repro.telemetry.bus import EventBus, get_bus
from repro.telemetry.events import IntervalClosed, SampleBatch

__all__ = ["OnlineSession", "GlobalChangeCallback", "LocalChangeCallback"]

#: Called on every global phase change: (event).
GlobalChangeCallback = Callable[[PhaseEvent], None]

#: Called on every local (per-region) phase change: (rid, event).
LocalChangeCallback = Callable[[int, PhaseEvent], None]


@dataclass
class _SessionStats:
    intervals: int = 0
    samples: int = 0
    global_events: int = 0
    local_events: int = 0


class OnlineSession:
    """A live phase-detection pipeline fed by PMU samples.

    Parameters
    ----------
    binary:
        The monitored program (for region formation); pass ``None`` to run
        a GPD-only session.
    monitor_thresholds:
        Region-monitor knobs (buffer size comes from here).
    gpd_thresholds:
        Global-detector knobs; pass ``None`` with ``run_gpd=False`` to
        disable the global channel.
    run_gpd:
        Whether to run the centroid GPD alongside the region monitor.
    watchdog:
        Optional :class:`~repro.monitor.watchdog.WatchdogConfig`; when
        given (and a region monitor is running) a
        :class:`~repro.monitor.watchdog.RegionWatchdog` observes every
        interval and degrades starved / stuck-unstable regions.
    telemetry:
        Event bus threaded through the session's monitor, detector and
        watchdog; defaults to the process-wide bus (disabled unless a
        sink is attached).
    """

    def __init__(self, binary: SyntheticBinary | None = None,
                 monitor_thresholds: MonitorThresholds | None = None,
                 gpd_thresholds: GpdThresholds | None = None,
                 run_gpd: bool = True,
                 watchdog: WatchdogConfig | None = None,
                 telemetry: EventBus | None = None,
                 **monitor_kwargs) -> None:
        thresholds = monitor_thresholds or MonitorThresholds()
        self._telemetry = telemetry if telemetry is not None else get_bus()
        self.gpd: GlobalPhaseDetector | None = (
            GlobalPhaseDetector(gpd_thresholds, telemetry=self._telemetry)
            if run_gpd else None)
        self.monitor: RegionMonitor | None = (
            RegionMonitor(binary, thresholds, telemetry=self._telemetry,
                          **monitor_kwargs)
            if binary is not None else None)
        if self.gpd is None and self.monitor is None:
            raise ValueError(
                "an online session needs a binary (for region "
                "monitoring), run_gpd=True, or both")
        self.watchdog: RegionWatchdog | None = None
        if watchdog is not None and self.monitor is not None:
            self.watchdog = RegionWatchdog(watchdog, self.monitor,
                                           telemetry=self._telemetry)
        self._buffer = SampleBuffer(thresholds.buffer_size,
                                    self._on_overflow)
        self._global_callbacks: list[GlobalChangeCallback] = []
        self._local_callbacks: list[LocalChangeCallback] = []
        self.stats = _SessionStats()
        self.reports: list[IntervalReport] = []
        self.watchdog_events: list[WatchdogEvent] = []

    # -- subscriptions ------------------------------------------------------

    def on_global_change(self, callback: GlobalChangeCallback) -> None:
        """Register a callback for global phase changes."""
        self._global_callbacks.append(callback)

    def on_local_change(self, callback: LocalChangeCallback) -> None:
        """Register a callback for per-region phase changes."""
        self._local_callbacks.append(callback)

    # -- feeding ------------------------------------------------------------

    def feed(self, pc: int) -> bool:
        """Deliver one PMU sample; returns whether an interval completed."""
        self.stats.samples += 1
        return self._buffer.push(int(pc))

    def feed_many(self, pcs: np.ndarray) -> int:
        """Deliver a batch of samples; returns completed-interval count.

        The batch must be a non-empty one-dimensional integer array —
        float PCs would be silently truncated and an empty batch is
        always a driver bug, so both raise
        :class:`~repro.errors.SamplingError` instead of misbehaving.
        """
        pcs = np.asarray(pcs)
        if pcs.ndim != 1:
            raise SamplingError(
                f"feed_many expects a 1-D sample batch, got shape "
                f"{pcs.shape}")
        if pcs.size == 0:
            raise SamplingError("feed_many received an empty batch")
        if not np.issubdtype(pcs.dtype, np.integer):
            raise SamplingError(
                f"feed_many expects integer PCs, got dtype {pcs.dtype}")
        pcs = pcs.astype(np.int64, copy=False)
        self.stats.samples += int(pcs.size)
        bus = self._telemetry
        if bus.enabled:
            bus.emit(SampleBatch(cumulative_samples=self.stats.samples,
                                 batch_size=int(pcs.size)))
        return self._buffer.push_many(pcs)

    def feed_stream(self, stream: SampleStream) -> int:
        """Deliver a whole simulated stream; returns intervals completed."""
        if not isinstance(stream, SampleStream):
            raise SamplingError(
                f"feed_stream expects a SampleStream, got "
                f"{type(stream).__name__}")
        if stream.n_samples == 0:
            raise SamplingError("feed_stream received an empty stream")
        return self.feed_many(stream.pcs)

    @property
    def pending_samples(self) -> int:
        """Samples buffered since the last overflow."""
        return self._buffer.fill

    # -- the overflow path ----------------------------------------------------

    def _on_overflow(self, pcs: np.ndarray, interval_index: int) -> None:
        self.stats.intervals += 1
        if self.gpd is not None:
            event = self.gpd.observe_buffer(pcs)
            if event is not None:
                self.stats.global_events += 1
                for callback in self._global_callbacks:
                    callback(event)
        if self.monitor is None:
            # GPD-only sessions have no region monitor to close the
            # interval; -1.0 marks the UCR fraction as not applicable.
            bus = self._telemetry
            if bus.enabled:
                bus.emit(IntervalClosed(interval_index=interval_index,
                                        n_samples=int(pcs.size),
                                        ucr_fraction=-1.0, n_regions=0))
        if self.monitor is not None:
            report = self.monitor.process_interval(pcs, interval_index)
            self.reports.append(report)
            for rid, event in report.events:
                self.stats.local_events += 1
                for callback in self._local_callbacks:
                    callback(rid, event)
            if self.watchdog is not None:
                self.watchdog_events.extend(
                    self.watchdog.observe_interval(report))

    # -- inspection -------------------------------------------------------------

    def summary(self) -> dict:
        """A small status dictionary (for logging/diagnostics)."""
        summary = {
            "intervals": self.stats.intervals,
            "samples": self.stats.samples,
            "global_events": self.stats.global_events,
            "local_events": self.stats.local_events,
        }
        if self.gpd is not None:
            summary["gpd_stable"] = self.gpd.in_stable_phase
        if self.monitor is not None:
            summary["monitored_regions"] = len(self.monitor.live_regions())
            summary["ucr_median"] = self.monitor.ucr.median()
        if self.watchdog is not None:
            summary["watchdog"] = self.watchdog.summary()
        return summary
