"""Region-monitoring framework: the paper's section 3 machinery."""

from repro.monitor.online import OnlineSession
from repro.monitor.region_monitor import IntervalReport, RegionMonitor
from repro.monitor.self_monitoring import SelfMonitor, Verdict
from repro.monitor.watchdog import (RegionWatchdog, WatchdogAction,
                                    WatchdogConfig, WatchdogEvent)

__all__ = [
    "IntervalReport",
    "OnlineSession",
    "RegionMonitor",
    "RegionWatchdog",
    "SelfMonitor",
    "Verdict",
    "WatchdogAction",
    "WatchdogConfig",
    "WatchdogEvent",
]
