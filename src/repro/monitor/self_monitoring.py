"""Self-monitoring: verifying the benefit of deployed optimizations.

The paper motivates region monitoring with a second goal beyond phase
detection: "the optimization deployed may not be beneficial ... due to the
speculative nature of some optimizations like data pre-fetching", so the
monitor should "create a framework for developing a feedback mechanism to
monitor deployed optimizations.  This would allow us to undo ineffective
optimizations deployed to a region."

This module implements that feedback loop over any per-region performance
characteristic (the runtime optimizer feeds it DPI — data-cache misses per
instruction, the metric a prefetching optimization moves):

* while a region is unoptimized, observations build the **baseline**;
* after deployment, ``verify_intervals`` observations build the
  **post-deployment** estimate;
* the verdict compares them with a relative tolerance.
"""

from __future__ import annotations

import enum
import statistics
from dataclasses import dataclass, field


class Verdict(enum.Enum):
    """Outcome of verifying one deployed optimization."""

    UNDECIDED = "undecided"     # not enough post-deployment observations
    BENEFICIAL = "beneficial"   # the metric improved beyond tolerance
    NEUTRAL = "neutral"         # within tolerance either way
    HARMFUL = "harmful"         # the metric regressed beyond tolerance


@dataclass
class _RegionFeedback:
    baseline: list[float] = field(default_factory=list)
    deployed: list[float] = field(default_factory=list)
    is_deployed: bool = False


class SelfMonitor:
    """Per-region optimization-benefit verification.

    Parameters
    ----------
    verify_intervals:
        Post-deployment observations required before a verdict.
    tolerance:
        Relative change in the metric below which the verdict is NEUTRAL.
    baseline_window:
        Most recent unoptimized observations retained for the baseline.
    """

    def __init__(self, verify_intervals: int = 4, tolerance: float = 0.10,
                 baseline_window: int = 16) -> None:
        if verify_intervals < 1:
            raise ValueError("verify_intervals must be positive")
        if tolerance < 0.0:
            raise ValueError("tolerance must be non-negative")
        if baseline_window < 1:
            raise ValueError("baseline_window must be positive")
        self.verify_intervals = verify_intervals
        self.tolerance = tolerance
        self.baseline_window = baseline_window
        self._regions: dict[int, _RegionFeedback] = {}

    def _feedback(self, rid: int) -> _RegionFeedback:
        return self._regions.setdefault(rid, _RegionFeedback())

    # -- deployment lifecycle -------------------------------------------------

    def mark_deployed(self, rid: int) -> None:
        """An optimization was deployed to the region: start verifying."""
        feedback = self._feedback(rid)
        feedback.is_deployed = True
        feedback.deployed.clear()

    def mark_unpatched(self, rid: int) -> None:
        """The region's optimization was removed: back to baseline mode."""
        feedback = self._feedback(rid)
        feedback.is_deployed = False
        feedback.deployed.clear()

    def observe(self, rid: int, metric: float) -> None:
        """Record one interval's metric for the region (lower = better)."""
        if metric < 0.0:
            raise ValueError("metric must be non-negative")
        feedback = self._feedback(rid)
        if feedback.is_deployed:
            feedback.deployed.append(metric)
        else:
            feedback.baseline.append(metric)
            if len(feedback.baseline) > self.baseline_window:
                del feedback.baseline[0]

    # -- verdicts -------------------------------------------------------------

    def verdict(self, rid: int) -> Verdict:
        """Current verdict for the region's deployed optimization."""
        feedback = self._regions.get(rid)
        if feedback is None or not feedback.is_deployed \
                or len(feedback.deployed) < self.verify_intervals \
                or not feedback.baseline:
            return Verdict.UNDECIDED
        baseline = statistics.fmean(feedback.baseline)
        after = statistics.fmean(
            feedback.deployed[-self.verify_intervals:])
        if baseline == 0.0:
            return Verdict.NEUTRAL if after == 0.0 else Verdict.HARMFUL
        change = (after - baseline) / baseline
        if change <= -self.tolerance:
            return Verdict.BENEFICIAL
        if change >= self.tolerance:
            return Verdict.HARMFUL
        return Verdict.NEUTRAL

    def should_undo(self, rid: int) -> bool:
        """Whether the optimizer should undo the region's optimization."""
        return self.verdict(rid) is Verdict.HARMFUL

    def baseline_of(self, rid: int) -> float | None:
        """Mean baseline metric, or ``None`` with no observations."""
        feedback = self._regions.get(rid)
        if feedback is None or not feedback.baseline:
            return None
        return statistics.fmean(feedback.baseline)
