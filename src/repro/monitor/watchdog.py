"""Per-region watchdog: graceful degradation under faulty sampling.

Fault injection (:mod:`repro.faults`) exposes two pathological region
states the plain monitor tolerates forever:

* **starved** — a monitored region stops receiving samples (drop bursts,
  interrupt stalls, a phase migration the formation logic has already
  replaced), so its detector holds its last verdict indefinitely while a
  deployed optimization keeps running on stale evidence;
* **stuck-unstable** — a region keeps receiving samples but never
  stabilizes (noisy sampling, corrupted PCs, a genuinely phase-less
  region), so the monitor pays full per-interval detection cost for a
  region that will never be optimized.

The :class:`RegionWatchdog` trips on either condition and *deoptimizes*
the region: any deployed trace must be unpatched (the RTO integration
does this on the emitted event), the region's phase machine resets, and —
in quarantine mode — the region leaves the monitored set so its samples
re-enter the UCR.  Re-optimization is retried with a bounded budget and
exponential (in intervals) backoff: trip *k* waits
``backoff_intervals * backoff_factor**(k-1)`` intervals before the region
may be monitored or deployed again, and after ``retry_budget`` trips the
region is blacklisted for the rest of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ConfigError
from repro.monitor.region_monitor import IntervalReport, RegionMonitor
from repro.regions.region import Region
from repro.telemetry.bus import EventBus, get_bus
from repro.telemetry.events import (Deoptimization, RegionBlacklisted,
                                    RegionQuarantined)

__all__ = ["WatchdogConfig", "WatchdogAction", "WatchdogEvent",
           "RegionWatchdog"]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True, slots=True)
class WatchdogConfig:
    """Degradation-policy knobs.

    Attributes
    ----------
    starvation_intervals:
        Consecutive intervals without samples after which a live region
        counts as starved.
    stuck_unstable_intervals:
        Consecutive sampled-but-unstable intervals after which a region
        counts as stuck.
    retry_budget:
        Deoptimize/re-admit cycles allowed per region before it is
        blacklisted for the rest of the run.
    backoff_intervals:
        Backoff after the first trip, in intervals.
    backoff_factor:
        Multiplier applied to the backoff on every further trip.
    quarantine:
        Whether a tripped region also leaves the monitored set (samples
        re-enter the UCR) until its backoff expires.  With ``False`` the
        watchdog only gates deployments and resets the detector.
    """

    starvation_intervals: int = 8
    stuck_unstable_intervals: int = 24
    retry_budget: int = 3
    backoff_intervals: int = 8
    backoff_factor: float = 2.0
    quarantine: bool = True

    def __post_init__(self) -> None:
        _require(self.starvation_intervals >= 1,
                 "starvation_intervals must be at least 1")
        _require(self.stuck_unstable_intervals >= 1,
                 "stuck_unstable_intervals must be at least 1")
        _require(self.retry_budget >= 1, "retry_budget must be at least 1")
        _require(self.backoff_intervals >= 1,
                 "backoff_intervals must be at least 1")
        _require(self.backoff_factor >= 1.0,
                 "backoff_factor must be at least 1")


class WatchdogAction(Enum):
    """What the watchdog did to a region."""

    DEOPTIMIZE = "deoptimize"
    RETRY = "retry"
    GIVE_UP = "give_up"


@dataclass(frozen=True, slots=True)
class WatchdogEvent:
    """One watchdog decision, for logs, tests and the RTO integration."""

    interval_index: int
    rid: int
    action: WatchdogAction
    reason: str
    detail: str = ""


@dataclass
class _RegionRecord:
    region: Region
    starved_streak: int = 0
    unstable_streak: int = 0
    trips: int = 0
    retry_at: int | None = None
    blacklisted: bool = False
    quarantined: bool = False
    first_seen: int = field(default=-1)


class RegionWatchdog:
    """Watches a :class:`RegionMonitor`'s per-interval reports.

    Feed every interval's :class:`IntervalReport` through
    :meth:`observe_interval`; the watchdog tracks per-region starvation
    and stuck-unstable streaks, trips the degradation path, manages the
    backoff/retry cycle, and answers :meth:`allows_deploy` for the
    optimizer.
    """

    def __init__(self, config: WatchdogConfig | None = None,
                 monitor: RegionMonitor | None = None,
                 telemetry: EventBus | None = None) -> None:
        self.config = config or WatchdogConfig()
        self.monitor = monitor
        self._telemetry = telemetry if telemetry is not None else get_bus()
        self._records: dict[int, _RegionRecord] = {}
        self.events: list[WatchdogEvent] = []
        if monitor is not None and self.config.quarantine:
            monitor.formation_veto = self._veto_formation

    # -- policy queries ------------------------------------------------------

    def allows_deploy(self, rid: int) -> bool:
        """Whether the optimizer may (re)deploy into this region."""
        record = self._records.get(rid)
        if record is None:
            return True
        return not (record.blacklisted or record.quarantined
                    or record.retry_at is not None)

    def is_blacklisted(self, rid: int) -> bool:
        """Whether the region exhausted its retry budget."""
        record = self._records.get(rid)
        return record is not None and record.blacklisted

    def trip_count(self, rid: int) -> int:
        """Number of times the region's degradation path fired."""
        record = self._records.get(rid)
        return 0 if record is None else record.trips

    def _veto_formation(self, region: Region) -> bool:
        """Formation veto: suppress spans that are backing off."""
        for record in self._records.values():
            if record.region.start == region.start \
                    and record.region.end == region.end \
                    and (record.blacklisted or record.retry_at is not None):
                return True
        return False

    # -- the per-interval hook ----------------------------------------------

    def observe_interval(self, report: IntervalReport,
                         monitor: RegionMonitor | None = None
                         ) -> list[WatchdogEvent]:
        """Update streaks from one interval; returns the actions taken."""
        monitor = monitor if monitor is not None else self.monitor
        if monitor is None:
            raise ConfigError(
                "RegionWatchdog needs a monitor (constructor or call)")
        index = report.interval_index
        fired: list[WatchdogEvent] = []

        for region in monitor.live_regions():
            record = self._records.get(region.rid)
            if record is None:
                record = _RegionRecord(region=region, first_seen=index)
                self._records[region.rid] = record
                continue  # a region's first interval was its formation
            n_samples = report.region_samples.get(region.rid, 0)
            if n_samples == 0:
                record.starved_streak += 1
            else:
                record.starved_streak = 0
                detector = monitor.detector(region.rid)
                if detector.in_stable_phase:
                    record.unstable_streak = 0
                else:
                    record.unstable_streak += 1
            event = self._maybe_trip(record, index, monitor)
            if event is not None:
                fired.append(event)

        fired.extend(self._retry_due(index, monitor))
        self.events.extend(fired)
        return fired

    # -- internals ------------------------------------------------------------

    def _maybe_trip(self, record: _RegionRecord, index: int,
                    monitor: RegionMonitor) -> WatchdogEvent | None:
        config = self.config
        if record.blacklisted or record.retry_at is not None:
            return None
        if record.starved_streak >= config.starvation_intervals:
            reason = "starved"
            streak = record.starved_streak
        elif record.unstable_streak >= config.stuck_unstable_intervals:
            reason = "stuck-unstable"
            streak = record.unstable_streak
        else:
            return None

        record.trips += 1
        record.starved_streak = 0
        record.unstable_streak = 0
        monitor.reset_detector(record.region.rid)
        rid = record.region.rid
        bus = self._telemetry
        if record.trips >= self.config.retry_budget:
            record.blacklisted = True
            if config.quarantine and rid in monitor.registry:
                monitor.quarantine(rid)
                record.quarantined = True
            if bus.enabled:
                bus.emit(Deoptimization(index, rid, reason, "give_up"))
                bus.emit(RegionBlacklisted(index, rid, reason))
                if record.quarantined:
                    bus.emit(RegionQuarantined(index, rid, reason))
            return WatchdogEvent(
                interval_index=index, rid=rid,
                action=WatchdogAction.GIVE_UP, reason=reason,
                detail=f"streak={streak}, budget exhausted "
                       f"after {record.trips} trips")

        backoff = int(config.backoff_intervals
                      * config.backoff_factor ** (record.trips - 1))
        record.retry_at = index + max(backoff, 1)
        if config.quarantine and rid in monitor.registry:
            monitor.quarantine(rid)
            record.quarantined = True
        if bus.enabled:
            bus.emit(Deoptimization(index, rid, reason, "deoptimize"))
            if record.quarantined:
                bus.emit(RegionQuarantined(index, rid, reason))
        return WatchdogEvent(
            interval_index=index, rid=rid,
            action=WatchdogAction.DEOPTIMIZE, reason=reason,
            detail=f"streak={streak}, trip {record.trips}/"
                   f"{config.retry_budget}, retry at interval "
                   f"{record.retry_at}")

    def _retry_due(self, index: int,
                   monitor: RegionMonitor) -> list[WatchdogEvent]:
        fired: list[WatchdogEvent] = []
        for record in self._records.values():
            if record.retry_at is None or index < record.retry_at:
                continue
            record.retry_at = None
            if record.quarantined:
                monitor.release(record.region.rid)
                record.quarantined = False
            fired.append(WatchdogEvent(
                interval_index=index, rid=record.region.rid,
                action=WatchdogAction.RETRY, reason="backoff elapsed",
                detail=f"trip {record.trips}/{self.config.retry_budget}"))
        return fired

    # -- reporting -------------------------------------------------------------

    def summary(self) -> dict:
        """Aggregate counters (for session summaries and logs)."""
        return {
            "watched_regions": len(self._records),
            "deoptimizations": sum(
                1 for e in self.events
                if e.action is WatchdogAction.DEOPTIMIZE),
            "retries": sum(1 for e in self.events
                           if e.action is WatchdogAction.RETRY),
            "blacklisted": sum(1 for r in self._records.values()
                               if r.blacklisted),
        }
