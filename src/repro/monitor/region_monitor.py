"""The region-monitoring framework (paper section 3).

This ties together everything below it: per interval (buffer overflow) it

1. distributes the samples across the monitored regions (list or interval
   tree), sending the leftovers to the UCR;
2. triggers **region formation** when the UCR fraction exceeds the
   threshold, growing the monitored set from hot unmonitored addresses;
3. runs each region's **local phase detector** on the region's histogram
   (or lets it hold when the region did not execute);
4. optionally **prunes** cold regions;
5. charges every step's work to the cost ledger.

The monitor achieves "the dual goal of phase detection and monitoring of
deployed optimizations": phase events stream out per region, and per-region
per-interval statistics feed :mod:`repro.monitor.self_monitoring`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lpd import LocalPhaseDetector
from repro.core.similarity import SimilarityMeasure
from repro.core.states import PhaseEvent
from repro.core.thresholds import MonitorThresholds
from repro.costs import CostLedger
from repro.errors import RegionError
from repro.program.binary import SyntheticBinary
from repro.regions.attribution import make_attributor
from repro.regions.formation import FormationOutcome, RegionFormation
from repro.regions.pruning import PruningPolicy, RegionActivity
from repro.regions.region import Region
from repro.regions.registry import RegionRegistry
from repro.regions.ucr import UcrTracker
from repro.sampling.events import SampleStream
from repro.telemetry.bus import EventBus, get_bus
from repro.telemetry.events import IntervalClosed, RegionFormed

__all__ = ["IntervalReport", "PendingInterval", "RegionMonitor"]


@dataclass(frozen=True)
class IntervalReport:
    """What happened during one monitored interval.

    Attributes
    ----------
    interval_index:
        The interval's position in the run.
    ucr_fraction:
        Fraction of samples left unmonitored this interval.
    formation:
        Outcome of the formation trigger, if one fired.
    events:
        ``(rid, PhaseEvent)`` pairs for every local phase change.
    region_samples:
        rid -> samples attributed this interval (regions with zero
        samples are omitted).
    pruned:
        rids evicted at the end of the interval.
    """

    interval_index: int
    ucr_fraction: float
    formation: FormationOutcome | None
    events: tuple[tuple[int, PhaseEvent], ...]
    region_samples: dict[int, int] = field(default_factory=dict)
    pruned: tuple[int, ...] = ()


@dataclass
class PendingInterval:
    """An interval attributed and accounted, but not yet phase-detected.

    Produced by :meth:`RegionMonitor.begin_interval`; consumed by
    :meth:`RegionMonitor.observe_pending` and
    :meth:`RegionMonitor.finish_interval`.  The split lets a batch
    harness gather the ``to_observe`` work of many monitors and step all
    their detectors in one vectorized call between the two halves.
    """

    index: int
    n_samples: int
    ucr_fraction: float
    formation: FormationOutcome | None
    region_samples: dict[int, int]
    #: ``(rid, counts)`` pairs in registry order — the detector
    #: observations this interval owes, with ``counts`` already extracted
    #: exactly as the scalar pipeline would pass them.
    to_observe: list[tuple[int, np.ndarray | None]]


class RegionMonitor:
    """Online region monitoring with local phase detection.

    Parameters
    ----------
    binary:
        The monitored program (for region formation).
    thresholds:
        Buffer size, UCR trigger, and per-region LPD knobs.
    attribution:
        ``"list"`` or ``"tree"`` (paper section 3.2.3).
    measure:
        Similarity measure for the per-region detectors (default
        Pearson).
    interprocedural:
        Enable the whole-procedure formation fallback.
    trace_formation:
        Enable hot-path trace regions for hot non-loop code.
    annotations:
        Optional compiler-annotation table consulted first by formation.
    pruning:
        Optional eviction policy for cold regions.
    ledger:
        Cost ledger; a fresh one is created if not supplied.
    telemetry:
        Event bus for the monitor and its per-region detectors; defaults
        to the process-wide bus (disabled unless a sink is attached).
    detector_factory:
        Optional callable built like ``LocalPhaseDetector`` (same keyword
        arguments) that supplies each region's detector.  The batch
        backend passes a bank-row allocator here; anything returned must
        honor the ``LocalPhaseDetector`` surface.
    """

    def __init__(self, binary: SyntheticBinary,
                 thresholds: MonitorThresholds | None = None,
                 attribution: str = "list",
                 measure: SimilarityMeasure | None = None,
                 interprocedural: bool = False,
                 trace_formation: bool = False,
                 annotations=None,
                 pruning: PruningPolicy | None = None,
                 ledger: CostLedger | None = None,
                 telemetry: EventBus | None = None,
                 detector_factory=None) -> None:
        self.binary = binary
        self._telemetry = telemetry if telemetry is not None else get_bus()
        self.thresholds = thresholds or MonitorThresholds()
        self.ledger = ledger if ledger is not None else CostLedger()
        self.registry = RegionRegistry()
        self.attributor = make_attributor(attribution, self.registry,
                                          self.ledger)
        self.formation = RegionFormation(
            binary, self.registry,
            hot_fraction=self.thresholds.formation_hot_fraction,
            max_seeds=self.thresholds.formation_max_seeds,
            interprocedural=interprocedural,
            trace_fallback=trace_formation,
            annotations=annotations)
        self.ucr = UcrTracker(self.thresholds.ucr_threshold)
        self.pruning = pruning
        self._measure = measure
        self._detector_factory = detector_factory or LocalPhaseDetector
        self._detectors: dict[int, LocalPhaseDetector] = {}
        self._retired: dict[int, tuple[Region, LocalPhaseDetector]] = {}
        self._quarantined: dict[int, Region] = {}
        self._activity: dict[int, RegionActivity] = {}
        self._formed_at: dict[int, int] = {}
        self._interval_index = -1
        #: Optional predicate consulted for every newly formed region; a
        #: ``True`` verdict drops the region immediately (its samples stay
        #: in the UCR).  The watchdog uses this to keep a quarantined span
        #: from being re-formed while its backoff is running.
        self.formation_veto = None
        self.reports: list[IntervalReport] = []
        #: Per-region data-cache miss-rate observations (interval, rate),
        #: recorded when miss flags accompany the samples.  This is the
        #: raw material of self-monitoring (paper: "monitoring the
        #: performance of a region ... to determine the impact of
        #: deployed optimizations").
        self._miss_rates: dict[int, list[tuple[int, float]]] = {}

    # -- region plumbing ------------------------------------------------------

    def _install_region(self, region: Region) -> None:
        detector = self._detector_factory(
            n_instructions=region.n_instructions,
            thresholds=self.thresholds.lpd,
            measure=self._measure,
            telemetry=self._telemetry,
            region_id=region.rid)
        self._detectors[region.rid] = detector
        self._activity[region.rid] = RegionActivity(rid=region.rid)
        self._formed_at[region.rid] = max(region.formed_at_interval, 0)
        if self._telemetry.enabled:
            self._telemetry.emit(RegionFormed(
                interval_index=region.formed_at_interval,
                rid=region.rid, start=region.start, end=region.end,
                kind=region.kind.value))

    def add_region(self, start: int, end: int) -> Region:
        """Manually register a region (bypassing formation)."""
        from repro.regions.region import RegionKind

        region = self.registry.add(start, end, kind=RegionKind.MANUAL,
                                   formed_at_interval=self._interval_index)
        self._install_region(region)
        return region

    def detector(self, rid: int) -> LocalPhaseDetector:
        """The local phase detector of a live, quarantined or retired
        region."""
        if rid in self._detectors:
            return self._detectors[rid]
        if rid in self._retired:
            return self._retired[rid][1]
        raise RegionError(f"no detector for region id {rid}")

    def region_record(self, rid: int) -> Region:
        """The region record for a live, quarantined or retired region."""
        if rid in self.registry:
            return self.registry.get(rid)
        if rid in self._quarantined:
            return self._quarantined[rid]
        if rid in self._retired:
            return self._retired[rid][0]
        raise RegionError(f"no region with id {rid}")

    def live_regions(self) -> list[Region]:
        """Currently monitored regions, in formation order."""
        return self.registry.regions()

    def all_regions(self) -> list[Region]:
        """Live plus quarantined plus pruned regions."""
        regions = self.registry.regions() \
            + list(self._quarantined.values()) \
            + [region for region, _ in self._retired.values()]
        return sorted(regions, key=lambda r: r.rid)

    # -- graceful degradation (watchdog surface) -------------------------------

    def quarantine(self, rid: int) -> Region:
        """Deoptimize a region: its span re-enters the UCR.

        The region leaves the registry (so attribution sends its samples
        back to the unmonitored code region) but keeps its detector and
        statistics, unlike pruning.  Returns the quarantined record.
        """
        if rid in self._quarantined:
            return self._quarantined[rid]
        region = self.registry.remove(rid)
        self._quarantined[rid] = region
        return region

    def release(self, rid: int) -> Region:
        """Re-admit a quarantined region under its original id."""
        try:
            region = self._quarantined.pop(rid)
        except KeyError:
            raise RegionError(f"region id {rid} is not quarantined") from None
        return self.registry.reinsert(region)

    def quarantined_regions(self) -> list[Region]:
        """Regions currently quarantined by the watchdog."""
        return sorted(self._quarantined.values(), key=lambda r: r.rid)

    def reset_detector(self, rid: int) -> None:
        """Reset a region's phase machine to unstable (keeps statistics)."""
        self.detector(rid).reset()

    def region_by_name(self, name: str) -> Region:
        """Look up a region (live or retired) by its ``start-end`` name."""
        for region in self.all_regions():
            if region.name == name:
                return region
        raise RegionError(f"no region named {name!r}")

    # -- the per-interval pipeline ---------------------------------------------

    def process_interval(self, pcs: np.ndarray,
                         interval_index: int | None = None,
                         miss_flags: np.ndarray | None = None
                         ) -> IntervalReport:
        """Handle one buffer overflow; returns the interval's report.

        ``miss_flags`` (optional, one bool per sample) enables per-region
        data-cache miss-rate tracking for self-monitoring.
        """
        pending = self.begin_interval(pcs, interval_index, miss_flags)
        events = self.observe_pending(pending)
        return self.finish_interval(pending, events)

    def begin_interval(self, pcs: np.ndarray,
                       interval_index: int | None = None,
                       miss_flags: np.ndarray | None = None
                       ) -> PendingInterval:
        """Attribute and account one buffer; defer phase detection.

        Runs steps 1-2 of the pipeline (attribution, UCR/formation) plus
        the per-region bookkeeping of step 3 (sample counts, cost
        charges, miss rates, activity), and returns the deferred detector
        observations.  ``process_interval`` is exactly ``begin`` +
        ``observe_pending`` + ``finish``.
        """
        self._interval_index = (self._interval_index + 1
                                if interval_index is None
                                else interval_index)
        index = self._interval_index
        pcs = np.asarray(pcs, dtype=np.int64)
        if miss_flags is not None:
            miss_flags = np.asarray(miss_flags, dtype=bool)
            if miss_flags.size != pcs.size:
                raise RegionError(
                    f"miss_flags has {miss_flags.size} entries, "
                    f"expected {pcs.size}")

        # 1. Distribute samples (cost charged by the attributor).
        result = self.attributor.attribute(pcs)

        # 2. UCR accounting and formation trigger.
        formation_outcome: FormationOutcome | None = None
        if self.ucr.record(result.ucr_fraction, index):
            formation_outcome = self.formation.form(result.ucr_pcs, index)
            for region in formation_outcome.new_regions:
                if self.formation_veto is not None \
                        and self.formation_veto(region):
                    # Span suppressed (watchdog backoff): drop it again —
                    # its samples stay in the UCR.
                    self.registry.remove(region.rid)
                    continue
                self._install_region(region)

        # 3a. Per-region accounting.  Regions formed this interval start
        #     observing from the next one (their samples for this
        #     interval were counted as UCR).
        region_samples: dict[int, int] = {}
        to_observe: list[tuple[int, np.ndarray | None]] = []
        new_rids = set()
        if formation_outcome is not None:
            new_rids = {r.rid for r in formation_outcome.new_regions}
        for region in self.registry.regions():
            rid = region.rid
            if rid in new_rids:
                continue
            counts = result.region_counts.get(rid)
            n_samples = result.total_for(rid)
            if n_samples:
                region_samples[rid] = n_samples
                self.ledger.charge_similarity(region.n_instructions)
                if miss_flags is not None:
                    inside = (pcs >= region.start) & (pcs < region.end)
                    rate = float(miss_flags[inside].mean())
                    self._miss_rates.setdefault(rid, []).append(
                        (index, rate))
            self.ledger.charge_lpd_state()
            to_observe.append((rid, counts))
            self._activity[rid].record(n_samples, result.n_samples)

        return PendingInterval(
            index=index,
            n_samples=int(pcs.size),
            ucr_fraction=result.ucr_fraction,
            formation=formation_outcome,
            region_samples=region_samples,
            to_observe=to_observe)

    def observe_pending(self, pending: PendingInterval
                        ) -> list[tuple[int, PhaseEvent]]:
        """Step 3b: run the deferred detector observations, one by one."""
        events: list[tuple[int, PhaseEvent]] = []
        for rid, counts in pending.to_observe:
            event = self._detectors[rid].observe(counts, pending.index)
            if event is not None:
                events.append((rid, event))
        return events

    def finish_interval(self, pending: PendingInterval,
                        events: list[tuple[int, PhaseEvent]]
                        ) -> IntervalReport:
        """Steps 4-5: pruning, report assembly, interval telemetry."""
        index = pending.index

        pruned: list[int] = []
        if self.pruning is not None:
            for region in list(self.registry.regions()):
                activity = self._activity[region.rid]
                age = index - self._formed_at[region.rid]
                if self.pruning.should_prune(activity, age):
                    self.registry.remove(region.rid)
                    self._retired[region.rid] = (
                        region, self._detectors.pop(region.rid))
                    self._activity.pop(region.rid)
                    pruned.append(region.rid)

        report = IntervalReport(
            interval_index=index,
            ucr_fraction=pending.ucr_fraction,
            formation=pending.formation,
            events=tuple(events),
            region_samples=pending.region_samples,
            pruned=tuple(pruned))
        self.reports.append(report)
        if self._telemetry.enabled:
            self._telemetry.emit(IntervalClosed(
                interval_index=index, n_samples=pending.n_samples,
                ucr_fraction=float(pending.ucr_fraction),
                n_regions=len(self.registry)))
        return report

    def process_stream(self, stream: SampleStream,
                       track_misses: bool = False) -> list[IntervalReport]:
        """Process a whole sample stream, one buffer interval at a time.

        With ``track_misses`` on, the stream's data-cache miss flags feed
        per-region miss-rate tracking (see :meth:`region_miss_rates`).
        """
        buffer_size = self.thresholds.buffer_size
        reports = []
        for index, window in stream.intervals(buffer_size):
            miss = stream.dcache_miss[window] if track_misses else None
            reports.append(self.process_interval(
                stream.pcs[window], index, miss_flags=miss))
        return reports

    def region_miss_rates(self, rid: int) -> list[tuple[int, float]]:
        """(interval, miss-rate) observations for a region.

        Empty unless the stream was processed with miss tracking.
        """
        self.detector(rid)  # validates the id
        return list(self._miss_rates.get(rid, []))

    # -- aggregate statistics ---------------------------------------------------

    @property
    def intervals_processed(self) -> int:
        """Number of intervals handled so far."""
        return len(self.reports)

    def phase_change_counts(self) -> dict[int, int]:
        """rid -> number of local phase changes (Figure 13's statistic)."""
        return {region.rid: self.detector(region.rid).phase_change_count()
                for region in self.all_regions()}

    def stable_time_fractions(self) -> dict[int, float]:
        """rid -> fraction of active intervals spent stable (Figure 14)."""
        return {region.rid: self.detector(region.rid).stable_time_fraction()
                for region in self.all_regions()}

    def total_events(self) -> int:
        """All local phase changes across all regions."""
        return sum(self.phase_change_counts().values())

    def region_sample_matrix(self) -> tuple[list[Region], np.ndarray]:
        """(regions, intervals x regions sample-count matrix) for charts."""
        regions = self.all_regions()
        index = {region.rid: i for i, region in enumerate(regions)}
        matrix = np.zeros((len(self.reports), len(regions)), dtype=np.int64)
        for row, report in enumerate(self.reports):
            for rid, count in report.region_samples.items():
                matrix[row, index[rid]] = count
        return regions, matrix
