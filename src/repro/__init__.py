"""repro — Region Monitoring for Local Phase Detection.

A production-quality reproduction of Das, Lu & Hsu, *Region Monitoring for
Local Phase Detection in Dynamic Optimization Systems* (CGO 2006).

The package layers, bottom up:

* :mod:`repro.program` — synthetic binaries (CFGs, natural loops, call
  graphs), per-region behavior profiles, workload scripts, and the
  synthetic SPEC CPU2000 suite the paper evaluates on.
* :mod:`repro.sampling` — the PMU simulator: periodic cycle sampling into
  the 2032-entry user buffer.
* :mod:`repro.faults` — declarative, seed-deterministic PMU fault
  injection (interrupt drops, PC skid, period jitter/drift, duplicates,
  bit corruption, stall windows) for the robustness experiments.
* :mod:`repro.core` — the detectors: the centroid-based Global Phase
  Detector (Figure 1) and the Pearson-correlation Local Phase Detector
  (Figure 12), plus pluggable similarity measures.
* :mod:`repro.regions` — monitored regions, list / interval-tree sample
  attribution, loop-based region formation, UCR accounting, pruning.
* :mod:`repro.monitor` — the region-monitoring framework tying it all
  together, plus self-monitoring of deployed optimizations.
* :mod:`repro.optimizer` — the simulated runtime optimizer comparing the
  GPD-driven and LPD-driven policies (Figure 17).
* :mod:`repro.experiments` — one module per paper figure.

Quickstart::

    from repro import (GlobalPhaseDetector, LocalPhaseDetector,
                       RegionMonitor, get_benchmark, simulate_sampling)

    model = get_benchmark("181.mcf", scale=0.1)
    stream = simulate_sampling(model.regions, model.workload,
                               sampling_period=45_000, seed=7)
    monitor = RegionMonitor(model.binary)
    monitor.process_stream(stream)
    print(monitor.phase_change_counts())
"""

from repro.core import (GlobalPhaseDetector, GpdThresholds,
                        LocalPhaseDetector, LpdThresholds,
                        MonitorThresholds, PhaseEvent, PhaseEventKind,
                        PhaseState, RegionHistogram, pearson_r)
from repro.costs import CostLedger
from repro.errors import FaultError, ReproError
from repro.core.performance import CompositeGlobalDetector
from repro.faults import (DuplicateSamples, FaultPlan, InterruptStall,
                          PcBitCorruption, PcSkid, PeriodDrift,
                          PeriodJitter, SampleDrop, inject,
                          simulate_faulty_sampling)
from repro.monitor import (OnlineSession, RegionMonitor, RegionWatchdog,
                           SelfMonitor, Verdict, WatchdogConfig,
                           WatchdogEvent)
from repro.optimizer import RtoConfig, RTOSystem, compare_policies
from repro.program import (BinaryBuilder, RegionSpec, SyntheticBinary,
                           WorkloadScript)
from repro.program.spec2000 import (BenchmarkModel, benchmark_names,
                                    get_benchmark)
from repro.regions import IntervalTree, RegionFormation, RegionRegistry
from repro.sampling import (PMUSimulator, SampleBuffer, SampleStream,
                            simulate_sampling)

__version__ = "1.0.0"

__all__ = [
    "GlobalPhaseDetector",
    "GpdThresholds",
    "LocalPhaseDetector",
    "LpdThresholds",
    "MonitorThresholds",
    "PhaseEvent",
    "PhaseEventKind",
    "PhaseState",
    "RegionHistogram",
    "pearson_r",
    "CostLedger",
    "ReproError",
    "FaultError",
    "CompositeGlobalDetector",
    "FaultPlan",
    "SampleDrop",
    "PcSkid",
    "PeriodJitter",
    "PeriodDrift",
    "DuplicateSamples",
    "PcBitCorruption",
    "InterruptStall",
    "inject",
    "simulate_faulty_sampling",
    "OnlineSession",
    "RegionMonitor",
    "RegionWatchdog",
    "SelfMonitor",
    "Verdict",
    "WatchdogConfig",
    "WatchdogEvent",
    "RtoConfig",
    "RTOSystem",
    "compare_policies",
    "BinaryBuilder",
    "RegionSpec",
    "SyntheticBinary",
    "WorkloadScript",
    "BenchmarkModel",
    "benchmark_names",
    "get_benchmark",
    "IntervalTree",
    "RegionFormation",
    "RegionRegistry",
    "PMUSimulator",
    "SampleBuffer",
    "SampleStream",
    "simulate_sampling",
    "__version__",
]
