"""Workload scripts: how a benchmark's execution unfolds over virtual time.

A workload is a sequence of *segments*; each segment describes, for a span
of virtual cycles, the **mixture** of regions the program executes (with
cycle-share weights and a profile choice per region).  Three segment kinds
cover every behavior the paper's benchmarks exhibit:

* :class:`Steady` — one mixture for the whole duration (stable phases);
* :class:`Periodic` — round-robin between mixtures every ``switch_period``
  cycles (facerec's 2-set switching, galgel's flapping, ammp's fine-scale
  profile wander);
* :class:`Drift` — linear interpolation between two mixtures (mcf's
  gradual trade-off between regions, Figure 9).

Scripts *compile* into a flat list of :class:`Piece` — half-open cycle
ranges with a fixed mixture — which the PMU simulator walks.  The compiled
timeline is also the ground truth for the optimizer's timing model
(:func:`region_cycles`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

__all__ = [
    "Component",
    "Mixture",
    "mixture",
    "Steady",
    "Periodic",
    "Drift",
    "Piece",
    "WorkloadScript",
    "region_cycles",
    "region_cycles_per_window",
]


@dataclass(frozen=True, slots=True)
class Component:
    """One region's participation in a mixture.

    Attributes
    ----------
    region:
        Workload-region name (a key of the benchmark's region table).
    weight:
        Relative cycle share (normalized across the mixture).
    profile:
        Which of the region's profiles is active.
    """

    region: str
    weight: float
    profile: str = "main"

    def __post_init__(self) -> None:
        if self.weight <= 0.0:
            raise WorkloadError(
                f"component {self.region!r} needs positive weight")


@dataclass(frozen=True, slots=True)
class Mixture:
    """A normalized set of components active at one point in time."""

    components: tuple[Component, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise WorkloadError("a mixture needs at least one component")
        keys = [(c.region, c.profile) for c in self.components]
        if len(set(keys)) != len(keys):
            raise WorkloadError("duplicate (region, profile) in mixture")

    @property
    def weights(self) -> np.ndarray:
        """Normalized weight vector, aligned with :attr:`components`."""
        raw = np.array([c.weight for c in self.components])
        return raw / raw.sum()

    def region_shares(self) -> dict[str, float]:
        """Cycle share per region (summing profiles of the same region)."""
        shares: dict[str, float] = {}
        for component, weight in zip(self.components, self.weights):
            shares[component.region] = shares.get(component.region, 0.0) \
                + float(weight)
        return shares


def mixture(*components: Component | tuple) -> Mixture:
    """Build a mixture from components or ``(region, weight[, profile])``
    tuples."""
    resolved = []
    for item in components:
        if isinstance(item, Component):
            resolved.append(item)
        else:
            resolved.append(Component(*item))
    return Mixture(tuple(resolved))


# ---------------------------------------------------------------------------
# Segments
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Steady:
    """One mixture held for ``duration`` cycles."""

    duration: int
    mix: Mixture

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise WorkloadError("segment duration must be positive")

    def pieces(self, start: int) -> list["Piece"]:
        return [Piece(start, start + self.duration, self.mix)]


@dataclass(frozen=True, slots=True)
class Periodic:
    """Round-robin between ``mixtures`` every ``switch_period`` cycles."""

    duration: int
    mixtures: tuple[Mixture, ...]
    switch_period: int

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise WorkloadError("segment duration must be positive")
        if len(self.mixtures) < 2:
            raise WorkloadError("periodic segment needs >= 2 mixtures")
        if self.switch_period <= 0:
            raise WorkloadError("switch_period must be positive")
        if self.duration // self.switch_period > 500_000:
            raise WorkloadError(
                "periodic segment would compile to more than 500k pieces; "
                "increase switch_period or split the segment")

    def pieces(self, start: int) -> list["Piece"]:
        result = []
        cursor = start
        end = start + self.duration
        index = 0
        while cursor < end:
            piece_end = min(cursor + self.switch_period, end)
            result.append(Piece(cursor, piece_end,
                                self.mixtures[index % len(self.mixtures)]))
            cursor = piece_end
            index += 1
        return result


@dataclass(frozen=True, slots=True)
class Drift:
    """Linear interpolation from ``mix_from`` to ``mix_to`` in ``steps``."""

    duration: int
    mix_from: Mixture
    mix_to: Mixture
    steps: int = 32

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise WorkloadError("segment duration must be positive")
        if self.steps < 2:
            raise WorkloadError("drift needs at least 2 steps")

    def pieces(self, start: int) -> list["Piece"]:
        # Union of (region, profile) keys; missing components lerp from/to 0.
        keys: list[tuple[str, str]] = []
        for mix in (self.mix_from, self.mix_to):
            for component in mix.components:
                key = (component.region, component.profile)
                if key not in keys:
                    keys.append(key)

        def weight_in(mix: Mixture, key: tuple[str, str]) -> float:
            shares = dict(zip(
                [(c.region, c.profile) for c in mix.components],
                mix.weights))
            return float(shares.get(key, 0.0))

        result = []
        boundaries = np.linspace(start, start + self.duration,
                                 self.steps + 1).astype(np.int64)
        for step in range(self.steps):
            t = (step + 0.5) / self.steps
            components = []
            for region, profile in keys:
                weight = ((1.0 - t) * weight_in(self.mix_from,
                                                (region, profile))
                          + t * weight_in(self.mix_to, (region, profile)))
                if weight > 1e-12:
                    components.append(Component(region, weight, profile))
            if int(boundaries[step + 1]) > int(boundaries[step]):
                result.append(Piece(int(boundaries[step]),
                                    int(boundaries[step + 1]),
                                    Mixture(tuple(components))))
        return result


# ---------------------------------------------------------------------------
# Compiled timeline
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Piece:
    """A half-open cycle range ``[start, end)`` with a fixed mixture."""

    start: int
    end: int
    mix: Mixture

    @property
    def duration(self) -> int:
        return self.end - self.start


class WorkloadScript:
    """An ordered list of segments compiled into a piece timeline."""

    def __init__(self, segments: list) -> None:
        if not segments:
            raise WorkloadError("a workload needs at least one segment")
        self.segments = list(segments)
        self._pieces: list[Piece] | None = None

    @property
    def total_cycles(self) -> int:
        """Total virtual duration of the workload."""
        return sum(segment.duration for segment in self.segments)

    def compile(self) -> list[Piece]:
        """Flatten all segments into a contiguous piece timeline."""
        if self._pieces is None:
            pieces: list[Piece] = []
            cursor = 0
            for segment in self.segments:
                pieces.extend(segment.pieces(cursor))
                cursor += segment.duration
            self._pieces = pieces
        return list(self._pieces)

    def region_names(self) -> list[str]:
        """All region names referenced anywhere in the script, in first-use
        order."""
        names: list[str] = []
        for piece in self.compile():
            for component in piece.mix.components:
                if component.region not in names:
                    names.append(component.region)
        return names

    def scaled(self, factor: float) -> "WorkloadScript":
        """A copy with every duration (and switch period) multiplied by
        *factor* — used to shrink experiments for tests.

        Durations below one cycle are clamped to 1.
        """
        if factor <= 0.0:
            raise WorkloadError("scale factor must be positive")

        def scale(value: int) -> int:
            return max(1, int(round(value * factor)))

        scaled_segments: list = []
        for segment in self.segments:
            if isinstance(segment, Steady):
                scaled_segments.append(
                    Steady(scale(segment.duration), segment.mix))
            elif isinstance(segment, Periodic):
                scaled_segments.append(Periodic(
                    scale(segment.duration), segment.mixtures,
                    segment.switch_period))
            elif isinstance(segment, Drift):
                scaled_segments.append(Drift(
                    scale(segment.duration), segment.mix_from,
                    segment.mix_to, segment.steps))
            else:  # pragma: no cover - custom segment kinds scale themselves
                scaled_segments.append(segment.scaled(factor))
        return WorkloadScript(scaled_segments)


# ---------------------------------------------------------------------------
# Timing ground truth
# ---------------------------------------------------------------------------

def region_cycles(pieces: list[Piece]) -> dict[str, float]:
    """Exact cycles attributable to each region over the whole timeline."""
    totals: dict[str, float] = {}
    for piece in pieces:
        for region, share in piece.mix.region_shares().items():
            totals[region] = totals.get(region, 0.0) \
                + share * piece.duration
    return totals


def region_cycles_per_window(pieces: list[Piece], window_cycles: int,
                             n_windows: int,
                             region_order: list[str]) -> np.ndarray:
    """Exact per-region cycles in each fixed window (interval) of the run.

    Returns an ``(n_windows, n_regions)`` matrix; used by the optimizer's
    timing model to credit savings interval by interval.
    """
    if window_cycles <= 0 or n_windows < 0:
        raise WorkloadError("window parameters must be positive")
    index = {name: i for i, name in enumerate(region_order)}
    matrix = np.zeros((n_windows, len(region_order)))
    for piece in pieces:
        shares = piece.mix.region_shares()
        first = piece.start // window_cycles
        last = (piece.end - 1) // window_cycles if piece.end > piece.start \
            else first
        for window in range(first, min(last, n_windows - 1) + 1):
            lo = max(piece.start, window * window_cycles)
            hi = min(piece.end, (window + 1) * window_cycles)
            if hi <= lo:
                continue
            for region, share in shares.items():
                if region in index:
                    matrix[window, index[region]] += share * (hi - lo)
    return matrix
