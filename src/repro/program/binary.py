"""The synthetic binary: procedures laid out in one address space.

A :class:`BinaryBuilder` assembles procedures from *shapes* — straight-line
runs, loops (optionally nested), and call sites — at explicit or
automatically assigned addresses.  Explicit placement lets the benchmark
models pin loops to the exact address ranges the paper names (e.g. 181.mcf's
regions ``146f0-14770``, ``142c8-14318`` and ``13134-133d4``).

The built :class:`SyntheticBinary` answers the queries region formation
needs: which procedure contains an address, which is the innermost natural
loop around it, and — for the inter-procedural extension — which caller
loop invokes a given hot procedure.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.core.histogram import INSTRUCTION_BYTES
from repro.errors import AddressError
from repro.program.instructions import BasicBlock, Instruction, Opcode
from repro.program.loops import Loop, innermost_loop_containing
from repro.program.procedures import Procedure

__all__ = [
    "Straight",
    "LoopShape",
    "CallSite",
    "BranchShape",
    "loop",
    "straight",
    "call",
    "branch",
    "BinaryBuilder",
    "SyntheticBinary",
]


# ---------------------------------------------------------------------------
# Shapes: the layout DSL
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Straight:
    """A straight-line block of *n* instructions (every 4th is a load)."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise AddressError("straight shape needs at least 1 instruction")

    @property
    def size(self) -> int:
        return self.n


@dataclass(frozen=True, slots=True)
class CallSite:
    """A block of *n* instructions ending in a call to *callee*."""

    callee: str
    n: int = 4

    def __post_init__(self) -> None:
        if self.n < 1:
            raise AddressError("call shape needs at least 1 instruction")

    @property
    def size(self) -> int:
        return self.n


@dataclass(frozen=True)
class LoopShape:
    """A natural loop: header block, body shapes, latch block.

    Attributes
    ----------
    name:
        Loop label registered in the binary's named-range table; workload
        models reference loops by these names.
    body:
        Shapes inside the loop (may nest further loops).
    header_n, latch_n:
        Instruction counts of the header and latch blocks.
    """

    name: str
    body: tuple = ()
    header_n: int = 2
    latch_n: int = 2

    def __post_init__(self) -> None:
        if self.header_n < 1 or self.latch_n < 1:
            raise AddressError("loop header/latch need >= 1 instruction")
        if not self.body:
            raise AddressError(f"loop {self.name!r} has an empty body")

    @property
    def size(self) -> int:
        return (self.header_n + self.latch_n
                + sum(shape.size for shape in self.body))


@dataclass(frozen=True)
class BranchShape:
    """An if/else diamond: a test block, two arms, control re-joins after.

    Attributes
    ----------
    then_shapes, else_shapes:
        The two arms (each a shape sequence; may nest further shapes).
    test_n:
        Instruction count of the test block (ends in a branch).
    """

    then_shapes: tuple = ()
    else_shapes: tuple = ()
    test_n: int = 2

    def __post_init__(self) -> None:
        if self.test_n < 1:
            raise AddressError("branch test block needs >= 1 instruction")
        if not self.then_shapes or not self.else_shapes:
            raise AddressError("branch needs both a then and an else arm")

    @property
    def size(self) -> int:
        return (self.test_n
                + sum(shape.size for shape in self.then_shapes)
                + sum(shape.size for shape in self.else_shapes))


def straight(n: int) -> Straight:
    """Shorthand constructor for a straight-line shape."""
    return Straight(n)


def branch(then_shapes: int | list | tuple,
           else_shapes: int | list | tuple, test_n: int = 2) -> BranchShape:
    """Shorthand constructor for an if/else diamond.

    Each arm may be an instruction count (one straight block) or a list
    of nested shapes.
    """

    def resolve(arm) -> tuple:
        if isinstance(arm, int):
            return (Straight(arm),)
        return tuple(arm)

    return BranchShape(then_shapes=resolve(then_shapes),
                       else_shapes=resolve(else_shapes), test_n=test_n)


def call(callee: str, n: int = 4) -> CallSite:
    """Shorthand constructor for a call-site shape."""
    return CallSite(callee, n)


def loop(name: str, *, body: int | list | tuple,
         header_n: int = 2, latch_n: int = 2) -> LoopShape:
    """Shorthand constructor for a loop shape.

    ``body`` may be an instruction count (one straight block) or a list of
    nested shapes.  ``loop("x", body=28)`` spans exactly ``28 + 4``
    instructions with the default header and latch sizes.
    """
    if isinstance(body, int):
        shapes: tuple = (Straight(body),)
    else:
        shapes = tuple(body)
    return LoopShape(name=name, body=shapes, header_n=header_n,
                     latch_n=latch_n)


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class _PendingProcedure:
    name: str
    shapes: tuple
    start: int


def _make_instructions(start: int, n: int, *, last: Opcode | None = None,
                       last_target: int | None = None) -> list[Instruction]:
    """Emit *n* instructions at *start*; every 4th is a load, the last may
    be a control-flow instruction."""
    instructions = []
    for i in range(n):
        address = start + i * INSTRUCTION_BYTES
        if i == n - 1 and last is not None:
            instructions.append(Instruction(address, last, last_target))
        elif i % 4 == 3:
            instructions.append(Instruction(address, Opcode.LOAD))
        else:
            instructions.append(Instruction(address, Opcode.ALU))
    return instructions


class BinaryBuilder:
    """Incrementally lays out procedures and produces a SyntheticBinary.

    Parameters
    ----------
    base:
        Address where automatic placement starts.
    gap:
        Byte gap inserted between automatically placed procedures.
    """

    def __init__(self, base: int = 0x10000, gap: int = 0x40) -> None:
        if base % INSTRUCTION_BYTES != 0 or gap % INSTRUCTION_BYTES != 0:
            raise AddressError("base and gap must be instruction-aligned")
        self._base = base
        self._gap = gap
        self._pending: list[_PendingProcedure] = []
        self._cursor = base

    def procedure(self, name: str, shapes: list | tuple,
                  at: int | None = None) -> "BinaryBuilder":
        """Add a procedure made of *shapes*, optionally at a fixed address.

        Returns ``self`` for chaining.
        """
        if any(p.name == name for p in self._pending):
            raise AddressError(f"duplicate procedure name {name!r}")
        if not shapes:
            raise AddressError(f"procedure {name!r} has no shapes")
        start = self._cursor if at is None else at
        if start % INSTRUCTION_BYTES != 0:
            raise AddressError(f"procedure start {start:#x} is unaligned")
        size_bytes = sum(s.size for s in shapes) * INSTRUCTION_BYTES
        pending = _PendingProcedure(name=name, shapes=tuple(shapes),
                                    start=start)
        for other in self._pending:
            other_size = sum(s.size for s in other.shapes) * INSTRUCTION_BYTES
            if start < other.start + other_size and other.start < start + size_bytes:
                raise AddressError(
                    f"procedure {name!r} at {start:#x} overlaps "
                    f"{other.name!r}")
        self._pending.append(pending)
        self._cursor = max(self._cursor, start + size_bytes + self._gap)
        return self

    def build(self) -> "SyntheticBinary":
        """Resolve call targets, emit all blocks, and return the binary."""
        entries = {p.name: p.start for p in self._pending}
        procedures: list[Procedure] = []
        named_loops: dict[str, tuple[int, int]] = {}
        call_edges: set[tuple[str, str]] = set()

        for pending in self._pending:
            blocks: list[BasicBlock] = []
            self._emit_shapes(pending, pending.shapes, pending.start, None,
                              blocks, named_loops, call_edges, entries,
                              top_level=True)
            procedures.append(Procedure(pending.name, pending.start, blocks))
        return SyntheticBinary(procedures, named_loops,
                               frozenset(call_edges))

    # -- emission -----------------------------------------------------------

    def _emit_shapes(self, pending: _PendingProcedure, shapes: tuple,
                     start: int, after: int | None,
                     blocks: list[BasicBlock],
                     named_loops: dict[str, tuple[int, int]],
                     call_edges: set[tuple[str, str]],
                     entries: dict[str, int], *,
                     top_level: bool = False) -> None:
        """Emit a shape sequence starting at *start*; control continues to
        *after* when the sequence completes (``None`` = procedure return)."""
        cursor = start
        boundaries = []
        for shape in shapes:
            boundaries.append(cursor)
            cursor += shape.size * INSTRUCTION_BYTES
        for index, shape in enumerate(shapes):
            shape_start = boundaries[index]
            is_last = index == len(shapes) - 1
            shape_after = after if is_last else boundaries[index + 1]
            terminal = is_last and after is None and top_level
            self._emit_one(pending, shape, shape_start, shape_after, blocks,
                           named_loops, call_edges, entries,
                           terminal=terminal)

    def _emit_one(self, pending: _PendingProcedure, shape, start: int,
                  after: int | None, blocks: list[BasicBlock],
                  named_loops: dict[str, tuple[int, int]],
                  call_edges: set[tuple[str, str]],
                  entries: dict[str, int], *, terminal: bool) -> None:
        if isinstance(shape, Straight):
            last = Opcode.RET if terminal else None
            instructions = _make_instructions(start, shape.n, last=last)
            successors = () if after is None else (after,)
            blocks.append(BasicBlock(start, tuple(instructions), successors))
        elif isinstance(shape, CallSite):
            if shape.callee not in entries:
                raise AddressError(
                    f"procedure {pending.name!r} calls unknown procedure "
                    f"{shape.callee!r}")
            instructions = _make_instructions(
                start, shape.n, last=Opcode.CALL,
                last_target=entries[shape.callee])
            successors = () if after is None else (after,)
            blocks.append(BasicBlock(start, tuple(instructions), successors))
            call_edges.add((pending.name, shape.callee))
        elif isinstance(shape, BranchShape):
            test_start = start
            then_start = test_start + shape.test_n * INSTRUCTION_BYTES
            then_size = sum(s.size for s in shape.then_shapes) \
                * INSTRUCTION_BYTES
            else_start = then_start + then_size
            test_instr = _make_instructions(
                test_start, shape.test_n, last=Opcode.BRANCH,
                last_target=else_start)
            blocks.append(BasicBlock(test_start, tuple(test_instr),
                                     (then_start, else_start)))
            self._emit_shapes(pending, shape.then_shapes, then_start,
                              after, blocks, named_loops, call_edges,
                              entries)
            self._emit_shapes(pending, shape.else_shapes, else_start,
                              after, blocks, named_loops, call_edges,
                              entries)
        elif isinstance(shape, LoopShape):
            if shape.name in named_loops:
                raise AddressError(f"duplicate loop name {shape.name!r}")
            header_start = start
            body_start = header_start + shape.header_n * INSTRUCTION_BYTES
            body_size = sum(s.size for s in shape.body) * INSTRUCTION_BYTES
            latch_start = body_start + body_size
            loop_end = latch_start + shape.latch_n * INSTRUCTION_BYTES
            header_succ = ((body_start,) if after is None
                           else (body_start, after))
            header_instr = _make_instructions(
                header_start, shape.header_n, last=Opcode.BRANCH,
                last_target=body_start)
            blocks.append(BasicBlock(header_start, tuple(header_instr),
                                     header_succ))
            self._emit_shapes(pending, shape.body, body_start, latch_start,
                              blocks, named_loops, call_edges, entries)
            latch_instr = _make_instructions(
                latch_start, shape.latch_n, last=Opcode.BRANCH,
                last_target=header_start)
            blocks.append(BasicBlock(latch_start, tuple(latch_instr),
                                     (header_start,)))
            named_loops[shape.name] = (header_start, loop_end)
        else:
            raise AddressError(f"unknown shape {shape!r}")


# ---------------------------------------------------------------------------
# The built binary
# ---------------------------------------------------------------------------

class SyntheticBinary:
    """An immutable laid-out binary with procedure / loop lookup.

    Parameters
    ----------
    procedures:
        The binary's procedures (non-overlapping address ranges).
    named_loops:
        Loop label -> (start, end) address span, as registered by the
        builder.
    call_edges:
        (caller name, callee name) pairs.
    """

    def __init__(self, procedures: list[Procedure],
                 named_loops: dict[str, tuple[int, int]] | None = None,
                 call_edges: frozenset[tuple[str, str]] = frozenset()) -> None:
        if not procedures:
            raise AddressError("a binary needs at least one procedure")
        self._procedures = sorted(procedures, key=lambda p: p.start)
        for left, right in zip(self._procedures, self._procedures[1:]):
            if left.end > right.start:
                raise AddressError(
                    f"procedures {left.name!r} and {right.name!r} overlap")
        self._by_name = {p.name: p for p in self._procedures}
        self._starts = [p.start for p in self._procedures]
        self.named_loops = dict(named_loops or {})
        self.call_edges = call_edges

    # -- procedure queries ------------------------------------------------

    @property
    def procedures(self) -> list[Procedure]:
        """The procedures, in address order."""
        return list(self._procedures)

    def procedure(self, name: str) -> Procedure:
        """Look up a procedure by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise AddressError(f"no procedure named {name!r}") from None

    def procedure_at(self, address: int) -> Procedure | None:
        """The procedure containing *address*, or ``None``."""
        index = bisect.bisect_right(self._starts, address) - 1
        if index < 0:
            return None
        candidate = self._procedures[index]
        return candidate if candidate.contains(address) else None

    @property
    def text_range(self) -> tuple[int, int]:
        """Span from the first procedure's start to the last one's end."""
        return self._procedures[0].start, self._procedures[-1].end

    # -- loop queries ------------------------------------------------------

    def innermost_loop_at(self, address: int) -> Loop | None:
        """The innermost natural loop containing *address*, or ``None``."""
        procedure = self.procedure_at(address)
        if procedure is None:
            return None
        return innermost_loop_containing(procedure.loops, address)

    def all_loops(self) -> list[tuple[Procedure, Loop]]:
        """Every (procedure, loop) pair in the binary."""
        return [(procedure, lp) for procedure in self._procedures
                for lp in procedure.loops]

    def loop_span(self, name: str) -> tuple[int, int]:
        """Address span of a named loop."""
        try:
            return self.named_loops[name]
        except KeyError:
            raise AddressError(f"no loop named {name!r}") from None

    # -- call-graph queries -------------------------------------------------

    def callers_of(self, callee: str) -> set[str]:
        """Names of procedures that call *callee*."""
        return {caller for caller, target in self.call_edges
                if target == callee}

    def caller_loop_of(self, callee: str) -> tuple[Procedure, Loop] | None:
        """A caller loop that invokes *callee*, if any caller calls it from
        inside a loop.  Used by inter-procedural region formation."""
        entry = self.procedure(callee).entry
        for caller_name in sorted(self.callers_of(callee)):
            caller = self.procedure(caller_name)
            loops = caller.calls_inside_loops()
            if entry in loops:
                return caller, loops[entry]
        return None

    def __repr__(self) -> str:
        lo, hi = self.text_range
        return (f"SyntheticBinary({len(self._procedures)} procedures, "
                f"text [{lo:#x}, {hi:#x}))")
