"""Randomized program/workload generation for property-based testing.

Produces arbitrary-but-valid synthetic binaries and workloads so that
hypothesis-style tests can exercise region formation, attribution and the
monitor pipeline over a much wider space than the hand-built suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.program.behavior import RegionSpec, bottleneck_profile
from repro.program.binary import BinaryBuilder, SyntheticBinary, call, loop, straight
from repro.program.workload import (Mixture, Periodic, Steady,
                                    WorkloadScript, mixture)


@dataclass(frozen=True)
class GeneratedProgram:
    """A random binary + region table + workload, ready to simulate."""

    binary: SyntheticBinary
    regions: dict[str, RegionSpec]
    workload: WorkloadScript
    seed: int


def random_program(seed: int,
                   max_loops: int = 8,
                   max_phases: int = 4,
                   duration_cycles: int = 50_000_000) -> GeneratedProgram:
    """Generate a random valid program and workload.

    The generated binary always has at least one loop; the workload
    always references only existing regions and has positive durations —
    i.e. every output satisfies the library's preconditions, making this
    suitable as a hypothesis building block.
    """
    rng = np.random.default_rng(seed)
    n_loops = int(rng.integers(1, max_loops + 1))
    builder = BinaryBuilder(base=0x10000)
    loop_names = []
    address = 0x20000
    for index in range(n_loops):
        name = f"loop{index}"
        slots = int(rng.integers(6, 128))
        builder.procedure(f"p_{name}", [loop(name, body=slots - 4)],
                          at=address)
        loop_names.append(name)
        address += slots * 4 + int(rng.integers(1, 64)) * 4

    has_ucr = bool(rng.integers(0, 2))
    ucr_name = None
    if has_ucr:
        ucr_name = "ucr_proc"
        ucr_slots = int(rng.integers(8, 64))
        builder.procedure(ucr_name, [straight(ucr_slots)], at=address)
        address += ucr_slots * 4 + 0x40
        builder.procedure("driver",
                          [loop("driver_loop",
                                body=[straight(2), call(ucr_name)])],
                          at=address)
    binary = builder.build()

    regions: dict[str, RegionSpec] = {}
    for name in loop_names:
        start, end = binary.loop_span(name)
        slots = (end - start) // 4
        hot = {int(rng.integers(0, slots)): float(rng.uniform(20, 300))}
        regions[name] = RegionSpec(
            name=name, start=start, end=end,
            profiles={"main": bottleneck_profile(slots, hot)},
            dpi=float(rng.uniform(0.0, 0.2)),
            opt_potential=float(rng.uniform(0.0, 0.3)))
    if ucr_name is not None:
        procedure = binary.procedure(ucr_name)
        slots = (procedure.end - procedure.start) // 4
        regions[ucr_name] = RegionSpec(
            name=ucr_name, start=procedure.start, end=procedure.end,
            profiles={"main": bottleneck_profile(
                slots, {int(rng.integers(0, slots)): 150.0})},
            is_loop=False)

    def random_mixture() -> Mixture:
        k = int(rng.integers(1, len(regions) + 1))
        chosen = rng.choice(sorted(regions), size=k, replace=False)
        return mixture(*[(str(name), float(rng.uniform(0.05, 1.0)))
                         for name in chosen])

    n_phases = int(rng.integers(1, max_phases + 1))
    segments: list = []
    for _ in range(n_phases):
        length = int(duration_cycles / n_phases)
        if rng.integers(0, 2) and len(regions) >= 2:
            segments.append(Periodic(
                length, (random_mixture(), random_mixture()),
                switch_period=max(1, length // int(rng.integers(2, 20)))))
        else:
            segments.append(Steady(length, random_mixture()))
    return GeneratedProgram(binary=binary, regions=regions,
                            workload=WorkloadScript(segments), seed=seed)
