"""Synthetic program substrate: binaries, behaviors, workloads."""

from repro.program.behavior import (RegionSpec, blended_profile,
                                    bottleneck_profile, shifted_profile,
                                    uniform_profile)
from repro.program.binary import (BinaryBuilder, CallSite, LoopShape,
                                  Straight, SyntheticBinary, call, loop,
                                  straight)
from repro.program.cfg import ControlFlowGraph, Edge
from repro.program.instructions import (CONTROL_FLOW, BasicBlock,
                                        Instruction, Opcode)
from repro.program.loops import (Loop, find_natural_loops,
                                 innermost_loop_containing)
from repro.program.procedures import Procedure
from repro.program.workload import (Component, Drift, Mixture, Periodic,
                                    Piece, Steady, WorkloadScript, mixture,
                                    region_cycles,
                                    region_cycles_per_window)

__all__ = [
    "RegionSpec",
    "blended_profile",
    "bottleneck_profile",
    "shifted_profile",
    "uniform_profile",
    "BinaryBuilder",
    "CallSite",
    "LoopShape",
    "Straight",
    "SyntheticBinary",
    "call",
    "loop",
    "straight",
    "ControlFlowGraph",
    "Edge",
    "CONTROL_FLOW",
    "BasicBlock",
    "Instruction",
    "Opcode",
    "Loop",
    "find_natural_loops",
    "innermost_loop_containing",
    "Procedure",
    "Component",
    "Drift",
    "Mixture",
    "Periodic",
    "Piece",
    "Steady",
    "WorkloadScript",
    "mixture",
    "region_cycles",
    "region_cycles_per_window",
]
