"""Procedures: named, contiguous spans of basic blocks with a CFG.

The paper's region builder respects procedure boundaries: "a region
formation algorithm that looks only for loops within procedures may find
samples in a procedure that is called in a loop.  Since procedure
boundaries are crossed, no regions are formed."  Procedures are therefore
first-class: loops are found per procedure, and the call graph records the
call-in-loop relationships the inter-procedural extension exploits.
"""

from __future__ import annotations

from functools import cached_property

from repro.errors import AddressError
from repro.program.cfg import ControlFlowGraph
from repro.program.instructions import BasicBlock
from repro.program.loops import Loop, find_natural_loops


class Procedure:
    """One procedure of the synthetic binary.

    Parameters
    ----------
    name:
        Symbolic name (e.g. ``"refresh_potential"``).
    entry:
        Entry block start address.
    blocks:
        All basic blocks, which must tile a contiguous address range.
    """

    def __init__(self, name: str, entry: int,
                 blocks: list[BasicBlock]) -> None:
        if not blocks:
            raise AddressError(f"procedure {name!r} has no blocks")
        ordered = sorted(blocks, key=lambda b: b.start)
        for left, right in zip(ordered, ordered[1:]):
            if left.end != right.start:
                raise AddressError(
                    f"procedure {name!r} has a gap between {left.end:#x} "
                    f"and {right.start:#x}")
        self.name = name
        self.entry = entry
        self._blocks = ordered
        self.cfg = ControlFlowGraph(entry, ordered)

    @property
    def start(self) -> int:
        """First byte address of the procedure."""
        return self._blocks[0].start

    @property
    def end(self) -> int:
        """One past the last byte address (half-open)."""
        return self._blocks[-1].end

    @property
    def blocks(self) -> list[BasicBlock]:
        """The procedure's blocks in address order."""
        return list(self._blocks)

    @property
    def n_instructions(self) -> int:
        """Total instruction count."""
        return sum(b.n_instructions for b in self._blocks)

    def contains(self, address: int) -> bool:
        """Whether *address* lies inside the procedure."""
        return self.start <= address < self.end

    @cached_property
    def loops(self) -> list[Loop]:
        """Natural loops of the procedure, innermost first."""
        return find_natural_loops(self.cfg)

    def call_targets(self) -> set[int]:
        """Entry addresses of every procedure this one calls."""
        targets: set[int] = set()
        for block in self._blocks:
            targets.update(block.call_targets())
        return targets

    def calls_inside_loops(self) -> dict[int, Loop]:
        """Map of call-target entry address -> innermost loop making the call.

        This is the structure the inter-procedural region-formation
        extension needs: a callee that is hot because it is invoked from a
        caller's loop can be folded into that loop's region.
        """
        result: dict[int, Loop] = {}
        for block in self._blocks:
            if not block.call_targets():
                continue
            for loop in self.loops:  # innermost first
                if loop.contains_block(block.start):
                    for target in block.call_targets():
                        result.setdefault(target, loop)
                    break
        return result

    def __repr__(self) -> str:
        return (f"Procedure({self.name!r}, [{self.start:#x}, {self.end:#x}), "
                f"{len(self._blocks)} blocks, {len(self.loops)} loops)")
