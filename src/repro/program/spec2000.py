"""Synthetic models of the paper's SPEC CPU2000 benchmarks.

The paper evaluates on SPEC CPU2000 binaries running on UltraSPARC
hardware; we cannot run those, so each benchmark is modeled as a synthetic
binary plus a workload script *calibrated to the behavior the paper
describes for that program* (see DESIGN.md §2).  Every builder's docstring
quotes the claim it encodes.  Three address ranges are bit-exact with the
paper: 181.mcf's regions ``13134-133d4``, ``142c8-14318`` and
``146f0-14770`` (Figure 9) and 254.gap's ``7ba2c-7ba78`` and ``8d25c-8d314``
(Figure 11).

Durations are expressed in units of the 45k-period buffer interval
(``INTERVAL_45K`` = 2032 samples x 45000 cycles ≈ 91.4M cycles); a model
with duration 1000 yields ~1000 intervals at the 45k sampling period, ~100
at 450k and ~50 at 900k, which is what makes the sampling-period
sensitivity experiments (Figures 3/4 vs. 13/14) meaningful.  Absolute
phase-change counts therefore scale with the modeled duration; the paper's
SPARC runs were longer, so shapes and orderings — not absolute counts —
are the reproduction target.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.thresholds import DEFAULT_BUFFER_SIZE
from repro.errors import ConfigError
from repro.program.behavior import RegionSpec, bottleneck_profile
from repro.program.binary import BinaryBuilder, SyntheticBinary, call, loop, straight
from repro.program.workload import (Drift, Mixture, Periodic, Steady,
                                    WorkloadScript, mixture)

__all__ = [
    "INTERVAL_45K",
    "BenchmarkModel",
    "SUITE",
    "FIG3_BENCHMARKS",
    "FIG6_BENCHMARKS",
    "FIG13_BENCHMARKS",
    "FIG15_BENCHMARKS",
    "FIG16_BENCHMARKS",
    "FIG17_BENCHMARKS",
    "get_benchmark",
    "benchmark_names",
]

#: Cycles per buffer interval at the 45k-cycle sampling period.
INTERVAL_45K = DEFAULT_BUFFER_SIZE * 45_000


@dataclass(frozen=True)
class BenchmarkModel:
    """One synthetic benchmark: binary + regions + workload.

    Attributes
    ----------
    name:
        SPEC-style name (``"181.mcf"``).
    binary:
        The synthetic binary (loops at concrete addresses).
    regions:
        Workload-region table feeding the PMU simulator and the optimizer.
    workload:
        The benchmark's phase script.
    description:
        The paper-reported behavior this model encodes.
    selected_region_names:
        Workload-region names in the paper's r1, r2, ... order for the
        per-region figures (13/14).
    """

    name: str
    binary: SyntheticBinary
    regions: dict[str, RegionSpec]
    workload: WorkloadScript
    description: str
    selected_region_names: tuple[str, ...] = ()

    def region_span(self, workload_name: str) -> tuple[int, int]:
        """Address span of a workload region (= its monitored-region name)."""
        spec = self.regions[workload_name]
        return spec.start, spec.end

    def monitored_name(self, workload_name: str) -> str:
        """The ``start-end`` name the region monitor will give this region."""
        start, end = self.region_span(workload_name)
        return f"{start:x}-{end:x}"


def _rng_for(name: str) -> np.random.Generator:
    """Deterministic per-benchmark RNG (stable across processes)."""
    return np.random.default_rng(zlib.crc32(name.encode()))


def _hot_profile(slots: int, rng: np.random.Generator,
                 n_hot: int = 2) -> np.ndarray:
    """A generic loop profile: a couple of hot (cache-missing) loads."""
    hot_slots = rng.choice(slots, size=min(n_hot, slots), replace=False)
    weights = {int(slot): float(rng.uniform(30.0, 90.0))
               for slot in hot_slots}
    return bottleneck_profile(slots, weights)


# ---------------------------------------------------------------------------
# Binary construction helpers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _LoopSite:
    """A loop to lay out: one procedure wrapping one loop."""

    name: str
    at: int
    slots: int  # total span, header + body + latch

    def __post_init__(self) -> None:
        if self.slots < 5:
            raise ConfigError(f"loop {self.name!r} needs >= 5 slots")


@dataclass(frozen=True)
class _ProcSite:
    """A non-loop procedure (UCR fodder), optionally called from a loop."""

    name: str
    at: int
    slots: int
    called_from_loop: bool = True


def _build_binary(loops: list[_LoopSite], procs: list[_ProcSite] = (),
                  driver_at: int = 0x0F000) -> SyntheticBinary:
    """Lay out loops and UCR procedures, plus a driver that calls the
    call-in-loop procedures from inside a loop (the gap/crafty shape)."""
    builder = BinaryBuilder(base=driver_at)
    for site in procs:
        builder.procedure(site.name, [straight(site.slots)], at=site.at)
    for site in loops:
        builder.procedure(f"p_{site.name}",
                          [loop(site.name, body=site.slots - 4)],
                          at=site.at)
    callees = [site.name for site in procs if site.called_from_loop]
    if callees:
        shapes = [straight(2)]
        body = [straight(2)] + [call(name) for name in callees]
        shapes.append(loop("_driver_loop", body=body))
        shapes.append(straight(2))
        builder.procedure("_driver", shapes, at=driver_at)
    return builder.build()


def _loop_region(binary: SyntheticBinary, name: str,
                 profiles: dict[str, np.ndarray] | None = None,
                 **traits) -> RegionSpec:
    """RegionSpec for a named loop of the binary."""
    start, end = binary.loop_span(name)
    return RegionSpec(name=name, start=start, end=end,
                      profiles=profiles or {}, **traits)


def _proc_region(binary: SyntheticBinary, name: str,
                 profiles: dict[str, np.ndarray] | None = None,
                 **traits) -> RegionSpec:
    """RegionSpec for a non-loop procedure (UCR-destined code)."""
    procedure = binary.procedure(name)
    return RegionSpec(name=name, start=procedure.start, end=procedure.end,
                      profiles=profiles or {}, is_loop=False, **traits)


def _duration(intervals: float) -> int:
    """Cycles for a duration given in 45k-interval units."""
    return int(round(intervals * INTERVAL_45K))


# ---------------------------------------------------------------------------
# Generic builders (the stable / multi-phase / flapper templates)
# ---------------------------------------------------------------------------

def _generic_suite_model(name: str, *, loop_plan: list[tuple[int, int, float]],
                         ucr_weight: float, phases: list[dict] | None,
                         duration_intervals: float,
                         flapper: dict | None = None,
                         opt_potential: float = 0.05,
                         dpi: float = 0.01,
                         called_from_loop: bool = True,
                         selected: int = 2) -> BenchmarkModel:
    """Shared machinery for the suite's less-special benchmarks.

    Parameters
    ----------
    loop_plan:
        ``(address, slots, weight)`` per loop; weights are relative among
        loops and scaled to ``1 - ucr_weight``.
    ucr_weight:
        Share of execution in non-loop procedure code.
    phases:
        Optional list of ``{"intervals": n, "weights": [per-loop relative
        weights]}`` dictionaries, executed in order as Steady segments; the
        default is one steady phase using ``loop_plan`` weights.
    flapper:
        Optional ``{"switch_intervals": s, "swing": fraction,
        "intervals": n}``: append a Periodic segment that moves ``swing``
        of the loop weight mass between the lowest- and highest-address
        loops every ``s`` intervals — the pattern behind the paper's
        sampling-period sensitivity.
    """
    rng = _rng_for(name)
    loops = [_LoopSite(f"{name.split('.')[-1]}_l{i}", at, slots)
             for i, (at, slots, _weight) in enumerate(loop_plan)]
    procs = []
    if ucr_weight > 0.0:
        procs = [_ProcSite(f"{name.split('.')[-1]}_u0", 0x16000, 96,
                           called_from_loop)]
    binary = _build_binary(loops, procs)

    regions: dict[str, RegionSpec] = {}
    for site, (_at, slots, _weight) in zip(loops, loop_plan):
        regions[site.name] = _loop_region(
            binary, site.name,
            profiles={"main": _hot_profile(slots, rng)},
            dpi=dpi, opt_potential=opt_potential)
    for proc_site in procs:
        regions[proc_site.name] = _proc_region(
            binary, proc_site.name,
            profiles={"main": _hot_profile(proc_site.slots, rng)},
            dpi=0.004)

    loop_names = [site.name for site in loops]
    base_weights = np.array([w for (_a, _s, w) in loop_plan], dtype=float)

    def mix_for(weights: np.ndarray) -> Mixture:
        weights = np.asarray(weights, dtype=float)
        weights = weights / weights.sum() * (1.0 - ucr_weight)
        parts = [(n, float(w)) for n, w in zip(loop_names, weights)
                 if w > 1e-9]
        if ucr_weight > 0.0:
            parts.append((procs[0].name, ucr_weight))
        return mixture(*parts)

    segments: list = []
    if phases:
        for phase in phases:
            segments.append(Steady(_duration(phase["intervals"]),
                                   mix_for(np.asarray(phase["weights"]))))
    else:
        segments.append(Steady(_duration(duration_intervals),
                               mix_for(base_weights)))

    if flapper:
        # Move `swing` of the loop weight mass between the low-address and
        # high-address halves of the loop set: a working-set tilt the
        # centroid sees, scaled proportionally so it works for any weight
        # distribution.
        addresses = np.array([a for (a, _s, _w) in loop_plan], dtype=float)
        low_half = addresses <= np.median(addresses)
        total = base_weights.sum()
        delta = flapper["swing"] * total

        def tilted(toward_low: bool) -> np.ndarray:
            source = ~low_half if toward_low else low_half
            sink = low_half if toward_low else ~low_half
            weights = base_weights.copy()
            movable = min(delta, weights[source].sum() * 0.9)
            weights[source] *= 1.0 - movable / weights[source].sum()
            weights[sink] *= 1.0 + movable / weights[sink].sum()
            return weights

        segments.append(Periodic(
            _duration(flapper["intervals"]),
            (mix_for(tilted(True)), mix_for(tilted(False))),
            switch_period=_duration(flapper["switch_intervals"])))

    workload = WorkloadScript(segments)
    return BenchmarkModel(
        name=name, binary=binary, regions=regions, workload=workload,
        description=f"generic suite model for {name}",
        selected_region_names=tuple(loop_names[:selected]))


# ---------------------------------------------------------------------------
# 181.mcf — Figures 2, 9, 10, 13, 14, 17
# ---------------------------------------------------------------------------

def _build_mcf() -> BenchmarkModel:
    """181.mcf, the paper's running example.

    Encoded claims: region ``146f0-14770`` "takes up a large fraction of
    execution time in the beginning and it diminishes towards the end,
    whereas another region (``142c8-14318``) initially takes a small
    fraction of execution but later executes for a larger fraction"; the
    application "shows a transition from non-periodic to periodic behavior
    of regions"; "the phase remains unstable for quite some time towards
    the end of execution"; "at low sampling rates (1,500,000
    cycles/interrupt), 181.mcf stays in an unstable phase for a long
    time"; locally, "in spite of changes in the fraction of execution time
    of regions, the samples show very high correlation between intervals"
    (Figure 10).
    """
    rng = _rng_for("181.mcf")
    loops = [
        _LoopSite("mcf_r3", 0x13134, 168),   # 13134-133d4
        _LoopSite("mcf_r2", 0x142C8, 20),    # 142c8-14318
        _LoopSite("mcf_r1", 0x146F0, 32),    # 146f0-14770
        _LoopSite("mcf_r4", 0x60000, 64),    # refresh/aux loop, far away
    ]
    procs = [_ProcSite("mcf_u0", 0x16000, 96, called_from_loop=False)]
    binary = _build_binary(loops, procs)
    regions = {
        "mcf_r1": _loop_region(binary, "mcf_r1",
                               profiles={"main": bottleneck_profile(
                                   32, {9: 320.0, 21: 60.0})},
                               dpi=0.09, opt_potential=0.32),
        "mcf_r2": _loop_region(binary, "mcf_r2",
                               profiles={"main": bottleneck_profile(
                                   20, {6: 260.0, 14: 70.0})},
                               dpi=0.09, opt_potential=0.30),
        "mcf_r3": _loop_region(binary, "mcf_r3",
                               profiles={"main": bottleneck_profile(
                                   168, {40: 220.0, 90: 120.0, 150: 60.0})},
                               dpi=0.07, opt_potential=0.22),
        "mcf_r4": _loop_region(binary, "mcf_r4",
                               profiles={"main": _hot_profile(64, rng)},
                               dpi=0.03, opt_potential=0.10),
        "mcf_u0": _proc_region(binary, "mcf_u0",
                               profiles={"main": _hot_profile(96, rng)},
                               dpi=0.01),
    }

    def mix(r1, r2, r3, r4, u=0.10):
        return mixture(("mcf_r1", r1), ("mcf_r2", r2), ("mcf_r3", r3),
                       ("mcf_r4", r4), ("mcf_u0", u))

    early = mix(0.52, 0.04, 0.20, 0.14)
    mid_a = mix(0.38, 0.18, 0.20, 0.14)
    mid_b = mix(0.30, 0.18, 0.20, 0.22)
    late = mix(0.06, 0.44, 0.18, 0.22)
    tail_p = mix(0.05, 0.48, 0.17, 0.20)
    tail_q = mix(0.05, 0.22, 0.17, 0.46)
    workload = WorkloadScript([
        Steady(_duration(100), early),
        Drift(_duration(180), early, mid_a, steps=12),
        Steady(_duration(60), mid_b),
        Drift(_duration(180), mid_b, late, steps=12),
        Steady(_duration(80), late),
        # The periodic tail: non-periodic -> periodic transition.  The
        # 60-interval switch period resolves at the 45k-100k sampling
        # periods (many quick phase changes, mostly stable) but aliases
        # against the larger 800k-1.5M intervals, which is what leaves
        # the GPD unstable there — and RTO_LPD ahead (Figure 17).
        Periodic(_duration(900), (tail_p, tail_q),
                 switch_period=_duration(60)),
    ])
    return BenchmarkModel(
        name="181.mcf", binary=binary, regions=regions, workload=workload,
        description=("region trade-off with late periodic behavior; "
                     "locally stable throughout (r ~ 1)"),
        selected_region_names=("mcf_r1", "mcf_r2"))


# ---------------------------------------------------------------------------
# 187.facerec — Figures 3, 4, 5, 13, 14
# ---------------------------------------------------------------------------

def _build_facerec() -> BenchmarkModel:
    """187.facerec: "periodically executes switches between 2 sets of
    regions.  This causes frequent phase changes" although "there are few
    actual phase changes" (Figure 5); it "spends a large percentage of
    time in unstable phase"."""
    rng = _rng_for("187.facerec")
    loops = [
        _LoopSite("face_f1", 0x18000, 48),
        _LoopSite("face_f2", 0x1C000, 40),
        _LoopSite("face_f3", 0x90000, 56),
        _LoopSite("face_f4", 0x98000, 36),
    ]
    procs = [_ProcSite("face_u0", 0x20000, 64, called_from_loop=False)]
    binary = _build_binary(loops, procs)
    regions = {site.name: _loop_region(
        binary, site.name, profiles={"main": _hot_profile(site.slots, rng)},
        dpi=0.02, opt_potential=0.08) for site in loops}
    regions["face_u0"] = _proc_region(
        binary, "face_u0", profiles={"main": _hot_profile(64, rng)})

    set_a = mixture(("face_f1", 0.55), ("face_f2", 0.28),
                    ("face_f3", 0.05), ("face_u0", 0.12))
    set_b = mixture(("face_f3", 0.52), ("face_f4", 0.31),
                    ("face_f1", 0.05), ("face_u0", 0.12))
    workload = WorkloadScript([
        Steady(_duration(40), set_a),
        Periodic(_duration(960), (set_b, set_a),
                 switch_period=_duration(14)),
    ])
    return BenchmarkModel(
        name="187.facerec", binary=binary, regions=regions,
        workload=workload,
        description="periodic switching between two region sets",
        selected_region_names=("face_f1", "face_f3", "face_f4"))


# ---------------------------------------------------------------------------
# 254.gap — Figures 3, 4, 6, 7, 11, 13, 14, 17
# ---------------------------------------------------------------------------

def _build_gap() -> BenchmarkModel:
    """254.gap: ">30% samples in UCR" that stays high "even after frequent
    region formation triggers" (Figures 6/7); "a large number of phase
    changes at low sampling periods and few phase changes as sampling
    period increases"; region ``7ba2c-7ba78`` "is more stable than"
    ``8d25c-8d314`` (Figure 11); one "short lived region with few samples"
    racks up ~120 local phase changes at the 45k period (Figure 13)."""
    rng = _rng_for("254.gap")
    loops = [
        _LoopSite("gap_g4", 0x30000, 40),
        _LoopSite("gap_g3", 0x50000, 24),            # short-lived, erratic
        _LoopSite("gap_g1", 0x7BA2C, 19),            # 7ba2c-7ba78
        _LoopSite("gap_g2", 0x8D25C, 46),            # 8d25c-8d314
    ]
    procs = [
        _ProcSite("gap_u1", 0x20000, 80),
        _ProcSite("gap_u2", 0x28000, 64),
    ]
    binary = _build_binary(loops, procs)

    g2_base = bottleneck_profile(46, {12: 200.0, 30: 90.0})
    g2_alt = bottleneck_profile(46, {20: 200.0, 38: 90.0})
    g3_profiles = {
        f"p{k}": bottleneck_profile(24, {(3 + 5 * k) % 24: 180.0,
                                         (11 + 5 * k) % 24: 70.0})
        for k in range(4)
    }
    g3_profiles["main"] = g3_profiles["p0"]
    regions = {
        "gap_g1": _loop_region(binary, "gap_g1",
                               profiles={"main": bottleneck_profile(
                                   19, {5: 240.0, 13: 50.0})},
                               dpi=0.04, opt_potential=0.16),
        "gap_g2": _loop_region(binary, "gap_g2",
                               profiles={"main": g2_base, "alt": g2_alt},
                               dpi=0.04, opt_potential=0.15),
        "gap_g3": _loop_region(binary, "gap_g3", profiles=g3_profiles,
                               dpi=0.02, opt_potential=0.02),
        "gap_g4": _loop_region(binary, "gap_g4",
                               profiles={"main": _hot_profile(40, rng)},
                               dpi=0.03, opt_potential=0.13),
        "gap_u1": _proc_region(binary, "gap_u1",
                               profiles={"main": _hot_profile(80, rng)}),
        "gap_u2": _proc_region(binary, "gap_u2",
                               profiles={"main": _hot_profile(64, rng)}),
    }

    def base_mix(g2_profile: str, toward_g1: bool) -> Mixture:
        shift = 0.10 if toward_g1 else 0.0
        return mixture(("gap_g1", 0.18 + shift),
                       ("gap_g2", 0.21, g2_profile),
                       ("gap_g4", 0.28 - shift),
                       ("gap_u1", 0.20), ("gap_u2", 0.13))

    def burst_mix(g2_profile: str, burst_profile: str) -> Mixture:
        return mixture(("gap_g3", 0.30, burst_profile),
                       ("gap_g1", 0.12), ("gap_g2", 0.13, g2_profile),
                       ("gap_g4", 0.12),
                       ("gap_u1", 0.20), ("gap_u2", 0.13))

    def macro_mixtures(g2_profile: str) -> tuple[Mixture, ...]:
        # 48-interval macro-cycle, expressed as 2-interval slots: 20
        # intervals leaning g4, a 4-interval burst of the erratic
        # short-lived region g3, 20 intervals leaning g1, another burst.
        # The ~24-interval half-period keeps the GPD flapping at the
        # 45k-100k sampling periods while the 450k+ intervals average it
        # away; the bursts carry the LPD-visible instability and rotate
        # their profile across four concatenated macro-cycles.
        slots: list[Mixture] = []
        for cycle in range(4):
            slots += [base_mix(g2_profile, False)] * 6
            slots += [burst_mix(g2_profile, f"p{cycle % 4}")] * 2
            slots += [base_mix(g2_profile, True)] * 6
        return tuple(slots)

    # g2 flips its bottleneck profile at half-time — the "less stable"
    # region of Figure 11.
    workload = WorkloadScript([
        Periodic(_duration(750), macro_mixtures("main"),
                 switch_period=_duration(2)),
        Periodic(_duration(750), macro_mixtures("alt"),
                 switch_period=_duration(2)),
    ])
    return BenchmarkModel(
        name="254.gap", binary=binary, regions=regions, workload=workload,
        description=("persistently high UCR; fine-grained global jitter; "
                     "one stable and one less-stable region plus an "
                     "erratic short-lived one"),
        selected_region_names=("gap_g1", "gap_g2", "gap_g3", "gap_g4"))


# ---------------------------------------------------------------------------
# 188.ammp — Figures 13, 14 (the near-threshold aberration)
# ---------------------------------------------------------------------------

def _build_ammp() -> BenchmarkModel:
    """188.ammp: "an aberration showing large number of phase changes at
    low sampling periods.  We observed that the r value lies just below
    the threshold.  Since the region is very large, the granularity
    limitation breaks down" (section 3.2.2).  One 1600-instruction loop
    whose hot-slot set wanders on a ~1.3-interval time scale: at 45k the
    buffer sees one wander step at a time (r straddles 0.8), at 900k it
    averages ~15 steps (r ~ 0.99)."""
    rng = _rng_for("188.ammp")
    loops = [
        _LoopSite("ammp_a1", 0x40000, 1600),
        _LoopSite("ammp_a2", 0x20000, 32),
    ]
    procs = [_ProcSite("ammp_u0", 0x16000, 96, called_from_loop=False)]
    binary = _build_binary(loops, procs)

    common = {int(s): 80.0 for s in rng.choice(1600, size=12,
                                               replace=False)}
    wander_profiles: dict[str, np.ndarray] = {}
    for k in range(4):
        variable = {int(s): 63.0
                    for s in rng.choice(1600, size=6, replace=False)}
        wander_profiles[f"w{k}"] = bottleneck_profile(
            1600, {**common, **variable})
    wander_profiles["main"] = wander_profiles["w0"]

    regions = {
        "ammp_a1": _loop_region(binary, "ammp_a1",
                                profiles=wander_profiles, dpi=0.05,
                                opt_potential=0.12),
        "ammp_a2": _loop_region(binary, "ammp_a2",
                                profiles={"main": _hot_profile(32, rng)},
                                dpi=0.02, opt_potential=0.05),
        "ammp_u0": _proc_region(binary, "ammp_u0",
                                profiles={"main": _hot_profile(96, rng)}),
    }
    wander_mixes = tuple(
        mixture(("ammp_a1", 0.80, f"w{k}"), ("ammp_a2", 0.10),
                ("ammp_u0", 0.10))
        for k in range(4))
    workload = WorkloadScript([
        Periodic(_duration(800), wander_mixes,
                 switch_period=_duration(1.3)),
    ])
    return BenchmarkModel(
        name="188.ammp", binary=binary, regions=regions, workload=workload,
        description="huge region with near-threshold r at fine periods",
        selected_region_names=("ammp_a1", "ammp_a2"))


# ---------------------------------------------------------------------------
# 186.crafty — Figures 6, 7 (UCR that formation cannot reduce)
# ---------------------------------------------------------------------------

def _build_crafty() -> BenchmarkModel:
    """186.crafty: "tries to form regions on every buffer overflow but the
    percentage of samples in UCR does not reduce.  This is due to a
    current limitation of the region building algorithm" (Figure 7) — its
    hot code sits in procedures called from loops.  Also one of the
    many-region programs whose local-phase-detection cost is significant
    (Figure 15)."""
    rng = _rng_for("186.crafty")
    loops = [_LoopSite(f"crafty_l{i}", 0x30000 + i * 0x400,
                       int(rng.integers(8, 25)))
             for i in range(140)]
    procs = [
        _ProcSite("crafty_u1", 0x20000, 120),
        _ProcSite("crafty_u2", 0x24000, 100),
        _ProcSite("crafty_u3", 0x28000, 80),
    ]
    binary = _build_binary(loops, procs)
    regions = {site.name: _loop_region(
        binary, site.name,
        profiles={"main": bottleneck_profile(
            site.slots, {int(rng.integers(0, site.slots)): 300.0})},
        dpi=0.02, opt_potential=0.06) for site in loops}
    for proc_site in procs:
        regions[proc_site.name] = _proc_region(
            binary, proc_site.name,
            profiles={"main": bottleneck_profile(
                proc_site.slots,
                {int(rng.integers(0, proc_site.slots)): 250.0,
                 int(rng.integers(0, proc_site.slots)): 120.0})},
            dpi=0.01)

    loop_weights = rng.dirichlet(np.full(len(loops), 0.8)) * 0.58
    parts = [(site.name, float(w))
             for site, w in zip(loops, loop_weights) if w > 1e-5]
    parts += [("crafty_u1", 0.18), ("crafty_u2", 0.14),
              ("crafty_u3", 0.10)]
    workload = WorkloadScript([Steady(_duration(800), mixture(*parts))])
    return BenchmarkModel(
        name="186.crafty", binary=binary, regions=regions,
        workload=workload,
        description="many small regions; ~42% UCR in call-in-loop code",
        selected_region_names=tuple(
            site.name for site, w in zip(loops, loop_weights))[:2])


# ---------------------------------------------------------------------------
# 178.galgel — the extreme sampling-period flapper of Figure 3
# ---------------------------------------------------------------------------

def _build_galgel() -> BenchmarkModel:
    """178.galgel: the tallest bar of Figure 3 — thousands of GPD phase
    changes at the 45k period, none at 450k/900k.  Modeled as tight
    periodic switching between two widely separated region sets that the
    45k interval resolves and the larger intervals average away."""
    rng = _rng_for("178.galgel")
    loops = [
        _LoopSite("galgel_l0", 0x20000, 64),
        _LoopSite("galgel_l1", 0x24000, 48),
        _LoopSite("galgel_l2", 0xA0000, 72),
        _LoopSite("galgel_l3", 0xA8000, 56),
    ]
    procs = [_ProcSite("galgel_u0", 0x16000, 64, called_from_loop=False)]
    binary = _build_binary(loops, procs)
    regions = {site.name: _loop_region(
        binary, site.name, profiles={"main": _hot_profile(site.slots, rng)},
        dpi=0.02, opt_potential=0.08) for site in loops}
    regions["galgel_u0"] = _proc_region(
        binary, "galgel_u0", profiles={"main": _hot_profile(64, rng)})

    set_a = mixture(("galgel_l0", 0.52), ("galgel_l1", 0.33),
                    ("galgel_l2", 0.07), ("galgel_u0", 0.08))
    set_b = mixture(("galgel_l2", 0.50), ("galgel_l3", 0.35),
                    ("galgel_l0", 0.07), ("galgel_u0", 0.08))
    workload = WorkloadScript([
        Steady(_duration(30), set_a),
        Periodic(_duration(970), (set_b, set_a),
                 switch_period=_duration(12)),
    ])
    return BenchmarkModel(
        name="178.galgel", binary=binary, regions=regions,
        workload=workload,
        description="extreme two-set flapper; worst case for GPD at 45k",
        selected_region_names=("galgel_l0", "galgel_l2"))


# ---------------------------------------------------------------------------
# 164.gzip (ref input 5) — Figures 6, 13, 14
# ---------------------------------------------------------------------------

def _build_gzip() -> BenchmarkModel:
    """164.gzip(ref5): block-structured compression — the working set
    cycles between deflate-side and inflate/IO-side code every input
    block.  Figure 13 shows four monitored regions, all locally stable."""
    rng = _rng_for("164.gzip")
    loops = [
        _LoopSite("gzip_l0", 0x18000, 40),   # longest_match
        _LoopSite("gzip_l1", 0x1A000, 28),   # deflate inner
        _LoopSite("gzip_l2", 0x70000, 48),   # huffman
        _LoopSite("gzip_l3", 0x74000, 24),   # crc/copy
    ]
    procs = [_ProcSite("gzip_u0", 0x16000, 48, called_from_loop=False)]
    binary = _build_binary(loops, procs)
    regions = {site.name: _loop_region(
        binary, site.name, profiles={"main": _hot_profile(site.slots, rng)},
        dpi=0.015, opt_potential=0.07) for site in loops}
    regions["gzip_u0"] = _proc_region(
        binary, "gzip_u0", profiles={"main": _hot_profile(48, rng)})

    deflate = mixture(("gzip_l0", 0.46), ("gzip_l1", 0.30),
                      ("gzip_l2", 0.10), ("gzip_l3", 0.04),
                      ("gzip_u0", 0.10))
    huffman = mixture(("gzip_l2", 0.48), ("gzip_l3", 0.28),
                      ("gzip_l0", 0.10), ("gzip_l1", 0.04),
                      ("gzip_u0", 0.10))
    workload = WorkloadScript([
        Periodic(_duration(800), (deflate, huffman),
                 switch_period=_duration(40)),
    ])
    return BenchmarkModel(
        name="164.gzip", binary=binary, regions=regions, workload=workload,
        description="block-periodic working set; locally stable regions",
        selected_region_names=("gzip_l0", "gzip_l1", "gzip_l2", "gzip_l3"))


# ---------------------------------------------------------------------------
# 191.fma3d — Figure 17's mild case
# ---------------------------------------------------------------------------

def _build_fma3d() -> BenchmarkModel:
    """191.fma3d: [13] reports a 16% prefetching speedup.  Modeled with a
    mid-execution section of fine-grained jitter that the 45k-100k
    intervals resolve (costing the GPD-driven optimizer stability) and the
    800k+ intervals smooth over — giving LPD a modest, shrinking edge in
    Figure 17."""
    rng = _rng_for("191.fma3d")
    loops = [
        _LoopSite("fma_l0", 0x28000, 96),
        _LoopSite("fma_l1", 0x2C000, 64),
        _LoopSite("fma_l2", 0x88000, 80),
        _LoopSite("fma_l3", 0x8C000, 48),
    ]
    procs = [_ProcSite("fma_u0", 0x16000, 64, called_from_loop=False)]
    binary = _build_binary(loops, procs)
    regions = {site.name: _loop_region(
        binary, site.name, profiles={"main": _hot_profile(site.slots, rng)},
        dpi=0.04, opt_potential=0.16) for site in loops}
    regions["fma_u0"] = _proc_region(
        binary, "fma_u0", profiles={"main": _hot_profile(64, rng)})

    solve = mixture(("fma_l0", 0.42), ("fma_l1", 0.28), ("fma_l2", 0.14),
                    ("fma_l3", 0.06), ("fma_u0", 0.10))
    solve_hi = mixture(("fma_l0", 0.30), ("fma_l1", 0.28),
                       ("fma_l2", 0.26), ("fma_l3", 0.06),
                       ("fma_u0", 0.10))
    output = mixture(("fma_l2", 0.44), ("fma_l3", 0.30), ("fma_l0", 0.16),
                     ("fma_u0", 0.10))
    workload = WorkloadScript([
        Steady(_duration(350), solve),
        Periodic(_duration(800), (solve, solve_hi),
                 switch_period=_duration(5)),
        Steady(_duration(350), output),
    ])
    return BenchmarkModel(
        name="191.fma3d", binary=binary, regions=regions,
        workload=workload,
        description="solver with fine-grained mid-run jitter",
        selected_region_names=("fma_l0", "fma_l1", "fma_l2", "fma_l3"))


# ---------------------------------------------------------------------------
# 176.gcc — the many-region cost case (Figures 6, 15, 16)
# ---------------------------------------------------------------------------

def _build_gcc() -> BenchmarkModel:
    """176.gcc(2): short-running, excluded from the Figure 3/4 sweep, but
    the heaviest region-monitoring client: hundreds of monitored regions
    make its local-phase-detection cost the tallest bar of Figure 15 and
    the interval tree's biggest win in Figure 16."""
    rng = _rng_for("176.gcc")
    loops = []
    address = 0x30000
    for i in range(380):
        slots = int(rng.integers(12, 64))
        loops.append(_LoopSite(f"gcc_l{i}", address, slots))
        address += (slots * 4 + 0x80 + 3) & ~0x3
    procs = [
        _ProcSite("gcc_u1", 0x20000, 120),
        _ProcSite("gcc_u2", 0x26000, 96),
    ]
    binary = _build_binary(loops, procs)
    regions = {site.name: _loop_region(
        binary, site.name,
        profiles={"main": bottleneck_profile(
            site.slots, {int(rng.integers(0, site.slots)): 400.0})},
        dpi=0.015, opt_potential=0.04) for site in loops}
    for proc_site in procs:
        regions[proc_site.name] = _proc_region(
            binary, proc_site.name,
            profiles={"main": _hot_profile(proc_site.slots, rng)})

    weights = rng.dirichlet(np.full(len(loops), 1.2)) * 0.78
    parts = [(site.name, float(w)) for site, w in zip(loops, weights)
             if w > 1e-6]
    parts += [("gcc_u1", 0.13), ("gcc_u2", 0.09)]
    workload = WorkloadScript([Steady(_duration(200), mixture(*parts))])
    return BenchmarkModel(
        name="176.gcc", binary=binary, regions=regions, workload=workload,
        description="hundreds of small regions; monitoring cost worst case",
        selected_region_names=("gcc_l0", "gcc_l1"))


# ---------------------------------------------------------------------------
# Remaining suite members via the generic templates
# ---------------------------------------------------------------------------

def _build_wupwise() -> BenchmarkModel:
    """168.wupwise: stable numeric kernel with a gentle periodic tilt —
    visible phase changes at the 45k period only."""
    return _generic_suite_model(
        "168.wupwise",
        loop_plan=[(0x20000, 64, 0.40), (0x24000, 48, 0.28),
                   (0x60000, 56, 0.20), (0x64000, 40, 0.12)],
        ucr_weight=0.06, phases=[{"intervals": 60,
                                  "weights": [0.40, 0.28, 0.20, 0.12]}],
        duration_intervals=800,
        flapper={"switch_intervals": 14, "swing": 0.15, "intervals": 740},
        dpi=0.012, opt_potential=0.06)


def _build_swim() -> BenchmarkModel:
    """171.swim: three stable stencil loops; essentially zero phase
    changes at every sampling period."""
    return _generic_suite_model(
        "171.swim",
        loop_plan=[(0x20000, 96, 0.45), (0x26000, 80, 0.35),
                   (0x2C000, 64, 0.14)],
        ucr_weight=0.06, phases=None, duration_intervals=800,
        dpi=0.02, opt_potential=0.07)


def _build_mgrid() -> BenchmarkModel:
    """172.mgrid: stable multigrid loops; [13] reports an 8% prefetching
    speedup.  Figure 17: "does not show much performance difference" —
    both policies keep it optimized because the phase is always stable."""
    return _generic_suite_model(
        "172.mgrid",
        loop_plan=[(0x20000, 88, 0.32), (0x25000, 72, 0.26),
                   (0x2A000, 64, 0.22), (0x2F000, 48, 0.12)],
        ucr_weight=0.08, phases=None, duration_intervals=1500,
        dpi=0.03, opt_potential=0.08)


def _build_applu() -> BenchmarkModel:
    """173.applu: a handful of solver phases; few GPD changes."""
    return _generic_suite_model(
        "173.applu",
        loop_plan=[(0x20000, 96, 0.35), (0x26000, 80, 0.30),
                   (0x68000, 72, 0.18), (0x6E000, 48, 0.09)],
        ucr_weight=0.08,
        phases=[{"intervals": 300, "weights": [0.45, 0.25, 0.14, 0.08]},
                {"intervals": 250, "weights": [0.20, 0.42, 0.20, 0.10]},
                {"intervals": 250, "weights": [0.30, 0.25, 0.28, 0.09]}],
        duration_intervals=800, dpi=0.02, opt_potential=0.06)


def _build_vpr() -> BenchmarkModel:
    """175.vpr: place phase then route phase, with moderate jitter."""
    return _generic_suite_model(
        "175.vpr",
        loop_plan=[(0x20000, 56, 0.38), (0x24000, 40, 0.22),
                   (0x70000, 64, 0.22), (0x74000, 32, 0.08)],
        ucr_weight=0.10,
        phases=[{"intervals": 350, "weights": [0.55, 0.30, 0.04, 0.01]},
                {"intervals": 100, "weights": [0.30, 0.20, 0.30, 0.10]}],
        duration_intervals=800,
        flapper={"switch_intervals": 30, "swing": 0.16, "intervals": 350},
        dpi=0.02, opt_potential=0.06)


def _build_mesa() -> BenchmarkModel:
    """177.mesa: stable rendering loops with one working-set change."""
    return _generic_suite_model(
        "177.mesa",
        loop_plan=[(0x20000, 72, 0.40), (0x25000, 56, 0.30),
                   (0x64000, 48, 0.20)],
        ucr_weight=0.10,
        phases=[{"intervals": 400, "weights": [0.55, 0.30, 0.05]},
                {"intervals": 400, "weights": [0.25, 0.35, 0.35]}],
        duration_intervals=800, dpi=0.01, opt_potential=0.05)


def _build_equake() -> BenchmarkModel:
    """183.equake: one dominant sparse-matrix loop; very stable."""
    return _generic_suite_model(
        "183.equake",
        loop_plan=[(0x20000, 120, 0.62), (0x28000, 48, 0.20),
                   (0x2C000, 40, 0.10)],
        ucr_weight=0.08, phases=None, duration_intervals=800,
        dpi=0.05, opt_potential=0.12)


def _build_lucas() -> BenchmarkModel:
    """189.lucas: two FFT loops, fully stable (Figure 13: zero local
    phase changes for both regions at every period)."""
    return _generic_suite_model(
        "189.lucas",
        loop_plan=[(0x20000, 112, 0.55), (0x28000, 96, 0.35)],
        ucr_weight=0.10, phases=None, duration_intervals=800,
        dpi=0.02, opt_potential=0.07)


def _build_parser() -> BenchmarkModel:
    """197.parser: many small parsing loops (a Figure 15/16 cost case)
    over a mildly phased workload."""
    rng = _rng_for("197.parser")
    plan = []
    address = 0x30000
    weights = rng.dirichlet(np.full(150, 1.0))
    for i in range(150):
        slots = int(rng.integers(8, 32))
        plan.append((address, slots, float(weights[i])))
        address += slots * 4 + 0x100
    return _generic_suite_model(
        "197.parser", loop_plan=plan, ucr_weight=0.18, phases=None,
        duration_intervals=600, dpi=0.015, opt_potential=0.05)


def _build_sixtrack() -> BenchmarkModel:
    """200.sixtrack: stable tracking loops."""
    return _generic_suite_model(
        "200.sixtrack",
        loop_plan=[(0x20000, 104, 0.48), (0x27000, 88, 0.30),
                   (0x2D000, 56, 0.14)],
        ucr_weight=0.08, phases=None, duration_intervals=800,
        dpi=0.01, opt_potential=0.05)


def _build_vortex() -> BenchmarkModel:
    """255.vortex(3): an object database with many regions and a high-ish
    UCR share; several working-set phases."""
    rng = _rng_for("255.vortex")
    plan = []
    address = 0x30000
    weights = rng.dirichlet(np.full(90, 1.0))
    for i in range(90):
        slots = int(rng.integers(12, 40))
        plan.append((address, slots, float(weights[i])))
        address += slots * 4 + 0x100
    return _generic_suite_model(
        "255.vortex", loop_plan=plan, ucr_weight=0.24,
        phases=[{"intervals": 170, "weights": list(weights)},
                {"intervals": 170,
                 "weights": list(np.roll(weights, 30))},
                {"intervals": 160,
                 "weights": list(np.roll(weights, 60))}],
        duration_intervals=500, dpi=0.015, opt_potential=0.05)


def _build_bzip2() -> BenchmarkModel:
    """256.bzip2(3): block-periodic compressor; moderate GPD flapping at
    the 45k period, and enough regions to be in Figure 16's tree-win
    list."""
    rng = _rng_for("256.bzip2")
    plan = []
    address = 0x30000
    weights = rng.dirichlet(np.full(35, 1.5))
    for i in range(35):
        slots = int(rng.integers(12, 48))
        plan.append((address, slots, float(weights[i])))
        address += slots * 4 + 0x2000
    return _generic_suite_model(
        "256.bzip2", loop_plan=plan, ucr_weight=0.12,
        phases=[{"intervals": 100, "weights": list(weights)}],
        duration_intervals=800,
        flapper={"switch_intervals": 25, "swing": 0.22, "intervals": 700},
        dpi=0.02, opt_potential=0.06)


def _build_twolf() -> BenchmarkModel:
    """300.twolf: placement/annealing with slow phases."""
    return _generic_suite_model(
        "300.twolf",
        loop_plan=[(0x20000, 64, 0.40), (0x24000, 48, 0.28),
                   (0x60000, 40, 0.18)],
        ucr_weight=0.14,
        phases=[{"intervals": 400, "weights": [0.50, 0.30, 0.06]},
                {"intervals": 400, "weights": [0.34, 0.30, 0.22]}],
        duration_intervals=800, dpi=0.025, opt_potential=0.07)


def _build_apsi() -> BenchmarkModel:
    """301.apsi: a couple dozen *large* loops — the per-region similarity
    computation, not attribution, dominates its monitoring cost
    (Figure 15)."""
    rng = _rng_for("301.apsi")
    plan = []
    address = 0x30000
    weights = rng.dirichlet(np.full(22, 2.0))
    for i in range(22):
        plan.append((address, 256, float(weights[i])))
        address += 256 * 4 + 0x400
    return _generic_suite_model(
        "301.apsi", loop_plan=plan, ucr_weight=0.10, phases=None,
        duration_intervals=400, dpi=0.02, opt_potential=0.05)


def _build_art() -> BenchmarkModel:
    """179.art: small stable network-simulation loops (Figure 16 only)."""
    return _generic_suite_model(
        "179.art",
        loop_plan=[(0x20000, 48, 0.55), (0x23000, 40, 0.30)],
        ucr_weight=0.10, phases=None, duration_intervals=300,
        dpi=0.06, opt_potential=0.10)


# ---------------------------------------------------------------------------
# Registry and figure membership
# ---------------------------------------------------------------------------

SUITE = {
    "164.gzip": _build_gzip,
    "168.wupwise": _build_wupwise,
    "171.swim": _build_swim,
    "172.mgrid": _build_mgrid,
    "173.applu": _build_applu,
    "175.vpr": _build_vpr,
    "176.gcc": _build_gcc,
    "177.mesa": _build_mesa,
    "178.galgel": _build_galgel,
    "179.art": _build_art,
    "181.mcf": _build_mcf,
    "183.equake": _build_equake,
    "186.crafty": _build_crafty,
    "187.facerec": _build_facerec,
    "188.ammp": _build_ammp,
    "189.lucas": _build_lucas,
    "191.fma3d": _build_fma3d,
    "197.parser": _build_parser,
    "200.sixtrack": _build_sixtrack,
    "254.gap": _build_gap,
    "255.vortex": _build_vortex,
    "256.bzip2": _build_bzip2,
    "300.twolf": _build_twolf,
    "301.apsi": _build_apsi,
}

#: Figure 3/4's 21 benchmarks ("short running benchmarks were excluded").
FIG3_BENCHMARKS = (
    "168.wupwise", "171.swim", "172.mgrid", "173.applu", "175.vpr",
    "177.mesa", "178.galgel", "181.mcf", "183.equake", "186.crafty",
    "187.facerec", "188.ammp", "189.lucas", "191.fma3d", "197.parser",
    "200.sixtrack", "254.gap", "255.vortex", "256.bzip2", "300.twolf",
    "301.apsi",
)

#: Figure 6's 23 benchmarks (adds the short-running gzip and gcc).
FIG6_BENCHMARKS = ("164.gzip", "176.gcc") + FIG3_BENCHMARKS

#: Figure 13/14's selected benchmarks (large phase-change counts at low
#: sampling periods under the centroid scheme).
FIG13_BENCHMARKS = (
    "181.mcf", "187.facerec", "254.gap", "164.gzip", "178.galgel",
    "189.lucas", "191.fma3d", "188.ammp",
)

#: Figure 15's benchmarks (cost of region monitoring).
FIG15_BENCHMARKS = FIG6_BENCHMARKS

#: Figure 16's benchmarks (adds 179.art).
FIG16_BENCHMARKS = ("164.gzip", "168.wupwise", "171.swim", "172.mgrid",
                    "173.applu", "175.vpr", "176.gcc", "177.mesa",
                    "178.galgel", "179.art", "181.mcf", "183.equake",
                    "186.crafty", "187.facerec", "188.ammp", "189.lucas",
                    "191.fma3d", "197.parser", "200.sixtrack", "254.gap",
                    "255.vortex", "256.bzip2", "300.twolf", "301.apsi")

#: Figure 17's performance subset.
FIG17_BENCHMARKS = ("181.mcf", "172.mgrid", "254.gap", "191.fma3d")


def benchmark_names() -> list[str]:
    """All modeled benchmark names, sorted."""
    return sorted(SUITE)


@lru_cache(maxsize=96)
def _cached_benchmark(name: str, scale: float) -> BenchmarkModel:
    try:
        builder = SUITE[name]
    except KeyError:
        known = ", ".join(sorted(SUITE))
        raise ConfigError(
            f"unknown benchmark {name!r}; known: {known}") from None
    model = builder()
    if scale != 1.0:
        model = BenchmarkModel(
            name=model.name, binary=model.binary, regions=model.regions,
            workload=model.workload.scaled(scale),
            description=model.description,
            selected_region_names=model.selected_region_names)
    return model


def get_benchmark(name: str, scale: float = 1.0) -> BenchmarkModel:
    """Build (and cache) a benchmark model.

    Parameters
    ----------
    name:
        A :data:`SUITE` key, e.g. ``"181.mcf"``.
    scale:
        Duration multiplier: experiments run at 1.0; tests use small
        scales for speed.  Switching periods are *not* scaled (they are
        part of the modeled behavior), so very small scales shrink the
        number of intervals, not the phase structure.
    """
    if scale <= 0.0:
        raise ConfigError("scale must be positive")
    return _cached_benchmark(name, float(scale))
