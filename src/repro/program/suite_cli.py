"""CLI for inspecting the synthetic benchmark suite.

Usage::

    repro-suite                      # inventory of all models
    repro-suite 181.mcf              # full description of one model
    repro-suite 181.mcf --scale 0.5  # at a reduced scale
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import format_table
from repro.program.spec2000 import (INTERVAL_45K, BenchmarkModel,
                                    benchmark_names, get_benchmark)
from repro.program.workload import Drift, Periodic, Steady, region_cycles


def _intervals(cycles: int) -> float:
    return cycles / INTERVAL_45K


def inventory_table() -> str:
    """One row per model: size and structure at a glance."""
    rows = []
    for name in benchmark_names():
        model = get_benchmark(name)
        n_loops = sum(1 for spec in model.regions.values() if spec.is_loop)
        n_ucr = len(model.regions) - n_loops
        rows.append([
            name,
            n_loops,
            n_ucr,
            len(model.workload.segments),
            _intervals(model.workload.total_cycles),
            model.description[:48],
        ])
    return format_table(
        ["benchmark", "loops", "ucr procs", "segments",
         "intervals@45k", "behavior"],
        rows, title="Synthetic SPEC CPU2000 suite")


def describe(model: BenchmarkModel) -> str:
    """A multi-section description of one model."""
    lines = [f"{model.name}: {model.description}", ""]

    lo, hi = model.binary.text_range
    n_loops = len(model.binary.all_loops())
    lines.append(f"binary: text [{lo:#x}, {hi:#x}), "
                 f"{len(model.binary.procedures)} procedures, "
                 f"{n_loops} natural loops")
    lines.append("")

    shares = region_cycles(model.workload.compile())
    total = sum(shares.values())
    region_rows = []
    for name, spec in sorted(model.regions.items(),
                             key=lambda kv: -shares.get(kv[0], 0.0)):
        region_rows.append([
            name,
            f"{spec.start:x}-{spec.end:x}",
            spec.n_slots,
            "loop" if spec.is_loop else "proc",
            100.0 * shares.get(name, 0.0) / total,
            spec.cpi,
            1000.0 * spec.dpi,
            100.0 * spec.opt_potential,
        ])
    lines.append(format_table(
        ["region", "span", "slots", "kind", "cycles%", "CPI", "MPKI",
         "opt%"], region_rows, title="regions"))
    lines.append("")

    segment_rows = []
    for index, segment in enumerate(model.workload.segments[:12]):
        if isinstance(segment, Steady):
            kind, detail = "steady", "-"
        elif isinstance(segment, Periodic):
            kind = "periodic"
            detail = (f"{len(segment.mixtures)} mixtures every "
                      f"{_intervals(segment.switch_period):.1f} ivals")
        elif isinstance(segment, Drift):
            kind, detail = "drift", f"{segment.steps} steps"
        else:  # pragma: no cover - no other segment kinds shipped
            kind, detail = type(segment).__name__, "-"
        segment_rows.append([index, kind,
                             _intervals(segment.duration), detail])
    title = "workload segments"
    if len(model.workload.segments) > 12:
        title += f" (first 12 of {len(model.workload.segments)})"
    lines.append(format_table(
        ["#", "kind", "intervals@45k", "detail"], segment_rows,
        title=title))
    if model.selected_region_names:
        lines.append("")
        selected = ", ".join(
            f"r{i + 1}={model.monitored_name(n)}"
            for i, n in enumerate(model.selected_region_names))
        lines.append(f"selected regions (Figures 13/14): {selected}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-suite`` script."""
    parser = argparse.ArgumentParser(
        description="Inspect the synthetic SPEC CPU2000 benchmark suite.")
    parser.add_argument("benchmark", nargs="?", default=None,
                        help="model to describe (default: inventory)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload duration multiplier")
    args = parser.parse_args(argv)
    if args.benchmark is None:
        print(inventory_table())
    else:
        print(describe(get_benchmark(args.benchmark, scale=args.scale)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
