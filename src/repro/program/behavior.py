"""Per-region execution behavior: sample-distribution profiles and traits.

A *workload region* is a span of the synthetic binary (usually a named
loop) together with:

* one or more **profiles** — relative per-instruction weights describing
  where cycle samples land while the region executes a given behavior
  (e.g. which loads are missing the cache).  Switching a region between
  profiles with different hot slots is how benchmark models encode real
  local phase changes; keeping one profile while the region's *share* of
  execution changes encodes mcf's globally-visible-but-locally-stable
  drift.
* **traits** the optimizer's payoff model uses: CPI, DPI (data-cache
  misses per instruction) and the fraction of the region's cycles a
  deployed optimization can remove (``opt_potential``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.histogram import INSTRUCTION_BYTES
from repro.errors import WorkloadError

__all__ = [
    "bottleneck_profile",
    "uniform_profile",
    "shifted_profile",
    "blended_profile",
    "RegionSpec",
]


def _normalize(weights: np.ndarray) -> np.ndarray:
    total = weights.sum()
    if total <= 0.0:
        raise WorkloadError("profile weights must sum to a positive value")
    return weights / total


def uniform_profile(n_slots: int) -> np.ndarray:
    """A flat profile: every instruction equally likely to be sampled."""
    if n_slots < 1:
        raise WorkloadError("profile needs at least one slot")
    return np.full(n_slots, 1.0 / n_slots)


def bottleneck_profile(n_slots: int, hot: dict[int, float],
                       base: float = 1.0) -> np.ndarray:
    """A profile with a low uniform floor and a few hot instructions.

    Parameters
    ----------
    n_slots:
        Region size in instructions.
    hot:
        Map of slot index -> weight *added* on top of the floor.  A cache-
        missing load with weight 300 against ``base`` 1.0 reproduces the
        single-spike histograms of the paper's Figure 8.
    base:
        Floor weight given to every slot.
    """
    if n_slots < 1:
        raise WorkloadError("profile needs at least one slot")
    weights = np.full(n_slots, float(base))
    for slot, weight in hot.items():
        if not 0 <= slot < n_slots:
            raise WorkloadError(
                f"hot slot {slot} outside region of {n_slots} slots")
        if weight < 0.0:
            raise WorkloadError("hot-slot weights must be non-negative")
        weights[slot] += weight
    return _normalize(weights)


def shifted_profile(profile: np.ndarray, by: int = 1) -> np.ndarray:
    """The same profile with every slot rotated *by* positions.

    This is Figure 8's "shift bottleneck by 1 inst" transformation: the
    workload models use it to create genuine local phase changes.
    """
    return _normalize(np.roll(np.asarray(profile, dtype=np.float64), by))


def blended_profile(a: np.ndarray, b: np.ndarray, t: float) -> np.ndarray:
    """Linear blend ``(1-t)*a + t*b`` of two equal-length profiles."""
    if not 0.0 <= t <= 1.0:
        raise WorkloadError(f"blend factor {t} outside [0, 1]")
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise WorkloadError("blended profiles must have equal length")
    return _normalize((1.0 - t) * a + t * b)


@dataclass
class RegionSpec:
    """A workload region: an address span plus behavior profiles and traits.

    Attributes
    ----------
    name:
        Workload-level region name (benchmark models use the paper's
        names, e.g. ``"146f0-14770"``).
    start, end:
        Half-open byte address span, usually a named loop of the binary.
    profiles:
        Profile name -> normalized per-slot weights.  Must contain
        ``"main"``, the default profile.
    cpi:
        Cycles per instruction while executing this region.
    dpi:
        Data-cache misses per instruction (drives miss flags in the sample
        stream and the prefetching payoff model).
    opt_potential:
        Fraction of the region's cycles a deployed optimization removes
        (negative values model optimizations that hurt, exercising
        self-monitoring).
    is_loop:
        ``False`` marks spans that are *not* loops (hot code in callees) —
        loop-only region formation cannot monitor them and their samples
        stay in the UCR, the gap/crafty pathology.
    """

    name: str
    start: int
    end: int
    profiles: dict[str, np.ndarray] = field(default_factory=dict)
    cpi: float = 1.0
    dpi: float = 0.005
    opt_potential: float = 0.0
    is_loop: bool = True

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise WorkloadError(
                f"region {self.name!r} has invalid span "
                f"[{self.start:#x}, {self.end:#x})")
        if (self.end - self.start) % INSTRUCTION_BYTES != 0:
            raise WorkloadError(
                f"region {self.name!r} span is not instruction-aligned")
        if not self.profiles:
            self.profiles = {"main": uniform_profile(self.n_slots)}
        if "main" not in self.profiles:
            raise WorkloadError(
                f"region {self.name!r} must define a 'main' profile")
        for profile_name, weights in self.profiles.items():
            weights = np.asarray(weights, dtype=np.float64)
            if weights.size != self.n_slots:
                raise WorkloadError(
                    f"profile {profile_name!r} of region {self.name!r} has "
                    f"{weights.size} slots, region has {self.n_slots}")
            self.profiles[profile_name] = _normalize(weights)
        if self.cpi <= 0.0:
            raise WorkloadError(f"region {self.name!r} needs positive CPI")
        if not 0.0 <= self.dpi <= 1.0:
            raise WorkloadError(f"region {self.name!r} DPI outside [0, 1]")
        if not -1.0 < self.opt_potential < 1.0:
            raise WorkloadError(
                f"region {self.name!r} opt_potential outside (-1, 1)")

    @property
    def n_slots(self) -> int:
        """Region size in instruction slots."""
        return (self.end - self.start) // INSTRUCTION_BYTES

    def profile(self, name: str = "main") -> np.ndarray:
        """Look up a profile by name."""
        try:
            return self.profiles[name]
        except KeyError:
            known = ", ".join(sorted(self.profiles))
            raise WorkloadError(
                f"region {self.name!r} has no profile {name!r} "
                f"(profiles: {known})") from None

    @classmethod
    def for_loop(cls, name: str, span: tuple[int, int],
                 **kwargs) -> "RegionSpec":
        """Build a spec for a named loop span from a binary."""
        start, end = span
        return cls(name=name, start=start, end=end, **kwargs)
