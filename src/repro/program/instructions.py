"""Instructions and basic blocks of the synthetic binary model.

The paper's system operates on SPARC binaries: fixed 4-byte instructions,
procedures made of basic blocks, loops as the primary unit of optimization.
We model exactly as much of that as region formation and sample attribution
need: addresses, opcode classes (loads matter for DPI and prefetching),
branch targets, and block boundaries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.histogram import INSTRUCTION_BYTES
from repro.errors import AddressError


class Opcode(enum.Enum):
    """Coarse instruction classes; enough to drive the behavior models."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    FP = "fp"
    BRANCH = "branch"
    CALL = "call"
    RET = "ret"
    NOP = "nop"


#: Opcodes that transfer control and therefore end a basic block.
CONTROL_FLOW = frozenset({Opcode.BRANCH, Opcode.CALL, Opcode.RET})


@dataclass(frozen=True, slots=True)
class Instruction:
    """One fixed-width instruction.

    Attributes
    ----------
    address:
        Byte address; must be 4-byte aligned.
    opcode:
        Coarse class of the instruction.
    target:
        Branch or call target address (``None`` for non-control-flow
        instructions and returns).
    """

    address: int
    opcode: Opcode = Opcode.ALU
    target: int | None = None

    def __post_init__(self) -> None:
        if self.address < 0 or self.address % INSTRUCTION_BYTES != 0:
            raise AddressError(
                f"instruction address {self.address:#x} is not "
                f"{INSTRUCTION_BYTES}-byte aligned")
        if self.target is not None and self.opcode not in CONTROL_FLOW:
            raise AddressError(
                f"{self.opcode.value} instruction cannot have a target")

    @property
    def is_control_flow(self) -> bool:
        """Whether this instruction may transfer control."""
        return self.opcode in CONTROL_FLOW

    @property
    def is_memory(self) -> bool:
        """Whether this instruction accesses memory."""
        return self.opcode in (Opcode.LOAD, Opcode.STORE)


@dataclass(frozen=True, slots=True)
class BasicBlock:
    """A straight-line run of instructions with a single entry and exit.

    Attributes
    ----------
    start:
        Address of the first instruction.
    instructions:
        The block's instructions, in address order and contiguous.
    successors:
        Start addresses of the blocks control may flow to next, *within
        the same procedure* (calls fall through; returns have none).
    """

    start: int
    instructions: tuple[Instruction, ...]
    successors: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.instructions:
            raise AddressError(f"basic block at {self.start:#x} is empty")
        if self.instructions[0].address != self.start:
            raise AddressError(
                f"block start {self.start:#x} does not match first "
                f"instruction {self.instructions[0].address:#x}")
        expected = self.start
        for instruction in self.instructions:
            if instruction.address != expected:
                raise AddressError(
                    f"non-contiguous instruction at "
                    f"{instruction.address:#x}, expected {expected:#x}")
            expected += INSTRUCTION_BYTES

    @property
    def end(self) -> int:
        """One past the last instruction byte (half-open range end)."""
        return self.start + len(self.instructions) * INSTRUCTION_BYTES

    @property
    def n_instructions(self) -> int:
        """Number of instructions in the block."""
        return len(self.instructions)

    def contains(self, address: int) -> bool:
        """Whether *address* lies inside the block's range."""
        return self.start <= address < self.end

    @property
    def terminator(self) -> Instruction:
        """The last instruction of the block."""
        return self.instructions[-1]

    def call_targets(self) -> tuple[int, ...]:
        """Addresses of procedures this block calls."""
        return tuple(i.target for i in self.instructions
                     if i.opcode is Opcode.CALL and i.target is not None)

    def __repr__(self) -> str:
        return (f"BasicBlock([{self.start:#x}, {self.end:#x}), "
                f"{self.n_instructions} instr, succ={[hex(s) for s in self.successors]})")
