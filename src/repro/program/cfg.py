"""Control-flow graphs over basic blocks, with dominator computation.

Region formation in the paper builds regions that "are primarily loops".
Finding loops in a binary requires a CFG and dominators: a back edge is an
edge whose target dominates its source, and each back edge induces a
natural loop.  This module provides the per-procedure CFG and the classic
iterative dominator analysis (Cooper/Harvey/Kennedy style, on reverse
post-order).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError
from repro.program.instructions import BasicBlock


@dataclass(frozen=True, slots=True)
class Edge:
    """A directed CFG edge between block start addresses."""

    source: int
    target: int


class ControlFlowGraph:
    """CFG of one procedure: blocks keyed by start address plus edges.

    Parameters
    ----------
    entry:
        Start address of the entry block.
    blocks:
        All blocks of the procedure.  Successor addresses must refer to
        blocks in this collection.
    """

    def __init__(self, entry: int, blocks: list[BasicBlock]) -> None:
        self._blocks: dict[int, BasicBlock] = {}
        for block in blocks:
            if block.start in self._blocks:
                raise AddressError(
                    f"duplicate basic block at {block.start:#x}")
            self._blocks[block.start] = block
        if entry not in self._blocks:
            raise AddressError(f"entry block {entry:#x} not in block set")
        for block in blocks:
            for succ in block.successors:
                if succ not in self._blocks:
                    raise AddressError(
                        f"block {block.start:#x} names unknown successor "
                        f"{succ:#x}")
        self.entry = entry
        self._predecessors: dict[int, list[int]] = {
            start: [] for start in self._blocks}
        for block in blocks:
            for succ in block.successors:
                self._predecessors[succ].append(block.start)
        self._rpo: list[int] | None = None
        self._idom: dict[int, int] | None = None

    # -- structure ----------------------------------------------------------

    @property
    def blocks(self) -> dict[int, BasicBlock]:
        """Blocks keyed by start address."""
        return dict(self._blocks)

    def block(self, start: int) -> BasicBlock:
        """The block starting at *start*."""
        try:
            return self._blocks[start]
        except KeyError:
            raise AddressError(f"no basic block at {start:#x}") from None

    def successors(self, start: int) -> tuple[int, ...]:
        """Successor block addresses of the block at *start*."""
        return self.block(start).successors

    def predecessors(self, start: int) -> tuple[int, ...]:
        """Predecessor block addresses of the block at *start*."""
        self.block(start)
        return tuple(self._predecessors[start])

    def __len__(self) -> int:
        return len(self._blocks)

    def block_containing(self, address: int) -> BasicBlock | None:
        """The block whose range contains *address*, if any."""
        for block in self._blocks.values():
            if block.contains(address):
                return block
        return None

    # -- traversal ------------------------------------------------------------

    def reverse_post_order(self) -> list[int]:
        """Block addresses in reverse post-order from the entry.

        Unreachable blocks are excluded (they cannot be part of a natural
        loop reached from the entry).
        """
        if self._rpo is not None:
            return list(self._rpo)
        visited: set[int] = set()
        order: list[int] = []

        def visit(start: int) -> None:
            # Iterative DFS to keep deep CFGs off the Python stack.
            stack: list[tuple[int, int]] = [(start, 0)]
            visited.add(start)
            while stack:
                node, index = stack[-1]
                succs = self.block(node).successors
                if index < len(succs):
                    stack[-1] = (node, index + 1)
                    nxt = succs[index]
                    if nxt not in visited:
                        visited.add(nxt)
                        stack.append((nxt, 0))
                else:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        self._rpo = order
        return list(order)

    def reachable(self) -> set[int]:
        """Start addresses of blocks reachable from the entry."""
        return set(self.reverse_post_order())

    # -- dominators ------------------------------------------------------------

    def immediate_dominators(self) -> dict[int, int]:
        """Immediate dominator of every reachable block.

        The entry maps to itself.  Classic iterative algorithm over
        reverse post-order.
        """
        if self._idom is not None:
            return dict(self._idom)
        rpo = self.reverse_post_order()
        position = {start: i for i, start in enumerate(rpo)}
        idom: dict[int, int] = {self.entry: self.entry}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while position[a] > position[b]:
                    a = idom[a]
                while position[b] > position[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for node in rpo:
                if node == self.entry:
                    continue
                candidates = [p for p in self._predecessors[node]
                              if p in idom]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for pred in candidates[1:]:
                    new_idom = intersect(new_idom, pred)
                if idom.get(node) != new_idom:
                    idom[node] = new_idom
                    changed = True
        self._idom = idom
        return dict(idom)

    def dominates(self, a: int, b: int) -> bool:
        """Whether block *a* dominates block *b* (reflexive)."""
        idom = self.immediate_dominators()
        if b not in idom:
            return False
        node = b
        while True:
            if node == a:
                return True
            parent = idom[node]
            if parent == node:
                return False
            node = parent

    def back_edges(self) -> list[Edge]:
        """Edges whose target dominates their source (loop back edges)."""
        edges = []
        for start in self.reverse_post_order():
            for succ in self.block(start).successors:
                if self.dominates(succ, start):
                    edges.append(Edge(source=start, target=succ))
        return edges
