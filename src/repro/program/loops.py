"""Natural-loop detection over a procedure's CFG.

The region builder "looks only for loops within procedures" (paper section
3.1): each CFG back edge ``n -> h`` (where ``h`` dominates ``n``) induces a
natural loop consisting of ``h`` plus every block that can reach ``n``
without passing through ``h``.  Loops sharing a header are merged.  The
loop's *address range* — the span from its lowest block start to its
highest block end — is what becomes a monitored region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.program.cfg import ControlFlowGraph


@dataclass(frozen=True)
class Loop:
    """A natural loop of one procedure.

    Attributes
    ----------
    header:
        Start address of the loop header block.
    blocks:
        Start addresses of all blocks in the loop body (header included).
    start, end:
        Half-open byte address span covering every block of the loop.
        Blocks of a natural loop need not be contiguous, but the region
        builder monitors the covering span, exactly like a trace selector
        that patches the loop's extent.
    parent:
        Header of the innermost enclosing loop, or ``None`` for a
        top-level loop.
    """

    header: int
    blocks: frozenset[int] = field(repr=False)
    start: int = 0
    end: int = 0
    parent: int | None = None

    @property
    def n_instructions(self) -> int:
        """Instruction slots in the covering address span."""
        from repro.core.histogram import INSTRUCTION_BYTES

        return (self.end - self.start) // INSTRUCTION_BYTES

    def contains_address(self, address: int) -> bool:
        """Whether *address* lies in the loop's covering span."""
        return self.start <= address < self.end

    def contains_block(self, block_start: int) -> bool:
        """Whether the block at *block_start* belongs to the loop body."""
        return block_start in self.blocks


def _natural_loop_blocks(cfg: ControlFlowGraph, source: int,
                         header: int) -> set[int]:
    """Blocks of the natural loop induced by back edge ``source -> header``."""
    body = {header, source}
    worklist = [source]
    while worklist:
        node = worklist.pop()
        if node == header:
            continue
        for pred in cfg.predecessors(node):
            if pred not in body:
                body.add(pred)
                worklist.append(pred)
    return body


def find_natural_loops(cfg: ControlFlowGraph) -> list[Loop]:
    """All natural loops of *cfg*, innermost-first, with nesting links.

    Loops that share a header (multiple back edges to the same block) are
    merged into one loop, as is conventional.
    """
    merged: dict[int, set[int]] = {}
    for edge in cfg.back_edges():
        body = _natural_loop_blocks(cfg, edge.source, edge.target)
        merged.setdefault(edge.target, set()).update(body)

    loops: list[Loop] = []
    for header, body in merged.items():
        start = min(cfg.block(b).start for b in body)
        end = max(cfg.block(b).end for b in body)
        loops.append(Loop(header=header, blocks=frozenset(body),
                          start=start, end=end))

    # Establish nesting: loop A is nested in B iff A's blocks are a strict
    # subset of B's.  The parent is the smallest such B.
    by_header = {loop.header: loop for loop in loops}
    nested: list[Loop] = []
    for loop in loops:
        enclosing = [other for other in loops
                     if other.header != loop.header
                     and loop.blocks < other.blocks]
        parent = None
        if enclosing:
            parent = min(enclosing, key=lambda o: len(o.blocks)).header
        nested.append(Loop(header=loop.header, blocks=loop.blocks,
                           start=loop.start, end=loop.end, parent=parent))
    # Innermost (fewest blocks) first, so "first match" finds the
    # innermost loop containing an address.
    nested.sort(key=lambda loop: len(loop.blocks))
    del by_header
    return nested


def innermost_loop_containing(loops: list[Loop], address: int) -> Loop | None:
    """The innermost loop whose body contains *address*, or ``None``.

    Containment is tested against the loop body's actual blocks when the
    address falls in one, falling back to the covering span (the region
    that would be monitored).
    """
    candidates = [loop for loop in loops if loop.contains_address(address)]
    if not candidates:
        return None
    return min(candidates, key=lambda loop: loop.end - loop.start)
