"""The PMU simulator: periodic cycle sampling over a workload timeline.

This is the substitute for the UltraSPARC hardware performance monitor the
paper samples (see DESIGN.md §2).  It walks a compiled workload timeline
and, every ``sampling_period`` virtual cycles, emits one sample:

1. the active timeline piece determines the region **mixture**;
2. a region/profile component is drawn by mixture weight (cycle share);
3. an instruction slot is drawn from the component's profile;
4. a data-cache-miss flag is drawn from the region's DPI.

Because the mixture weights are cycle shares and sampling is periodic in
cycles, the sample distribution converges to the true execution-time
distribution — with exactly the multinomial sampling noise a real PMU
shows, which is the noise source the paper's sensitivity analysis (Figures
3 and 13) is about.  Optional interrupt jitter models the skid of real
sampling hardware.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import INSTRUCTION_BYTES
from repro.errors import SamplingError, WorkloadError
from repro.program.behavior import RegionSpec
from repro.program.workload import Piece, WorkloadScript
from repro.sampling.events import SampleStream

__all__ = ["PMUSimulator", "simulate_sampling"]


class PMUSimulator:
    """Generates a :class:`SampleStream` for one (workload, period) pair.

    Parameters
    ----------
    regions:
        Workload-region table (name -> :class:`RegionSpec`); every region
        referenced by the workload must be present.
    workload:
        The benchmark's workload script.
    sampling_period:
        Cycles per interrupt (the paper sweeps 45k-1.5M).
    seed:
        RNG seed; the same seed reproduces the same stream bit for bit.
    jitter:
        Fraction of the period by which each interrupt time is uniformly
        perturbed (0 = perfectly periodic).
    """

    def __init__(self, regions: dict[str, RegionSpec],
                 workload: WorkloadScript, sampling_period: int,
                 seed: int = 0, jitter: float = 0.0) -> None:
        if sampling_period <= 0:
            raise SamplingError("sampling_period must be positive")
        if not 0.0 <= jitter < 0.5:
            raise SamplingError("jitter must lie in [0, 0.5)")
        self.regions = dict(regions)
        self.workload = workload
        self.sampling_period = sampling_period
        self.jitter = jitter
        self._rng = np.random.default_rng(seed)
        for name in workload.region_names():
            if name not in self.regions:
                raise WorkloadError(
                    f"workload references unknown region {name!r}")

    def run(self) -> SampleStream:
        """Simulate the whole workload and return the sample stream."""
        pieces = self.workload.compile()
        total_cycles = self.workload.total_cycles
        region_names = tuple(sorted(self.regions))
        region_index = {name: i for i, name in enumerate(region_names)}

        chunks_pcs: list[np.ndarray] = []
        chunks_cycles: list[np.ndarray] = []
        chunks_miss: list[np.ndarray] = []
        chunks_rid: list[np.ndarray] = []
        chunks_instr: list[np.ndarray] = []

        period = self.sampling_period
        # Interrupt k fires at cycle (k+1)*period (plus jitter).
        next_tick = period
        for piece in pieces:
            if next_tick >= piece.end:
                continue
            first = max(next_tick, piece.start + 1)
            # Align 'first' to the tick grid at or after it.
            k_first = (first + period - 1) // period
            k_last = (piece.end - 1) // period
            if k_last < k_first:
                continue
            ticks = np.arange(k_first, k_last + 1, dtype=np.int64) * period
            next_tick = int(ticks[-1]) + period
            n = ticks.size
            if self.jitter > 0.0:
                skid = self._rng.uniform(-self.jitter, self.jitter,
                                         size=n) * period
                ticks = np.clip(ticks + skid.astype(np.int64),
                                piece.start, piece.end - 1)

            pcs, miss, rids, instr = self._draw_piece(piece, n,
                                                      region_index)
            chunks_pcs.append(pcs)
            chunks_cycles.append(ticks)
            chunks_miss.append(miss)
            chunks_rid.append(rids)
            chunks_instr.append(instr)

        if chunks_pcs:
            all_pcs = np.concatenate(chunks_pcs)
            all_cycles = np.concatenate(chunks_cycles)
            all_miss = np.concatenate(chunks_miss)
            all_rid = np.concatenate(chunks_rid)
            all_instr = np.concatenate(chunks_instr)
        else:
            all_pcs = np.empty(0, dtype=np.int64)
            all_cycles = np.empty(0, dtype=np.int64)
            all_miss = np.empty(0, dtype=bool)
            all_rid = np.empty(0, dtype=np.int32)
            all_instr = np.empty(0, dtype=np.float64)
        return SampleStream(pcs=all_pcs, cycles=all_cycles,
                            dcache_miss=all_miss, region_ids=all_rid,
                            region_names=region_names,
                            sampling_period=period,
                            total_cycles=total_cycles,
                            instr_delta=all_instr)

    # -- internals -------------------------------------------------------------

    def _draw_piece(self, piece: Piece, n: int,
                    region_index: dict[str, int]) -> tuple[np.ndarray,
                                                           np.ndarray,
                                                           np.ndarray,
                                                           np.ndarray]:
        """Draw *n* time-ordered samples for one timeline piece."""
        components = piece.mix.components
        weights = piece.mix.weights
        pcs = np.empty(n, dtype=np.int64)
        miss = np.empty(n, dtype=bool)
        rids = np.empty(n, dtype=np.int32)
        instr = np.empty(n, dtype=np.float64)
        if len(components) == 1:
            component_choice = np.zeros(n, dtype=np.intp)
        else:
            component_choice = self._rng.choice(len(components), size=n,
                                                p=weights)
        for index, component in enumerate(components):
            mask = component_choice == index
            count = int(mask.sum())
            if count == 0:
                continue
            spec = self.regions[component.region]
            profile = spec.profile(component.profile)
            slots = self._rng.choice(profile.size, size=count, p=profile)
            pcs[mask] = spec.start + slots.astype(np.int64) \
                * INSTRUCTION_BYTES
            miss[mask] = self._rng.random(count) < spec.dpi
            rids[mask] = region_index[component.region]
            # Instructions retired in this sample's window: one period's
            # worth of cycles at the region's CPI, with mild multiplicative
            # noise (pipeline weather).
            noise = self._rng.uniform(0.95, 1.05, size=count)
            instr[mask] = self.sampling_period / spec.cpi * noise
        return pcs, miss, rids, instr


def simulate_sampling(regions: dict[str, RegionSpec],
                      workload: WorkloadScript, sampling_period: int,
                      seed: int = 0, jitter: float = 0.0) -> SampleStream:
    """Convenience wrapper: build a :class:`PMUSimulator` and run it."""
    return PMUSimulator(regions, workload, sampling_period, seed=seed,
                        jitter=jitter).run()
