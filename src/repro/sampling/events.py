"""Sample records and sample streams.

The hardware PMU delivers, on every sampling interrupt, the interrupted
program counter plus event information (we model the data-cache-miss flag
the prefetching optimizer cares about).  A whole run's samples are kept as
a struct-of-arrays :class:`SampleStream` so detectors can process millions
of samples with vectorized slices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import SamplingError


@dataclass(frozen=True, slots=True)
class Sample:
    """One PMU sample (scalar view, used by unit tests and small runs)."""

    pc: int
    cycle: int
    dcache_miss: bool = False
    region_id: int = -1


@dataclass(frozen=True)
class SampleStream:
    """All samples of one simulated run, as parallel arrays.

    Attributes
    ----------
    pcs:
        Sampled program-counter values (int64).
    cycles:
        Virtual cycle of each sampling interrupt (int64, ascending).
    dcache_miss:
        Whether the sampled instruction missed the data cache (bool).
    region_ids:
        Ground-truth index into :attr:`region_names` for the workload
        region each sample was drawn from.  This is simulator-side truth
        used by charts and tests — the detectors never see it.
    region_names:
        Workload-region names indexing :attr:`region_ids`.
    sampling_period:
        Cycles between interrupts.
    total_cycles:
        Virtual duration of the run.
    """

    pcs: np.ndarray
    cycles: np.ndarray
    dcache_miss: np.ndarray
    region_ids: np.ndarray
    region_names: tuple[str, ...]
    sampling_period: int
    total_cycles: int
    #: Instructions retired between the previous interrupt and this one
    #: (derived from the sampled region's CPI).  Optional: streams built
    #: without it fall back to one instruction per cycle.
    instr_delta: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = self.pcs.size
        for name in ("cycles", "dcache_miss", "region_ids"):
            if getattr(self, name).size != n:
                raise SamplingError(
                    f"stream array {name!r} has size "
                    f"{getattr(self, name).size}, expected {n}")
        if self.instr_delta is not None and self.instr_delta.size != n:
            raise SamplingError(
                f"stream array 'instr_delta' has size "
                f"{self.instr_delta.size}, expected {n}")
        if self.sampling_period <= 0:
            raise SamplingError("sampling_period must be positive")

    @property
    def n_samples(self) -> int:
        """Total number of samples in the stream."""
        return int(self.pcs.size)

    def n_intervals(self, buffer_size: int) -> int:
        """Number of *complete* buffer intervals in the stream."""
        if buffer_size < 1:
            raise SamplingError("buffer_size must be positive")
        return self.n_samples // buffer_size

    def intervals(self, buffer_size: int) -> Iterator[tuple[int, slice]]:
        """Yield ``(interval_index, slice)`` for each full buffer.

        The trailing partial buffer (which never overflowed, hence was
        never delivered to the phase detector) is dropped — matching the
        real system, where analysis happens on buffer overflow only.
        """
        for index in range(self.n_intervals(buffer_size)):
            yield index, slice(index * buffer_size,
                               (index + 1) * buffer_size)

    def interval_pcs(self, buffer_size: int, index: int) -> np.ndarray:
        """PC samples of one interval."""
        n = self.n_intervals(buffer_size)
        if not 0 <= index < n:
            raise SamplingError(
                f"interval {index} out of range (stream has {n})")
        return self.pcs[index * buffer_size:(index + 1) * buffer_size]

    def centroids(self, buffer_size: int) -> np.ndarray:
        """Per-interval centroid (mean PC) vector, vectorized.

        Equivalent to feeding each interval's buffer to
        :func:`repro.core.centroid.centroid`, but computed in one reshape.
        """
        n = self.n_intervals(buffer_size)
        if n == 0:
            return np.empty(0)
        trimmed = self.pcs[:n * buffer_size].astype(np.float64)
        return trimmed.reshape(n, buffer_size).mean(axis=1)

    def _instr(self) -> np.ndarray:
        """Instruction deltas, defaulting to CPI = 1 when not simulated."""
        if self.instr_delta is not None:
            return self.instr_delta
        return np.full(self.n_samples, float(self.sampling_period))

    def interval_cpi(self, buffer_size: int) -> np.ndarray:
        """Per-interval aggregate CPI (cycles per retired instruction).

        This is one of the paper's global performance metrics: "aggregate
        metrics like CPI over fixed time intervals".
        """
        n = self.n_intervals(buffer_size)
        if n == 0:
            return np.empty(0)
        instr = self._instr()[:n * buffer_size].reshape(n, buffer_size)
        cycles_per_interval = float(buffer_size * self.sampling_period)
        return cycles_per_interval / np.maximum(instr.sum(axis=1), 1.0)

    def interval_dpi(self, buffer_size: int) -> np.ndarray:
        """Per-interval aggregate DPI, as misses per kilo-instruction.

        Each sample's miss flag is a Bernoulli draw of the sampled
        region's misses-per-instruction; weighting flags by the
        instructions each sample stands for gives the per-instruction
        estimate the paper's DPI metric uses.
        """
        n = self.n_intervals(buffer_size)
        if n == 0:
            return np.empty(0)
        instr = self._instr()[:n * buffer_size].reshape(n, buffer_size)
        flags = self.dcache_miss[:n * buffer_size].astype(np.float64)
        flags = flags.reshape(n, buffer_size)
        weighted = (flags * instr).sum(axis=1)
        return 1000.0 * weighted / np.maximum(instr.sum(axis=1), 1.0)

    def samples(self) -> Iterator[Sample]:
        """Iterate scalar :class:`Sample` views (slow path, tests only)."""
        for i in range(self.n_samples):
            yield Sample(pc=int(self.pcs[i]), cycle=int(self.cycles[i]),
                         dcache_miss=bool(self.dcache_miss[i]),
                         region_id=int(self.region_ids[i]))

    def region_name_of(self, sample_index: int) -> str:
        """Ground-truth region name of one sample."""
        rid = int(self.region_ids[sample_index])
        return self.region_names[rid]
