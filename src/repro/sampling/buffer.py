"""The user sample buffer with overflow delivery.

The paper's system accumulates PMU samples into a fixed-size user buffer
(2032 entries); "whenever the user buffer overflows", the buffered samples
are delivered to the phase detector / region monitor and the buffer is
reset.  This module models that contract for online (sample-at-a-time)
consumers; bulk experiments slice :class:`~repro.sampling.events.SampleStream`
directly, which is equivalent by construction.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.thresholds import DEFAULT_BUFFER_SIZE
from repro.errors import SamplingError

#: Signature of an overflow consumer: receives the full PC buffer and the
#: interval index.
OverflowHandler = Callable[[np.ndarray, int], None]


class SampleBuffer:
    """Fixed-capacity PC buffer that fires a handler on overflow.

    Parameters
    ----------
    capacity:
        Number of samples per interval (default: the paper's 2032).
    on_overflow:
        Called with ``(pcs, interval_index)`` every time the buffer fills.
    """

    def __init__(self, capacity: int = DEFAULT_BUFFER_SIZE,
                 on_overflow: OverflowHandler | None = None) -> None:
        if capacity < 1:
            raise SamplingError("buffer capacity must be positive")
        self.capacity = capacity
        self._store = np.empty(capacity, dtype=np.int64)
        self._fill = 0
        self._interval_index = 0
        self._handlers: list[OverflowHandler] = []
        if on_overflow is not None:
            self._handlers.append(on_overflow)

    # -- consumers -----------------------------------------------------------

    def subscribe(self, handler: OverflowHandler) -> None:
        """Register an additional overflow consumer."""
        self._handlers.append(handler)

    # -- producers -----------------------------------------------------------

    def push(self, pc: int) -> bool:
        """Add one sample; returns ``True`` if this push caused overflow."""
        self._store[self._fill] = pc
        self._fill += 1
        if self._fill == self.capacity:
            self._deliver()
            return True
        return False

    def push_many(self, pcs: np.ndarray) -> int:
        """Add a batch of samples; returns the number of overflows fired."""
        pcs = np.asarray(pcs, dtype=np.int64)
        overflows = 0
        offset = 0
        while offset < pcs.size:
            take = min(self.capacity - self._fill, pcs.size - offset)
            self._store[self._fill:self._fill + take] = \
                pcs[offset:offset + take]
            self._fill += take
            offset += take
            if self._fill == self.capacity:
                self._deliver()
                overflows += 1
        return overflows

    def _deliver(self) -> None:
        buffered = self._store.copy()
        index = self._interval_index
        self._interval_index += 1
        self._fill = 0
        for handler in self._handlers:
            handler(buffered, index)

    # -- inspection -----------------------------------------------------------

    @property
    def fill(self) -> int:
        """Samples currently buffered (always < capacity)."""
        return self._fill

    @property
    def intervals_delivered(self) -> int:
        """Number of overflows fired so far."""
        return self._interval_index

    def pending(self) -> np.ndarray:
        """Copy of the samples buffered since the last overflow."""
        return self._store[:self._fill].copy()
