"""PMU sampling substrate: sample records, the user buffer, the simulator."""

from repro.sampling.buffer import OverflowHandler, SampleBuffer
from repro.sampling.events import Sample, SampleStream
from repro.sampling.pmu import PMUSimulator, simulate_sampling

__all__ = [
    "OverflowHandler",
    "SampleBuffer",
    "Sample",
    "SampleStream",
    "PMUSimulator",
    "simulate_sampling",
]
