"""Index coalescing: turn contiguous gathers into views.

Row groups (:mod:`repro.batch.lpd`, :mod:`repro.batch.gpd`) and the
regrouper (:mod:`repro.batch.regroup`) index bank columns and stable-set
stores by handle arrays.  When a population's handles are contiguous and
ascending — the common case after bulk allocation or slot compaction —
indexing with the equivalent :class:`slice` makes every gather a view
and every scatter a strided store, which is where the fleet fast path's
zero-copy claim comes from.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_slice"]


def as_slice(values: np.ndarray) -> slice | None:
    """The equivalent slice for contiguous ascending values, else None."""
    if values.size == 0:
        return slice(0, 0)
    start = int(values[0])
    if int(values[-1]) - start + 1 != values.size:
        return None
    if not np.array_equal(
            values, np.arange(start, start + values.size, dtype=np.int64)):
        return None
    return slice(start, start + values.size)
