"""Row-wise numeric kernels, bit-identical to their scalar counterparts.

Bit-equality notes
------------------
NumPy reduces float64 arrays with pairwise summation, and the reduction
tree depends only on the number of elements reduced — ``X.sum(axis=-1)``
over a C-contiguous 2-D array reduces each row through exactly the same
tree as ``X[i].sum()`` does for the 1-D row.  Zero-padding rows would
change the element count and therefore the tree, so the batch backend
never pads reductions: LPD detector rows are grouped by exact histogram
width (:mod:`repro.batch.lpd`) and GPD history rows by exact fill count
(:mod:`repro.batch.gpd`), and every kernel here receives equal-width
groups.  Elementwise arithmetic (``+ - * /``, ``sqrt``, comparisons) is
IEEE-754 double in both NumPy and pure Python, so replicating the scalar
operation *sequence* per row yields bit-identical results — which the
differential conformance suite (``tests/batch/``) asserts.

The inner loops live in :mod:`repro.batch.compiled`, which selects a
Numba-JIT implementation when available (and bit-verified at import) or
the pure-NumPy reference otherwise; this module keeps the stable public
surface plus the degenerate-row resolution that needs Python objects.
"""

from __future__ import annotations

import numpy as np

from repro.batch import compiled
from repro.core.correlation import _degenerate_r

__all__ = ["batched_pearson", "batched_pearson_cached", "batched_centroid",
           "batched_band_stats"]

#: np.allclose defaults, used by the scalar degenerate-case resolution.
_ALLCLOSE_RTOL = 1.0e-5
_ALLCLOSE_ATOL = 1.0e-8


def _degenerate_rows(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Row-wise :func:`repro.core.correlation._degenerate_r`.

    The scalar resolves zero-variance pairs with
    ``np.allclose(v, v[0])`` per side; this replicates the finite-input
    formula ``|v_i - v_0| <= atol + rtol * |v_0|`` vectorized, and falls
    back to the scalar helper for rows containing non-finite values
    (np.allclose treats those by equality, not tolerance).
    """
    finite = np.isfinite(x).all(axis=1) & np.isfinite(y).all(axis=1)
    x0 = x[:, :1]
    y0 = y[:, :1]
    x_flat = np.all(np.abs(x - x0) <= _ALLCLOSE_ATOL
                    + _ALLCLOSE_RTOL * np.abs(x0), axis=1)
    y_flat = np.all(np.abs(y - y0) <= _ALLCLOSE_ATOL
                    + _ALLCLOSE_RTOL * np.abs(y0), axis=1)
    out = np.where(x_flat & y_flat, 1.0, 0.0)
    if not finite.all():
        for i in np.flatnonzero(~finite):
            out[i] = _degenerate_r(x[i], y[i])
    return out


def batched_pearson(stable: np.ndarray, current: np.ndarray) -> np.ndarray:
    """Pearson's r per row, bit-identical to ``pearson_r(row_x, row_y)``.

    Parameters
    ----------
    stable, current:
        float64 arrays of shape ``(k, n)`` with unit inner stride: one
        stable-set and one current-interval histogram per row.  All rows
        share the same width ``n`` (callers group by width; see module
        docstring).

    Returns
    -------
    np.ndarray
        ``(k,)`` float64 r-values in [-1, 1], degenerate rows resolved by
        the detector's convention (both-flat -> 1.0, else 0.0).
    """
    _, n = stable.shape
    if n < 2:
        return _degenerate_rows(stable, current)
    r, defined = compiled.pearson_core(stable, current)
    if not defined.all():
        undefined = ~defined
        r[undefined] = _degenerate_rows(stable[undefined],
                                        current[undefined])
    return r


def batched_pearson_cached(stable: np.ndarray, current: np.ndarray,
                           sum_x: np.ndarray, sum_x2: np.ndarray
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`batched_pearson` with the stable-side sums precomputed.

    *sum_x* / *sum_x2* must be bitwise what ``stable.sum(axis=1)`` and
    ``(stable * stable).sum(axis=1)`` would return; the LPD bank caches
    them per stable-set slot.  Returns ``(r, sum_y, sum_y2)`` — the
    current-side sums let the caller refresh its cache for rows whose
    stable set is being replaced by *current* (same data, same reduction
    tree, same bits as recomputing later).
    """
    _, n = stable.shape
    if n < 2:
        return (_degenerate_rows(stable, current), current.sum(axis=1),
                (current * current).sum(axis=1))
    r, defined, sum_y, sum_y2 = compiled.pearson_cached(
        stable, current, sum_x, sum_x2)
    if not defined.all():
        undefined = ~defined
        r[undefined] = _degenerate_rows(stable[undefined],
                                        current[undefined])
    return r, sum_y, sum_y2


def batched_centroid(buffers: np.ndarray) -> np.ndarray:
    """Mean PC per row, bit-identical to ``centroid(row)``.

    *buffers* is ``(k, B)``, any integer or float dtype with unit inner
    stride (ring-buffer column slices qualify); values are accumulated
    in float64 exactly as the scalar conversion would (PCs are far below
    2**53), without materializing a converted copy.
    """
    return compiled.centroid_rows(np.asarray(buffers))


def batched_band_stats(history: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(expectation, sd) per row of an equal-fill centroid-history block.

    *history* is ``(k, n)`` with ``n >= 2``: the retained centroids of k
    detectors, oldest first, all with the same fill count (callers group
    rows by fill).  Matches ``CentroidHistory.band()``: population mean
    and standard deviation (ddof=0) over the retained values.
    """
    return compiled.band_stats_rows(np.asarray(history, dtype=np.float64))
