"""NumPy-vectorized batch backend: many streams/regions in lockstep.

The scalar detectors (:mod:`repro.core.lpd`, :mod:`repro.core.gpd`)
process one region or one stream per Python call.  This package advances
*populations* of detectors per call instead — per-region stable-set and
current-interval histograms stacked into 2-D arrays, Pearson's r computed
for every region of every stream in one shot, centroid/band updates for
all streams at once, and the Fig-12/Fig-1 state machines stepped through
integer state vectors compiled from the declarative
:func:`~repro.core.states.lpd_machine_spec` /
:func:`~repro.core.states.gpd_machine_spec` tables.

The contract is strict bit-equality with the scalar path: identical
phase-change indices, state trajectories, stable-set freezes and
deoptimization events, enforced by the differential conformance suite in
``tests/batch/``.  The batch backend is an optimization, never a semantic
fork — any future backend must pass the same suite before it may share
cache entries with the scalar oracle (see
``repro.experiments.base._backend_token``).

Entry points:

* :class:`BatchSession` — N :class:`~repro.monitor.online.OnlineSession`
  -equivalent pipelines fed via padded sample batches, with per-lane
  fault plans and telemetry buses;
* ``backend="batch"`` on :func:`repro.experiments.base.monitored_run` /
  :func:`~repro.experiments.base.gpd_run`;
* the low-level :class:`BatchLpdBank` / :class:`BatchGpdBank` for custom
  harnesses, with :class:`LpdRowGroup` / :class:`GpdRowGroup` pinning
  fixed populations onto the compiled block-stepping fast path,
  :class:`ShardRing` queueing samples zero-copy, and
  :class:`FleetRegrouper` re-coalescing churned fleets
  (:mod:`repro.batch.compiled` documents the kernel backends).
"""

from repro.batch.gpd import (BatchGlobalPhaseDetector, BatchGpdBank,
                             GpdRowGroup)
from repro.batch.lpd import (BatchLocalPhaseDetector, BatchLpdBank,
                             LpdRowGroup)
from repro.batch.regroup import FleetRegrouper
from repro.batch.rings import ShardRing
from repro.batch.run import process_stream_batch, run_gpd_batch
from repro.batch.session import BatchLane, BatchSession

__all__ = [
    "BatchGlobalPhaseDetector",
    "BatchGpdBank",
    "BatchLocalPhaseDetector",
    "BatchLpdBank",
    "BatchLane",
    "BatchSession",
    "FleetRegrouper",
    "GpdRowGroup",
    "LpdRowGroup",
    "ShardRing",
    "process_stream_batch",
    "run_gpd_batch",
]
