"""Multi-tenant online sessions advanced in lockstep.

A :class:`BatchSession` hosts N lanes, each the equivalent of one
:class:`~repro.monitor.online.OnlineSession` — its own telemetry bus,
region monitor, watchdog, fault-injected stream and callbacks — but all
local detectors live in one shared :class:`~repro.batch.lpd.BatchLpdBank`
and all global detectors in one :class:`~repro.batch.gpd.BatchGpdBank`,
so every interval round steps the whole fleet with a handful of
vectorized calls instead of N Python pipelines.

Equivalence contract: per lane, results and telemetry are bit-identical
to feeding the same samples to a scalar ``OnlineSession`` — same states,
same phase-change indices, same stable-set freezes, same watchdog
deoptimizations (the conformance suite in ``tests/batch/`` holds the
backend to this).  Lanes are mutually invisible: each lane's bus sees
exactly the event sequence its scalar twin would emit, and lanes may
start, starve and end at different intervals (ragged fleets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.batch.gpd import BatchGlobalPhaseDetector, BatchGpdBank, GpdRowGroup
from repro.batch.lpd import BatchLpdBank
from repro.batch.regroup import FleetRegrouper
from repro.batch.rings import ShardRing
from repro.core.states import PhaseEvent
from repro.core.thresholds import GpdThresholds, MonitorThresholds
from repro.errors import SamplingError
from repro.faults.inject import inject
from repro.faults.model import FaultPlan
from repro.monitor.online import GlobalChangeCallback, LocalChangeCallback
from repro.monitor.region_monitor import IntervalReport, RegionMonitor
from repro.monitor.watchdog import (RegionWatchdog, WatchdogConfig,
                                    WatchdogEvent)
from repro.program.binary import SyntheticBinary
from repro.sampling.events import SampleStream
from repro.telemetry.bus import EventBus, get_bus
from repro.telemetry.events import IntervalClosed, SampleBatch

__all__ = ["BatchLane", "BatchSession"]


@dataclass
class LaneStats:
    """Mirror of the scalar session's counters, per lane."""

    intervals: int = 0
    samples: int = 0
    global_events: int = 0
    local_events: int = 0


class BatchLane:
    """One stream's pipeline inside a :class:`BatchSession`.

    Create via :meth:`BatchSession.add_lane`.  Feeding only queues
    samples; intervals complete when the owning session next runs
    :meth:`BatchSession.process_ready` (which the session-level feed
    helpers call for you).
    """

    def __init__(self, session: "BatchSession", index: int, name: str,
                 telemetry: EventBus,
                 gpd: BatchGlobalPhaseDetector | None,
                 monitor: RegionMonitor | None,
                 watchdog: RegionWatchdog | None) -> None:
        self.session = session
        self.index = index
        self.name = name
        self.telemetry = telemetry
        self.gpd = gpd
        self.monitor = monitor
        self.watchdog = watchdog
        self.stats = LaneStats()
        self.reports: list[IntervalReport] = []
        self.watchdog_events: list[WatchdogEvent] = []
        self._global_callbacks: list[GlobalChangeCallback] = []
        self._local_callbacks: list[LocalChangeCallback] = []
        self._interval_index = -1

    # -- subscriptions -------------------------------------------------------

    def on_global_change(self, callback: GlobalChangeCallback) -> None:
        """Register a callback for this lane's global phase changes."""
        self._global_callbacks.append(callback)

    def on_local_change(self, callback: LocalChangeCallback) -> None:
        """Register a callback for this lane's per-region phase changes."""
        self._local_callbacks.append(callback)

    # -- feeding (queue only; the session drains) ----------------------------

    @property
    def pending_samples(self) -> int:
        """Samples queued since the last completed interval."""
        return self.session._ring.fill(self.index)

    def feed_many(self, pcs: np.ndarray) -> int:
        """Queue a batch of samples; returns full intervals now pending.

        Validation matches ``OnlineSession.feed_many`` exactly — a
        non-1-D, empty or non-integer batch raises
        :class:`~repro.errors.SamplingError`.  Samples land in the
        session's preallocated :class:`~repro.batch.rings.ShardRing`, so
        interval completion later hands the banks direct views.
        """
        pcs = np.asarray(pcs)
        if pcs.ndim != 1:
            raise SamplingError(
                f"feed_many expects a 1-D sample batch, got shape "
                f"{pcs.shape}")
        if pcs.size == 0:
            raise SamplingError("feed_many received an empty batch")
        if not np.issubdtype(pcs.dtype, np.integer):
            raise SamplingError(
                f"feed_many expects integer PCs, got dtype {pcs.dtype}")
        self.stats.samples += int(pcs.size)
        bus = self.telemetry
        if bus.enabled:
            bus.emit(SampleBatch(cumulative_samples=self.stats.samples,
                                 batch_size=int(pcs.size)))
        return self.session._ring.push(self.index, pcs)

    def feed_stream(self, stream: SampleStream) -> int:
        """Queue a whole simulated stream."""
        if not isinstance(stream, SampleStream):
            raise SamplingError(
                f"feed_stream expects a SampleStream, got "
                f"{type(stream).__name__}")
        if stream.n_samples == 0:
            raise SamplingError("feed_stream received an empty stream")
        return self.feed_many(stream.pcs)

    def _take_interval(self) -> np.ndarray:
        """Dequeue one buffer's worth of samples (a ring view)."""
        return self.session._ring.take_interval(self.index)

    def summary(self) -> dict:
        """Status dictionary, shaped like ``OnlineSession.summary()``."""
        summary = {
            "intervals": self.stats.intervals,
            "samples": self.stats.samples,
            "global_events": self.stats.global_events,
            "local_events": self.stats.local_events,
        }
        if self.gpd is not None:
            summary["gpd_stable"] = self.gpd.in_stable_phase
        if self.monitor is not None:
            summary["monitored_regions"] = len(self.monitor.live_regions())
            summary["ucr_median"] = self.monitor.ucr.median()
        if self.watchdog is not None:
            summary["watchdog"] = self.watchdog.summary()
        return summary


class BatchSession:
    """N online phase-detection pipelines sharing vectorized banks.

    Parameters mirror :class:`~repro.monitor.online.OnlineSession`; they
    are the *defaults* each :meth:`add_lane` inherits.  All lanes share
    one buffer size (interval lockstep needs a common interval length)
    and, when the GPD channel is on, one set of GPD thresholds (the
    compiled machine is shared).
    """

    def __init__(self, binary: SyntheticBinary | None = None,
                 monitor_thresholds: MonitorThresholds | None = None,
                 gpd_thresholds: GpdThresholds | None = None,
                 run_gpd: bool = True,
                 watchdog: WatchdogConfig | None = None,
                 telemetry: EventBus | None = None,
                 **monitor_kwargs: Any) -> None:
        self.monitor_thresholds = monitor_thresholds or MonitorThresholds()
        self.buffer_size = self.monitor_thresholds.buffer_size
        self.gpd_thresholds = (gpd_thresholds or GpdThresholds()
                               if run_gpd else None)
        self.run_gpd = run_gpd
        if binary is None and not run_gpd:
            raise ValueError(
                "an online session needs a binary (for region "
                "monitoring), run_gpd=True, or both")
        self._binary = binary
        self._watchdog_config = watchdog
        self._default_bus = telemetry if telemetry is not None else get_bus()
        self._monitor_kwargs = monitor_kwargs
        self.lpd_bank = BatchLpdBank()
        self.gpd_bank: BatchGpdBank | None = None
        if run_gpd:
            self.gpd_bank = BatchGpdBank(
                dwell_intervals=self.gpd_thresholds.dwell_intervals,
                history_length=self.gpd_thresholds.history_length)
        self.lanes: list[BatchLane] = []
        self._ring = ShardRing(0, self.buffer_size)
        self._regrouper = FleetRegrouper(self.lpd_bank)
        self._gpd_group: GpdRowGroup | None = None
        self._gpd_group_key: bytes | None = None

    # -- lane management -----------------------------------------------------

    def add_lane(self, stream: SampleStream | None = None,
                 plan: FaultPlan | None = None, seed: int = 7,
                 telemetry: EventBus | None = None,
                 name: str | None = None) -> BatchLane:
        """Add one pipeline; optionally queue its (fault-injected) stream.

        *plan* is applied to *stream* with :func:`repro.faults.inject`
        before queueing — per-lane fault plans, exactly as a scalar
        harness would inject per session.  *telemetry* defaults to the
        session bus; give each lane its own bus when per-lane traces
        matter.
        """
        index = len(self.lanes)
        bus = telemetry if telemetry is not None else self._default_bus
        name = name or f"lane{index}"
        gpd = None
        if self.gpd_bank is not None:
            gpd = self.gpd_bank.add_detector(self.gpd_thresholds,
                                             telemetry=bus)
        monitor = None
        watchdog = None
        if self._binary is not None:
            monitor = RegionMonitor(
                self._binary, self.monitor_thresholds, telemetry=bus,
                detector_factory=self.lpd_bank.add_detector,
                **self._monitor_kwargs)
            if self._watchdog_config is not None:
                watchdog = RegionWatchdog(self._watchdog_config, monitor,
                                          telemetry=bus)
        lane = BatchLane(self, index, name, bus, gpd, monitor, watchdog)
        self.lanes.append(lane)
        self._ring.add_lane()
        if stream is not None:
            if plan is not None and not plan.is_empty:
                stream = inject(stream, plan, seed=seed)
            lane.feed_stream(stream)
        return lane

    # -- feeding -------------------------------------------------------------

    def feed(self, padded: np.ndarray,
             lengths: np.ndarray | list[int] | None = None) -> list[int]:
        """Deliver one padded sample batch to every lane, then process.

        *padded* is ``(n_lanes, k)``; row i's first ``lengths[i]``
        entries are lane i's samples (the rest is padding, never read).
        A length of zero skips the lane this round — the ragged-fleet
        case where a stream has ended or produced nothing.  Returns the
        number of intervals each lane completed.
        """
        padded = np.asarray(padded)
        if padded.ndim != 2 or padded.shape[0] != len(self.lanes):
            raise SamplingError(
                f"feed expects a ({len(self.lanes)}, k) padded batch, "
                f"got shape {padded.shape}")
        if lengths is None:
            lengths = [padded.shape[1]] * len(self.lanes)
        before = [lane.stats.intervals for lane in self.lanes]
        for lane, row, length in zip(self.lanes, padded, lengths):
            if length:
                lane.feed_many(row[:int(length)])
        self.process_ready()
        return [lane.stats.intervals - count
                for lane, count in zip(self.lanes, before)]

    def run(self) -> list[int]:
        """Process everything queued; returns per-lane interval counts."""
        before = [lane.stats.intervals for lane in self.lanes]
        self.process_ready()
        return [lane.stats.intervals - count
                for lane, count in zip(self.lanes, before)]

    # -- the lockstep overflow path -------------------------------------------

    def _gpd_group_for(self, ready_indices: np.ndarray) -> GpdRowGroup:
        """The pinned GPD row group for this round's ready lanes, cached.

        Every lane has one GPD row allocated in lane order, so the group
        over a contiguous ready set coalesces to a slice; the group is
        rebuilt only when the ready set changes (ragged fleets).
        """
        key = ready_indices.tobytes()
        if self._gpd_group_key != key:
            self._gpd_group = self.gpd_bank.make_group(
                [self.lanes[int(i)].gpd for i in ready_indices])
            self._gpd_group_key = key
        return self._gpd_group

    def process_ready(self) -> int:
        """Drain queued samples, one interval round at a time.

        Each round pops one full buffer per ready lane straight out of
        the shard ring — for a lockstep fleet that is a single 2-D view,
        no copies — and replays the scalar overflow path with the
        per-detector work batched: all GPD rows step in one block call,
        then all monitors attribute, then every region of every lane
        steps through the regrouper's cached plan.  Returns the total
        number of intervals processed.
        """
        ring = self._ring
        rounds = 0
        while True:
            ready_indices = ring.ready_lanes()
            if ready_indices.size == 0:
                return rounds
            ready = [self.lanes[int(i)] for i in ready_indices]
            rounds += len(ready)
            block = ring.take_round(ready_indices)
            for lane in ready:
                lane.stats.intervals += 1
                lane._interval_index += 1

            if self.gpd_bank is not None:
                events = self.gpd_bank.observe_block(
                    self._gpd_group_for(ready_indices), block)
                for lane, event in zip(ready, events):
                    if event is not None:
                        lane.stats.global_events += 1
                        for callback in lane._global_callbacks:
                            callback(event)

            pendings = []
            participants = []
            for lane, buffer in zip(ready, block):
                if lane.monitor is None:
                    # GPD-only lane: no monitor closes the interval;
                    # -1.0 marks the UCR fraction as not applicable.
                    if lane.telemetry.enabled:
                        lane.telemetry.emit(IntervalClosed(
                            interval_index=lane._interval_index,
                            n_samples=int(buffer.size),
                            ucr_fraction=-1.0, n_regions=0))
                    pendings.append(None)
                    continue
                pending = lane.monitor.begin_interval(
                    buffer, lane._interval_index)
                pendings.append(pending)
                participants.append((lane.monitor, pending))
            outcomes = self._regrouper.observe_round(participants)
            cursor = 0
            for lane, pending in zip(ready, pendings):
                if pending is None:
                    continue
                events: list[tuple[int, PhaseEvent]] = []
                for rid, _ in pending.to_observe:
                    event = outcomes[cursor]
                    cursor += 1
                    if event is not None:
                        events.append((rid, event))
                report = lane.monitor.finish_interval(pending, events)
                lane.reports.append(report)
                for rid, event in report.events:
                    lane.stats.local_events += 1
                    for callback in lane._local_callbacks:
                        callback(rid, event)
                if lane.watchdog is not None:
                    lane.watchdog_events.extend(
                        lane.watchdog.observe_interval(report))

    def discard_observation_history(self) -> None:
        """Drop the banks' pending step records (lazy observation logs).

        The logs exist only to materialize per-detector observation
        histories on demand and grow with every interval processed —
        dead weight for callers that consume events through incremental
        extraction.  The serving layer calls this before every shard
        snapshot so snapshot size and cost stay flat over worker
        uptime.  Already-materialized observations are kept; a later
        ``materialize_observations`` covers only subsequent steps.
        """
        self.lpd_bank.discard_observation_history()
        if self.gpd_bank is not None:
            self.gpd_bank.discard_observation_history()

    # -- inspection ------------------------------------------------------------

    def summary(self) -> dict:
        """Fleet-level counters plus per-lane summaries."""
        return {
            "lanes": len(self.lanes),
            "intervals": sum(lane.stats.intervals for lane in self.lanes),
            "samples": sum(lane.stats.samples for lane in self.lanes),
            "global_events": sum(lane.stats.global_events
                                 for lane in self.lanes),
            "local_events": sum(lane.stats.local_events
                                for lane in self.lanes),
            "per_lane": {lane.name: lane.summary() for lane in self.lanes},
        }
