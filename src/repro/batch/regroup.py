"""Adaptive row regrouping: keep churned fleets on the slice fast path.

A :class:`FleetRegrouper` sits between the per-round monitor bookkeeping
(:meth:`~repro.monitor.region_monitor.RegionMonitor.begin_interval`,
which defers its detector observations) and the shared
:class:`~repro.batch.lpd.BatchLpdBank`.  Instead of rebuilding per-item
groups every interval (``observe_many``'s job), it compiles the fleet's
deferred observations into a cached *plan* — one pinned
:class:`~repro.batch.lpd.LpdRowGroup` per histogram width, built with
slot compaction — and replays that plan each round with nothing but a
scratch fill and one compiled step per width.

The plan survives detector resets untouched (resets change row *state*,
not row *membership*).  It is rebuilt only when membership actually
changes: a different set of monitors participates, a monitor's region
registry changed (formation, pruning, quarantine, release all bump
:attr:`~repro.regions.registry.RegionRegistry.version`), a lane's
deferred-observation count changed (a region formed last interval starts
observing one interval later, without a version bump), or the bank
compacted a stable-set store out from under a cached group (epoch
mismatch).  Because rebuilds re-compact, a fleet that was degraded by a
watchdog quarantine re-coalesces on the next plan instead of paying
ragged gather costs forever.

Equivalence: a round stepped through a plan is bit-identical to the same
round through ``observe_many`` — the same width grouping, the same
kernels on the same float64 rows, one shared step record and one ordered
telemetry replay.  Rows whose monitors attributed no samples this
interval hold exactly as the scalar detector holds (an all-zero scratch
row is starved: ``sum < min_interval_samples``, which thresholds
guarantee is at least 1).
"""

from __future__ import annotations

import numpy as np

from repro.batch.lpd import BatchLpdBank, LpdRowGroup
from repro.core.states import PhaseEvent

__all__ = ["FleetRegrouper"]


class _PlanGroup:
    """One width's pinned rows plus its per-round fill recipe."""

    __slots__ = ("group", "scratch", "positions", "sources")

    def __init__(self, group: LpdRowGroup, scratch: np.ndarray,
                 positions: np.ndarray,
                 sources: list[tuple[int, int]]) -> None:
        self.group = group
        self.scratch = scratch
        self.positions = positions  # item positions, round order
        self.sources = sources      # (participant index, to_observe index)


class _FleetPlan:
    """A compiled round: who steps, through which groups, fed from where."""

    __slots__ = ("monitors", "versions", "lane_counts", "total", "handles",
                 "groups")

    def __init__(self, monitors: list, versions: list[int],
                 lane_counts: list[int], handles: np.ndarray,
                 groups: list[_PlanGroup]) -> None:
        self.monitors = monitors
        self.versions = versions
        self.lane_counts = lane_counts
        self.total = int(handles.size)
        self.handles = handles
        self.groups = groups

    def matches(self, participants: list) -> bool:
        """Whether this plan still describes *participants* exactly."""
        if len(participants) != len(self.monitors):
            return False
        for (monitor, pending), planned, version, count in zip(
                participants, self.monitors, self.versions,
                self.lane_counts):
            if monitor is not planned:
                return False
            if monitor.registry.version != version:
                return False
            if len(pending.to_observe) != count:
                return False
        for plan_group in self.groups:
            group = plan_group.group
            if group.epoch != group.store.epoch:
                return False
        return True


class FleetRegrouper:
    """Plan-caching driver for stepping many monitors' detectors at once.

    One regrouper per shared bank per harness (a
    :class:`~repro.batch.session.BatchSession` owns one; so does each
    :func:`~repro.batch.run.process_stream_batch` call).  Thread the
    *same* regrouper through consecutive rounds — the cached plan is
    where the speedup lives.
    """

    def __init__(self, bank: BatchLpdBank) -> None:
        self._bank = bank
        self._plan: _FleetPlan | None = None
        #: Plans built so far — a steady fleet should hold this at 1;
        #: churn shows up as increments (diagnostic, read by tests).
        self.rebuilds = 0

    @property
    def coalesced(self) -> bool:
        """Whether every plan group's stable-set slots form one slice.

        Bank columns are pinned at detector allocation and interleave
        across lanes by construction; what churn degrades — and what a
        plan rebuild restores, via slot compaction — is the *store*
        side, where the per-step Pearson gathers live.  A steady fleet
        must report True here; False after a rebuild means a group
        stayed ragged permanently, which is exactly the regression this
        property exists to catch.
        """
        plan = self._plan
        if plan is None:
            return False
        return all(isinstance(pg.group.slot_index, slice)
                   for pg in plan.groups)

    def observe_round(self, participants: list
                      ) -> list[PhaseEvent | None]:
        """Step one interval for every participating monitor's regions.

        *participants* is a list of ``(monitor, pending)`` pairs — each
        pending from the monitor's ``begin_interval`` for its current
        interval.  Returns phase events flat, in ``to_observe`` order
        lane by lane (the same contract as feeding the concatenated
        items to ``observe_many``).
        """
        plan = self._plan
        if plan is None or not plan.matches(participants):
            plan = self._plan = self._build(participants)
            self.rebuilds += 1
        bank = self._bank
        total = plan.total
        results: list[PhaseEvent | None] = [None] * total
        active_mask = np.zeros(total, dtype=bool)
        primed: list[int] = []
        stepped: dict[int, tuple[int, bool, bool]] = {}
        event_positions: list[int] = []
        telemetry_live = bank.telemetry_live()
        lane_indices = np.fromiter(
            (pending.index for _, pending in participants),
            dtype=np.int64, count=len(participants))
        call_indices = np.repeat(lane_indices, plan.lane_counts)
        for plan_group in plan.groups:
            scratch = plan_group.scratch
            for row, (lane, item) in enumerate(plan_group.sources):
                counts = participants[lane][1].to_observe[item][1]
                if counts is None:
                    scratch[row] = 0.0  # starved hold (see module doc)
                else:
                    scratch[row] = counts
            bank._advance_group(plan_group.group, scratch, call_indices,
                                plan_group.positions, active_mask, primed,
                                stepped, results, event_positions,
                                telemetry_live)
        bank._finish_step(plan.handles, call_indices, active_mask, primed,
                          stepped, results, event_positions, telemetry_live)
        return results

    def _build(self, participants: list) -> _FleetPlan:
        bank = self._bank
        width_py = bank._width_py
        monitors = []
        versions = []
        lane_counts = []
        handle_list: list[int] = []
        # width -> (views, item positions, (lane, item) sources)
        by_width: dict[int, tuple[list, list[int],
                                  list[tuple[int, int]]]] = {}
        position = 0
        for lane, (monitor, pending) in enumerate(participants):
            monitors.append(monitor)
            versions.append(monitor.registry.version)
            lane_counts.append(len(pending.to_observe))
            for item, (rid, _counts) in enumerate(pending.to_observe):
                view = monitor._detectors[rid]
                handle_list.append(view._handle)
                views, positions, sources = by_width.setdefault(
                    width_py[view._handle], ([], [], []))
                views.append(view)
                positions.append(position)
                sources.append((lane, item))
                position += 1
        groups = []
        for width, (views, positions, sources) in by_width.items():
            group = bank.make_group(views, compact=True)
            groups.append(_PlanGroup(
                group=group,
                scratch=np.zeros((group.k, width), dtype=np.float64),
                positions=np.asarray(positions, dtype=np.int64),
                sources=sources))
        handles = np.asarray(handle_list, dtype=np.int64)
        return _FleetPlan(monitors, versions, lane_counts, handles, groups)
