"""Lockstep batch runs: many streams through shared detector banks.

The batch backend's speed comes from advancing *populations* per call —
state machines cannot be vectorized over time (each interval depends on
the last), so these helpers vectorize over streams and regions instead.
Ragged populations are fine: a stream that runs out of intervals simply
stops being stepped, exactly as its scalar twin would have stopped, so
the bit-equality contract holds per stream regardless of the mix.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.batch.gpd import BatchGlobalPhaseDetector, BatchGpdBank
from repro.batch.lpd import BatchLpdBank
from repro.batch.regroup import FleetRegrouper
from repro.core.thresholds import GpdThresholds, MonitorThresholds
from repro.costs import CostLedger
from repro.monitor.region_monitor import IntervalReport, RegionMonitor
from repro.program.binary import SyntheticBinary
from repro.sampling.events import SampleStream
from repro.telemetry.bus import EventBus

__all__ = ["batch_monitor", "process_stream_batch", "run_gpd_batch"]


def run_gpd_batch(streams: list[SampleStream], buffer_size: int,
                  thresholds: GpdThresholds | None = None,
                  ledgers: list[CostLedger] | None = None,
                  telemetry: list[EventBus | None] | None = None
                  ) -> list[BatchGlobalPhaseDetector]:
    """Run one GPD per stream, all advanced in lockstep.

    The batched twin of :func:`repro.analysis.metrics.run_gpd`: each
    returned view is bit-identical to the scalar detector the same
    stream would have produced.  *ledgers* / *telemetry* are optional
    per-stream lists (``None`` entries fall back to the scalar
    defaults).
    """
    thresholds = thresholds or GpdThresholds()
    bank = BatchGpdBank(dwell_intervals=thresholds.dwell_intervals,
                        history_length=thresholds.history_length)
    if telemetry is None:
        # Bulk-allocated rows share the default bus and get contiguous
        # handles, so downstream groups coalesce to slices.
        views = bank.add_detectors(len(streams), thresholds)
    else:
        views = [bank.add_detector(thresholds, telemetry=bus)
                 for bus in telemetry]
    centroid_tracks = [stream.centroids(buffer_size) for stream in streams]
    horizon = max((track.size for track in centroid_tracks), default=0)
    for step in range(horizon):
        live_views = []
        live_values = []
        for row, track in enumerate(centroid_tracks):
            if step >= track.size:
                continue  # this stream already ended (ragged population)
            if ledgers is not None and ledgers[row] is not None:
                ledgers[row].charge_gpd_interval(buffer_size)
            live_views.append(views[row])
            live_values.append(float(track[step]))
        bank.observe_centroids(
            live_views, np.asarray(live_values, dtype=np.float64))
    return views


def batch_monitor(binary: SyntheticBinary, bank: BatchLpdBank,
                  thresholds: MonitorThresholds | None = None,
                  **kwargs: Any) -> RegionMonitor:
    """A :class:`RegionMonitor` whose detectors live in a shared bank.

    Identical to constructing the monitor directly except that every
    region formed gets a :class:`~repro.batch.lpd.BatchLocalPhaseDetector`
    row in *bank*, so many monitors can be stepped together by
    :func:`process_stream_batch`.
    """
    return RegionMonitor(binary, thresholds,
                         detector_factory=bank.add_detector, **kwargs)


def process_stream_batch(pairs: list[tuple[RegionMonitor, SampleStream]],
                         bank: BatchLpdBank,
                         track_misses: bool = False
                         ) -> list[list[IntervalReport]]:
    """Process many (monitor, stream) pairs in interval lockstep.

    Every monitor must have been built over *bank* (see
    :func:`batch_monitor`).  Each interval round splits the scalar
    pipeline: all monitors attribute and account
    (:meth:`~repro.monitor.region_monitor.RegionMonitor.begin_interval`),
    then a :class:`~repro.batch.regroup.FleetRegrouper` steps every
    region of every monitor through its cached width-grouped plan, then
    all monitors close their interval.  Per-monitor results and
    telemetry are bit-identical to ``monitor.process_stream(stream)`` —
    give each monitor its own bus if cross-monitor event interleaving
    matters.
    """
    buffer_sizes = [monitor.thresholds.buffer_size for monitor, _ in pairs]
    totals = [stream.n_intervals(size)
              for (_, stream), size in zip(pairs, buffer_sizes)]
    reports: list[list[IntervalReport]] = [[] for _ in pairs]
    regrouper = FleetRegrouper(bank)
    horizon = max(totals, default=0)
    for step in range(horizon):
        round_rows = []      # (pair position, pending)
        participants = []    # regrouper round, all monitors concatenated
        for position, (monitor, stream) in enumerate(pairs):
            if step >= totals[position]:
                continue
            size = buffer_sizes[position]
            window = slice(step * size, (step + 1) * size)
            miss = stream.dcache_miss[window] if track_misses else None
            pending = monitor.begin_interval(stream.pcs[window], step,
                                             miss_flags=miss)
            round_rows.append((position, pending))
            participants.append((monitor, pending))
        outcomes = regrouper.observe_round(participants)
        cursor = 0
        for position, pending in round_rows:
            monitor = pairs[position][0]
            events = []
            for rid, _ in pending.to_observe:
                event = outcomes[cursor]
                cursor += 1
                if event is not None:
                    events.append((rid, event))
            reports[position].append(
                monitor.finish_interval(pending, events))
    return reports
